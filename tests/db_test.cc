// End-to-end tests of the dLSM engine over the simulated deployment:
// write/read paths, flush, near-data compaction, snapshots, iterators,
// stalls, sharding, and the ablation configurations.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/util/random.h"
#include "tests/dlsm_test_util.h"

namespace dlsm {
namespace {

using test::RunDbTest;
using test::TestKey;
using test::TestValue;

TEST(DBTest, PutGetRoundTrip) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), "foo", "bar").ok());
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), "foo", &value).ok());
    EXPECT_EQ("bar", value);
    EXPECT_TRUE(db->Get(ReadOptions(), "missing", &value).IsNotFound());
  });
}

TEST(DBTest, OverwriteReturnsNewest) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v1").ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v2").ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v3").ok());
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
    EXPECT_EQ("v3", value);
  });
}

TEST(DBTest, DeleteHidesKey) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
    ASSERT_TRUE(db->Delete(WriteOptions(), "k").ok());
    std::string value;
    EXPECT_TRUE(db->Get(ReadOptions(), "k", &value).IsNotFound());
    // Re-insert after delete.
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v2").ok());
    ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
    EXPECT_EQ("v2", value);
  });
}

TEST(DBTest, WriteBatchIsAtomicallyVisible) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    WriteBatch batch;
    batch.Put("a", "1");
    batch.Put("b", "2");
    batch.Delete("a");
    batch.Put("c", "3");
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
    std::string value;
    EXPECT_TRUE(db->Get(ReadOptions(), "a", &value).IsNotFound());
    ASSERT_TRUE(db->Get(ReadOptions(), "b", &value).ok());
    EXPECT_EQ("2", value);
    ASSERT_TRUE(db->Get(ReadOptions(), "c", &value).ok());
    EXPECT_EQ("3", value);
  });
}

TEST(DBTest, ReadsSpanMemTableFlushAndCompaction) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    // Enough data to force several flushes and at least one compaction.
    const int kN = 4000;
    for (int i = 0; i < kN; i++) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    EXPECT_GT(db->GetStats().flushes, 0u);

    for (int i = 0; i < kN; i += 7) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok())
          << "missing key " << i;
      EXPECT_EQ(TestValue(i), value);
    }
  });
}

TEST(DBTest, OverwritesSurviveCompaction) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    const int kN = 1500;
    for (int round = 0; round < 3; round++) {
      for (int i = 0; i < kN; i++) {
        ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i),
                            TestValue(i * 10 + round))
                        .ok());
      }
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    for (int i = 0; i < kN; i += 11) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok());
      EXPECT_EQ(TestValue(i * 10 + 2), value) << "key " << i;
    }
  });
}

TEST(DBTest, DeletesSurviveCompaction) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    const int kN = 2000;
    for (int i = 0; i < kN; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    for (int i = 0; i < kN; i += 2) {
      ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    for (int i = 0; i < kN; i += 97) {
      std::string value;
      Status s = db->Get(ReadOptions(), TestKey(i), &value);
      if (i % 2 == 0) {
        EXPECT_TRUE(s.IsNotFound()) << "key " << i;
      } else {
        ASSERT_TRUE(s.ok()) << "key " << i;
        EXPECT_EQ(TestValue(i), value);
      }
    }
  });
}

TEST(DBTest, MatchesReferenceModelUnderRandomWorkload) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    std::map<std::string, std::string> model;
    Random rnd(301);
    for (int op = 0; op < 8000; op++) {
      std::string key = TestKey(rnd.Uniform(500));
      if (rnd.OneIn(4)) {
        model.erase(key);
        ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      } else {
        std::string value = TestValue(rnd.Next() % 100000);
        model[key] = value;
        ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      }
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    for (int i = 0; i < 500; i++) {
      std::string key = TestKey(i);
      std::string value;
      Status s = db->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
        EXPECT_EQ(it->second, value) << key;
      }
    }
  });
}

TEST(DBTest, IteratorScansInOrder) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    const int kN = 3000;
    for (int i = kN - 1; i >= 0; i--) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());

    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ASSERT_EQ(TestKey(count), it->key().ToString());
      ASSERT_EQ(TestValue(count), it->value().ToString());
      count++;
    }
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
    EXPECT_EQ(kN, count);
  });
}

TEST(DBTest, IteratorSeekAndPrev) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i * 2), TestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));

    it->Seek(TestKey(100));  // Exact hit.
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(100), it->key().ToString());

    it->Seek(TestKey(101));  // Between keys: lands on 102.
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(102), it->key().ToString());

    it->Prev();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(100), it->key().ToString());

    it->SeekToLast();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(1998), it->key().ToString());
  });
}

TEST(DBTest, IteratorHidesDeletions) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    for (int i = 0; i < 100; i += 3) {
      ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i)).ok());
    }
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      uint64_t n = std::stoull(it->key().ToString());
      EXPECT_NE(0u, n % 3) << "deleted key visible: " << n;
    }
  });
}

TEST(DBTest, SnapshotReadsSeeFrozenState) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "old").ok());
    const Snapshot* snap = db->GetSnapshot();
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "new").ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "k2", "only-new").ok());

    ReadOptions at_snap;
    at_snap.snapshot_sequence = snap->sequence();
    std::string value;
    ASSERT_TRUE(db->Get(at_snap, "k", &value).ok());
    EXPECT_EQ("old", value);
    EXPECT_TRUE(db->Get(at_snap, "k2", &value).IsNotFound());

    ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
    EXPECT_EQ("new", value);
    db->ReleaseSnapshot(snap);
  });
}

TEST(DBTest, SnapshotSurvivesFlushAndCompaction) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), TestKey(42), "before").ok());
    const Snapshot* snap = db->GetSnapshot();
    for (int round = 0; round < 4; round++) {
      for (int i = 0; i < 1200; i++) {
        ASSERT_TRUE(
            db->Put(WriteOptions(), TestKey(i), TestValue(round)).ok());
      }
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());

    ReadOptions at_snap;
    at_snap.snapshot_sequence = snap->sequence();
    std::string value;
    ASSERT_TRUE(db->Get(at_snap, TestKey(42), &value).ok());
    EXPECT_EQ("before", value);
    db->ReleaseSnapshot(snap);
  });
}

TEST(DBTest, ConcurrentWritersAllLand) {
  RunDbTest(nullptr, [](DB* db, Env* env) {
    constexpr int kThreads = 8;
    constexpr int kPerThread = 600;
    std::atomic<int> failures{0};
    std::vector<ThreadHandle> hs;
    for (int t = 0; t < kThreads; t++) {
      hs.push_back(env->StartThread(0, "writer", [&, t] {
        for (int i = 0; i < kPerThread; i++) {
          uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
          if (!db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok()) {
            failures++;
          }
          if (i % 64 == 0) env->MaybeYield();
        }
      }));
    }
    for (ThreadHandle h : hs) env->Join(h);
    ASSERT_EQ(0, failures.load());

    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    for (int t = 0; t < kThreads; t++) {
      for (int i = 0; i < kPerThread; i += 13) {
        uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
        std::string value;
        ASSERT_TRUE(db->Get(ReadOptions(), TestKey(k), &value).ok())
            << "lost write " << k;
        EXPECT_EQ(TestValue(k), value);
      }
    }
  });
}

TEST(DBTest, ConcurrentWritersOnSameKeyKeepNewestVisible) {
  // The Sec. IV correctness property: with racing writers on one key, a
  // reader must never see an older version than the newest committed one.
  RunDbTest(nullptr, [](DB* db, Env* env) {
    constexpr int kThreads = 4;
    constexpr int kRounds = 400;
    std::vector<ThreadHandle> hs;
    for (int t = 0; t < kThreads; t++) {
      hs.push_back(env->StartThread(0, "writer", [&, t] {
        for (int i = 0; i < kRounds; i++) {
          ASSERT_TRUE(db->Put(WriteOptions(), "hot-key",
                              TestValue(t * 1000 + i))
                          .ok());
          if (i % 32 == 0) env->MaybeYield();
        }
      }));
    }
    for (ThreadHandle h : hs) env->Join(h);
    // All writers done: the visible value must be SOME complete write, and
    // repeated reads must agree (no older-version flicker).
    std::string v1, v2;
    ASSERT_TRUE(db->Get(ReadOptions(), "hot-key", &v1).ok());
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    ASSERT_TRUE(db->Get(ReadOptions(), "hot-key", &v2).ok());
    EXPECT_EQ(v1, v2) << "version went backwards across flush";
  });
}

TEST(DBTest, StallEngagesAtL0StopTrigger) {
  RunDbTest(
      [](Options* options) {
        options->l0_compaction_trigger = 2;
        options->l0_stop_writes_trigger = 4;
        options->memtable_size = 16 << 10;
      },
      [](DB* db, Env*) {
        for (int i = 0; i < 6000; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        // The trigger must have been respected after quiescing.
        EXPECT_LT(db->NumFilesAtLevel(0), 5);
        std::string value;
        ASSERT_TRUE(db->Get(ReadOptions(), TestKey(5999), &value).ok());
      });
}

TEST(DBTest, BloomFiltersSkipRemoteReads) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    // Write only even keys so odd keys are absent but inside every
    // table's key range (outside-range keys are pruned by the metadata
    // before the bloom filter is ever consulted).
    for (int i = 0; i < 3000; i += 2) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    std::string value;
    for (int i = 1; i < 1000; i += 2) {
      EXPECT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).IsNotFound());
    }
    EXPECT_GT(db->GetStats().bloom_useful, 0u);
  });
}

TEST(DBTest, ShardedDbRoutesAndReads) {
  RunDbTest(
      [](Options* options) { options->shards = 8; },
      [](DB* db, Env*) {
        const int kN = 4000;
        Random rnd(7);
        for (int i = 0; i < kN; i++) {
          uint64_t k = rnd.Next64() % 1000000000000000ull;
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(k), TestValue(k % 1000)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        Random rnd2(7);
        for (int i = 0; i < kN; i += 17) {
          // Reproduce the same key stream.
          uint64_t k = 0;
          Random r(7);
          for (int j = 0; j <= i; j++) k = r.Next64() % 1000000000000000ull;
          std::string value;
          ASSERT_TRUE(db->Get(ReadOptions(), TestKey(k), &value).ok())
              << "key " << k;
          EXPECT_EQ(TestValue(k % 1000), value);
        }
        (void)rnd2;
      });
}

TEST(DBTest, ShardedIteratorSpansShards) {
  RunDbTest(
      [](Options* options) { options->shards = 4; },
      [](DB* db, Env*) {
        const int kN = 1000;
        for (int i = 0; i < kN; i++) {
          // Spread keys over the whole decimal space so shards all get data.
          uint64_t k = static_cast<uint64_t>(i) * 9000000000000ull;
          ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k), TestValue(i)).ok());
        }
        std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
        int count = 0;
        std::string prev;
        for (it->SeekToFirst(); it->Valid(); it->Next()) {
          std::string k = it->key().ToString();
          ASSERT_LT(prev, k);
          prev = k;
          count++;
        }
        EXPECT_EQ(kN, count);
      });
}

// --- Ablation configurations ------------------------------------------------

TEST(DBTest, BlockFormatModeIsCorrect) {
  RunDbTest(
      [](Options* options) {
        options->table_format = TableFormat::kBlock;
        options->block_size = 4096;
      },
      [](DB* db, Env*) {
        const int kN = 3000;
        for (int i = 0; i < kN; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        for (int i = 0; i < kN; i += 23) {
          std::string value;
          ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok())
              << "key " << i;
          EXPECT_EQ(TestValue(i), value);
        }
        // Scans unwrap blocks.
        std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
        int count = 0;
        for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
        EXPECT_EQ(kN, count);
      });
}

TEST(DBTest, ComputeSideCompactionIsCorrect) {
  RunDbTest(
      [](Options* options) {
        options->compaction_placement = CompactionPlacement::kComputeSide;
      },
      [](DB* db, Env*) {
        const int kN = 3000;
        for (int i = 0; i < kN; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i + 1)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        EXPECT_GT(db->GetStats().compactions, 0u);
        for (int i = 0; i < kN; i += 31) {
          std::string value;
          ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok());
          EXPECT_EQ(TestValue(i + 1), value);
        }
      });
}

TEST(DBTest, DoubleCheckedSwitchPolicyIsFunctional) {
  RunDbTest(
      [](Options* options) {
        options->switch_policy = MemTableSwitchPolicy::kDoubleCheckedSize;
      },
      [](DB* db, Env*) {
        const int kN = 3000;
        for (int i = 0; i < kN; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        for (int i = 0; i < kN; i += 19) {
          std::string value;
          ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok());
          EXPECT_EQ(TestValue(i), value);
        }
      });
}

TEST(DBTest, StatsAreAccounted) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), TestKey(1), &value).ok());
    DbStats s = db->GetStats();
    EXPECT_EQ(3000u, s.writes);
    EXPECT_GE(s.reads, 1u);
    EXPECT_GT(s.flushes, 0u);
    EXPECT_GT(s.compactions, 0u);
    EXPECT_GT(s.compaction_input_bytes, 0u);
    EXPECT_GT(s.compaction_output_bytes, 0u);
  });
}

// --- MultiGet ---------------------------------------------------------------

// Runs both MultiGet and per-key Get at the same pinned snapshot and
// demands byte-identical answers: same status code per key, same value
// bytes for found keys.
void ExpectMultiGetMatchesSerial(DB* db, const ReadOptions& options,
                                 const std::vector<std::string>& keys) {
  std::vector<Slice> slices(keys.begin(), keys.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db->MultiGet(options, slices, &values, &statuses);
  ASSERT_EQ(keys.size(), values.size());
  ASSERT_EQ(keys.size(), statuses.size());
  for (size_t i = 0; i < keys.size(); i++) {
    std::string serial_value;
    Status serial = db->Get(options, keys[i], &serial_value);
    EXPECT_EQ(serial.ok(), statuses[i].ok()) << "key " << keys[i];
    EXPECT_EQ(serial.IsNotFound(), statuses[i].IsNotFound())
        << "key " << keys[i];
    if (serial.ok()) {
      EXPECT_EQ(serial_value, values[i]) << "key " << keys[i];
    }
  }
}

TEST(DBTest, MultiGetMatchesSerialGetsUnderConcurrentWriters) {
  RunDbTest(nullptr, [](DB* db, Env* env) {
    const int kKeys = 2000;
    // Seed every key, then delete a stripe so tombstones are in play.
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    for (int i = 0; i < kKeys; i += 5) {
      ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i)).ok());
    }

    std::atomic<bool> stop{false};
    std::vector<ThreadHandle> hs;
    for (int t = 0; t < 3; t++) {
      hs.push_back(env->StartThread(0, "writer", [&, t] {
        Random rnd(100 + t);
        for (int i = 0; !stop.load() && i < 4000; i++) {
          uint64_t k = rnd.Next64() % kKeys;
          if (i % 7 == 0) {
            ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(k)).ok());
          } else {
            ASSERT_TRUE(
                db->Put(WriteOptions(), TestKey(k), TestValue(i)).ok());
          }
          if (i % 64 == 0) env->MaybeYield();
        }
      }));
    }

    // Compare under the writers at a pinned snapshot: the batch includes
    // present keys, deleted keys and keys that never existed.
    Random rnd(42);
    for (int round = 0; round < 10; round++) {
      std::vector<std::string> keys;
      for (int i = 0; i < 32; i++) {
        keys.push_back(TestKey(rnd.Next64() % (kKeys + 200)));
      }
      const Snapshot* snap = db->GetSnapshot();
      ReadOptions at_snap;
      at_snap.snapshot_sequence = snap->sequence();
      ExpectMultiGetMatchesSerial(db, at_snap, keys);
      db->ReleaseSnapshot(snap);
      env->MaybeYield();
    }
    stop.store(true);
    for (ThreadHandle h : hs) env->Join(h);

    // And once more over SSTables after flush + compaction settle.
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    std::vector<std::string> keys;
    for (int i = 0; i < kKeys + 100; i += 13) keys.push_back(TestKey(i));
    ExpectMultiGetMatchesSerial(db, ReadOptions(), keys);
  });
}

TEST(DBTest, MultiGetWithL0BacklogNewestWins) {
  // Many overlapping L0 files and no compaction to merge them: every key
  // may-match several files, so lookups must resolve newest-first. Block
  // format keeps the probes non-definitive, which drives the real
  // multi-read doorbell waves.
  RunDbTest(
      [](Options* options) {
        options->table_format = TableFormat::kBlock;
        options->block_size = 1024;
        options->memtable_size = 16 << 10;
        options->l0_compaction_trigger = 64;  // Never compacts in-test.
        options->l0_stop_writes_trigger = 128;
      },
      [](DB* db, Env*) {
        const int kKeys = 300;
        for (int round = 0; round < 6; round++) {
          for (int i = 0; i < kKeys; i++) {
            if (round == 4 && i % 3 == 0) {
              ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i)).ok());
            } else {
              ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i),
                                  TestValue(round * 10000 + i))
                              .ok());
            }
          }
          ASSERT_TRUE(db->Flush().ok());
        }
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        ASSERT_GT(db->NumFilesAtLevel(0), 1) << "backlog did not form";

        std::vector<std::string> keys;
        for (int i = 0; i < kKeys + 50; i++) keys.push_back(TestKey(i));
        ExpectMultiGetMatchesSerial(db, ReadOptions(), keys);

        // Newest-wins spot check against the known write history.
        std::vector<Slice> slices(keys.begin(), keys.end());
        std::vector<std::string> values;
        std::vector<Status> statuses;
        db->MultiGet(ReadOptions(), slices, &values, &statuses);
        for (int i = 0; i < kKeys; i++) {
          // Every key was rewritten in the final round — including the
          // stripe deleted in round 4, whose tombstone an older-file-first
          // lookup would wrongly surface.
          ASSERT_TRUE(statuses[i].ok()) << "key " << i;
          EXPECT_EQ(TestValue(50000 + i), values[i]);
        }
        for (int i = kKeys; i < kKeys + 50; i++) {
          EXPECT_TRUE(statuses[i].IsNotFound()) << "key " << i;
        }
      });
}

TEST(DBTest, MultiGetSerialFallbackMatches) {
  // async_reads=false must take the serial path and still agree.
  RunDbTest(nullptr, [](DB* db, Env*) {
    for (int i = 0; i < 1500; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    for (int i = 0; i < 1500; i += 4) {
      ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    ReadOptions no_async;
    no_async.async_reads = false;
    std::vector<std::string> keys;
    for (int i = 0; i < 1600; i += 9) keys.push_back(TestKey(i));
    ExpectMultiGetMatchesSerial(db, no_async, keys);
  });
}

TEST(DBTest, MultiGetAcrossShards) {
  RunDbTest(
      [](Options* options) { options->shards = 8; },
      [](DB* db, Env*) {
        const int kN = 2000;
        const uint64_t kStride = 4500000000000ull;  // Spans all shards.
        for (int i = 0; i < kN; i++) {
          ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i * kStride),
                              TestValue(i))
                          .ok());
        }
        for (int i = 0; i < kN; i += 6) {
          ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i * kStride)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        // Batch in shard-interleaved order so the scatter/gather really
        // reorders; include absent keys.
        std::vector<std::string> keys;
        for (int i = kN + 40; i >= 0; i -= 3) {
          keys.push_back(TestKey(i * kStride));
        }
        ExpectMultiGetMatchesSerial(db, ReadOptions(), keys);
      });
}

TEST(DBTest, MultiGetStdEnvMatchesSerialGets) {
  // The batched read path must also work in real time (StdEnv), where
  // completions arrive via condition variables instead of virtual time.
  Env* env = Env::Std();
  rdma::Fabric fabric(env);
  rdma::Node* compute = fabric.AddNode("compute", 0, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 0, 2ull << 30);
  MemoryNodeService service(&fabric, memory, 2);
  service.Start();

  Options options = test::SmallOptions(env);
  DbDeps deps;
  deps.fabric = &fabric;
  deps.compute = compute;
  deps.memory = &service;
  DB* raw = nullptr;
  ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
  std::unique_ptr<DB> db(raw);

  for (int i = 0; i < 1200; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
  }
  for (int i = 0; i < 1200; i += 3) {
    ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 1300; i += 7) keys.push_back(TestKey(i));
  ExpectMultiGetMatchesSerial(db.get(), ReadOptions(), keys);

  ASSERT_TRUE(db->Close().ok());
  db.reset();
  service.Stop();
}

// --- Async/sync read-path equivalence ---------------------------------------

// The async_reads toggle may only change how bytes move (doorbell-batched
// handle waves vs one synchronous verb at a time) — never which bytes come
// back. This sweep replays a seeded randomized workload against an
// in-memory reference model and demands byte-identical answers from Get,
// MultiGet, and scans, across both environments and both read modes.

// Seeded so every parameterization replays the identical workload; the DB
// is compared against the model, and MultiGet against serial Gets.
void EquivalenceWorkload(DB* db, bool async_reads, int write_ops) {
  const uint64_t kKeySpace = 3000;
  Random rnd(42);
  std::map<std::string, std::string> model;
  for (int i = 0; i < write_ops; i++) {
    uint64_t k = rnd.Uniform(kKeySpace);
    std::string key = TestKey(k);
    if (rnd.OneIn(4)) {
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else {
      // Distinct payload per (key, op) so stale versions are detectable.
      std::string value = TestValue(k * 1000003 + i);
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    }
  }
  // Push everything through flush and compaction, then write a fresh stripe
  // so reads span memtable, L0, and compacted levels at once.
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
  for (int i = 0; i < 200; i++) {
    uint64_t k = rnd.Uniform(kKeySpace);
    std::string value = TestValue(k + 777);
    ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k), value).ok());
    model[TestKey(k)] = value;
  }

  ReadOptions options;
  options.async_reads = async_reads;

  // Point lookups: every key in the space, hit or miss, byte-identical.
  for (uint64_t k = 0; k < kKeySpace; k++) {
    std::string key = TestKey(k);
    std::string value;
    Status s = db->Get(options, key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << "key " << key << ": " << s.ToString();
    } else {
      ASSERT_TRUE(s.ok()) << "key " << key << ": " << s.ToString();
      EXPECT_EQ(it->second, value) << "key " << key;
    }
  }

  // MultiGet: a striped batch (hits and misses mixed) vs serial Gets.
  std::vector<std::string> keys;
  for (uint64_t k = 0; k < kKeySpace + 100; k += 7) keys.push_back(TestKey(k));
  ExpectMultiGetMatchesSerial(db, options, keys);

  // Full forward scan: exactly the model, in order.
  std::unique_ptr<Iterator> iter(db->NewIterator(options));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(model.end(), mit) << "scan yielded extra key "
                                << iter->key().ToString();
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString()) << "key " << mit->first;
  }
  ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();
  EXPECT_TRUE(mit == model.end()) << "scan stopped early at " << mit->first;

  // Bounded scans from random seek points (exercises prefetch-window
  // repositioning, which cancels dead READs on the async path).
  for (int r = 0; r < 8; r++) {
    std::string start = TestKey(rnd.Uniform(kKeySpace));
    std::unique_ptr<Iterator> bounded(db->NewIterator(options));
    auto m = model.lower_bound(start);
    bounded->Seek(start);
    for (int steps = 0; steps < 64 && bounded->Valid();
         steps++, bounded->Next(), ++m) {
      ASSERT_NE(model.end(), m);
      EXPECT_EQ(m->first, bounded->key().ToString());
      EXPECT_EQ(m->second, bounded->value().ToString());
    }
    ASSERT_TRUE(bounded->status().ok()) << bounded->status().ToString();
  }
}

// Param: (use_std_env, async_reads).
class ReadPathEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(ReadPathEquivalenceTest, RandomizedWorkloadIsByteIdentical) {
  const bool use_std_env = std::get<0>(GetParam());
  const bool async = std::get<1>(GetParam());

  if (!use_std_env) {
    RunDbTest(nullptr,
              [async](DB* db, Env*) { EquivalenceWorkload(db, async, 6000); });
    return;
  }

  // Real-time deployment: completions arrive via condition variables, so
  // the handle layer's wait paths run against actual thread scheduling.
  Env* env = Env::Std();
  rdma::Fabric fabric(env);
  rdma::Node* compute = fabric.AddNode("compute", 0, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 0, 2ull << 30);
  MemoryNodeService service(&fabric, memory, 2);
  service.Start();

  Options options = test::SmallOptions(env);
  DbDeps deps;
  deps.fabric = &fabric;
  deps.compute = compute;
  deps.memory = &service;
  DB* raw = nullptr;
  ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
  std::unique_ptr<DB> db(raw);

  // Smaller workload than the SimEnv combos: wire latencies are real
  // sleeps here, and the coverage target is the StdEnv wait paths, not
  // compaction volume.
  EquivalenceWorkload(db.get(), async, 2500);

  ASSERT_TRUE(db->Close().ok());
  db.reset();
  service.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    EnvAndMode, ReadPathEquivalenceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
      return std::string(std::get<0>(info.param) ? "StdEnv" : "SimEnv") +
             (std::get<1>(info.param) ? "AsyncReads" : "SyncReads");
    });

// --- Cache equivalence ------------------------------------------------------

// The compute-side block cache may only elide fabric READs — never change
// a result. This sweep replays the read-path equivalence workload with the
// cache on (small, so eviction and admission churn) and off, across both
// environments, and demands byte-identical answers. Scan caching is
// enabled too so the prefetch-window fill path is covered.

// Param: (use_std_env, cache_on).
class CacheEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(CacheEquivalenceTest, RandomizedWorkloadIsByteIdentical) {
  const bool use_std_env = std::get<0>(GetParam());
  const bool cache_on = std::get<1>(GetParam());
  auto tune = [cache_on](Options* options) {
    options->block_cache_size = cache_on ? 1 << 20 : 0;
    options->cache_shards = 4;
    options->cache_scans = cache_on;
  };

  if (!use_std_env) {
    RunDbTest(tune, [cache_on](DB* db, Env*) {
      EquivalenceWorkload(db, /*async_reads=*/true, 6000);
      if (cache_on) {
        // The workload's point-read volume must actually exercise the
        // cache, or this sweep proves nothing.
        DbStats stats = db->GetStats();
        EXPECT_GT(stats.cache_hits, 0u);
        EXPECT_GT(stats.cache_inserts, 0u);
      }
    });
    return;
  }

  // Real-time deployment: cache hits race real reader/writer threads.
  Env* env = Env::Std();
  rdma::Fabric fabric(env);
  rdma::Node* compute = fabric.AddNode("compute", 0, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 0, 2ull << 30);
  MemoryNodeService service(&fabric, memory, 2);
  service.Start();

  Options options = test::SmallOptions(env);
  tune(&options);
  DbDeps deps;
  deps.fabric = &fabric;
  deps.compute = compute;
  deps.memory = &service;
  DB* raw = nullptr;
  ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
  std::unique_ptr<DB> db(raw);

  EquivalenceWorkload(db.get(), /*async_reads=*/true, 2500);

  ASSERT_TRUE(db->Close().ok());
  db.reset();
  service.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    EnvAndCache, CacheEquivalenceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
      return std::string(std::get<0>(info.param) ? "StdEnv" : "SimEnv") +
             (std::get<1>(info.param) ? "CacheOn" : "CacheOff");
    });

// Compactions rewrite cached tables into new file numbers; reads after the
// rewrite must see the new values. (File numbers are never reused, so a
// stale hit would need the old table's entries to alias the new one — this
// pins the invalidation hook that drops them anyway.)
TEST(CacheInvalidationTest, NoStaleReadsAcrossCompaction) {
  RunDbTest(
      [](Options* options) {
        options->block_cache_size = 8 << 20;
        options->cache_shards = 4;
      },
      [](DB* db, Env*) {
        const int kN = 1500;
        for (int i = 0; i < kN; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        // Populate the cache from the current tables.
        for (int i = 0; i < kN; i++) {
          std::string value;
          ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok());
          EXPECT_EQ(TestValue(i), value);
        }
        DbStats before = db->GetStats();
        EXPECT_GT(before.cache_inserts, 0u);
        // Rewrite everything; flush + compaction replace the cached
        // tables and fire the invalidation hooks.
        for (int i = 0; i < kN; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i + 900000))
                  .ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        for (int i = 0; i < kN; i++) {
          std::string value;
          ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok());
          EXPECT_EQ(TestValue(i + 900000), value) << "stale read, key " << i;
        }
        // The "dlsm.cache" property is live when the cache is configured.
        std::string prop;
        ASSERT_TRUE(db->GetProperty("dlsm.cache", &prop));
        EXPECT_NE(std::string::npos, prop.find("block-cache:"));
      });
}

// Pins the uncached-index x async-reads contract (see table_reader.h):
// the combination is rejected with InvalidArgument up front instead of
// silently probing synchronously.
TEST(CacheInvalidationTest, AsyncReadsWithUncachedIndexIsRejected) {
  RunDbTest(
      [](Options* options) { options->cache_index_blocks = false; },
      [](DB* db, Env*) {
        ASSERT_TRUE(db->Put(WriteOptions(), TestKey(1), TestValue(1)).ok());
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());

        ReadOptions async;
        async.async_reads = true;
        std::string value;
        EXPECT_TRUE(db->Get(async, TestKey(1), &value).IsInvalidArgument());

        std::vector<Slice> keys;
        std::vector<std::string> key_storage = {TestKey(1), TestKey(2)};
        for (const auto& k : key_storage) keys.emplace_back(k);
        std::vector<std::string> values;
        std::vector<Status> statuses;
        db->MultiGet(async, keys, &values, &statuses);
        for (const Status& s : statuses) {
          EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
        }

        // The synchronous path still works.
        ReadOptions sync;
        sync.async_reads = false;
        ASSERT_TRUE(db->Get(sync, TestKey(1), &value).ok());
        EXPECT_EQ(TestValue(1), value);
      });
}

// --- Async/sync write-path equivalence --------------------------------------

// The async_write toggle may only change how flush bytes and compaction
// RPCs move (deferred handle waves, pipelined CallAsync) — never the
// resulting DB state. This sweep replays a seeded randomized write
// workload with flushes and compactions overlapping foreground writes and
// demands the final state be byte-identical to an in-memory model.

void WriteEquivalenceWorkload(DB* db, int write_ops, size_t value_len) {
  const uint64_t kKeySpace = 2000;
  Random rnd(97);
  std::map<std::string, std::string> model;
  auto apply = [&](int i) {
    uint64_t k = rnd.Uniform(kKeySpace);
    std::string key = TestKey(k);
    if (rnd.OneIn(5)) {
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else {
      // Distinct payload per (key, op) so a lost or stale write is
      // detectable, not just a missing key.
      std::string value = TestValue(k * 1000003 + i, value_len);
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    }
  };
  // Flush mid-stream so deferred flush waves overlap foreground writes,
  // then quiesce and lay down a fresh stripe: the final state spans
  // memtable, L0, and compacted levels at once.
  for (int i = 0; i < write_ops / 2; i++) apply(i);
  ASSERT_TRUE(db->Flush().ok());
  for (int i = write_ops / 2; i < write_ops; i++) apply(i);
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
  for (int i = 0; i < 150; i++) {
    uint64_t k = rnd.Uniform(kKeySpace);
    std::string value = TestValue(k + 31337, value_len);
    ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k), value).ok());
    model[TestKey(k)] = value;
  }

  // Point lookups: every key in the space, hit or miss, byte-identical.
  for (uint64_t k = 0; k < kKeySpace; k++) {
    std::string key = TestKey(k);
    std::string value;
    Status s = db->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << "key " << key << ": " << s.ToString();
    } else {
      ASSERT_TRUE(s.ok()) << "key " << key << ": " << s.ToString();
      EXPECT_EQ(it->second, value) << "key " << key;
    }
  }

  // Full forward scan: exactly the model, in order.
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(model.end(), mit) << "scan yielded extra key "
                                << iter->key().ToString();
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString()) << "key " << mit->first;
  }
  ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();
  EXPECT_TRUE(mit == model.end()) << "scan stopped early at " << mit->first;
}

// Param: (use_std_env, async_write, value_len).
class WritePathEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(WritePathEquivalenceTest, RandomizedWorkloadIsByteIdentical) {
  const bool use_std_env = std::get<0>(GetParam());
  const bool async = std::get<1>(GetParam());
  const size_t value_len = static_cast<size_t>(std::get<2>(GetParam()));

  if (!use_std_env) {
    RunDbTest([async](Options* options) { options->async_write = async; },
              [value_len](DB* db, Env*) {
                WriteEquivalenceWorkload(db, 5000, value_len);
              });
    return;
  }

  // Real-time deployment: flush-wave completions and CallAsync reply
  // stamps arrive via condition variables under actual thread scheduling.
  Env* env = Env::Std();
  rdma::Fabric fabric(env);
  rdma::Node* compute = fabric.AddNode("compute", 0, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 0, 2ull << 30);
  MemoryNodeService service(&fabric, memory, 2);
  service.Start();

  Options options = test::SmallOptions(env);
  options.async_write = async;
  DbDeps deps;
  deps.fabric = &fabric;
  deps.compute = compute;
  deps.memory = &service;
  DB* raw = nullptr;
  ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
  std::unique_ptr<DB> db(raw);

  // Smaller workload than the SimEnv combos: wire latencies are real
  // sleeps here, and the target is the StdEnv wait paths.
  WriteEquivalenceWorkload(db.get(), 1500, value_len);

  ASSERT_TRUE(db->Close().ok());
  db.reset();
  service.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    EnvModeAndValueSize, WritePathEquivalenceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(64, 1024)),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool, int>>& info) {
      return std::string(std::get<0>(info.param) ? "StdEnv" : "SimEnv") +
             (std::get<1>(info.param) ? "AsyncWrite" : "SyncWrite") + "Val" +
             std::to_string(std::get<2>(info.param));
    });

// Full dump of a DB's user-visible state plus its final sequence number.
struct DbDump {
  std::vector<std::pair<std::string, std::string>> entries;
  uint64_t sequence = 0;
};

DbDump RunSeededWriteWorkload(bool async_write) {
  DbDump dump;
  RunDbTest(
      [async_write](Options* options) {
        options->async_write = async_write;
        options->write_path = WritePath::kWriterQueue;
      },
      [&dump](DB* db, Env*) {
        Random rnd(1234);
        for (int i = 0; i < 5000; i++) {
          uint64_t k = rnd.Uniform(1200);
          if (rnd.OneIn(6)) {
            ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(k)).ok());
          } else {
            ASSERT_TRUE(
                db->Put(WriteOptions(), TestKey(k), TestValue(k * 7 + i))
                    .ok());
          }
          if (i == 2500) ASSERT_TRUE(db->Flush().ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        const Snapshot* snap = db->GetSnapshot();
        dump.sequence = snap->sequence();
        db->ReleaseSnapshot(snap);
        std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
        for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
          dump.entries.emplace_back(iter->key().ToString(),
                                    iter->value().ToString());
        }
        ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();
      });
  return dump;
}

TEST(DBTest, WriteModesProduceIdenticalStateAndSequences) {
  // Group sequence batching must assign exactly the sequences the
  // one-at-a-time path would: same final sequence number, same surviving
  // versions. A single-threaded writer-queue workload is deterministic, so
  // the two modes are compared dump-for-dump.
  DbDump sync_dump = RunSeededWriteWorkload(false);
  DbDump async_dump = RunSeededWriteWorkload(true);
  EXPECT_EQ(sync_dump.sequence, async_dump.sequence);
  ASSERT_EQ(sync_dump.entries.size(), async_dump.entries.size());
  for (size_t i = 0; i < sync_dump.entries.size(); i++) {
    EXPECT_EQ(sync_dump.entries[i].first, async_dump.entries[i].first)
        << "entry " << i;
    EXPECT_EQ(sync_dump.entries[i].second, async_dump.entries[i].second)
        << "key " << sync_dump.entries[i].first;
  }
}

TEST(DBTest, WriterQueueGroupCommitKeepsProgramOrder) {
  // Group sequence batching (one fetch-add per writer group) must keep
  // each writer's program order even when the group leader's sequence
  // window straddles a MemTable switch and later members fall back to
  // fresh allocations. Small MemTables force frequent switches.
  RunDbTest(
      [](Options* options) {
        options->write_path = WritePath::kWriterQueue;
        options->async_write = true;
        options->memtable_size = 16 << 10;
      },
      [](DB* db, Env* env) {
        constexpr int kThreads = 8;
        constexpr int kKeysPerThread = 200;
        constexpr int kRounds = 3;
        std::vector<ThreadHandle> hs;
        for (int t = 0; t < kThreads; t++) {
          hs.push_back(env->StartThread(0, "writer", [&, t] {
            for (int round = 0; round < kRounds; round++) {
              for (int i = 0; i < kKeysPerThread; i++) {
                uint64_t k = static_cast<uint64_t>(t) * kKeysPerThread + i;
                ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k),
                                    TestValue(k * 10 + round))
                                .ok());
                if (i % 32 == 0) env->MaybeYield();
              }
            }
          }));
        }
        for (ThreadHandle h : hs) env->Join(h);
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        // Key ranges are disjoint per thread, so the visible version of
        // every key must be that thread's last write — an inverted group
        // window would leave an earlier round on top.
        for (int t = 0; t < kThreads; t++) {
          for (int i = 0; i < kKeysPerThread; i++) {
            uint64_t k = static_cast<uint64_t>(t) * kKeysPerThread + i;
            std::string value;
            ASSERT_TRUE(db->Get(ReadOptions(), TestKey(k), &value).ok())
                << "lost write " << k;
            EXPECT_EQ(TestValue(k * 10 + (kRounds - 1)), value)
                << "key " << k;
          }
        }
        EXPECT_EQ(
            static_cast<uint64_t>(kThreads) * kKeysPerThread * kRounds,
            db->GetStats().writes);
      });
}

TEST(DBTest, StallAccountingNeverExceedsElapsedTime) {
  // Stalled-writer time is a union of intervals: with N writers parked on
  // the same flush/compaction backlog, stall_ns must not count the overlap
  // N times over (the old per-writer accounting could report ~N x the
  // wall-clock stall).
  RunDbTest(
      [](Options* options) {
        options->memtable_size = 16 << 10;
        options->max_immutables = 1;
        options->flush_threads = 1;
        options->l0_compaction_trigger = 2;
        options->l0_stop_writes_trigger = 3;
      },
      [](DB* db, Env* env) {
        const uint64_t start = env->NowNanos();
        constexpr int kThreads = 8;
        constexpr int kPerThread = 800;
        std::vector<ThreadHandle> hs;
        for (int t = 0; t < kThreads; t++) {
          hs.push_back(env->StartThread(0, "writer", [&, t] {
            for (int i = 0; i < kPerThread; i++) {
              uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
              ASSERT_TRUE(
                  db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
              if (i % 64 == 0) env->MaybeYield();
            }
          }));
        }
        for (ThreadHandle h : hs) env->Join(h);
        const uint64_t elapsed = env->NowNanos() - start;
        DbStats stats = db->GetStats();
        EXPECT_GT(stats.stall_ns, 0u) << "backlog never stalled a writer";
        EXPECT_LE(stats.stall_ns, elapsed)
            << "stall time double-counted across concurrent writers";
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
      });
}

TEST(DBTest, VerbBudgetOneSerializesCompactionRpcs) {
  // budget=1: the pipelined scheduler may never have a second compaction
  // RPC posted while one is outstanding. One scheduler thread so no other
  // coordinator can widen the gauge.
  RunDbTest(
      [](Options* options) {
        options->async_write = true;
        options->compaction_verb_budget = 1;
        options->compaction_scheduler_threads = 1;
        options->memtable_size = 16 << 10;
        options->sstable_size = 16 << 10;
        options->l0_compaction_trigger = 2;
      },
      [](DB* db, Env*) {
        Random rnd(11);
        for (int i = 0; i < 6000; i++) {
          uint64_t k = rnd.Uniform(4000);
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(k), TestValue(k + i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        DbStats stats = db->GetStats();
        ASSERT_GT(stats.compactions, 0u);
        EXPECT_EQ(1u, stats.compaction_rpc_inflight_peak)
            << "budget=1 must serialize sub-compaction RPCs";
      });
}

TEST(DBTest, UncappedBudgetPipelinesCompactionRpcs) {
  // budget=0 removes the cap: a multi-task sub-compaction pick must drive
  // the in-flight RPC window past one (the whole point of CallAsync).
  RunDbTest(
      [](Options* options) {
        options->async_write = true;
        options->compaction_verb_budget = 0;
        options->memtable_size = 16 << 10;
        options->sstable_size = 16 << 10;
        options->l0_compaction_trigger = 2;
      },
      [](DB* db, Env*) {
        Random rnd(12);
        for (int i = 0; i < 12000; i++) {
          uint64_t k = rnd.Uniform(8000);
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(k), TestValue(k + i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        DbStats stats = db->GetStats();
        ASSERT_GT(stats.compactions, 0u);
        EXPECT_GE(stats.compaction_rpc_inflight_peak, 2u)
            << "uncapped scheduler never overlapped compaction RPCs";
      });
}

TEST(DBTest, CloseWithFlushBacklogUnderAsyncWrite) {
  // Teardown with deferred flush WRITE waves and pipelined compaction
  // RPCs still in motion: Close() must cancel cleanly — no hang, and no
  // verbs left pinned on the outstanding gauge.
  RunDbTest(
      [](Options* options) {
        options->async_write = true;
        options->memtable_size = 16 << 10;
        options->sstable_size = 16 << 10;
        options->l0_compaction_trigger = 2;
      },
      [](DB* db, Env*) {
        Random rnd(13);
        for (int i = 0; i < 6000; i++) {
          uint64_t k = rnd.Uniform(4000);
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
        }
        // No Flush(), no WaitForBackgroundIdle(): close into the backlog.
        ASSERT_TRUE(db->Close().ok());
        EXPECT_EQ(0u, db->GetStats().rdma.outstanding);
      });
}

}  // namespace
}  // namespace dlsm
