// Edge-case tests: DBIter boundary behavior, merging-iterator direction
// switches, empty structures, snapshot-bounded iteration, write batches at
// the MemTable switch boundary, and SimEnv determinism properties.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/merger.h"
#include "src/sim/sim_env.h"
#include "tests/dlsm_test_util.h"

namespace dlsm {
namespace {

using test::RunDbTest;
using test::TestKey;

TEST(IteratorEdgeTest, EmptyDatabase) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    it->SeekToFirst();
    EXPECT_FALSE(it->Valid());
    it->SeekToLast();
    EXPECT_FALSE(it->Valid());
    it->Seek("anything");
    EXPECT_FALSE(it->Valid());
    EXPECT_TRUE(it->status().ok());
  });
}

TEST(IteratorEdgeTest, SingleKeyAllDirections) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), "only", "value").ok());
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));

    it->SeekToFirst();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("only", it->key().ToString());
    it->Next();
    EXPECT_FALSE(it->Valid());

    it->SeekToLast();
    ASSERT_TRUE(it->Valid());
    it->Prev();
    EXPECT_FALSE(it->Valid());

    it->Seek("zzz");
    EXPECT_FALSE(it->Valid());
    it->Seek("a");
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("only", it->key().ToString());
  });
}

TEST(IteratorEdgeTest, DirectionSwitchesAcrossLevels) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    // Data spread over memtable + SSTables.
    for (int i = 0; i < 800; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i * 2), "v").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    for (int i = 800; i < 1000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i * 2), "v").ok());
    }

    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    it->Seek(TestKey(1000));
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(1000), it->key().ToString());
    // Forward, backward, forward again across the same point.
    it->Next();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(1002), it->key().ToString());
    it->Prev();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(1000), it->key().ToString());
    it->Prev();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(998), it->key().ToString());
    it->Next();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(1000), it->key().ToString());
  });
}

TEST(IteratorEdgeTest, PrevThroughDeletions) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), "v").ok());
    }
    // Delete a run in the middle.
    for (int i = 40; i < 60; i++) {
      ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(i)).ok());
    }
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    it->Seek(TestKey(60));
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(60), it->key().ToString());
    it->Prev();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(39), it->key().ToString()) << "must skip the tombstones";
  });
}

TEST(IteratorEdgeTest, SnapshotBoundedIteration) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), "old").ok());
    }
    const Snapshot* snap = db->GetSnapshot();
    for (int i = 25; i < 75; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), "new").ok());
    }
    ASSERT_TRUE(db->Delete(WriteOptions(), TestKey(10)).ok());

    ReadOptions at_snap;
    at_snap.snapshot_sequence = snap->sequence();
    std::unique_ptr<Iterator> it(db->NewIterator(at_snap));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      EXPECT_EQ("old", it->value().ToString()) << it->key().ToString();
      count++;
    }
    EXPECT_EQ(50, count) << "snapshot sees exactly the first 50 keys";
    db->ReleaseSnapshot(snap);
  });
}

TEST(IteratorEdgeTest, OverwritesCollapseToNewestInScan) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    for (int round = 0; round < 5; round++) {
      for (int i = 0; i < 200; i++) {
        ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i),
                            "r" + std::to_string(round))
                        .ok());
      }
      if (round == 2) ASSERT_TRUE(db->Flush().ok());
    }
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      EXPECT_EQ("r4", it->value().ToString());
      count++;
    }
    EXPECT_EQ(200, count);
  });
}

TEST(MergerEdgeTest, EmptyAndSingleChildren) {
  InternalKeyComparator icmp(BytewiseComparator());
  Iterator* none = NewMergingIterator(&icmp, nullptr, 0);
  none->SeekToFirst();
  EXPECT_FALSE(none->Valid());
  delete none;

  Iterator* empties[2] = {NewEmptyIterator(), NewEmptyIterator()};
  Iterator* merged = NewMergingIterator(&icmp, empties, 2);
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
  merged->Seek("x");
  EXPECT_FALSE(merged->Valid());
  delete merged;
}

TEST(WriteBatchEdgeTest, BatchSpanningMemTableSwitch) {
  // A batch larger than the remaining sequence range must commit whole.
  RunDbTest(
      [](Options* options) {
        options->memtable_seq_range = 64;  // Tiny ranges: many switches.
      },
      [](DB* db, Env*) {
        WriteBatch batch;
        for (int i = 0; i < 300; i++) {
          batch.Put(TestKey(i), "batched");
        }
        ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
        for (int i = 0; i < 300; i += 17) {
          std::string value;
          ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok());
          EXPECT_EQ("batched", value);
        }
      });
}

TEST(WriteBatchEdgeTest, EmptyBatchIsANoop) {
  RunDbTest(nullptr, [](DB* db, Env*) {
    WriteBatch batch;
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
    EXPECT_EQ(0u, db->GetStats().writes);
  });
}

TEST(TinySeqRangeTest, ManySwitchesStayCorrect) {
  RunDbTest(
      [](Options* options) {
        options->memtable_seq_range = 32;  // A switch every 32 writes.
        options->max_immutables = 2;       // Heavy backpressure.
      },
      [](DB* db, Env* env) {
        constexpr int kThreads = 4;
        std::vector<ThreadHandle> hs;
        for (int t = 0; t < kThreads; t++) {
          hs.push_back(env->StartThread(0, "w", [&, t] {
            for (int i = 0; i < 500; i++) {
              uint64_t k = static_cast<uint64_t>(t) * 500 + i;
              ASSERT_TRUE(
                  db->Put(WriteOptions(), TestKey(k), TestKey(k)).ok());
            }
          }));
        }
        for (ThreadHandle h : hs) env->Join(h);
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
        int count = 0;
        for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
        EXPECT_EQ(kThreads * 500, count);
        EXPECT_GT(db->GetStats().flushes, 10u);
      });
}

// --- SimEnv determinism / accounting properties ------------------------------

TEST(SimEnvPropertyTest, VirtualTimeIsLoadIndependentForSleeps) {
  // Ten threads sleeping 1 virtual ms each, concurrently, finish at ~1 ms,
  // not 10 ms: sleeping consumes no simulated CPU.
  SimEnv env;
  uint64_t elapsed = 0;
  env.Run(0, [&] {
    Barrier b0(&env, 11), b1(&env, 11);
    std::vector<ThreadHandle> hs;
    for (int i = 0; i < 10; i++) {
      hs.push_back(env.StartThread(0, "sleeper", [&] {
        b0.Arrive();
        env.SleepNanos(1'000'000);
        b1.Arrive();
      }));
    }
    b0.Arrive();
    uint64_t t0 = env.NowNanos();
    b1.Arrive();
    elapsed = env.NowNanos() - t0;
    for (ThreadHandle h : hs) env.Join(h);
  });
  EXPECT_GE(elapsed, 1'000'000u);
  EXPECT_LT(elapsed, 3'000'000u);
}

TEST(SimEnvPropertyTest, CoreSweepScalesThroughputMonotonically) {
  // A fixed CPU-bound workload on a node with k cores must take
  // monotonically less virtual time as k grows (up to the thread count).
  auto run = [&](int cores) {
    SimEnv env;
    int node = env.RegisterNode("n", cores);
    uint64_t elapsed = 0;
    env.Run(0, [&] {
      constexpr int kThreads = 8;
      Barrier b0(&env, kThreads + 1), b1(&env, kThreads + 1);
      std::vector<ThreadHandle> hs;
      for (int t = 0; t < kThreads; t++) {
        hs.push_back(env.StartThread(node, "w", [&] {
          b0.Arrive();
          volatile uint64_t sink = 0;
          for (int r = 0; r < 40; r++) {
            for (int i = 0; i < 50000; i++) sink += i;
            env.MaybeYield();
          }
          b1.Arrive();
        }));
      }
      b0.Arrive();
      uint64_t t0 = env.NowNanos();
      b1.Arrive();
      elapsed = env.NowNanos() - t0;
      for (ThreadHandle h : hs) env.Join(h);
    });
    return elapsed;
  };
  uint64_t c1 = run(1), c4 = run(4), c8 = run(8);
  EXPECT_GT(c1, c4);
  EXPECT_GT(c4, c8 * 3 / 2);
}

TEST(SimEnvPropertyTest, CausalityThroughProducerConsumerChain) {
  // A chain of handoffs must accumulate every link's virtual delay.
  SimEnv env;
  env.Run(0, [&] {
    Mutex mu(&env);
    CondVar cv(&env, &mu);
    int stage = 0;
    constexpr int kStages = 5;
    std::vector<ThreadHandle> hs;
    for (int s = 0; s < kStages; s++) {
      hs.push_back(env.StartThread(0, "stage", [&, s] {
        MutexLock l(&mu);
        while (stage != s) cv.Wait();
        env.SleepNanos(1'000'000);  // 1 ms of work per stage.
        stage++;
        cv.SignalAll();
      }));
    }
    {
      MutexLock l(&mu);
      while (stage != kStages) cv.Wait();
    }
    for (ThreadHandle h : hs) env.Join(h);
    EXPECT_GE(env.NowNanos(), kStages * 1'000'000u);
  });
}

}  // namespace
}  // namespace dlsm
