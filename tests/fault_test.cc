// Randomized fault-sweep tests: a seeded mixed workload runs with
// deterministic fault injection at the fabric and the DB must either return
// exactly the bytes a fault-free run would (transient faults absorbed by
// retries) or fail closed with non-OK statuses — never abort, never serve
// wrong bytes, and never install tables over unwritten data. A separate
// test covers the permanent memory-node crash: every operation must come
// back non-OK within the configured timeouts, and a restart restores reads
// without ever resurrecting stale bytes.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/util/random.h"
#include "tests/dlsm_test_util.h"

namespace dlsm {
namespace {

using test::TestKey;
using test::TestValue;

/// Retry/timeout knobs on: faults should be absorbed where transient and
/// surface as (bounded-latency) errors where not.
Options FaultTolerantOptions(Env* env) {
  Options options = test::SmallOptions(env);
  options.rdma_max_retries = 4;
  options.rdma_retry_backoff_ns = 20 * 1000;
  options.flush_max_retries = 4;
  options.rpc_timeout_ns = 20 * 1000 * 1000;
  options.rpc_max_retries = 4;
  options.rpc_retry_backoff_ns = 50 * 1000;
  return options;
}

/// Reference model of acknowledged state. Writes whose status came back
/// non-OK leave their key "ambiguous" (the write may or may not have been
/// applied before the error surfaced), so reads of those keys only check
/// fail-closed behavior, not bytes.
struct Model {
  std::map<std::string, std::string> expected;
  std::set<std::string> ambiguous;

  void Ack(const std::string& key, const std::string& value) {
    expected[key] = value;
    ambiguous.erase(key);
  }
  void AckDelete(const std::string& key) {
    expected.erase(key);
    ambiguous.erase(key);
  }
  void Reject(const std::string& key) {
    expected.erase(key);
    ambiguous.insert(key);
  }
};

/// One Get verified against the model. Returns false iff the DB answered
/// with an error status (fail-closed — acceptable, but not "healthy").
bool CheckGet(DB* db, const Model& model, const std::string& key) {
  std::string value;
  Status s = db->Get(ReadOptions(), key, &value);
  if (model.ambiguous.count(key) > 0) return s.ok() || s.IsNotFound();
  auto it = model.expected.find(key);
  if (s.ok()) {
    // An OK answer must carry exactly the acknowledged bytes: wrong or
    // resurrected values are the one unforgivable outcome.
    EXPECT_TRUE(it != model.expected.end())
        << "key " << key << " resurrected after acknowledged delete";
    if (it != model.expected.end()) {
      EXPECT_EQ(it->second, value) << "key " << key << " has wrong bytes";
    }
    return true;
  }
  if (s.IsNotFound()) {
    EXPECT_TRUE(it == model.expected.end())
        << "key " << key << " lost an acknowledged write: " << s.ToString();
    return true;
  }
  return false;  // Fail-closed error; never wrong data.
}

/// Seeded mixed workload (puts, overwrites, deletes, periodic flushes)
/// followed by point / batched / scan verification. Returns true iff every
/// operation succeeded — i.e. the run is byte-identical to a fault-free
/// run. With injection off this must always be true.
bool FaultWorkload(DB* db, int write_ops, uint64_t key_space) {
  Random rnd(42);
  Model model;
  bool healthy = true;

  for (int i = 0; i < write_ops; i++) {
    uint64_t k = rnd.Uniform(static_cast<int>(key_space));
    std::string key = TestKey(k);
    if (rnd.OneIn(4)) {
      Status s = db->Delete(WriteOptions(), key);
      if (s.ok()) {
        model.AckDelete(key);
      } else {
        model.Reject(key);
        healthy = false;
      }
    } else {
      std::string value = TestValue(k * 1000003 + i);
      Status s = db->Put(WriteOptions(), key, value);
      if (s.ok()) {
        model.Ack(key, value);
      } else {
        model.Reject(key);
        healthy = false;
      }
    }
    if (i % 400 == 399 && !db->Flush().ok()) healthy = false;
  }
  if (!db->Flush().ok()) healthy = false;
  if (!db->WaitForBackgroundIdle().ok()) healthy = false;

  // Point lookups across the whole key space, hits and misses alike.
  for (uint64_t k = 0; k < key_space; k++) {
    if (!CheckGet(db, model, TestKey(k))) healthy = false;
  }

  // Batched lookups obey the same per-key contract.
  std::vector<std::string> key_strs;
  for (uint64_t k = 0; k < key_space; k += 7) key_strs.push_back(TestKey(k));
  std::vector<Slice> keys(key_strs.begin(), key_strs.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db->MultiGet(ReadOptions(), keys, &values, &statuses);
  for (size_t i = 0; i < keys.size(); i++) {
    const std::string& key = key_strs[i];
    if (model.ambiguous.count(key) > 0) continue;
    auto it = model.expected.find(key);
    if (statuses[i].ok()) {
      EXPECT_TRUE(it != model.expected.end()) << "multiget key " << key;
      if (it != model.expected.end()) {
        EXPECT_EQ(it->second, values[i]) << "multiget key " << key;
      }
    } else if (statuses[i].IsNotFound()) {
      EXPECT_TRUE(it == model.expected.end()) << "multiget key " << key;
    } else {
      healthy = false;
    }
  }

  // Scan: every yielded entry must carry acknowledged bytes; a healthy run
  // must yield exactly the model.
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  size_t yielded = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string key = iter->key().ToString();
    yielded++;
    if (model.ambiguous.count(key) > 0) continue;
    auto it = model.expected.find(key);
    EXPECT_TRUE(it != model.expected.end())
        << "scan yielded unexpected key " << key;
    if (it != model.expected.end()) {
      EXPECT_EQ(it->second, iter->value().ToString()) << "scan key " << key;
    }
  }
  if (!iter->status().ok()) {
    healthy = false;
  } else if (healthy) {
    EXPECT_EQ(model.expected.size(), yielded)
        << "healthy scan must yield the whole model";
  }
  return healthy;
}

struct SweepConfig {
  bool use_std_env;
  uint64_t seed;
  double wr_error_rate;
  double rnr_delay_rate;
  // Compute-side block cache on: hits elide fabric READs, so the sweep
  // checks the cache never converts a fault into wrong bytes (it must be
  // byte-identical when healthy and fail closed with the fabric when not).
  bool cache_enabled = false;
};

std::string SweepName(const ::testing::TestParamInfo<SweepConfig>& info) {
  const SweepConfig& c = info.param;
  std::string name = c.use_std_env ? "StdEnv" : "SimEnv";
  name += "Seed" + std::to_string(c.seed);
  name += "Wr" + std::to_string(static_cast<int>(c.wr_error_rate * 10000));
  name += "Rnr" + std::to_string(static_cast<int>(c.rnr_delay_rate * 10000));
  if (c.cache_enabled) name += "Cache";
  return name;
}

class FaultSweepTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(FaultSweepTest, WorkloadIsByteIdenticalOrFailsClosed) {
  const SweepConfig& cfg = GetParam();
  const bool zero_fault = cfg.wr_error_rate == 0.0 && cfg.rnr_delay_rate == 0.0;
  // StdEnv pays real wire latencies (and real retry backoffs), so it runs a
  // smaller workload; the coverage target there is the real-time wait and
  // recovery paths, not compaction volume.
  const int write_ops = cfg.use_std_env ? 1500 : 4000;
  const uint64_t key_space = cfg.use_std_env ? 600 : 1200;

  rdma::FaultParams fp;
  fp.seed = cfg.seed;
  fp.wr_error_rate = cfg.wr_error_rate;
  fp.rnr_delay_rate = cfg.rnr_delay_rate;
  fp.rnr_delay_ns = 100 * 1000;

  auto body = [&](rdma::Fabric* fabric, DB* db) {
    // Injection starts after Open so the deployment itself comes up clean;
    // the per-QP draw sequences are seeded lazily on first use, so the
    // schedule is still a pure function of (seed, QP, post sequence).
    fabric->set_fault_params(fp);
    bool healthy = FaultWorkload(db, write_ops, key_space);
    if (zero_fault) {
      EXPECT_TRUE(healthy) << "fault-free run must be fully healthy";
    }
    // Quiesce injection so teardown exercises only residual state.
    fabric->set_fault_params(rdma::FaultParams());
    Status close = db->Close();
    if (healthy) {
      EXPECT_TRUE(close.ok()) << close.ToString();
    }
  };

  if (cfg.use_std_env) {
    Env* env = Env::Std();
    rdma::Fabric fabric(env);
    rdma::Node* compute = fabric.AddNode("compute", 0, 1ull << 30);
    rdma::Node* memory = fabric.AddNode("memory", 0, 2ull << 30);
    MemoryNodeService service(&fabric, memory, 2);
    service.Start();
    Options options = FaultTolerantOptions(env);
    if (cfg.cache_enabled) options.block_cache_size = 4 << 20;
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;
    DB* raw = nullptr;
    ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
    std::unique_ptr<DB> db(raw);
    body(&fabric, db.get());
    db.reset();
    service.Stop();
    return;
  }

  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 4ull << 30);
  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 4);
    service.Start();
    Options options = FaultTolerantOptions(&env);
    if (cfg.cache_enabled) options.block_cache_size = 4 << 20;
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;
    DB* raw = nullptr;
    ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
    std::unique_ptr<DB> db(raw);
    body(&fabric, db.get());
    db.reset();
    service.Stop();
  });
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndRate, FaultSweepTest,
    ::testing::Values(
        // Zero-fault baselines: must be fully healthy in both envs.
        SweepConfig{false, 1, 0.0, 0.0}, SweepConfig{true, 1, 0.0, 0.0},
        // RNR-only: delays, never errors — must also stay fully healthy.
        SweepConfig{false, 1, 0.0, 0.01},
        // Transient error sweeps across seeds and rates.
        SweepConfig{false, 1, 0.001, 0.005}, SweepConfig{false, 2, 0.001, 0.0},
        SweepConfig{false, 3, 0.005, 0.005}, SweepConfig{false, 4, 0.02, 0.0},
        SweepConfig{true, 2, 0.001, 0.005},
        // Cache-enabled legs: zero-fault (must stay fully healthy) and a
        // transient-error mix in each environment.
        SweepConfig{false, 1, 0.0, 0.0, true},
        SweepConfig{false, 3, 0.005, 0.005, true},
        SweepConfig{false, 4, 0.02, 0.0, true},
        SweepConfig{true, 2, 0.001, 0.005, true}),
    SweepName);

TEST(FaultCrashTest, MemoryNodeCrashFailsClosedWithinTimeout) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 4ull << 30);
  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 4);
    service.Start();
    Options options = FaultTolerantOptions(&env);
    // Cache on: a crash must take it offline (fail closed) — a cached hit
    // may never succeed where the fabric read would have failed.
    options.block_cache_size = 4 << 20;
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;
    DB* raw = nullptr;
    ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
    std::unique_ptr<DB> db(raw);

    // Healthy prelude: enough data that reads must go through the fabric.
    for (int i = 0; i < 800; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    // Warm the cache so TestKey(1) would be a hit if the cache ignored
    // the crash.
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), TestKey(1), &value).ok());

    fabric.CrashNode(memory);
    std::string prop;
    ASSERT_TRUE(db->GetProperty("dlsm.cache", &prop));
    EXPECT_NE(std::string::npos, prop.find("offline")) << prop;

    // Remote reads fail closed: retries and reconnects cannot succeed
    // against a crashed peer, so the error surfaces instead of hanging.
    Status rs = db->Get(ReadOptions(), TestKey(1), &value);
    EXPECT_FALSE(rs.ok()) << "read of flushed key must fail while crashed";

    // Writes keep landing in the memtable until a flush is needed; the
    // failed flush then latches the background error and every subsequent
    // write is rejected. Bounded by memtable capacity, not by luck.
    Status ws;
    for (int i = 0; i < 20000; i++) {
      ws = db->Put(WriteOptions(), TestKey(100000 + i), TestValue(i));
      if (!ws.ok()) break;
    }
    EXPECT_FALSE(ws.ok()) << "writes must fail closed once flush cannot land";
    EXPECT_FALSE(db->Flush().ok());
    EXPECT_FALSE(db->WaitForBackgroundIdle().ok());

    // Restart: reads may recover via QP reset, or stay rejected under the
    // latched background error — but an OK answer must carry the exact
    // acknowledged bytes.
    fabric.RestartNode(memory);
    Status after = db->Get(ReadOptions(), TestKey(1), &value);
    if (after.ok()) {
      EXPECT_EQ(TestValue(1), value);
    } else {
      EXPECT_FALSE(after.IsNotFound()) << after.ToString();
    }

    (void)db->Close();  // Close flushes; non-OK is acceptable here.
    db.reset();
    service.Stop();
  });
}

}  // namespace
}  // namespace dlsm
