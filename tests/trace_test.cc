// Tracing subsystem tests: disabled-path inertness (no events, no
// allocations), Chrome trace JSON shape, cross-node RPC flow stitching,
// and byte-identical traces across same-seed deterministic SimEnv runs.
//
// Determinism caveat: SimEnv charges *measured* host CPU time into virtual
// time by default (cpu_scale = 1.0), so timestamps wobble run to run with
// the host. The byte-identical guarantee holds in pure discrete-event mode
// (cpu_scale = 0), where virtual time advances only through the fabric
// model and explicit sleeps; that is what these tests pin down.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "src/core/db.h"
#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"
#include "src/util/trace.h"
#include "tests/dlsm_test_util.h"

// Global allocation counter for the no-allocation test. Counts every
// operator new in the test binary; the disabled-tracing block asserts a
// zero delta.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace dlsm {
namespace {

using test::SmallOptions;
using test::TestKey;
using test::TestValue;

// Runs a small write+read workload on a two-node deployment in pure
// discrete-event mode and returns the full Chrome trace JSON. Everything
// that feeds the trace — thread creation order, scheduler tie-breaks,
// timestamps — is a function of the seed alone.
std::string TracedWorkloadJson(uint64_t seed) {
  SimEnv::Options so;
  so.cpu_scale = 0.0;
  SimEnv env(so);
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 4ull << 30);

  trace::EnableWithEnv(&env);
  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 4);
    service.Start();
    Options options = SmallOptions(&env);
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;
    DB* raw = nullptr;
    ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
    std::unique_ptr<DB> db(raw);

    Random rnd(seed);
    // Enough data for several flushes and at least one compaction under
    // SmallOptions (64 KB memtables, L0 trigger 4).
    for (int i = 0; i < 9000; i++) {
      uint64_t k = rnd.Uniform(3000);
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    for (int i = 0; i < 200; i++) {
      std::string value;
      Status s = db->Get(ReadOptions(), TestKey(rnd.Uniform(1000)), &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
    }
    ASSERT_TRUE(db->Close().ok());
    db.reset();
    service.Stop();
  });
  std::string json = trace::Tracer::ChromeTraceJson();
  trace::Tracer::Disable();
  return json;
}

TEST(TraceTest, DisabledTracingRecordsNothingAndAllocatesNothing) {
  trace::Tracer::Disable();
  ASSERT_FALSE(trace::Tracer::enabled());
  // The counted block is pure tracing API; gtest assertions stay outside
  // so the only possible allocations are the recorder's.
  uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  bool any_active = false;
  uint64_t id_sum = 0;
  for (int i = 0; i < 10000; i++) {
    trace::TraceSpan span("hot", "test");
    span.arg("k", 1);
    trace::Tracer::EmitInstant("inst", "test", "a", 2);
    trace::Tracer::EmitComplete("done", "test", 0, 1);
    trace::Tracer::EmitFlow('s', "flow", "test", 7);
    any_active |= span.active();
    id_sum += span.id();
  }
  uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
  EXPECT_FALSE(any_active);
  EXPECT_EQ(0u, id_sum);
}

TEST(TraceTest, ChromeJsonShapeAndInstrumentedLayers) {
  std::string json = TracedWorkloadJson(1234);
  // Top-level shape.
  EXPECT_EQ(0u, json.find("{\"traceEvents\":["));
  EXPECT_NE(std::string::npos, json.rfind("]}"));

  // Metadata: pid = node (compute/memory), named threads.
  EXPECT_NE(std::string::npos, json.find("\"process_name\""));
  EXPECT_NE(std::string::npos, json.find("\"compute\""));
  EXPECT_NE(std::string::npos, json.find("\"memory\""));
  EXPECT_NE(std::string::npos, json.find("\"thread_name\""));

  // DB layer: op spans with phase sub-spans.
  for (const char* name :
       {"\"Get\"", "\"Write\"", "\"mem_probe\"", "\"flush\"",
        "\"compaction\"", "\"exec_compaction\""}) {
    EXPECT_NE(std::string::npos, json.find(name)) << name;
  }
  // Verb layer: per-class async spans recorded at completion harvest.
  EXPECT_NE(std::string::npos, json.find("\"cat\":\"verb\""));
  // RPC layer: client call span, server handler span, flow arrows.
  EXPECT_NE(std::string::npos, json.find("\"rpc_call\""));
  EXPECT_NE(std::string::npos, json.find("\"rpc_handle\""));
  EXPECT_NE(std::string::npos, json.find("\"ph\":\"s\""));
  EXPECT_NE(std::string::npos, json.find("\"ph\":\"f\""));
}

TEST(TraceTest, RpcFlowsStitchAcrossNodes) {
  std::string json = TracedWorkloadJson(1234);
  // Every flow-start id posted by the compute side must be finished by a
  // memory-node handler: grab the first 's' event's id and find a matching
  // 'f' with the same id.
  size_t s_pos = json.find("\"ph\":\"s\"");
  ASSERT_NE(std::string::npos, s_pos);
  size_t id_pos = json.find("\"id\":", s_pos);
  ASSERT_NE(std::string::npos, id_pos);
  size_t id_end = json.find_first_of(",}", id_pos);
  std::string id_field = json.substr(id_pos, id_end - id_pos);
  // The same flow id appears on a finish event.
  bool stitched = false;
  for (size_t f_pos = json.find("\"ph\":\"f\""); f_pos != std::string::npos;
       f_pos = json.find("\"ph\":\"f\"", f_pos + 1)) {
    size_t fid = json.find("\"id\":", f_pos);
    if (fid == std::string::npos) break;
    size_t fid_end = json.find_first_of(",}", fid);
    if (json.substr(fid, fid_end - fid) == id_field) {
      stitched = true;
      break;
    }
  }
  EXPECT_TRUE(stitched) << "flow " << id_field << " never finished";
}

TEST(TraceTest, SameSeedRunsProduceByteIdenticalTraces) {
  std::string a = TracedWorkloadJson(777);
  std::string b = TracedWorkloadJson(777);
  ASSERT_GT(a.size(), 1000u);
  EXPECT_EQ(a, b);
  // And the trace is not degenerate: dropped-event counter stayed zero.
  EXPECT_EQ(0u, trace::Tracer::dropped_events());
}

TEST(TraceTest, DifferentSeedsProduceDifferentTraces) {
  std::string a = TracedWorkloadJson(777);
  std::string b = TracedWorkloadJson(778);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dlsm
