// Tests for the compaction machinery: task/result wire formats, the
// MergeAndBuild drop rules (shadowed versions, snapshots, tombstones), the
// near-data executor, and the end-to-end RPC path through the memory node
// service.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/core/compaction.h"
#include "src/core/memory_node_service.h"
#include "src/core/merger.h"
#include "src/core/table_builder.h"
#include "src/core/table_reader.h"
#include "src/remote/rpc.h"
#include "src/sim/sim_env.h"
#include "src/util/random.h"

namespace dlsm {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq,
                 ValueType t = kTypeValue) {
  std::string out;
  AppendInternalKey(&out, ParsedInternalKey(user_key, seq, t));
  return out;
}

std::string UKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

TEST(CompactionProtoTest, TaskRoundTrip) {
  CompactionTask task;
  for (int i = 0; i < 3; i++) {
    CompactionInput in;
    in.format = i == 2 ? 2 : 1;
    in.addr = 0x1000 + i * 0x100;
    in.start_off = i * 7;
    in.end_off = i * 7 + 1000;
    in.index_blob = i == 2 ? "blockindex" : "";
    task.inputs.push_back(in);
  }
  task.smallest_snapshot = 12345;
  task.drop_tombstones = true;
  task.target_file_size = 1 << 20;
  task.output_chunk_size = 2 << 20;
  task.output_format = 1;
  task.block_size = 4096;
  task.bloom_bits_per_key = 10;

  CompactionTask parsed;
  ASSERT_TRUE(CompactionTask::Deserialize(task.Serialize(), &parsed));
  ASSERT_EQ(3u, parsed.inputs.size());
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(task.inputs[i].format, parsed.inputs[i].format);
    EXPECT_EQ(task.inputs[i].addr, parsed.inputs[i].addr);
    EXPECT_EQ(task.inputs[i].start_off, parsed.inputs[i].start_off);
    EXPECT_EQ(task.inputs[i].end_off, parsed.inputs[i].end_off);
    EXPECT_EQ(task.inputs[i].index_blob, parsed.inputs[i].index_blob);
  }
  EXPECT_EQ(12345u, parsed.smallest_snapshot);
  EXPECT_TRUE(parsed.drop_tombstones);
  EXPECT_EQ(task.target_file_size, parsed.target_file_size);
  EXPECT_EQ(task.output_chunk_size, parsed.output_chunk_size);
}

TEST(CompactionProtoTest, ResultRoundTrip) {
  CompactionResult result;
  CompactionOutput out;
  out.chunk.addr = 0xdead000;
  out.chunk.size = 4 << 20;
  out.chunk.rkey = 77;
  out.chunk.owner_node = 1;
  out.data_len = 12345;
  out.num_entries = 99;
  out.smallest.DecodeFrom(IKey(UKey(1), 5));
  out.largest.DecodeFrom(IKey(UKey(9), 2));
  out.index_blob = "indexbytes";
  result.outputs.push_back(out);

  CompactionResult parsed;
  ASSERT_TRUE(CompactionResult::Deserialize(result.Serialize(), &parsed));
  ASSERT_EQ(1u, parsed.outputs.size());
  EXPECT_EQ(out.chunk.addr, parsed.outputs[0].chunk.addr);
  EXPECT_EQ(out.chunk.rkey, parsed.outputs[0].chunk.rkey);
  EXPECT_EQ(out.data_len, parsed.outputs[0].data_len);
  EXPECT_EQ(out.index_blob, parsed.outputs[0].index_blob);
  EXPECT_EQ(IKey(UKey(1), 5),
            parsed.outputs[0].smallest.Encode().ToString());
}

TEST(CompactionProtoTest, DeserializeRejectsTruncation) {
  CompactionTask task;
  CompactionInput in;
  in.addr = 1;
  in.end_off = 10;
  task.inputs.push_back(in);
  std::string wire = task.Serialize();
  for (size_t cut = 1; cut + 1 < wire.size(); cut += 3) {
    CompactionTask parsed;
    EXPECT_FALSE(CompactionTask::Deserialize(
        Slice(wire.data(), wire.size() - cut), &parsed));
  }
}

// --- MergeAndBuild drop rules ------------------------------------------------

class MergeTest : public ::testing::Test {
 protected:
  // Builds a byte table in local memory from (ikey, value) pairs.
  struct LocalTable {
    std::string storage;
    uint64_t data_len = 0;
  };

  LocalTable Build(const std::vector<std::pair<std::string, std::string>>&
                       entries) {
    LocalTable table;
    table.storage.resize(1 << 20);
    LocalMemorySink sink(table.storage.data(), table.storage.size());
    BloomFilterPolicy bloom(10);
    auto builder = NewByteTableBuilder(&bloom, &sink);
    for (const auto& [k, v] : entries) {
      EXPECT_TRUE(builder->Add(k, v).ok());
    }
    TableBuildResult result;
    EXPECT_TRUE(builder->Finish(&result).ok());
    table.data_len = result.data_len;
    return table;
  }

  // Runs MergeAndBuild over local tables and returns the surviving
  // (user key, seq, type, value) entries.
  struct Survivor {
    std::string user_key;
    SequenceNumber seq;
    ValueType type;
    std::string value;
  };

  std::vector<Survivor> Merge(const std::vector<LocalTable*>& tables,
                              uint64_t smallest_snapshot,
                              bool drop_tombstones,
                              uint64_t target_file_size = 1 << 20,
                              std::vector<CompactionOutput>* outs = nullptr) {
    InternalKeyComparator icmp(BytewiseComparator());
    BloomFilterPolicy bloom(10);
    std::vector<Iterator*> children;
    for (LocalTable* t : tables) {
      children.push_back(
          NewLocalByteTableIterator(t->storage.data(), t->data_len, icmp));
    }
    Iterator* merged = NewMergingIterator(&icmp, children.data(),
                                          static_cast<int>(children.size()));
    std::vector<std::unique_ptr<std::string>> outputs_storage;
    std::vector<CompactionOutput> outputs;
    auto new_output = [&](const Slice&, remote::RemoteChunk* chunk,
                          std::unique_ptr<TableSink>* sink) -> Status {
      outputs_storage.push_back(std::make_unique<std::string>(2 << 20, '\0'));
      chunk->addr =
          reinterpret_cast<uint64_t>(outputs_storage.back()->data());
      chunk->size = outputs_storage.back()->size();
      *sink = std::make_unique<LocalMemorySink>(
          outputs_storage.back()->data(), outputs_storage.back()->size());
      return Status::OK();
    };
    Status s = MergeAndBuild(nullptr, merged, icmp, bloom,
                             smallest_snapshot, drop_tombstones,
                             target_file_size,
                             TableFormat::kByteAddressable, 4096, new_output,
                             &outputs);
    EXPECT_TRUE(s.ok()) << s.ToString();

    std::vector<Survivor> survivors;
    for (const CompactionOutput& out : outputs) {
      std::unique_ptr<Iterator> it(NewLocalByteTableIterator(
          reinterpret_cast<const char*>(out.chunk.addr), out.data_len,
          InternalKeyComparator(BytewiseComparator())));
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        ParsedInternalKey ikey;
        EXPECT_TRUE(ParseInternalKey(it->key(), &ikey));
        survivors.push_back(Survivor{ikey.user_key.ToString(),
                                     ikey.sequence, ikey.type,
                                     it->value().ToString()});
      }
    }
    if (outs != nullptr) *outs = outputs;
    return survivors;
  }
};

TEST_F(MergeTest, KeepsNewestVersionDropsShadowed) {
  LocalTable newer = Build({{IKey(UKey(1), 20), "new"}});
  LocalTable older = Build({{IKey(UKey(1), 10), "old"}});
  auto survivors =
      Merge({&newer, &older}, /*smallest_snapshot=*/100, false);
  ASSERT_EQ(1u, survivors.size());
  EXPECT_EQ(20u, survivors[0].seq);
  EXPECT_EQ("new", survivors[0].value);
}

TEST_F(MergeTest, SnapshotPreservesOldVersions) {
  LocalTable newer = Build({{IKey(UKey(1), 20), "new"}});
  LocalTable older = Build({{IKey(UKey(1), 10), "old"}});
  // A snapshot at 15 still needs the seq-10 version.
  auto survivors = Merge({&newer, &older}, /*smallest_snapshot=*/15, false);
  ASSERT_EQ(2u, survivors.size());
  EXPECT_EQ(20u, survivors[0].seq);
  EXPECT_EQ(10u, survivors[1].seq);
}

TEST_F(MergeTest, TombstonesDroppedOnlyAtBottom) {
  LocalTable del = Build({{IKey(UKey(1), 20, kTypeDeletion), ""}});
  LocalTable val = Build({{IKey(UKey(1), 10), "old"}});

  // Not bottommost: tombstone must survive (it may shadow deeper data).
  auto kept = Merge({&del, &val}, 100, /*drop_tombstones=*/false);
  ASSERT_EQ(1u, kept.size());
  EXPECT_EQ(kTypeDeletion, kept[0].type);

  // Bottommost: both the tombstone and everything it covers vanish.
  LocalTable del2 = Build({{IKey(UKey(1), 20, kTypeDeletion), ""}});
  LocalTable val2 = Build({{IKey(UKey(1), 10), "old"}});
  auto dropped = Merge({&del2, &val2}, 100, /*drop_tombstones=*/true);
  EXPECT_TRUE(dropped.empty());
}

TEST_F(MergeTest, CutsFilesAtTargetWithoutSplittingUserKeys) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 500; i++) {
    entries.emplace_back(IKey(UKey(i), 1), std::string(100, 'v'));
  }
  LocalTable t = Build(entries);
  std::vector<CompactionOutput> outputs;
  auto survivors =
      Merge({&t}, 100, false, /*target_file_size=*/8 << 10, &outputs);
  EXPECT_EQ(500u, survivors.size());
  EXPECT_GT(outputs.size(), 2u);
  // Output ranges must not overlap.
  InternalKeyComparator icmp(BytewiseComparator());
  for (size_t i = 1; i < outputs.size(); i++) {
    EXPECT_LT(icmp.Compare(outputs[i - 1].largest.Encode(),
                           outputs[i].smallest.Encode()),
              0);
  }
}

TEST_F(MergeTest, ManyTablesManyKeysMatchReferenceMerge) {
  // Property: merging K tables == applying them oldest-to-newest to a map.
  Random rnd(99);
  std::map<std::string, std::pair<SequenceNumber, std::string>> model;
  std::vector<LocalTable> tables;
  SequenceNumber seq = 1;
  for (int t = 0; t < 6; t++) {
    std::vector<std::pair<std::string, std::string>> entries;
    std::map<std::string, std::pair<std::string, SequenceNumber>> in_table;
    for (int i = 0; i < 200; i++) {
      std::string k = UKey(rnd.Uniform(300));
      std::string v = "t" + std::to_string(t) + "-" + std::to_string(i);
      in_table[k] = {v, seq++};
    }
    for (auto& [k, vs] : in_table) {
      entries.emplace_back(IKey(k, vs.second), vs.first);
      auto it = model.find(k);
      if (it == model.end() || it->second.first < vs.second) {
        model[k] = {vs.second, vs.first};
      }
    }
    tables.push_back(Build(entries));
  }
  std::vector<LocalTable*> ptrs;
  for (auto& t : tables) ptrs.push_back(&t);
  auto survivors = Merge(ptrs, /*smallest_snapshot=*/seq, false);
  ASSERT_EQ(model.size(), survivors.size());
  size_t i = 0;
  for (const auto& [k, vs] : model) {
    EXPECT_EQ(k, survivors[i].user_key);
    EXPECT_EQ(vs.first, survivors[i].seq);
    EXPECT_EQ(vs.second, survivors[i].value);
    i++;
  }
}

// --- Near-data executor over the RPC path ------------------------------------

TEST(NearDataExecutorTest, CompactsViaMemoryNodeService) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 2ull << 30);
  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 2);
    service.Start();
    remote::RpcClient client(&fabric, compute, service.rpc_server());

    // Stage two byte tables directly in memory-node DRAM.
    InternalKeyComparator icmp(BytewiseComparator());
    BloomFilterPolicy bloom(10);
    auto stage = [&](int offset_keys,
                     SequenceNumber seq) -> std::pair<uint64_t, uint64_t> {
      char* base = memory->AllocDram(1 << 20);
      LocalMemorySink sink(base, 1 << 20);
      auto builder = NewByteTableBuilder(&bloom, &sink);
      for (int i = 0; i < 300; i++) {
        EXPECT_TRUE(builder
                        ->Add(IKey(UKey(offset_keys + i), seq),
                              "v" + std::to_string(seq))
                        .ok());
      }
      TableBuildResult result;
      EXPECT_TRUE(builder->Finish(&result).ok());
      return {reinterpret_cast<uint64_t>(base), result.data_len};
    };
    auto [addr1, len1] = stage(0, 10);    // Keys 0..299 @ seq 10.
    auto [addr2, len2] = stage(150, 5);   // Keys 150..449 @ seq 5.

    CompactionTask task;
    CompactionInput in1{1, addr1, 0, len1, ""};
    CompactionInput in2{1, addr2, 0, len2, ""};
    task.inputs = {in1, in2};
    task.smallest_snapshot = 100;
    task.drop_tombstones = true;
    task.target_file_size = 4 << 20;
    task.output_chunk_size = 6 << 20;
    task.output_format = 1;
    task.bloom_bits_per_key = 10;

    std::string reply;
    ASSERT_TRUE(client
                    .CallWithWakeup(remote::RpcType::kCompaction,
                                    task.Serialize(), &reply)
                    .ok());
    ASSERT_FALSE(reply.empty());
    ASSERT_EQ(1, reply[0]) << "compaction failed: "
                           << reply.substr(1);
    CompactionResult result;
    ASSERT_TRUE(CompactionResult::Deserialize(
        Slice(reply.data() + 1, reply.size() - 1), &result));
    ASSERT_EQ(1u, result.outputs.size());
    const CompactionOutput& out = result.outputs[0];
    // 450 distinct keys; overlapping 150 deduplicated to the newer version.
    EXPECT_EQ(450u, out.num_entries);
    EXPECT_EQ(memory->id(), out.chunk.owner_node);

    // Verify the merged contents straight out of memory-node DRAM.
    std::unique_ptr<Iterator> it(NewLocalByteTableIterator(
        reinterpret_cast<const char*>(out.chunk.addr), out.data_len,
        InternalKeyComparator(BytewiseComparator())));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ParsedInternalKey ikey;
      ASSERT_TRUE(ParseInternalKey(it->key(), &ikey));
      uint64_t k = std::stoull(ikey.user_key.ToString());
      if (k < 150) {
        EXPECT_EQ("v10", it->value().ToString());
      } else if (k < 300) {
        EXPECT_EQ(10u, ikey.sequence) << "newer version must win";
      } else {
        EXPECT_EQ("v5", it->value().ToString());
      }
      count++;
    }
    EXPECT_EQ(450, count);
    service.Stop();
  });
}

TEST(NearDataExecutorTest, SubRangeSlicesCompactIndependently) {
  // The sub-compaction contract: disjoint record-aligned slices of the
  // same inputs produce disjoint outputs covering everything.
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* memory = fabric.AddNode("memory", 4, 1ull << 30);
  env.Run(0, [&] {
    InternalKeyComparator icmp(BytewiseComparator());
    BloomFilterPolicy bloom(10);
    char* base = memory->AllocDram(1 << 20);
    LocalMemorySink sink(base, 1 << 20);
    auto builder = NewByteTableBuilder(&bloom, &sink);
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(builder->Add(IKey(UKey(i), 3), "x").ok());
    }
    TableBuildResult built;
    ASSERT_TRUE(builder->Finish(&built).ok());
    auto index = TableIndex::Parse(built.index_blob);

    auto offset_of = [&](int key) {
      size_t pos = index->Find(icmp, IKey(UKey(key), kMaxSequenceNumber));
      return pos >= index->num_entries() ? built.data_len
                                         : index->entry(pos).offset;
    };

    int total = 0;
    std::vector<char> out_backing(4 << 20);
    size_t out_used = 0;
    for (auto [lo, hi] : std::vector<std::pair<int, int>>{
             {0, 100}, {100, 250}, {250, 400}}) {
      CompactionTask task;
      CompactionInput in;
      in.format = 1;
      in.addr = reinterpret_cast<uint64_t>(base);
      in.start_off = offset_of(lo);
      in.end_off = offset_of(hi);
      task.inputs.push_back(in);
      task.smallest_snapshot = 100;
      task.target_file_size = 4 << 20;
      task.output_chunk_size = 1 << 20;
      task.output_format = 1;
      task.bloom_bits_per_key = 10;

      auto alloc = [&]() {
        remote::RemoteChunk c;
        c.addr = reinterpret_cast<uint64_t>(out_backing.data()) + out_used;
        c.size = 1 << 20;
        out_used += 1 << 20;
        c.owner_node = memory->id();
        return c;
      };
      auto free_chunk = [](const remote::RemoteChunk&) {};
      CompactionResult result;
      ASSERT_TRUE(ExecuteCompactionTask(&env, task, icmp, alloc, free_chunk,
                                        memory->id(), &result)
                      .ok());
      for (const auto& out : result.outputs) {
        total += static_cast<int>(out.num_entries);
      }
    }
    EXPECT_EQ(400, total);
  });
}

}  // namespace
}  // namespace dlsm
