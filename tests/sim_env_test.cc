// Tests for the execution environments: the real-time StdEnv and the
// virtual-time SimEnv scheduler that stands in for the paper's testbed.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/sim/env.h"
#include "src/sim/sim_env.h"
#include "src/sim/thread_pool.h"

namespace dlsm {
namespace {

TEST(StdEnvTest, TimeAdvances) {
  Env* env = Env::Std();
  EXPECT_FALSE(env->is_simulated());
  uint64_t a = env->NowNanos();
  env->SleepNanos(1000000);  // 1 ms.
  uint64_t b = env->NowNanos();
  EXPECT_GE(b - a, 900000u);
}

TEST(StdEnvTest, ThreadsAndJoin) {
  Env* env = Env::Std();
  std::atomic<int> counter{0};
  std::vector<ThreadHandle> handles;
  for (int i = 0; i < 4; i++) {
    handles.push_back(env->StartThread(0, "worker", [&] { counter++; }));
  }
  for (ThreadHandle h : handles) env->Join(h);
  EXPECT_EQ(4, counter.load());
}

TEST(StdEnvTest, MutexAndCondVar) {
  Env* env = Env::Std();
  Mutex mu(env);
  CondVar cv(env, &mu);
  bool flag = false;
  ThreadHandle h = env->StartThread(0, "setter", [&] {
    MutexLock l(&mu);
    flag = true;
    cv.Signal();
  });
  {
    MutexLock l(&mu);
    while (!flag) cv.Wait();
  }
  env->Join(h);
  EXPECT_TRUE(flag);
}

TEST(StdEnvTest, TimedWaitTimesOut) {
  Env* env = Env::Std();
  Mutex mu(env);
  CondVar cv(env, &mu);
  MutexLock l(&mu);
  EXPECT_TRUE(cv.TimedWait(1000000));  // 1 ms, nobody signals.
}

TEST(SimEnvTest, VirtualSleepIsFree) {
  // Sleeping ten virtual seconds must not take ten real seconds.
  SimEnv env;
  uint64_t virtual_elapsed = 0;
  env.Run(0, [&] {
    uint64_t start = env.NowNanos();
    env.SleepNanos(10ull * 1000 * 1000 * 1000);
    virtual_elapsed = env.NowNanos() - start;
  });
  EXPECT_GE(virtual_elapsed, 10ull * 1000 * 1000 * 1000);
}

TEST(SimEnvTest, AdvanceTo) {
  SimEnv env;
  env.Run(0, [&] {
    env.AdvanceTo(5000000);
    EXPECT_GE(env.NowNanos(), 5000000u);
    uint64_t now = env.NowNanos();
    env.AdvanceTo(100);  // In the past: no-op.
    EXPECT_GE(env.NowNanos(), now);
  });
}

TEST(SimEnvTest, CpuWorkAdvancesVirtualTime) {
  SimEnv env;
  uint64_t elapsed = 0;
  env.Run(0, [&] {
    uint64_t start = env.NowNanos();
    // Burn some real CPU.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 2000000; i++) sink += i;
    env.MaybeYield();
    elapsed = env.NowNanos() - start;
  });
  EXPECT_GT(elapsed, 0u);
}

TEST(SimEnvTest, ThreadsJoinWithCausality) {
  SimEnv env;
  env.Run(0, [&] {
    ThreadHandle h = env.StartThread(0, "sleeper", [&] {
      env.SleepNanos(1000000000);  // 1 virtual second.
    });
    env.Join(h);
    // Joiner's clock must have advanced past the sleeper's.
    EXPECT_GE(env.NowNanos(), 1000000000u);
  });
}

TEST(SimEnvTest, MutexHandoffTransfersTime) {
  SimEnv env;
  env.Run(0, [&] {
    Mutex mu(&env);
    mu.Lock();
    ThreadHandle h = env.StartThread(0, "waiter", [&] {
      mu.Lock();
      // We block until the root releases at t >= 2s; causality requires our
      // clock to be at least that.
      EXPECT_GE(env.NowNanos(), 2000000000u);
      mu.Unlock();
    });
    env.SleepNanos(2000000000);
    mu.Unlock();
    env.Join(h);
  });
}

TEST(SimEnvTest, CondVarSignalWakes) {
  SimEnv env;
  env.Run(0, [&] {
    Mutex mu(&env);
    CondVar cv(&env, &mu);
    bool flag = false;
    ThreadHandle h = env.StartThread(0, "waiter", [&] {
      MutexLock l(&mu);
      while (!flag) cv.Wait();
      EXPECT_GE(env.NowNanos(), 3000000000u);
    });
    env.SleepNanos(3000000000);
    {
      MutexLock l(&mu);
      flag = true;
      cv.Signal();
    }
    env.Join(h);
  });
}

TEST(SimEnvTest, TimedWaitExpires) {
  SimEnv env;
  env.Run(0, [&] {
    Mutex mu(&env);
    CondVar cv(&env, &mu);
    uint64_t start = env.NowNanos();
    MutexLock l(&mu);
    bool timed_out = cv.TimedWait(500000000);  // 0.5 virtual seconds.
    EXPECT_TRUE(timed_out);
    EXPECT_GE(env.NowNanos() - start, 500000000u);
  });
}

TEST(SimEnvTest, TimedWaitSignaledBeforeDeadline) {
  SimEnv env;
  env.Run(0, [&] {
    Mutex mu(&env);
    CondVar cv(&env, &mu);
    ThreadHandle h = env.StartThread(0, "signaler", [&] {
      env.SleepNanos(1000000);  // 1 virtual ms.
      MutexLock l(&mu);
      cv.Signal();
    });
    {
      MutexLock l(&mu);
      bool timed_out = cv.TimedWait(1000000000);  // 1 virtual second.
      EXPECT_FALSE(timed_out);
      EXPECT_LT(env.NowNanos(), 900000000u);
    }
    env.Join(h);
  });
}

TEST(SimEnvTest, BarrierSynchronizesClocks) {
  SimEnv env;
  env.Run(0, [&] {
    Barrier barrier(&env, 3);
    std::vector<uint64_t> after(3);
    std::vector<ThreadHandle> hs;
    for (int i = 0; i < 2; i++) {
      hs.push_back(env.StartThread(0, "p", [&, i] {
        env.SleepNanos((i + 1) * 1000000000ull);
        barrier.Arrive();
        after[i] = env.NowNanos();
      }));
    }
    barrier.Arrive();
    after[2] = env.NowNanos();
    for (ThreadHandle h : hs) env.Join(h);
    // Everyone leaves at >= the slowest arriver's time (2 virtual seconds).
    for (uint64_t t : after) EXPECT_GE(t, 2000000000u);
  });
}

TEST(SimEnvTest, ProcessorSharingScalesCpuCost) {
  // Two CPU-bound workloads on a 1-core node should cost roughly twice the
  // virtual time of the same workloads on a 2-core node.
  auto run_with_cores = [](int cores) {
    SimEnv env;
    uint64_t elapsed = 0;
    int node = env.RegisterNode("n", cores);
    env.Run(0, [&] {
      Barrier barrier(&env, 3);
      auto work = [&] {
        barrier.Arrive();
        volatile uint64_t sink = 0;
        for (int r = 0; r < 50; r++) {
          for (int i = 0; i < 100000; i++) sink += i;
          env.MaybeYield();
        }
        barrier.Arrive();
      };
      ThreadHandle h1 = env.StartThread(node, "w1", work);
      ThreadHandle h2 = env.StartThread(node, "w2", work);
      barrier.Arrive();
      uint64_t start = env.NowNanos();
      barrier.Arrive();
      elapsed = env.NowNanos() - start;
      env.Join(h1);
      env.Join(h2);
    });
    return elapsed;
  };
  uint64_t one_core = run_with_cores(1);
  uint64_t two_cores = run_with_cores(2);
  EXPECT_GT(one_core, two_cores * 3 / 2)
      << "1-core: " << one_core << " 2-core: " << two_cores;
}

TEST(SimEnvTest, ManyThreadsProgress) {
  SimEnv env;
  std::atomic<int> done{0};
  env.Run(0, [&] {
    std::vector<ThreadHandle> hs;
    for (int i = 0; i < 32; i++) {
      hs.push_back(env.StartThread(0, "t", [&, i] {
        env.SleepNanos((i % 7 + 1) * 1000000ull);
        done++;
      }));
    }
    for (ThreadHandle h : hs) env.Join(h);
  });
  EXPECT_EQ(32, done.load());
}

TEST(SimEnvTest, YieldToOthersLetsLaggardsRun) {
  SimEnv env;
  env.Run(0, [&] {
    std::atomic<bool> flag{false};
    ThreadHandle h = env.StartThread(0, "setter", [&] {
      env.SleepNanos(1000000);
      flag = true;
    });
    int spins = 0;
    while (!flag.load()) {
      env.YieldToOthers();
      ASSERT_LT(++spins, 1000000);
    }
    env.Join(h);
    EXPECT_TRUE(flag.load());
  });
}

TEST(ThreadPoolTest, RunsTasksStdEnv) {
  Env* env = Env::Std();
  ThreadPool pool(env, 0, 4, "pool");
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    pool.Submit([&] { count++; });
  }
  pool.WaitIdle();
  EXPECT_EQ(100, count.load());
}

TEST(ThreadPoolTest, RunsTasksSimEnv) {
  SimEnv env;
  std::atomic<int> count{0};
  env.Run(0, [&] {
    ThreadPool pool(&env, 0, 4, "pool");
    for (int i = 0; i < 100; i++) {
      pool.Submit([&] {
        env.SleepNanos(1000);
        count++;
      });
    }
    pool.WaitIdle();
    EXPECT_EQ(100, count.load());
  });
}

TEST(ThreadPoolTest, WaitIdleWaitsForInFlightTasks) {
  SimEnv env;
  env.Run(0, [&] {
    ThreadPool pool(&env, 0, 2, "pool");
    std::atomic<int> finished{0};
    for (int i = 0; i < 8; i++) {
      pool.Submit([&] {
        env.SleepNanos(50000000);
        finished++;
      });
    }
    pool.WaitIdle();
    EXPECT_EQ(8, finished.load());
  });
}

}  // namespace
}  // namespace dlsm
