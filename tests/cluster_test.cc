// Tests for the multi-compute / multi-memory deployment (paper Sec. IX).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "src/core/cluster.h"
#include "src/core/shard.h"
#include "src/sim/sim_env.h"
#include "src/util/random.h"

namespace dlsm {
namespace {

std::string UKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

void RunClusterTest(int computes, int memories, int lambda,
                    const std::function<void(Cluster*, Env*)>& body) {
  SimEnv env;
  env.Run(0, [&] {
    ClusterTopology topology;
    topology.compute_nodes = computes;
    topology.memory_nodes = memories;
    topology.shards_per_compute = lambda;
    topology.compaction_workers_per_memory = 2;
    topology.memory_dram = 4ull << 30;

    Options options;
    options.env = &env;
    options.memtable_size = 256 << 10;
    options.estimated_entry_size = 128;
    options.sstable_size = 256 << 10;
    options.flush_region_size = 128 << 20;
    options.flush_threads = 2;
    options.compaction_scheduler_threads = 1;

    int total = computes * lambda;
    std::unique_ptr<Cluster> cluster;
    Status s = Cluster::Create(
        &env, options, topology,
        ShardedDB::UniformDecimalBoundaries(total, 16), &cluster);
    ASSERT_TRUE(s.ok()) << s.ToString();
    body(cluster.get(), &env);
    ASSERT_TRUE(cluster->Close().ok());
  });
}

TEST(ClusterTest, RoutesKeysToCorrectShards) {
  RunClusterTest(2, 2, 4, [](Cluster* cluster, Env*) {
    EXPECT_EQ(8, cluster->num_shards());
    // Keys spread across the decimal space land in increasing shards.
    int prev = -1;
    for (int i = 0; i < 8; i++) {
      uint64_t k = i * 1200000000000000ull + 1;
      int shard = cluster->ShardForKey(UKey(k));
      EXPECT_GE(shard, prev);
      prev = shard;
    }
    // Shard ownership follows Fig. 5: shard s on compute s/lambda.
    EXPECT_EQ(0, cluster->ComputeOfShard(0));
    EXPECT_EQ(0, cluster->ComputeOfShard(3));
    EXPECT_EQ(1, cluster->ComputeOfShard(4));
    EXPECT_EQ(1, cluster->ComputeOfShard(7));
  });
}

TEST(ClusterTest, WritesAndReadsAcrossAllShards) {
  RunClusterTest(2, 2, 2, [](Cluster* cluster, Env*) {
    const uint64_t kKeys = 3000;
    const uint64_t kStride = 3000000000000ull;
    for (uint64_t i = 0; i < kKeys; i++) {
      ASSERT_TRUE(
          cluster->Put(UKey(i * kStride), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(cluster->Flush().ok());
    ASSERT_TRUE(cluster->WaitForBackgroundIdle().ok());
    for (uint64_t i = 0; i < kKeys; i += 7) {
      std::string value;
      ASSERT_TRUE(cluster->Get(UKey(i * kStride), &value).ok())
          << "key " << i;
      EXPECT_EQ("v" + std::to_string(i), value);
    }
    // Every shard must have received some data.
    for (int s = 0; s < cluster->num_shards(); s++) {
      DbStats stats = cluster->shard_db(s)->GetStats();
      EXPECT_GT(stats.writes, 0u) << "shard " << s << " got no writes";
    }
  });
}

TEST(ClusterTest, ConcurrentClientsOnTheirOwnComputeNodes) {
  RunClusterTest(2, 1, 2, [](Cluster* cluster, Env* env) {
    constexpr uint64_t kPerNode = 2000;
    std::atomic<int> failures{0};
    Barrier done(env, 3);
    for (int c = 0; c < 2; c++) {
      uint64_t lo = c * 5000000000000000ull;
      env->StartThread(cluster->compute_node(c)->env_node(), "client",
                       [&, c, lo] {
          Random rnd(c);
          for (uint64_t i = 0; i < kPerNode; i++) {
            uint64_t k = lo + i * 1000000000ull;
            if (!cluster->Put(UKey(k), "x").ok()) failures++;
          }
          done.Arrive();
        });
    }
    done.Arrive();
    EXPECT_EQ(0, failures.load());
    ASSERT_TRUE(cluster->Flush().ok());
    ASSERT_TRUE(cluster->WaitForBackgroundIdle().ok());
    std::string value;
    EXPECT_TRUE(cluster->Get(UKey(0), &value).ok());
    EXPECT_TRUE(
        cluster->Get(UKey(5000000000000000ull + 1000000000ull), &value).ok());
  });
}

TEST(ClusterTest, MultiGetFansOutToOwningShards) {
  RunClusterTest(2, 2, 2, [](Cluster* cluster, Env*) {
    const uint64_t kKeys = 2000;
    const uint64_t kStride = 4500000000000ull;  // Spans all four shards.
    for (uint64_t i = 0; i < kKeys; i++) {
      ASSERT_TRUE(
          cluster->Put(UKey(i * kStride), "v" + std::to_string(i)).ok());
    }
    for (uint64_t i = 0; i < kKeys; i += 5) {
      ASSERT_TRUE(cluster
                      ->shard_db(cluster->ShardForKey(UKey(i * kStride)))
                      ->Delete(WriteOptions(), UKey(i * kStride))
                      .ok());
    }
    ASSERT_TRUE(cluster->Flush().ok());
    ASSERT_TRUE(cluster->WaitForBackgroundIdle().ok());

    // Shard-interleaved batch with absent keys mixed in; answers must
    // match per-key Gets routed shard by shard.
    std::vector<std::string> keys;
    for (int i = static_cast<int>(kKeys) + 30; i >= 0; i -= 3) {
      keys.push_back(UKey(static_cast<uint64_t>(i) * kStride));
    }
    std::vector<Slice> slices(keys.begin(), keys.end());
    std::vector<std::string> values;
    std::vector<Status> statuses;
    cluster->MultiGet(ReadOptions(), slices, &values, &statuses);
    ASSERT_EQ(keys.size(), values.size());
    for (size_t i = 0; i < keys.size(); i++) {
      std::string serial_value;
      Status serial = cluster->Get(keys[i], &serial_value);
      EXPECT_EQ(serial.ok(), statuses[i].ok()) << "key " << keys[i];
      EXPECT_EQ(serial.IsNotFound(), statuses[i].IsNotFound())
          << "key " << keys[i];
      if (serial.ok()) {
        EXPECT_EQ(serial_value, values[i]) << "key " << keys[i];
      }
    }
  });
}

TEST(ClusterTest, SingleNodeDegenerateTopologyWorks) {
  RunClusterTest(1, 1, 1, [](Cluster* cluster, Env*) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(cluster->Put(UKey(i), "v").ok());
    }
    std::string value;
    ASSERT_TRUE(cluster->Get(UKey(250), &value).ok());
    EXPECT_EQ("v", value);
  });
}

}  // namespace
}  // namespace dlsm
