// Tests for the baseline systems: the Sherman-style B+-tree and the
// RocksDB-RDMA / Nova-LSM engine presets.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>

#include "src/baselines/presets.h"
#include "src/baselines/sherman.h"
#include "tests/dlsm_test_util.h"

namespace dlsm {
namespace baselines {
namespace {

using test::TestKey;
using test::TestValue;

void RunShermanTest(const std::function<void(DB*, Env*)>& body,
                    size_t leaf_size = 1024) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 2ull << 30);
  env.Run(0, [&] {
    ShermanOptions options;
    options.env = &env;
    options.leaf_size = leaf_size;
    options.leaf_region_size = 512ull << 20;
    DB* raw = nullptr;
    ASSERT_TRUE(
        ShermanDB::Open(options, &fabric, compute, memory, &raw).ok());
    std::unique_ptr<DB> db(raw);
    body(db.get(), &env);
    ASSERT_TRUE(db->Close().ok());
  });
}

TEST(ShermanTest, PutGetRoundTrip) {
  RunShermanTest([](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), "alpha", "1").ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "beta", "2").ok());
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), "alpha", &value).ok());
    EXPECT_EQ("1", value);
    EXPECT_TRUE(db->Get(ReadOptions(), "gamma", &value).IsNotFound());
  });
}

TEST(ShermanTest, OverwriteAndDelete) {
  RunShermanTest([](DB* db, Env*) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v1").ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "k", "v2").ok());
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
    EXPECT_EQ("v2", value);
    ASSERT_TRUE(db->Delete(WriteOptions(), "k").ok());
    EXPECT_TRUE(db->Get(ReadOptions(), "k", &value).IsNotFound());
  });
}

TEST(ShermanTest, SplitsPreserveAllKeys) {
  RunShermanTest([](DB* db, Env*) {
    // 64-byte values in 1 KB leaves: plenty of splits.
    const int kN = 2000;
    for (int i = 0; i < kN; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i * 7 % kN),
                          TestValue(i))
                      .ok());
    }
    auto* sherman = static_cast<ShermanDB*>(db);
    EXPECT_GT(sherman->num_leaves(), 10u);
    for (int i = 0; i < kN; i++) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), TestKey(i), &value).ok())
          << "lost key " << i;
    }
  });
}

TEST(ShermanTest, MatchesReferenceModel) {
  RunShermanTest([](DB* db, Env*) {
    std::map<std::string, std::string> model;
    Random rnd(17);
    for (int op = 0; op < 4000; op++) {
      std::string key = TestKey(rnd.Uniform(300));
      if (rnd.OneIn(4)) {
        model.erase(key);
        ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      } else {
        std::string value = TestValue(rnd.Next() % 10000);
        model[key] = value;
        ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      }
    }
    for (int i = 0; i < 300; i++) {
      std::string key = TestKey(i), value;
      Status s = db->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key;
        EXPECT_EQ(it->second, value);
      }
    }
  });
}

TEST(ShermanTest, IteratorScansLeavesInOrder) {
  RunShermanTest([](DB* db, Env*) {
    const int kN = 800;
    for (int i = kN - 1; i >= 0; i--) {
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ASSERT_EQ(TestKey(count), it->key().ToString());
      count++;
    }
    EXPECT_EQ(kN, count);

    it->Seek(TestKey(399));
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(TestKey(399), it->key().ToString());
  });
}

TEST(ShermanTest, ConcurrentWritersWithLeafLocks) {
  RunShermanTest([](DB* db, Env* env) {
    constexpr int kThreads = 6;
    constexpr int kPerThread = 250;
    std::atomic<int> failures{0};
    std::vector<ThreadHandle> hs;
    for (int t = 0; t < kThreads; t++) {
      hs.push_back(env->StartThread(0, "writer", [&, t] {
        for (int i = 0; i < kPerThread; i++) {
          uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
          if (!db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok()) {
            failures++;
          }
        }
      }));
    }
    for (ThreadHandle h : hs) env->Join(h);
    ASSERT_EQ(0, failures.load());
    for (int t = 0; t < kThreads; t++) {
      for (int i = 0; i < kPerThread; i += 7) {
        uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
        std::string value;
        ASSERT_TRUE(db->Get(ReadOptions(), TestKey(k), &value).ok())
            << "lost " << k;
        EXPECT_EQ(TestValue(k), value);
      }
    }
  });
}

TEST(ShermanTest, RejectsOversizedEntries) {
  RunShermanTest([](DB* db, Env*) {
    std::string huge(2000, 'x');
    EXPECT_TRUE(
        db->Put(WriteOptions(), "k", huge).IsInvalidArgument());
  });
}

// --- Engine presets ----------------------------------------------------------

void CheckEngineCorrect(const Options& tuned) {
  test::RunDbTest(
      [&](Options* options) {
        Env* env = options->env;
        Options base = *options;
        *options = tuned;
        options->env = env;
        // Keep the scaled-down test sizes.
        options->memtable_size = base.memtable_size;
        options->estimated_entry_size = base.estimated_entry_size;
        options->sstable_size = base.sstable_size;
        options->max_immutables = base.max_immutables;
        options->flush_threads = base.flush_threads;
        options->compaction_scheduler_threads =
            base.compaction_scheduler_threads;
        options->flush_region_size = base.flush_region_size;
        options->flush_buffer_size = base.flush_buffer_size;
        options->scan_prefetch_size = base.scan_prefetch_size;
        if (options->shards > 8) options->shards = 4;  // Test scale.
      },
      [&](DB* db, Env*) {
        // Uncached-index presets reject async probing outright (see
        // table_reader.h), so read synchronously there.
        ReadOptions ro;
        ro.async_reads = tuned.cache_index_blocks;
        const int kN = 2500;
        for (int i = 0; i < kN; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        for (int i = 0; i < kN; i += 13) {
          std::string value;
          ASSERT_TRUE(db->Get(ro, TestKey(i), &value).ok()) << "key " << i;
          EXPECT_EQ(TestValue(i), value);
        }
        std::unique_ptr<Iterator> it(db->NewIterator(ro));
        int count = 0;
        for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
        EXPECT_EQ(kN, count);
      });
}

TEST(BaselinePresetsTest, RocksDbRdma8K) {
  CheckEngineCorrect(RocksDbRdmaOptions(nullptr, 8192));
}

TEST(BaselinePresetsTest, RocksDbRdma2K) {
  CheckEngineCorrect(RocksDbRdmaOptions(nullptr, 2048));
}

TEST(BaselinePresetsTest, MemoryRocksDbRdma) {
  CheckEngineCorrect(MemoryRocksDbRdmaOptions(nullptr, 128));
}

TEST(BaselinePresetsTest, NovaLsm) {
  CheckEngineCorrect(NovaLsmOptions(nullptr, 4));
}

TEST(BaselinePresetsTest, WriterQueueHandlesConcurrency) {
  test::RunDbTest(
      [](Options* options) {
        options->write_path = WritePath::kWriterQueue;
        options->switch_policy = MemTableSwitchPolicy::kDoubleCheckedSize;
      },
      [](DB* db, Env* env) {
        constexpr int kThreads = 8;
        constexpr int kPerThread = 400;
        std::vector<ThreadHandle> hs;
        for (int t = 0; t < kThreads; t++) {
          hs.push_back(env->StartThread(0, "writer", [&, t] {
            for (int i = 0; i < kPerThread; i++) {
              uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
              ASSERT_TRUE(
                  db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
            }
          }));
        }
        for (ThreadHandle h : hs) env->Join(h);
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        for (int t = 0; t < kThreads; t++) {
          for (int i = 0; i < kPerThread; i += 29) {
            uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
            std::string value;
            ASSERT_TRUE(db->Get(ReadOptions(), TestKey(k), &value).ok());
          }
        }
      });
}

}  // namespace
}  // namespace baselines
}  // namespace dlsm
