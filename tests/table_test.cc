// Tests for SSTable machinery: index serialization, sinks (local, async
// pipelined, sync), builders and readers in both layouts, point lookups
// and iterators, local iterators used by near-data compaction.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/core/file_meta.h"
#include "src/core/options.h"
#include "src/core/table_builder.h"
#include "src/core/table_index.h"
#include "src/core/table_reader.h"
#include "src/core/table_sink.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"
#include "src/util/random.h"

namespace dlsm {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq,
                 ValueType t = kTypeValue) {
  std::string out;
  AppendInternalKey(&out, ParsedInternalKey(user_key, seq, t));
  return out;
}

std::string UKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

// Sanitizer instrumentation inflates the measured host CPU that SimEnv
// charges into virtual time, so WRITE completions become "ready" before
// the next poll and the pipeline legitimately never holds a deferred
// handle. The in-flight-count assertions only hold at native speed; the
// data-integrity and gauge assertions hold everywhere.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

TEST(TableIndexTest, BuildParseRoundTrip) {
  TableIndex::Builder builder(TableIndex::kPerRecord);
  for (int i = 0; i < 100; i++) {
    builder.Add(IKey(UKey(i), 100 - i), i * 10, 42 + i);
  }
  builder.SetFilter("fake-filter-bytes");
  std::string blob = builder.Finish();

  auto index = TableIndex::Parse(blob);
  ASSERT_NE(nullptr, index);
  EXPECT_EQ(TableIndex::kPerRecord, index->kind());
  ASSERT_EQ(100u, index->num_entries());
  for (int i = 0; i < 100; i++) {
    TableIndex::Entry e = index->entry(i);
    EXPECT_EQ(IKey(UKey(i), 100 - i), e.key.ToString());
    EXPECT_EQ(static_cast<uint64_t>(i) * 10, e.offset);
    EXPECT_EQ(42u + i, e.length);
  }
}

TEST(TableIndexTest, FindReturnsFirstGreaterOrEqual) {
  InternalKeyComparator icmp(BytewiseComparator());
  TableIndex::Builder builder(TableIndex::kPerRecord);
  for (int i = 0; i < 50; i++) {
    builder.Add(IKey(UKey(i * 2), 7), i, 1);  // Even keys only.
  }
  auto index = TableIndex::Parse(builder.Finish());
  ASSERT_NE(nullptr, index);

  // Exact hit.
  EXPECT_EQ(5u, index->Find(icmp, IKey(UKey(10), kMaxSequenceNumber)));
  // Between keys: first greater.
  EXPECT_EQ(6u, index->Find(icmp, IKey(UKey(11), kMaxSequenceNumber)));
  // Before all.
  EXPECT_EQ(0u, index->Find(icmp, IKey(UKey(0), kMaxSequenceNumber)));
  // Past the end.
  EXPECT_EQ(50u, index->Find(icmp, IKey(UKey(1000), kMaxSequenceNumber)));
}

TEST(TableIndexTest, ParseRejectsGarbage) {
  EXPECT_EQ(nullptr, TableIndex::Parse(""));
  EXPECT_EQ(nullptr, TableIndex::Parse("\x07garbage"));
  std::string truncated;
  {
    TableIndex::Builder builder(TableIndex::kPerBlock);
    builder.Add(IKey(UKey(1), 1), 0, 100);
    truncated = builder.Finish();
  }
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(nullptr, TableIndex::Parse(truncated));
}

TEST(TableSinkTest, LocalMemorySinkBounds) {
  std::string storage(64, '\0');
  LocalMemorySink sink(storage.data(), 64);
  ASSERT_TRUE(sink.Append("0123456789", 10).ok());
  ASSERT_TRUE(sink.Append("abcdef", 6).ok());
  EXPECT_EQ(16u, sink.bytes_written());
  EXPECT_EQ("0123456789abcdef", storage.substr(0, 16));
  EXPECT_TRUE(sink.Append(std::string(100, 'x').data(), 100)
                  .IsOutOfMemory());
}

class TableSimTest : public ::testing::Test {
 protected:
  void RunSim(std::function<void(rdma::Fabric*, rdma::Node*, rdma::Node*,
                                 Env*)> body) {
    SimEnv env;
    rdma::Fabric fabric(&env);
    rdma::Node* compute = fabric.AddNode("compute", 24, 256 << 20);
    rdma::Node* memory = fabric.AddNode("memory", 4, 1ull << 30);
    env.Run(0, [&] { body(&fabric, compute, memory, &env); });
  }
};

TEST_F(TableSimTest, AsyncSinkStreamsAndRecyclesBuffers) {
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory,
            Env*) {
    char* region = memory->AllocDram(8 << 20);
    rdma::MemoryRegion mr = f->RegisterMemory(memory, region, 8 << 20);
    rdma::RdmaManager mgr(f, compute, memory);
    remote::RemoteChunk chunk{mr.addr, 8 << 20, mr.rkey, compute->id()};

    AsyncRemoteSink sink(&mgr, chunk, /*buffer_size=*/64 << 10,
                         /*buffer_count=*/3);
    std::string pattern;
    Random rnd(5);
    for (int i = 0; i < 4096; i++) {
      std::string piece(1024, static_cast<char>('a' + rnd.Uniform(26)));
      pattern += piece;
      ASSERT_TRUE(sink.Append(piece.data(), piece.size()).ok());
    }
    ASSERT_TRUE(sink.Finish().ok());
    EXPECT_EQ(pattern.size(), sink.bytes_written());
    // 4 MB through 3 x 64 KB buffers: recycling must have happened.
    EXPECT_GT(sink.recycled_buffers(), 10u);
    EXPECT_EQ(0, memcmp(region, pattern.data(), pattern.size()));
  });
}

TEST_F(TableSimTest, FlushPipelineDefersWritesAcrossSinks) {
  // Two outputs of one flush job share a FlushPipeline: each Finish()
  // hands its in-flight WRITE handles to the pipeline instead of draining,
  // and the single Drain() is the durability barrier for both.
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory,
            Env*) {
    char* region = memory->AllocDram(8 << 20);
    rdma::MemoryRegion mr = f->RegisterMemory(memory, region, 8 << 20);
    rdma::RdmaManager mgr(f, compute, memory);
    FlushPipeline pipeline(&mgr);

    const uint64_t kChunk = 4 << 20;
    std::string patterns[2];
    Random rnd(9);
    for (int out = 0; out < 2; out++) {
      remote::RemoteChunk chunk{mr.addr + out * kChunk, kChunk, mr.rkey,
                                compute->id()};
      AsyncRemoteSink sink(&mgr, chunk, /*buffer_size=*/64 << 10,
                           /*buffer_count=*/3, &pipeline);
      // Pieces that don't divide the buffer size, so the last buffer is
      // partial and its WRITE is posted by Finish() itself — a completion
      // can't beat the adoption no matter how virtual time advances.
      for (int i = 0; i < 1024; i++) {
        std::string piece(1000, static_cast<char>('a' + rnd.Uniform(26)));
        patterns[out] += piece;
        ASSERT_TRUE(sink.Append(piece.data(), piece.size()).ok());
      }
      ASSERT_TRUE(sink.Finish().ok());
      EXPECT_EQ(patterns[out].size(), sink.bytes_written());
    }
    // At least the tail WRITE of each sink must have been deferred.
    if (!kSanitizedBuild) EXPECT_GE(pipeline.deferred_writes(), 2u);

    ASSERT_TRUE(pipeline.Drain().ok());
    for (int out = 0; out < 2; out++) {
      EXPECT_EQ(0, memcmp(region + out * kChunk, patterns[out].data(),
                          patterns[out].size()))
          << "output " << out;
    }
    rdma::RdmaVerbStats stats = mgr.StatsSnapshot();
    EXPECT_EQ(0u, stats.outstanding);
    EXPECT_EQ(stats.posted, stats.completed);
  });
}

TEST_F(TableSimTest, FlushPipelineCancelsDeferredWritesOnTeardown) {
  // Error unwind / DB teardown destroys the pipeline without Drain(): the
  // deferred handles must cancel without blocking and without pinning the
  // outstanding-verbs gauge.
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory,
            Env*) {
    char* region = memory->AllocDram(8 << 20);
    rdma::MemoryRegion mr = f->RegisterMemory(memory, region, 8 << 20);
    rdma::RdmaManager mgr(f, compute, memory);
    {
      FlushPipeline pipeline(&mgr);
      remote::RemoteChunk chunk{mr.addr, 8 << 20, mr.rkey, compute->id()};
      AsyncRemoteSink sink(&mgr, chunk, /*buffer_size=*/64 << 10,
                           /*buffer_count=*/3, &pipeline);
      // A partial tail buffer: Finish() posts its WRITE and defers the
      // handle, so at least one deferred WRITE survives to the unwind.
      std::string piece((512 << 10) + (60 << 10), 'q');
      ASSERT_TRUE(sink.Append(piece.data(), piece.size()).ok());
      ASSERT_TRUE(sink.Finish().ok());
      if (!kSanitizedBuild) ASSERT_GT(pipeline.deferred_writes(), 0u);
    }
    rdma::RdmaVerbStats stats = mgr.StatsSnapshot();
    EXPECT_EQ(0u, stats.outstanding) << "cancelled WRITEs pinned the gauge";
    if (!kSanitizedBuild) EXPECT_GT(stats.abandoned, 0u);
  });
}

struct LayoutParam {
  TableFormat format;
  size_t block_size;
};

class TableLayoutTest : public TableSimTest,
                        public ::testing::WithParamInterface<LayoutParam> {};

TEST_P(TableLayoutTest, BuildThenPointLookupEveryKey) {
  RunSim([&](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory,
             Env*) {
    const LayoutParam param = GetParam();
    InternalKeyComparator icmp(BytewiseComparator());
    BloomFilterPolicy bloom(10);

    char* region = memory->AllocDram(8 << 20);
    rdma::MemoryRegion mr = f->RegisterMemory(memory, region, 8 << 20);
    rdma::RdmaManager mgr(f, compute, memory);
    remote::RemoteChunk chunk{mr.addr, 8 << 20, mr.rkey, compute->id()};

    AsyncRemoteSink sink(&mgr, chunk, 64 << 10, 3);
    auto builder =
        param.format == TableFormat::kByteAddressable
            ? NewByteTableBuilder(&bloom, &sink)
            : NewBlockTableBuilder(&bloom, &sink, param.block_size);

    const int kN = 2000;
    Random rnd(7);
    std::map<std::string, std::string> expected;
    for (int i = 0; i < kN; i++) {
      std::string k = UKey(i * 3);
      std::string v = "val-" + std::to_string(rnd.Next());
      expected[k] = v;
      ASSERT_TRUE(builder->Add(IKey(k, i + 1), v).ok());
    }
    TableBuildResult result;
    ASSERT_TRUE(builder->Finish(&result).ok());
    EXPECT_EQ(static_cast<uint64_t>(kN), result.num_entries);

    auto file = std::make_shared<FileMetaData>();
    file->chunk = chunk;
    file->data_len = result.data_len;
    file->num_entries = result.num_entries;
    file->smallest = result.smallest;
    file->largest = result.largest;
    file->index = TableIndex::Parse(result.index_blob);
    ASSERT_NE(nullptr, file->index);

    RemoteReadPath read_path;
    read_path.mgr = &mgr;

    // Every present key is found with the right value.
    for (const auto& [k, v] : expected) {
      LookupKey lkey(k, kMaxSequenceNumber);
      TableLookupResult lookup;
      std::string value;
      ASSERT_TRUE(TableGet(read_path, icmp, bloom, *file, lkey, &lookup,
                           &value)
                      .ok());
      ASSERT_EQ(TableLookupResult::kFound, lookup) << k;
      EXPECT_EQ(v, value);
    }
    // Absent keys (odd multiples) are not present.
    int absent_found = 0;
    for (int i = 0; i < 200; i++) {
      LookupKey lkey(UKey(i * 3 + 1), kMaxSequenceNumber);
      TableLookupResult lookup;
      std::string value;
      ASSERT_TRUE(TableGet(read_path, icmp, bloom, *file, lkey, &lookup,
                           &value)
                      .ok());
      if (lookup != TableLookupResult::kNotPresent) absent_found++;
    }
    EXPECT_EQ(0, absent_found);
  });
}

TEST_P(TableLayoutTest, RemoteIteratorFullScanAndSeek) {
  RunSim([&](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory,
             Env*) {
    const LayoutParam param = GetParam();
    InternalKeyComparator icmp(BytewiseComparator());
    BloomFilterPolicy bloom(10);

    char* region = memory->AllocDram(8 << 20);
    rdma::MemoryRegion mr = f->RegisterMemory(memory, region, 8 << 20);
    rdma::RdmaManager mgr(f, compute, memory);
    remote::RemoteChunk chunk{mr.addr, 8 << 20, mr.rkey, compute->id()};

    AsyncRemoteSink sink(&mgr, chunk, 64 << 10, 3);
    auto builder =
        param.format == TableFormat::kByteAddressable
            ? NewByteTableBuilder(&bloom, &sink)
            : NewBlockTableBuilder(&bloom, &sink, param.block_size);
    const int kN = 1500;
    for (int i = 0; i < kN; i++) {
      ASSERT_TRUE(
          builder->Add(IKey(UKey(i), 1), "v" + std::to_string(i)).ok());
    }
    TableBuildResult result;
    ASSERT_TRUE(builder->Finish(&result).ok());

    auto file = std::make_shared<FileMetaData>();
    file->chunk = chunk;
    file->data_len = result.data_len;
    file->num_entries = result.num_entries;
    file->index = TableIndex::Parse(result.index_blob);

    RemoteReadPath read_path;
    read_path.mgr = &mgr;
    std::unique_ptr<Iterator> it(
        NewRemoteTableIterator(read_path, icmp, file, 256 << 10));

    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      EXPECT_EQ(UKey(count), ExtractUserKey(it->key()).ToString());
      EXPECT_EQ("v" + std::to_string(count), it->value().ToString());
      count++;
    }
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
    EXPECT_EQ(kN, count);

    it->Seek(IKey(UKey(700), kMaxSequenceNumber));
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(UKey(700), ExtractUserKey(it->key()).ToString());
    it->Prev();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(UKey(699), ExtractUserKey(it->key()).ToString());
    it->SeekToLast();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(UKey(kN - 1), ExtractUserKey(it->key()).ToString());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, TableLayoutTest,
    ::testing::Values(LayoutParam{TableFormat::kByteAddressable, 0},
                      LayoutParam{TableFormat::kBlock, 4096},
                      LayoutParam{TableFormat::kBlock, 512}),
    [](const ::testing::TestParamInfo<LayoutParam>& info) {
      if (info.param.format == TableFormat::kByteAddressable) return std::string("Byte");
      return "Block" + std::to_string(info.param.block_size);
    });

TEST(LocalIteratorTest, ByteTableLocalScan) {
  // Build into plain memory, iterate without an index — the executor path.
  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy bloom(10);
  std::string storage(1 << 20, '\0');
  LocalMemorySink sink(storage.data(), storage.size());
  auto builder = NewByteTableBuilder(&bloom, &sink);
  const int kN = 500;
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(builder->Add(IKey(UKey(i), 9), "value").ok());
  }
  TableBuildResult result;
  ASSERT_TRUE(builder->Finish(&result).ok());

  std::unique_ptr<Iterator> it(
      NewLocalByteTableIterator(storage.data(), result.data_len,
                                InternalKeyComparator(BytewiseComparator())));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(UKey(count), ExtractUserKey(it->key()).ToString());
    count++;
  }
  EXPECT_EQ(kN, count);
  EXPECT_TRUE(it->status().ok());
}

TEST(LocalIteratorTest, ByteTableSeekAndSeekToLast) {
  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy bloom(10);
  std::string storage(1 << 20, '\0');
  LocalMemorySink sink(storage.data(), storage.size());
  auto builder = NewByteTableBuilder(&bloom, &sink);
  const int kN = 200;
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(builder->Add(IKey(UKey(i), 9), "v" + std::to_string(i)).ok());
  }
  TableBuildResult result;
  ASSERT_TRUE(builder->Finish(&result).ok());

  std::unique_ptr<Iterator> it(
      NewLocalByteTableIterator(storage.data(), result.data_len, icmp));

  // Seek lands on the first record >= target (internal-key order).
  it->Seek(IKey(UKey(50), kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(UKey(50), ExtractUserKey(it->key()).ToString());
  EXPECT_EQ("v50", it->value().ToString());

  // A forward re-seek continues from the current position...
  it->Seek(IKey(UKey(120), kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(UKey(120), ExtractUserKey(it->key()).ToString());

  // ...and a backward re-seek restarts the scan.
  it->Seek(IKey(UKey(7), kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(UKey(7), ExtractUserKey(it->key()).ToString());

  // Seeking past the last key invalidates the iterator.
  it->Seek(IKey(UKey(kN), kMaxSequenceNumber));
  EXPECT_FALSE(it->Valid());

  // SeekToLast works from any state, including invalid.
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(UKey(kN - 1), ExtractUserKey(it->key()).ToString());
  EXPECT_EQ("v" + std::to_string(kN - 1), it->value().ToString());
  EXPECT_TRUE(it->status().ok());
}

TEST(LocalIteratorTest, ByteTableSliceScan) {
  // Sub-compaction slices: iterate a record-aligned [start, end) window.
  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy bloom(10);
  std::string storage(1 << 20, '\0');
  LocalMemorySink sink(storage.data(), storage.size());
  auto builder = NewByteTableBuilder(&bloom, &sink);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(builder->Add(IKey(UKey(i), 9), "value").ok());
  }
  TableBuildResult result;
  ASSERT_TRUE(builder->Finish(&result).ok());
  auto index = TableIndex::Parse(result.index_blob);

  // Slice covering keys [30, 60).
  uint64_t start =
      index->entry(index->Find(icmp, IKey(UKey(30), kMaxSequenceNumber)))
          .offset;
  uint64_t end =
      index->entry(index->Find(icmp, IKey(UKey(60), kMaxSequenceNumber)))
          .offset;
  std::unique_ptr<Iterator> it(
      NewLocalByteTableIterator(storage.data() + start, end - start, icmp));
  int expected = 30;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(UKey(expected), ExtractUserKey(it->key()).ToString());
    expected++;
  }
  EXPECT_EQ(60, expected);
}

TEST(LocalIteratorTest, BlockTableLocalScan) {
  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy bloom(10);
  std::string storage(1 << 20, '\0');
  LocalMemorySink sink(storage.data(), storage.size());
  auto builder = NewBlockTableBuilder(&bloom, &sink, 1024);
  const int kN = 400;
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(builder->Add(IKey(UKey(i), 9), "block-value").ok());
  }
  TableBuildResult result;
  ASSERT_TRUE(builder->Finish(&result).ok());
  auto index = TableIndex::Parse(result.index_blob);
  ASSERT_NE(nullptr, index);
  EXPECT_EQ(TableIndex::kPerBlock, index->kind());
  EXPECT_GE(index->num_entries(), 10u);  // Many blocks at 1 KB.

  std::unique_ptr<Iterator> it(NewLocalBlockTableIterator(
      storage.data(), result.data_len, index, icmp));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(UKey(count), ExtractUserKey(it->key()).ToString());
    count++;
  }
  EXPECT_EQ(kN, count);
}

TEST(BloomInTableTest, NoFalseNegativesAndLowFalsePositives) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 5000; i++) keys.push_back(UKey(i * 2));
  for (const auto& k : keys) slices.emplace_back(k);
  std::string filter;
  policy.CreateFilter(slices.data(), static_cast<int>(slices.size()),
                      &filter);

  for (const auto& k : keys) {
    ASSERT_TRUE(policy.KeyMayMatch(k, filter)) << "false negative: " << k;
  }
  int false_positives = 0;
  for (int i = 0; i < 5000; i++) {
    if (policy.KeyMayMatch(UKey(i * 2 + 1), filter)) false_positives++;
  }
  // 10 bits/key should give ~1% FPR; allow generous slack.
  EXPECT_LT(false_positives, 250);
}

}  // namespace
}  // namespace dlsm
