// Tests for copy-on-write version metadata, compaction picking, file
// pinning/GC, skiplist and memtable internals, and the DB format helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "src/core/dbformat.h"
#include "src/core/memtable.h"
#include "src/core/skiplist.h"
#include "src/core/version.h"
#include "src/core/write_batch.h"
#include "src/sim/env.h"
#include "src/util/random.h"

namespace dlsm {
namespace {

std::string UKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

FileRef MakeFile(uint64_t number, uint64_t lo, uint64_t hi,
                 uint64_t l0_order = 0, uint64_t bytes = 1 << 20,
                 std::function<void(const remote::RemoteChunk&)> gc = {}) {
  auto f = std::make_shared<FileMetaData>();
  f->number = number;
  f->l0_order = l0_order != 0 ? l0_order : number;
  f->data_len = bytes;
  f->smallest = InternalKey(UKey(lo), kMaxSequenceNumber, kTypeValue);
  f->largest = InternalKey(UKey(hi), 1, kTypeValue);
  f->chunk.addr = 0x1000 * number;
  f->gc = std::move(gc);
  return f;
}

Options SmallVersionOptions() {
  Options options;
  options.sstable_size = 1 << 20;
  options.l0_compaction_trigger = 4;
  options.l0_stop_writes_trigger = 8;
  return options;
}

TEST(DbFormatTest, InternalKeyRoundTrip) {
  std::string encoded;
  AppendInternalKey(&encoded,
                    ParsedInternalKey("user-key", 12345, kTypeValue));
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ("user-key", parsed.user_key.ToString());
  EXPECT_EQ(12345u, parsed.sequence);
  EXPECT_EQ(kTypeValue, parsed.type);
  EXPECT_EQ("user-key", ExtractUserKey(encoded).ToString());
  EXPECT_EQ(12345u, ExtractSequence(encoded));
}

TEST(DbFormatTest, InternalKeyOrdering) {
  InternalKeyComparator icmp(BytewiseComparator());
  // Same user key: larger sequence sorts first.
  InternalKey a("k", 10, kTypeValue), b("k", 5, kTypeValue);
  EXPECT_LT(icmp.Compare(a.Encode(), b.Encode()), 0);
  // Different user keys: bytewise order dominates.
  InternalKey c("a", 1, kTypeValue), d("b", 100, kTypeValue);
  EXPECT_LT(icmp.Compare(c.Encode(), d.Encode()), 0);
  // Deletion sorts after value at the same (key, seq) — seek finds value.
  InternalKey e("k", 7, kTypeValue), f("k", 7, kTypeDeletion);
  EXPECT_LT(icmp.Compare(e.Encode(), f.Encode()), 0);
}

TEST(DbFormatTest, LookupKeyViews) {
  LookupKey lkey("mykey", 42);
  EXPECT_EQ("mykey", lkey.user_key().ToString());
  EXPECT_EQ(5u + 8u, lkey.internal_key().size());
  EXPECT_EQ(42u, ExtractSequence(lkey.internal_key()));
}

TEST(SkipListTest, InsertAndLookup) {
  Arena arena;
  struct Cmp {
    int operator()(const char* a, const char* b) const {
      return strcmp(a, b);
    }
  };
  SkipList<const char*, Cmp> list(Cmp(), &arena);
  std::set<std::string> keys;
  Random rnd(42);
  for (int i = 0; i < 2000; i++) {
    std::string k = UKey(rnd.Uniform(5000));
    if (keys.insert(k).second) {
      char* mem = arena.Allocate(k.size() + 1);
      memcpy(mem, k.c_str(), k.size() + 1);
      list.Insert(mem);
    }
  }
  for (const std::string& k : keys) {
    EXPECT_TRUE(list.Contains(k.c_str())) << k;
  }
  EXPECT_FALSE(list.Contains(UKey(999999).c_str()));

  // Iteration visits every key in order.
  SkipList<const char*, Cmp>::Iterator it(&list);
  auto expected = keys.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    ASSERT_NE(expected, keys.end());
    EXPECT_EQ(*expected, std::string(it.key()));
    ++expected;
  }
  EXPECT_EQ(expected, keys.end());

  // Seek semantics.
  it.Seek(UKey(2500).c_str());
  auto lower = keys.lower_bound(UKey(2500));
  if (lower == keys.end()) {
    EXPECT_FALSE(it.Valid());
  } else {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(*lower, std::string(it.key()));
  }
}

TEST(SkipListTest, ConcurrentInsertersUnderRealThreads) {
  // True hardware concurrency via StdEnv threads: the lock-free insert
  // path must lose no keys.
  Arena arena;
  struct Cmp {
    int operator()(const char* a, const char* b) const {
      return strcmp(a, b);
    }
  };
  SkipList<const char*, Cmp> list(Cmp(), &arena);
  Env* env = Env::Std();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<ThreadHandle> hs;
  for (int t = 0; t < kThreads; t++) {
    hs.push_back(env->StartThread(0, "inserter", [&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string k = UKey(static_cast<uint64_t>(t) * kPerThread + i);
        char* mem = arena.Allocate(k.size() + 1);
        memcpy(mem, k.c_str(), k.size() + 1);
        list.Insert(mem);
      }
    }));
  }
  for (ThreadHandle h : hs) env->Join(h);
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 97) {
      std::string k = UKey(static_cast<uint64_t>(t) * kPerThread + i);
      EXPECT_TRUE(list.Contains(k.c_str())) << k;
    }
  }
}

TEST(MemTableTest, AddGetAndSequenceVisibility) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp, 1, 1000);
  mem->Ref();
  mem->Add(10, kTypeValue, "k", "v10");
  mem->Add(20, kTypeValue, "k", "v20");
  mem->Add(30, kTypeDeletion, "k", "");

  auto get_at = [&](SequenceNumber snap) {
    LookupKey lkey("k", snap);
    std::string value;
    Status s;
    bool hit = mem->Get(lkey, &value, &s);
    return std::make_tuple(hit, s, value);
  };

  auto [hit1, s1, v1] = get_at(15);
  EXPECT_TRUE(hit1);
  EXPECT_TRUE(s1.ok());
  EXPECT_EQ("v10", v1);

  auto [hit2, s2, v2] = get_at(25);
  EXPECT_TRUE(hit2);
  EXPECT_EQ("v20", v2);

  auto [hit3, s3, v3] = get_at(100);
  EXPECT_TRUE(hit3);
  EXPECT_TRUE(s3.IsNotFound()) << "tombstone must report NotFound";

  auto [hit4, s4, v4] = get_at(5);
  EXPECT_FALSE(hit4) << "nothing visible before the first write";
  mem->Unref();
}

TEST(MemTableTest, SequenceRangeRouting) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp, 1000, 2000);
  mem->Ref();
  EXPECT_FALSE(mem->AcceptsSequence(999));
  EXPECT_TRUE(mem->AcceptsSequence(1000));
  EXPECT_TRUE(mem->AcceptsSequence(1999));
  EXPECT_FALSE(mem->AcceptsSequence(2000));
  mem->Unref();
}

TEST(WriteBatchTest, CountAndIterate) {
  WriteBatch batch;
  EXPECT_EQ(0u, batch.Count());
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(3u, batch.Count());

  struct Collector : public WriteBatch::Handler {
    std::string log;
    void Put(const Slice& key, const Slice& value) override {
      log += "P(" + key.ToString() + "," + value.ToString() + ")";
    }
    void Delete(const Slice& key) override {
      log += "D(" + key.ToString() + ")";
    }
  };
  Collector collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  EXPECT_EQ("P(a,1)D(b)P(c,3)", collector.log);

  batch.Clear();
  EXPECT_EQ(0u, batch.Count());
}

TEST(WriteBatchTest, InsertIntoAssignsConsecutiveSequences) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp, 0, kMaxSequenceNumber);
  mem->Ref();
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Put("x", "2");
  ASSERT_TRUE(WriteBatchInternal::InsertInto(&batch, 100, mem).ok());
  // Sequence 101 ("2") shadows 100 ("1").
  LookupKey lkey("x", 200);
  std::string value;
  Status s;
  ASSERT_TRUE(mem->Get(lkey, &value, &s));
  EXPECT_EQ("2", value);
  mem->Unref();
}

// --- Version / VersionSet ----------------------------------------------------

TEST(VersionTest, ApplyAddsAndDeletes) {
  Options options = SmallVersionOptions();
  InternalKeyComparator icmp(BytewiseComparator());
  VersionSet vs(&icmp, &options);

  VersionEdit add;
  add.AddFile(0, MakeFile(1, 0, 100));
  add.AddFile(0, MakeFile(2, 50, 150));
  add.AddFile(1, MakeFile(3, 0, 50));
  vs.Apply(add);
  EXPECT_EQ(2, vs.current()->NumFiles(0));
  EXPECT_EQ(1, vs.current()->NumFiles(1));

  VersionEdit del;
  del.DeleteFile(0, 1);
  vs.Apply(del);
  EXPECT_EQ(1, vs.current()->NumFiles(0));
  EXPECT_EQ(2u, vs.current()->files(0)[0]->number);
}

TEST(VersionTest, L0OrderedNewestFirstByL0Order) {
  Options options = SmallVersionOptions();
  InternalKeyComparator icmp(BytewiseComparator());
  VersionSet vs(&icmp, &options);
  VersionEdit edit;
  // Out-of-order flush completion: file 5 from an older memtable.
  edit.AddFile(0, MakeFile(5, 0, 10, /*l0_order=*/100));
  edit.AddFile(0, MakeFile(6, 0, 10, /*l0_order=*/300));
  edit.AddFile(0, MakeFile(7, 0, 10, /*l0_order=*/200));
  vs.Apply(edit);
  const auto& l0 = vs.current()->files(0);
  EXPECT_EQ(300u, l0[0]->l0_order);
  EXPECT_EQ(200u, l0[1]->l0_order);
  EXPECT_EQ(100u, l0[2]->l0_order);
}

TEST(VersionTest, CollectSearchOrderPrunesByRange) {
  Options options = SmallVersionOptions();
  InternalKeyComparator icmp(BytewiseComparator());
  VersionSet vs(&icmp, &options);
  VersionEdit edit;
  edit.AddFile(0, MakeFile(1, 0, 100));
  edit.AddFile(0, MakeFile(2, 200, 300));
  edit.AddFile(1, MakeFile(3, 0, 99));
  edit.AddFile(1, MakeFile(4, 100, 199));
  edit.AddFile(2, MakeFile(5, 0, 500));
  vs.Apply(edit);

  std::vector<const FileMetaData*> order;
  vs.current()->CollectSearchOrder(icmp, UKey(50), &order);
  // L0 file 1 overlaps; L1 file 3; L2 file 5. L0 file 2 and L1 file 4 do not.
  ASSERT_EQ(3u, order.size());
  EXPECT_EQ(1u, order[0]->number);
  EXPECT_EQ(3u, order[1]->number);
  EXPECT_EQ(5u, order[2]->number);

  // Reused across lookups: the vector is cleared, not appended to.
  vs.current()->CollectSearchOrder(icmp, UKey(700), &order);
  EXPECT_TRUE(order.empty());
}

TEST(VersionTest, PickCompactionL0TakesAllAndOverlappingL1) {
  Options options = SmallVersionOptions();
  InternalKeyComparator icmp(BytewiseComparator());
  VersionSet vs(&icmp, &options);
  VersionEdit edit;
  for (int i = 1; i <= 4; i++) {
    edit.AddFile(0, MakeFile(i, i * 10, i * 10 + 50));
  }
  edit.AddFile(1, MakeFile(10, 0, 30));    // Overlaps.
  edit.AddFile(1, MakeFile(11, 500, 600)); // Does not.
  vs.Apply(edit);
  ASSERT_TRUE(vs.NeedsCompaction());

  CompactionPick pick = vs.PickCompaction();
  ASSERT_TRUE(pick.valid());
  EXPECT_EQ(0, pick.level);
  EXPECT_EQ(4u, pick.inputs[0].size());
  ASSERT_EQ(1u, pick.inputs[1].size());
  EXPECT_EQ(10u, pick.inputs[1][0]->number);
  EXPECT_TRUE(pick.bottommost) << "nothing below L1";

  // A second pick must not return overlapping work (L0 is busy).
  CompactionPick second = vs.PickCompaction();
  EXPECT_FALSE(second.valid());

  vs.ReleaseCompaction(pick);
  CompactionPick third = vs.PickCompaction();
  EXPECT_TRUE(third.valid());
  vs.ReleaseCompaction(third);
}

TEST(VersionTest, StallTriggersAtThreshold) {
  Options options = SmallVersionOptions();
  InternalKeyComparator icmp(BytewiseComparator());
  VersionSet vs(&icmp, &options);
  VersionEdit edit;
  for (int i = 1; i <= options.l0_stop_writes_trigger - 1; i++) {
    edit.AddFile(0, MakeFile(i, 0, 10));
  }
  vs.Apply(edit);
  EXPECT_FALSE(vs.NeedsStall());
  VersionEdit one_more;
  one_more.AddFile(0, MakeFile(99, 0, 10));
  vs.Apply(one_more);
  EXPECT_TRUE(vs.NeedsStall());
}

TEST(VersionTest, FileGcFiresWhenLastReferenceDrops) {
  Options options = SmallVersionOptions();
  InternalKeyComparator icmp(BytewiseComparator());
  std::atomic<int> gc_count{0};
  auto gc = [&](const remote::RemoteChunk&) { gc_count++; };
  {
    VersionSet vs(&icmp, &options);
    {
      // Scoped: the edit itself holds a file reference until destroyed.
      VersionEdit edit;
      edit.AddFile(0, MakeFile(1, 0, 10, 0, 1 << 20, gc));
      vs.Apply(edit);
    }

    VersionRef pinned = vs.current();  // Reader snapshot pins the file.

    VersionEdit del;
    del.DeleteFile(0, 1);
    vs.Apply(del);
    EXPECT_EQ(0, gc_count.load()) << "pinned by the reader's version";

    pinned.reset();
    EXPECT_EQ(1, gc_count.load()) << "unpinned: GC must fire";
  }
  EXPECT_EQ(1, gc_count.load());
}

TEST(VersionTest, LevelTargetsGrowGeometrically) {
  Options options = SmallVersionOptions();
  options.max_bytes_for_level_base = 10 << 20;
  options.level_size_multiplier = 10.0;
  InternalKeyComparator icmp(BytewiseComparator());
  VersionSet vs(&icmp, &options);
  EXPECT_EQ(10u << 20, vs.MaxBytesForLevel(1));
  EXPECT_EQ(100u << 20, vs.MaxBytesForLevel(2));
  EXPECT_EQ(1000u << 20, vs.MaxBytesForLevel(3));
}

}  // namespace
}  // namespace dlsm
