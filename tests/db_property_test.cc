// Property-based sweeps (TEST_P): randomized workloads run against every
// engine configuration dimension, checked against a reference std::map
// model, with invariants on iterators and level structure.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "tests/dlsm_test_util.h"

namespace dlsm {
namespace {

using test::RunDbTest;
using test::TestKey;
using test::TestValue;

struct EngineConfig {
  const char* name;
  TableFormat format = TableFormat::kByteAddressable;
  size_t block_size = 8192;
  CompactionPlacement placement = CompactionPlacement::kNearData;
  WritePath write_path = WritePath::kLockFree;
  MemTableSwitchPolicy switch_policy = MemTableSwitchPolicy::kSeqRange;
  int shards = 1;
  bool extra_io_copy = false;
  bool reads_via_rpc = false;
  size_t value_size = 64;
};

class EngineMatrixTest : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(EngineMatrixTest, RandomWorkloadMatchesReferenceModel) {
  const EngineConfig& config = GetParam();
  RunDbTest(
      [&](Options* options) {
        options->table_format = config.format;
        options->block_size = config.block_size;
        options->compaction_placement = config.placement;
        options->write_path = config.write_path;
        options->switch_policy = config.switch_policy;
        options->shards = config.shards;
        options->extra_io_copy = config.extra_io_copy;
        options->reads_via_rpc = config.reads_via_rpc;
      },
      [&](DB* db, Env*) {
        std::map<std::string, std::string> model;
        Random rnd(1234);
        const int kOps = 6000;
        const int kKeySpace = 400;
        for (int op = 0; op < kOps; op++) {
          // Spread keys over the decimal space so every shard is hit.
          uint64_t k =
              rnd.Uniform(kKeySpace) * 2400000000000ull + 17;
          std::string key = TestKey(k);
          if (rnd.OneIn(5)) {
            model.erase(key);
            ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
          } else {
            std::string value = "v" + std::to_string(rnd.Next());
            value.resize(config.value_size, 'p');
            model[key] = value;
            ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
          }
          if (op == kOps / 2) {
            // Mid-workload flush to move data across the wire.
            ASSERT_TRUE(db->Flush().ok());
          }
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());

        // Invariant 1: every acknowledged write (and only those) readable.
        for (int i = 0; i < kKeySpace; i++) {
          std::string key = TestKey(
              static_cast<uint64_t>(i) * 2400000000000ull + 17);
          std::string value;
          Status s = db->Get(ReadOptions(), key, &value);
          auto it = model.find(key);
          if (it == model.end()) {
            EXPECT_TRUE(s.IsNotFound()) << config.name << " " << key;
          } else {
            ASSERT_TRUE(s.ok())
                << config.name << " " << key << ": " << s.ToString();
            EXPECT_EQ(it->second, value) << config.name << " " << key;
          }
        }

        // Invariant 2: iterator yields exactly the model, in order.
        std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
        auto expected = model.begin();
        for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
          ASSERT_NE(expected, model.end()) << "iterator has extra keys";
          EXPECT_EQ(expected->first, iter->key().ToString());
          EXPECT_EQ(expected->second, iter->value().ToString());
          ++expected;
        }
        EXPECT_EQ(expected, model.end()) << "iterator missed keys";
        ASSERT_TRUE(iter->status().ok());

        // Invariant 3: quiesced L0 is at (or below) the stop trigger.
        EXPECT_LT(db->NumFilesAtLevel(0), 36);
      });
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineMatrixTest,
    ::testing::Values(
        EngineConfig{"dlsm"},
        EngineConfig{"dlsm_block", TableFormat::kBlock, 4096},
        EngineConfig{"dlsm_tiny_blocks", TableFormat::kBlock, 256},
        EngineConfig{"compute_compaction", TableFormat::kByteAddressable,
                     8192, CompactionPlacement::kComputeSide},
        EngineConfig{"writer_queue", TableFormat::kByteAddressable, 8192,
                     CompactionPlacement::kNearData, WritePath::kWriterQueue,
                     MemTableSwitchPolicy::kDoubleCheckedSize},
        EngineConfig{"rocksdb_port", TableFormat::kBlock, 8192,
                     CompactionPlacement::kComputeSide,
                     WritePath::kWriterQueue,
                     MemTableSwitchPolicy::kDoubleCheckedSize, 1,
                     /*extra_io_copy=*/true},
        EngineConfig{"nova_port", TableFormat::kBlock, 8192,
                     CompactionPlacement::kNearData, WritePath::kWriterQueue,
                     MemTableSwitchPolicy::kDoubleCheckedSize, 4,
                     /*extra_io_copy=*/true, /*reads_via_rpc=*/true},
        EngineConfig{"sharded_4", TableFormat::kByteAddressable, 8192,
                     CompactionPlacement::kNearData, WritePath::kLockFree,
                     MemTableSwitchPolicy::kSeqRange, 4},
        EngineConfig{"big_values", TableFormat::kByteAddressable, 8192,
                     CompactionPlacement::kNearData, WritePath::kLockFree,
                     MemTableSwitchPolicy::kSeqRange, 1, false, false,
                     /*value_size=*/1200}),
    [](const ::testing::TestParamInfo<EngineConfig>& info) {
      return std::string(info.param.name);
    });

struct ValueSizeParam {
  size_t value_size;
};

class ValueSizeSweepTest
    : public ::testing::TestWithParam<ValueSizeParam> {};

TEST_P(ValueSizeSweepTest, FillScanReadAtEveryValueSize) {
  size_t value_size = GetParam().value_size;
  RunDbTest(nullptr, [&](DB* db, Env*) {
    const int kN = 1200;
    for (int i = 0; i < kN; i++) {
      std::string value(value_size, static_cast<char>('a' + i % 26));
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), value).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ASSERT_EQ(value_size, it->value().size());
      count++;
    }
    EXPECT_EQ(kN, count);
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), TestKey(kN / 2), &value).ok());
    EXPECT_EQ(value_size, value.size());
  });
}

INSTANTIATE_TEST_SUITE_P(ValueSizes, ValueSizeSweepTest,
                         ::testing::Values(ValueSizeParam{0},
                                           ValueSizeParam{1},
                                           ValueSizeParam{16},
                                           ValueSizeParam{400},
                                           ValueSizeParam{4096}),
                         [](const ::testing::TestParamInfo<ValueSizeParam>&
                                info) {
                           return "v" +
                                  std::to_string(info.param.value_size);
                         });

struct ThreadsParam {
  int threads;
};

class WriterSweepTest : public ::testing::TestWithParam<ThreadsParam> {};

TEST_P(WriterSweepTest, NoLostWritesAtAnyConcurrency) {
  int threads = GetParam().threads;
  RunDbTest(nullptr, [&](DB* db, Env* env) {
    const int kPerThread = 800;
    std::vector<ThreadHandle> hs;
    for (int t = 0; t < threads; t++) {
      hs.push_back(env->StartThread(0, "w", [&, t] {
        for (int i = 0; i < kPerThread; i++) {
          uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(k), TestKey(k)).ok());
          if ((i & 63) == 0) env->MaybeYield();
        }
      }));
    }
    for (ThreadHandle h : hs) env->Join(h);
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
    EXPECT_EQ(threads * kPerThread, count);
  });
}

INSTANTIATE_TEST_SUITE_P(Writers, WriterSweepTest,
                         ::testing::Values(ThreadsParam{1}, ThreadsParam{2},
                                           ThreadsParam{4}, ThreadsParam{8},
                                           ThreadsParam{16}),
                         [](const ::testing::TestParamInfo<ThreadsParam>&
                                info) {
                           return "t" + std::to_string(info.param.threads);
                         });

// GetProperty: the "dlsm.*" names answer on every engine (base
// implementation derives from GetStats/NumFilesAtLevel); DLsmDB's
// "dlsm.levels" override adds per-level byte counts.
TEST(GetPropertyTest, DlsmPropertiesReflectWorkload) {
  RunDbTest(nullptr, [&](DB* db, Env*) {
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());

    std::string v;
    ASSERT_TRUE(db->GetProperty("dlsm.stats", &v));
    EXPECT_NE(std::string::npos, v.find("writes 3000"));
    EXPECT_NE(std::string::npos, v.find("flushes"));

    ASSERT_TRUE(db->GetProperty("dlsm.levels", &v));
    EXPECT_NE(std::string::npos, v.find("L0:"));
    EXPECT_NE(std::string::npos, v.find("L1:"));
    // The DLsmDB override reports byte counts, not just file counts.
    EXPECT_NE(std::string::npos, v.find("bytes"));

    ASSERT_TRUE(db->GetProperty("dlsm.rdma", &v));
    EXPECT_NE(std::string::npos, v.find("WRITE"));

    EXPECT_FALSE(db->GetProperty("dlsm.unknown", &v));
    EXPECT_FALSE(db->GetProperty("rocksdb.stats", &v));
  });
}

TEST(GetPropertyTest, ShardedEngineInheritsBaseProperties) {
  RunDbTest([](Options* options) { options->shards = 4; },
            [&](DB* db, Env*) {
              for (int i = 0; i < 2000; i++) {
                uint64_t k = static_cast<uint64_t>(i) * 2400000000000ull;
                ASSERT_TRUE(
                    db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
              }
              ASSERT_TRUE(db->Flush().ok());
              ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
              std::string v;
              // ShardedDB has no override: the base implementation merges
              // per-shard stats and sums file counts.
              ASSERT_TRUE(db->GetProperty("dlsm.stats", &v));
              EXPECT_NE(std::string::npos, v.find("writes 2000"));
              ASSERT_TRUE(db->GetProperty("dlsm.levels", &v));
              EXPECT_NE(std::string::npos, v.find("L0:"));
              ASSERT_TRUE(db->GetProperty("dlsm.rdma", &v));
              EXPECT_FALSE(db->GetProperty("nope", &v));
            });
}

}  // namespace
}  // namespace dlsm
