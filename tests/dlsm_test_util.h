// Shared test harness: assembles a simulated two-node deployment (compute
// + memory, RDMA fabric, memory-node service) and runs a test body against
// an open DB inside the virtual-time environment.

#ifndef DLSM_TESTS_DLSM_TEST_UTIL_H_
#define DLSM_TESTS_DLSM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "src/core/db.h"
#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/core/shard.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"

namespace dlsm {
namespace test {

/// Options tuned small so unit tests exercise flush and compaction with a
/// few thousand keys.
inline Options SmallOptions(Env* env) {
  Options options;
  options.env = env;
  options.memtable_size = 64 << 10;
  options.estimated_entry_size = 128;
  options.sstable_size = 64 << 10;
  options.l0_compaction_trigger = 4;
  options.l0_stop_writes_trigger = 36;
  options.max_immutables = 4;
  options.flush_threads = 2;
  options.compaction_scheduler_threads = 2;
  options.max_subcompactions = 4;
  options.flush_region_size = 256 << 20;
  options.flush_buffer_size = 16 << 10;
  options.scan_prefetch_size = 64 << 10;
  return options;
}

/// Builds the deployment, opens a DB, runs body, closes everything.
inline void RunDbTest(const std::function<void(Options*)>& tune,
                      const std::function<void(DB*, Env*)>& body) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 4ull << 30);

  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 4);
    service.Start();

    Options options = SmallOptions(&env);
    if (tune) tune(&options);

    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;

    DB* raw = nullptr;
    Status s;
    if (options.shards > 1) {
      s = ShardedDB::Open(
          options, deps,
          ShardedDB::UniformDecimalBoundaries(options.shards, 16), &raw);
    } else {
      s = DLsmDB::Open(options, deps, &raw);
    }
    ASSERT_TRUE(s.ok()) << s.ToString();
    std::unique_ptr<DB> db(raw);

    body(db.get(), &env);

    ASSERT_TRUE(db->Close().ok());
    db.reset();
    service.Stop();
  });
}

/// Zero-padded 16-digit decimal key (the bench key format).
inline std::string TestKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

inline std::string TestValue(uint64_t n, size_t len = 64) {
  std::string v = "value-" + std::to_string(n) + "-";
  while (v.size() < len) v.push_back('x');
  v.resize(len);
  return v;
}

}  // namespace test
}  // namespace dlsm

#endif  // DLSM_TESTS_DLSM_TEST_UTIL_H_
