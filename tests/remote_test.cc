// Tests for remote memory management and the RPC layer.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "src/remote/remote_alloc.h"
#include "src/remote/rpc.h"
#include "src/sim/sim_env.h"

namespace dlsm {
namespace remote {
namespace {

constexpr size_t kMB = 1024 * 1024;

TEST(SlabAllocatorTest, AllocateFreeReuse) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* memory = fabric.AddNode("memory", 4, 16 * kMB);
  char* base = memory->AllocDram(8 * kMB);
  rdma::MemoryRegion mr = fabric.RegisterMemory(memory, base, 8 * kMB);
  SlabAllocator alloc(mr, kMB, memory->id());

  EXPECT_EQ(8u, alloc.capacity_chunks());
  std::vector<RemoteChunk> chunks;
  std::set<uint64_t> addrs;
  for (int i = 0; i < 8; i++) {
    RemoteChunk c = alloc.Allocate();
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(kMB, c.size);
    EXPECT_EQ(memory->id(), c.owner_node);
    EXPECT_TRUE(addrs.insert(c.addr).second) << "duplicate chunk";
    chunks.push_back(c);
  }
  // Exhausted.
  EXPECT_FALSE(alloc.Allocate().valid());
  EXPECT_EQ(8u, alloc.allocated_chunks());

  // Free two, re-allocate two.
  alloc.Free(chunks[3]);
  alloc.Free(chunks[5]);
  EXPECT_EQ(6u, alloc.allocated_chunks());
  RemoteChunk r1 = alloc.Allocate();
  RemoteChunk r2 = alloc.Allocate();
  ASSERT_TRUE(r1.valid());
  ASSERT_TRUE(r2.valid());
  std::set<uint64_t> freed = {chunks[3].addr, chunks[5].addr};
  EXPECT_TRUE(freed.count(r1.addr));
  EXPECT_TRUE(freed.count(r2.addr));
}

TEST(SlabAllocatorTest, FreeByAddrValidation) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* memory = fabric.AddNode("memory", 4, 16 * kMB);
  char* base = memory->AllocDram(4 * kMB);
  rdma::MemoryRegion mr = fabric.RegisterMemory(memory, base, 4 * kMB);
  SlabAllocator alloc(mr, kMB, memory->id());

  RemoteChunk c = alloc.Allocate();
  EXPECT_FALSE(alloc.FreeByAddr(c.addr + 1).ok());     // Not chunk-aligned.
  EXPECT_FALSE(alloc.FreeByAddr(mr.addr - kMB).ok());  // Outside region.
  EXPECT_TRUE(alloc.FreeByAddr(c.addr).ok());
}

TEST(FreeBatchCodecTest, RoundTripsAndRejectsTruncation) {
  std::vector<uint64_t> addrs = {0x1000, 0xdeadbeef00, 1, 0};
  std::string wire;
  EncodeFreeBatch(addrs, &wire);

  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DecodeFreeBatch(Slice(wire), &decoded).ok());
  EXPECT_EQ(addrs, decoded);

  // A payload that promises more addresses than it carries is corrupt,
  // not a crash.
  decoded.clear();
  Slice truncated(wire.data(), wire.size() - 3);
  EXPECT_TRUE(DecodeFreeBatch(truncated, &decoded).IsCorruption());
  EXPECT_TRUE(DecodeFreeBatch(Slice(), &decoded).IsCorruption());

  std::string empty_wire;
  EncodeFreeBatch({}, &empty_wire);
  decoded.clear();
  ASSERT_TRUE(DecodeFreeBatch(Slice(empty_wire), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

class RpcTest : public ::testing::Test {
 protected:
  void RunSim(std::function<void(rdma::Fabric*, rdma::Node*, rdma::Node*)>
                  body) {
    SimEnv env;
    rdma::Fabric fabric(&env);
    // RPC thread buffers are MAP_NORESERVE-lazy but still need address
    // space: size the nodes generously.
    rdma::Node* compute = fabric.AddNode("compute", 24, 1024 * kMB);
    rdma::Node* memory = fabric.AddNode("memory", 4, 1024 * kMB);
    env.Run(0, [&] { body(&fabric, compute, memory); });
  }
};

TEST_F(RpcTest, PingEchoes) {
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    RpcServer server(f, memory, 2);
    server.Start();
    RpcClient client(f, compute, &server);

    std::string reply;
    Status s = client.Call(RpcType::kPing, "hello", &reply);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ("hello", reply);
    server.Stop();
  });
}

TEST_F(RpcTest, ReplyPathReportsVerbTelemetry) {
  // The server's reply path runs on the unified verb layer: each call posts
  // a payload WRITE plus a stamped-release WRITE back to the client, and
  // the telemetry must show them.
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    RpcServer server(f, memory, 2);
    server.Start();
    RpcClient client(f, compute, &server);

    const int kCalls = 5;
    for (int i = 0; i < kCalls; i++) {
      std::string reply;
      ASSERT_TRUE(client.Call(RpcType::kPing, "x", &reply).ok());
    }
    // The client's stamp future and the server's reply-handle waits fire at
    // the same wire-completion instant; give the server thread a moment to
    // harvest its side before snapshotting.
    rdma::RdmaVerbStats stats = server.reply_verb_stats();
    for (int i = 0; i < 1000 && stats.posted != stats.completed; i++) {
      f->env()->SleepNanos(10 * 1000);
      stats = server.reply_verb_stats();
    }
    EXPECT_GE(stats.write.ops, static_cast<uint64_t>(2 * kCalls));
    EXPECT_EQ(stats.posted, stats.completed);
    EXPECT_EQ(0u, stats.outstanding);
    EXPECT_GT(stats.write.latency_us.Count(), 0u);
    server.Stop();
  });
}

TEST_F(RpcTest, HandlerReceivesTypeAndArgs) {
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    RpcServer server(f, memory, 2);
    server.set_handler(
        [](uint8_t type, const Slice& args, std::string* reply) {
          *reply = std::to_string(type) + ":" + args.ToString();
        });
    server.Start();
    RpcClient client(f, compute, &server);

    std::string reply;
    ASSERT_TRUE(client.Call(RpcType::kFreeBatch, "abc", &reply).ok());
    EXPECT_EQ("3:abc", reply);
    server.Stop();
  });
}

TEST_F(RpcTest, WakeupPathRoundTrips) {
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    RpcServer server(f, memory, 2);
    server.set_handler(
        [f](uint8_t type, const Slice& args, std::string* reply) {
          EXPECT_EQ(RpcType::kCompaction, type);
          // Simulate a long compaction.
          f->env()->SleepNanos(5'000'000);
          *reply = "compacted:" + args.ToString();
        });
    server.Start();
    RpcClient client(f, compute, &server);

    std::string reply;
    Status s = client.CallWithWakeup(RpcType::kCompaction, "t1,t2", &reply);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ("compacted:t1,t2", reply);
    server.Stop();
  });
}

TEST_F(RpcTest, LargeArgumentsTravelViaRdmaRead) {
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    std::string big(100 * 1024, 'z');  // Exceeds any inline capacity.
    RpcServer server(f, memory, 2);
    server.set_handler(
        [&](uint8_t, const Slice& args, std::string* reply) {
          EXPECT_EQ(big.size(), args.size());
          EXPECT_EQ(big, args.ToString());
          *reply = std::to_string(args.size());
        });
    server.Start();
    RpcClient client(f, compute, &server);

    std::string reply;
    ASSERT_TRUE(
        client.CallWithWakeup(RpcType::kCompaction, big, &reply).ok());
    EXPECT_EQ(std::to_string(big.size()), reply);
    server.Stop();
  });
}

TEST_F(RpcTest, ConcurrentCallersGetTheirOwnReplies) {
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    Env* env = f->env();
    RpcServer server(f, memory, 4);
    server.set_handler(
        [env](uint8_t, const Slice& args, std::string* reply) {
          env->SleepNanos(1'000'000);
          *reply = "r:" + args.ToString();
        });
    server.Start();
    RpcClient client(f, compute, &server);

    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<ThreadHandle> hs;
    for (int i = 0; i < kThreads; i++) {
      hs.push_back(env->StartThread(compute->env_node(), "caller", [&, i] {
        for (int k = 0; k < 5; k++) {
          std::string arg = std::to_string(i) + "." + std::to_string(k);
          std::string reply;
          Status s = (k % 2 == 0)
                         ? client.Call(RpcType::kStats, arg, &reply)
                         : client.CallWithWakeup(RpcType::kCompaction, arg,
                                                 &reply);
          if (!s.ok() || reply != "r:" + arg) failures++;
        }
      }));
    }
    for (ThreadHandle h : hs) env->Join(h);
    EXPECT_EQ(0, failures.load());
    server.Stop();
  });
}

TEST_F(RpcTest, MultipleClientNodesOneServer) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* c1 = fabric.AddNode("compute1", 8, 1024 * kMB);
  rdma::Node* c2 = fabric.AddNode("compute2", 8, 1024 * kMB);
  rdma::Node* memory = fabric.AddNode("memory", 4, 1024 * kMB);
  env.Run(0, [&] {
    RpcServer server(&fabric, memory, 2);
    server.set_handler([](uint8_t, const Slice& args, std::string* reply) {
      *reply = "ok:" + args.ToString();
    });
    server.Start();
    RpcClient client1(&fabric, c1, &server);
    RpcClient client2(&fabric, c2, &server);

    std::string reply;
    ASSERT_TRUE(client1.Call(RpcType::kStats, "one", &reply).ok());
    EXPECT_EQ("ok:one", reply);
    ASSERT_TRUE(client2.Call(RpcType::kStats, "two", &reply).ok());
    EXPECT_EQ("ok:two", reply);
    server.Stop();
  });
}

TEST_F(RpcTest, WorkerBusyTimeIsTracked) {
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    RpcServer server(f, memory, 2);
    server.set_handler([f](uint8_t, const Slice&, std::string* reply) {
      f->env()->SleepNanos(10'000'000);  // 10 ms of "work".
      *reply = "done";
    });
    server.Start();
    RpcClient client(f, compute, &server);
    std::string reply;
    ASSERT_TRUE(
        client.CallWithWakeup(RpcType::kCompaction, "x", &reply).ok());
    EXPECT_GE(server.worker_busy_ns(), 10'000'000u);
    server.Stop();
  });
}

TEST_F(RpcTest, CallAsyncPipelinesCallsOnOneThread) {
  // The compaction scheduler's pattern: one thread keeps several
  // long-running server-side requests in flight and collects the replies
  // out of issue order.
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    Env* env = f->env();
    RpcServer server(f, memory, 4);
    server.set_handler(
        [env](uint8_t type, const Slice& args, std::string* reply) {
          EXPECT_EQ(RpcType::kCompaction, type);
          env->SleepNanos(2'000'000);
          *reply = "r:" + args.ToString();
        });
    server.Start();
    RpcClient client(f, compute, &server);

    constexpr int kCalls = 6;
    std::vector<PendingCall> calls;
    for (int i = 0; i < kCalls; i++) {
      calls.push_back(
          client.CallAsync(RpcType::kCompaction, "c" + std::to_string(i)));
      ASSERT_TRUE(calls.back().valid());
    }
    for (int i = kCalls - 1; i >= 0; i--) {
      std::string reply;
      Status s = calls[i].Wait(&reply);
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ("r:c" + std::to_string(i), reply);
      EXPECT_FALSE(calls[i].valid()) << "Wait must release the context";
    }
    server.Stop();
  });
}

TEST_F(RpcTest, CallAsyncDroppedCallsAreReclaimed) {
  // Abandoning a PendingCall parks its context on the zombie list; it may
  // be reused only after the late reply has landed, and that reply must
  // never corrupt a later call's buffers. Many rounds so reclamation
  // actually cycles contexts instead of registering fresh ones.
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    RpcServer server(f, memory, 2);
    server.set_handler([](uint8_t, const Slice& args, std::string* reply) {
      *reply = "r:" + args.ToString();
    });
    server.Start();
    RpcClient client(f, compute, &server);

    for (int round = 0; round < 32; round++) {
      PendingCall dropped = client.CallAsync(
          RpcType::kCompaction, "dropped" + std::to_string(round));
      ASSERT_TRUE(dropped.valid());
      PendingCall kept = client.CallAsync(RpcType::kCompaction,
                                          "kept" + std::to_string(round));
      std::string reply;
      ASSERT_TRUE(kept.Wait(&reply).ok());
      EXPECT_EQ("r:kept" + std::to_string(round), reply);
      // `dropped` dies here, its reply possibly still inbound.
    }
    server.Stop();
  });
}

TEST_F(RpcTest, CallAsyncLargeArgumentsTravelViaRdmaRead) {
  // CallAsync args never inline: they stage in the per-call registered
  // buffer the server pulls with an RDMA READ, same as CallWithWakeup.
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    std::string big(64 * 1024, '\0');
    for (size_t i = 0; i < big.size(); i++) {
      big[i] = static_cast<char>('a' + i % 26);
    }
    RpcServer server(f, memory, 2);
    server.set_handler([&](uint8_t, const Slice& args, std::string* reply) {
      EXPECT_EQ(big, args.ToString());
      *reply = std::to_string(args.size());
    });
    server.Start();
    RpcClient client(f, compute, &server);

    PendingCall call = client.CallAsync(RpcType::kCompaction, big);
    std::string reply;
    ASSERT_TRUE(call.Wait(&reply).ok());
    EXPECT_EQ(std::to_string(big.size()), reply);
    server.Stop();
  });
}

TEST_F(RpcTest, CallAsyncTeardownWithCallsInFlight) {
  // Client and server tear down while pipelined calls are still being
  // served: nothing may hang, and the late reply WRITEs must land in
  // node DRAM the abandoned contexts still own, not recycled memory.
  RunSim([](rdma::Fabric* f, rdma::Node* compute, rdma::Node* memory) {
    Env* env = f->env();
    RpcServer server(f, memory, 2);
    server.set_handler([env](uint8_t, const Slice&, std::string* reply) {
      env->SleepNanos(10'000'000);  // Replies arrive long after the drop.
      *reply = "late";
    });
    server.Start();
    {
      RpcClient client(f, compute, &server);
      for (int i = 0; i < 4; i++) {
        PendingCall call = client.CallAsync(RpcType::kCompaction, "x");
        ASSERT_TRUE(call.valid());
        // Dropped immediately: still executing server-side.
      }
    }  // Client destroyed with all four replies inbound.
    server.Stop();
  });
}

}  // namespace
}  // namespace remote
}  // namespace dlsm
