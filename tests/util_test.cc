// Unit tests for the utility kernel: Slice, Status, coding, CRC32C, hash,
// arena, random generators, histogram, logging helpers.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/util/arena.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/hash.h"
#include "src/util/histogram.h"
#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dlsm {
namespace {

TEST(SliceTest, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  std::string s = "hello";
  Slice a(s);
  EXPECT_EQ(5u, a.size());
  EXPECT_EQ('h', a[0]);
  EXPECT_EQ("hello", a.ToString());

  Slice b("hello");
  EXPECT_TRUE(a == b);
  b.remove_prefix(1);
  EXPECT_EQ("ello", b.ToString());
  EXPECT_TRUE(a != b);
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abcd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcd").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("abcd").starts_with(Slice("bc")));
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ("OK", Status::OK().ToString());

  Status nf = Status::NotFound("key", "missing");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ("NotFound: key: missing", nf.ToString());

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
}

TEST(CodingTest, Fixed32) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 7777) {
    EXPECT_EQ(v, DecodeFixed32(p));
    p += sizeof(uint32_t);
  }
}

TEST(CodingTest, Fixed64) {
  std::string s;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = static_cast<uint64_t>(1) << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; power++) {
    uint64_t v = static_cast<uint64_t>(1) << power;
    EXPECT_EQ(v - 1, DecodeFixed64(p));
    p += sizeof(uint64_t);
    EXPECT_EQ(v, DecodeFixed64(p));
    p += sizeof(uint64_t);
    EXPECT_EQ(v + 1, DecodeFixed64(p));
    p += sizeof(uint64_t);
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32 * 32; i++) {
    uint32_t v = (i / 32) << (i % 32);
    values.push_back(v);
    PutVarint32(&s, v);
  }
  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t actual;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::vector<uint64_t> values = {0, 100, ~static_cast<uint64_t>(0)};
  for (uint32_t k = 0; k < 64; k++) {
    const uint64_t power = 1ull << k;
    values.push_back(power);
    values.push_back(power - 1);
    values.push_back(power + 1);
  }
  std::string s;
  for (uint64_t v : values) {
    PutVarint64(&s, v);
    EXPECT_EQ(VarintLength(v),
              static_cast<int>(s.size()) -
                  static_cast<int>(s.size() - VarintLength(v)));
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint32Truncation) {
  uint32_t large_value = (1u << 31) + 100;
  std::string s;
  PutVarint32(&s, large_value);
  uint32_t result;
  for (size_t len = 0; len < s.size() - 1; len++) {
    EXPECT_EQ(nullptr, GetVarint32Ptr(s.data(), s.data() + len, &result));
  }
  EXPECT_NE(nullptr,
            GetVarint32Ptr(s.data(), s.data() + s.size(), &result));
  EXPECT_EQ(large_value, result);
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice("bar"));
  PutLengthPrefixedSlice(&s, Slice(std::string(200, 'x')));

  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("bar", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(200, 'x'), v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(Crc32cTest, StandardVectors) {
  // From the CRC32C specification (RFC 3720 appendix): 32 zero bytes.
  char buf[32];
  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, crc32c::Value(buf, sizeof(buf)));

  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, crc32c::Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(i);
  EXPECT_EQ(0x46dd794eu, crc32c::Value(buf, sizeof(buf)));
}

TEST(Crc32cTest, Extend) {
  std::string a = "hello ";
  std::string b = "world";
  std::string ab = "hello world";
  EXPECT_EQ(crc32c::Value(ab.data(), ab.size()),
            crc32c::Extend(crc32c::Value(a.data(), a.size()), b.data(),
                           b.size()));
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
  EXPECT_EQ(crc,
            crc32c::Unmask(crc32c::Unmask(crc32c::Mask(crc32c::Mask(crc)))));
}

TEST(HashTest, SignedUnsignedIssue) {
  const uint8_t data1[1] = {0x62};
  const uint8_t data2[2] = {0xc3, 0x97};
  const uint8_t data3[3] = {0xe2, 0x99, 0xa5};
  const uint8_t data4[4] = {0xe1, 0x80, 0xb9, 0x32};
  // Hash values should be stable across runs and not depend on char
  // signedness.
  EXPECT_EQ(Hash(nullptr, 0, 0xbc9f1d34),
            Hash(nullptr, 0, 0xbc9f1d34));
  uint32_t h1 = Hash(reinterpret_cast<const char*>(data1), 1, 0xbc9f1d34);
  uint32_t h2 = Hash(reinterpret_cast<const char*>(data2), 2, 0xbc9f1d34);
  uint32_t h3 = Hash(reinterpret_cast<const char*>(data3), 3, 0xbc9f1d34);
  uint32_t h4 = Hash(reinterpret_cast<const char*>(data4), 4, 0xbc9f1d34);
  std::set<uint32_t> distinct = {h1, h2, h3, h4};
  EXPECT_EQ(4u, distinct.size());
}

TEST(ArenaTest, Empty) { Arena arena; }

TEST(ArenaTest, ManyAllocations) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int kN = 10000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < kN; i++) {
    size_t s;
    if (i % (kN / 10) == 0) {
      s = i;
    } else {
      s = rnd.OneIn(4000)
              ? rnd.Uniform(6000)
              : (rnd.OneIn(10) ? rnd.Uniform(100) : rnd.Uniform(20));
    }
    if (s == 0) s = 1;
    char* r;
    if (rnd.OneIn(10)) {
      r = arena.AllocateAligned(s);
    } else {
      r = arena.Allocate(s);
    }
    for (size_t b = 0; b < s; b++) {
      r[b] = static_cast<char>(i % 256);
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    ASSERT_GE(arena.MemoryUsage(), bytes);
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      EXPECT_EQ(static_cast<int>(p[b]) & 0xff, static_cast<int>(i % 256));
    }
  }
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 1; i < 200; i++) {
    char* p = arena.AllocateAligned(i);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) %
                      alignof(std::max_align_t));
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rnd(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rnd.Uniform(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(10u, seen.size());
}

TEST(RandomTest, Determinism) {
  Random a(7), b(7), c(8);
  bool all_same_ab = true, any_diff_ac = false;
  for (int i = 0; i < 100; i++) {
    uint64_t va = a.Next64(), vb = b.Next64(), vc = c.Next64();
    all_same_ab = all_same_ab && (va == vb);
    any_diff_ac = any_diff_ac || (va != vc);
  }
  EXPECT_TRUE(all_same_ab);
  EXPECT_TRUE(any_diff_ac);
}

TEST(RandomTest, ZipfianIsSkewedAndInRange) {
  const uint64_t n = 1000;
  ZipfianGenerator gen(n, 0.99, 11);
  std::map<uint64_t, int> counts;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; i++) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // Item 0 should be substantially more popular than the median item.
  EXPECT_GT(counts[0], kSamples / 100);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) {
    h.Add(i);
  }
  EXPECT_EQ(100u, h.Count());
  EXPECT_NEAR(50.5, h.Average(), 0.01);
  EXPECT_EQ(1.0, h.Min());
  EXPECT_EQ(100.0, h.Max());
  EXPECT_GE(h.Percentile(99), 90.0);
  EXPECT_LE(h.Percentile(10), 20.0);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  for (int i = 0; i < 50; i++) a.Add(10);
  for (int i = 0; i < 50; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(100u, a.Count());
  EXPECT_EQ(10.0, a.Min());
  EXPECT_EQ(1000.0, a.Max());
  EXPECT_NEAR(505.0, a.Average(), 0.01);
}

TEST(LoggingTest, NumberToString) {
  EXPECT_EQ("0", NumberToString(0));
  EXPECT_EQ("123456789", NumberToString(123456789));
}

TEST(LoggingTest, EscapeString) {
  EXPECT_EQ("abc", EscapeString(Slice("abc")));
  EXPECT_EQ("\\x01", EscapeString(Slice("\x01")));
}

TEST(LoggingTest, ConsumeDecimalNumber) {
  Slice in("123abc");
  uint64_t v = 0;
  EXPECT_TRUE(ConsumeDecimalNumber(&in, &v));
  EXPECT_EQ(123u, v);
  EXPECT_EQ("abc", in.ToString());

  Slice bad("abc");
  EXPECT_FALSE(ConsumeDecimalNumber(&bad, &v));

  Slice overflow("118446744073709551616");  // > 2^64.
  EXPECT_FALSE(ConsumeDecimalNumber(&overflow, &v));
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Percentile(0.0));
  EXPECT_EQ(0.0, h.Percentile(50.0));
  EXPECT_EQ(0.0, h.Percentile(99.9));
  EXPECT_EQ(0.0, h.Median());
  EXPECT_EQ(0.0, h.Average());
}

TEST(HistogramTest, SingleSampleIsExactAtEveryPercentile) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(1u, h.Count());
  // One sample: every percentile is that sample, never an interpolated
  // bucket bound (the pre-hardening behavior returned bucket edges).
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(50.0));
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(99.9));
  EXPECT_DOUBLE_EQ(42.0, h.Average());
}

TEST(HistogramTest, PercentilesClampedAndMonotonic) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) h.Add(static_cast<double>(i));
  double p50 = h.Percentile(50.0);
  double p90 = h.Percentile(90.0);
  double p99 = h.Percentile(99.0);
  double p999 = h.Percentile(99.9);
  EXPECT_LE(h.Min(), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, h.Max());
  // Interpolation keeps the median near the true one (bucket-bounded).
  EXPECT_NEAR(500.0, p50, 60.0);
}

TEST(HistogramTest, MergeMatchesCombinedSamples) {
  Histogram a, b, both;
  Random rnd(99);
  for (int i = 0; i < 500; i++) {
    double v = static_cast<double>(rnd.Uniform(100000)) / 7.0;
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    both.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(both.Count(), a.Count());
  EXPECT_DOUBLE_EQ(both.Min(), a.Min());
  EXPECT_DOUBLE_EQ(both.Max(), a.Max());
  // Summation order differs between the merged and combined histograms,
  // so the mean is only bit-close, not bit-equal.
  EXPECT_NEAR(both.Average(), a.Average(), 1e-6 * both.Average());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(both.Percentile(p), a.Percentile(p)) << "p" << p;
  }
  // Merging an empty histogram changes nothing.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(both.Count(), a.Count());
  EXPECT_DOUBLE_EQ(both.Percentile(50.0), a.Percentile(50.0));
}

TEST(HistogramTest, ToJsonShape) {
  Histogram empty;
  std::string j = empty.ToJson();
  EXPECT_NE(std::string::npos, j.find("\"count\":0"));
  EXPECT_NE(std::string::npos, j.find("\"buckets\":[]"));

  Histogram h;
  for (int i = 1; i <= 100; i++) h.Add(static_cast<double>(i));
  j = h.ToJson();
  EXPECT_EQ('{', j.front());
  EXPECT_EQ('}', j.back());
  EXPECT_NE(std::string::npos, j.find("\"count\":100"));
  for (const char* field : {"\"min\":", "\"max\":", "\"avg\":",
                            "\"stddev\":", "\"p50\":", "\"p90\":",
                            "\"p99\":", "\"p999\":", "\"le\":", "\"n\":"}) {
    EXPECT_NE(std::string::npos, j.find(field)) << field;
  }
}

}  // namespace
}  // namespace dlsm
