// Tests for the compute-side cache: the TinyLFU frequency sketch, the
// sharded lock-free CLOCK cache, and the typed BlockCache wrapper.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/block_cache.h"
#include "src/util/cache.h"
#include "src/util/random.h"

namespace dlsm {
namespace {

// Deterministic payload for (k1, k2): hits must return exactly this.
std::string Payload(uint64_t k1, uint64_t k2, size_t len) {
  std::string p(len, '\0');
  for (size_t i = 0; i < len; i++) {
    p[i] = static_cast<char>(k1 * 31 + k2 * 7 + i);
  }
  return p;
}

// --- FrequencySketch --------------------------------------------------------

TEST(FrequencySketchTest, EstimateTracksAccessesAndSaturates) {
  FrequencySketch sketch(1024);
  EXPECT_EQ(0u, sketch.Estimate(42));
  sketch.Increment(42);
  EXPECT_GE(sketch.Estimate(42), 1u);
  for (int i = 0; i < 100; i++) sketch.Increment(42);
  EXPECT_EQ(15u, sketch.Estimate(42));  // 4-bit counters saturate.
  EXPECT_EQ(0u, sketch.Estimate(43));   // Unrelated key unaffected.
}

TEST(FrequencySketchTest, HalvingAgesCounters) {
  FrequencySketch sketch(1024);
  // 1024 counters -> one halving every 8 * 1024 recorded accesses.
  const uint64_t period = FrequencySketch::kSamplePeriodFactor * 1024;
  for (uint64_t i = 0; i < period; i++) sketch.Increment(7);
  EXPECT_EQ(1u, sketch.halvings());
  // Saturated at 15, halved once at the period boundary.
  EXPECT_EQ(7u, sketch.Estimate(7));
}

// --- ShardedClockCache ------------------------------------------------------

TEST(CacheTest, HitReturnsExactBytes) {
  ShardedClockCache cache(1 << 20, 4, true);
  std::string p = Payload(1, 100, 512);
  cache.Insert(1, 100, p.data(), p.size());
  std::string got(p.size(), '\0');
  ASSERT_TRUE(cache.Lookup(1, 100, got.data(), got.size()));
  EXPECT_EQ(p, got);
  EXPECT_FALSE(cache.Lookup(1, 101, got.data(), got.size()));
  CacheStats s = cache.stats();
  EXPECT_EQ(1u, s.hits);
  EXPECT_EQ(1u, s.inserts);
}

TEST(CacheTest, LengthMismatchIsAMiss) {
  ShardedClockCache cache(1 << 20, 1, true);
  std::string p = Payload(5, 0, 256);
  cache.Insert(5, 0, p.data(), p.size());
  std::string got(128, '\0');
  // Same key, different geometry: never serve a partial entry.
  EXPECT_FALSE(cache.Lookup(5, 0, got.data(), 128));
  got.resize(256);
  EXPECT_TRUE(cache.Lookup(5, 0, got.data(), 256));
}

TEST(CacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(8, ShardedClockCache(1 << 20, 5, true).num_shards());
  EXPECT_EQ(16, ShardedClockCache(1 << 20, 16, true).num_shards());
  EXPECT_EQ(1, ShardedClockCache(1 << 20, 0, true).num_shards());
}

TEST(CacheTest, KeysSpreadAcrossShardsAndAllHit) {
  // 64 KB over 8 shards; sequential (table, offset) keys must not pile
  // into one shard (the shard hash mixes both words), so all of a small
  // working set fits and hits.
  ShardedClockCache cache(64 << 10, 8, true);
  const size_t kLen = 128;
  for (uint64_t off = 0; off < 64; off++) {
    std::string p = Payload(9, off, kLen);
    cache.Insert(9, off, p.data(), kLen);
  }
  std::string got(kLen, '\0');
  int hits = 0;
  for (uint64_t off = 0; off < 64; off++) {
    if (cache.Lookup(9, off, got.data(), kLen)) {
      EXPECT_EQ(Payload(9, off, kLen), got);
      hits++;
    }
  }
  // 8 KB of payload against 64 KB capacity: everything fits unless the
  // shard spread is badly skewed (probe-window displacement).
  EXPECT_GE(hits, 60);
}

TEST(CacheTest, ClockEvictionBoundsUsage) {
  // One 4 KB shard (per-shard floor), admission off so every insert
  // displaces: usage must stay bounded and evictions must happen.
  ShardedClockCache cache(4096, 1, false);
  const size_t kLen = 256;
  for (uint64_t off = 0; off < 200; off++) {
    std::string p = Payload(3, off, kLen);
    cache.Insert(3, off, p.data(), kLen);
  }
  EXPECT_LE(cache.usage(), static_cast<size_t>(4096));
  CacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(0u, s.admission_rejects);
}

TEST(CacheTest, AdmissionProtectsHotEntriesFromOneShotFlood) {
  ShardedClockCache cache(4096, 1, true);
  const size_t kLen = 256;
  // Hot set: fills the shard, then repeated lookups drive the sketch
  // estimates to saturation.
  std::vector<uint64_t> hot;
  for (uint64_t off = 0; off < 16; off++) {
    std::string p = Payload(1, off, kLen);
    cache.Insert(1, off, p.data(), kLen);
    hot.push_back(off);
  }
  std::string got(kLen, '\0');
  for (int round = 0; round < 20; round++) {
    for (uint64_t off : hot) cache.Lookup(1, off, got.data(), kLen);
  }
  // One-shot flood: each cold key is touched once (the miss records one
  // sketch access) and inserted once. Estimate 1 never beats the hot
  // set's 15, so the flood is refused at the CLOCK victim contest.
  for (uint64_t off = 1000; off < 1200; off++) {
    cache.Lookup(2, off, got.data(), kLen);
    std::string p = Payload(2, off, kLen);
    cache.Insert(2, off, p.data(), kLen);
  }
  CacheStats s = cache.stats();
  EXPECT_GT(s.admission_rejects, 100u);
  int hot_hits = 0;
  for (uint64_t off : hot) {
    if (cache.Lookup(1, off, got.data(), kLen)) hot_hits++;
  }
  EXPECT_GE(hot_hits, 14);  // The hot set survived the flood.
}

TEST(CacheTest, BypassAdmissionDisplacesRegardless) {
  ShardedClockCache cache(4096, 1, true);
  const size_t kLen = 256;
  std::string got(kLen, '\0');
  for (uint64_t off = 0; off < 16; off++) {
    std::string p = Payload(1, off, kLen);
    cache.Insert(1, off, p.data(), kLen);
  }
  for (int round = 0; round < 20; round++) {
    for (uint64_t off = 0; off < 16; off++) {
      cache.Lookup(1, off, got.data(), kLen);
    }
  }
  for (uint64_t off = 1000; off < 1100; off++) {
    std::string p = Payload(2, off, kLen);
    cache.Insert(2, off, p.data(), kLen, /*bypass_admission=*/true);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(CacheTest, EraseKey1DropsOnlyThatTable) {
  ShardedClockCache cache(1 << 20, 4, true);
  const size_t kLen = 128;
  for (uint64_t off = 0; off < 32; off++) {
    std::string a = Payload(1, off, kLen), b = Payload(2, off, kLen);
    cache.Insert(1, off, a.data(), kLen);
    cache.Insert(2, off, b.data(), kLen);
  }
  EXPECT_EQ(32u, cache.EraseKey1(1));
  std::string got(kLen, '\0');
  for (uint64_t off = 0; off < 32; off++) {
    EXPECT_FALSE(cache.Lookup(1, off, got.data(), kLen));
    EXPECT_TRUE(cache.Lookup(2, off, got.data(), kLen));
  }
}

TEST(CacheTest, ClearEmptiesEverything) {
  ShardedClockCache cache(1 << 20, 4, true);
  const size_t kLen = 128;
  for (uint64_t off = 0; off < 32; off++) {
    std::string p = Payload(1, off, kLen);
    cache.Insert(1, off, p.data(), kLen);
  }
  EXPECT_GT(cache.usage(), 0u);
  cache.Clear();
  EXPECT_EQ(0u, cache.usage());
  std::string got(kLen, '\0');
  EXPECT_FALSE(cache.Lookup(1, 0, got.data(), kLen));
}

TEST(CacheTest, OversizeEntriesAreNeverAdmitted) {
  // Per-shard budget is 4096; anything over a quarter of that is refused
  // outright so one giant entry cannot monopolize a shard.
  ShardedClockCache cache(4096, 1, false);
  std::string big = Payload(1, 0, 2048);
  cache.Insert(1, 0, big.data(), big.size());
  EXPECT_EQ(0u, cache.usage());
  std::string got(big.size(), '\0');
  EXPECT_FALSE(cache.Lookup(1, 0, got.data(), big.size()));
}

TEST(CacheTest, ConcurrentReadersAndWritersStayCoherent) {
  // Hammer one small cache from mixed reader/writer threads; every hit
  // must return the exact expected payload (the refcount pin makes the
  // copy safe against concurrent eviction). Run under tsan in CI.
  ShardedClockCache cache(64 << 10, 4, true);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  constexpr size_t kLen = 64;
  constexpr uint64_t kKeys = 512;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Random rnd(1000 + t);
      std::string got(kLen, '\0');
      for (int i = 0; i < kOpsPerThread; i++) {
        uint64_t k1 = rnd.Uniform(4);
        uint64_t k2 = rnd.Uniform(kKeys);
        if (t % 2 == 0) {
          std::string p = Payload(k1, k2, kLen);
          cache.Insert(k1, k2, p.data(), kLen);
        } else if (cache.Lookup(k1, k2, got.data(), kLen) &&
                   got != Payload(k1, k2, kLen)) {
          bad++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(0, bad.load());
  EXPECT_LE(cache.usage(), cache.capacity());
}

// --- BlockCache -------------------------------------------------------------

TEST(BlockCacheTest, OfflineFailsClosedAndDropsContents) {
  BlockCache cache(1 << 20, 2, true);
  std::string p = Payload(1, 0, 256);
  cache.Insert(1, 0, p.data(), p.size());
  std::string got(p.size(), '\0');
  ASSERT_TRUE(cache.Lookup(1, 0, got.data(), got.size()));

  cache.set_offline(true);
  EXPECT_TRUE(cache.offline());
  // Offline: lookups miss, inserts drop.
  EXPECT_FALSE(cache.Lookup(1, 0, got.data(), got.size()));
  cache.Insert(1, 1, p.data(), p.size());

  // Back online (memory node restarted): nothing cached before or during
  // the fault may be served.
  cache.set_offline(false);
  EXPECT_FALSE(cache.Lookup(1, 0, got.data(), got.size()));
  EXPECT_FALSE(cache.Lookup(1, 1, got.data(), got.size()));
  EXPECT_EQ(0u, cache.usage());
}

TEST(BlockCacheTest, InvalidateTableDropsEntries) {
  BlockCache cache(1 << 20, 2, true);
  std::string p = Payload(7, 0, 256);
  cache.Insert(7, 0, p.data(), p.size());
  cache.Insert(7, 256, p.data(), p.size());
  cache.Insert(8, 0, p.data(), p.size());
  EXPECT_EQ(2u, cache.InvalidateTable(7));
  std::string got(p.size(), '\0');
  EXPECT_FALSE(cache.Lookup(7, 0, got.data(), got.size()));
  EXPECT_TRUE(cache.Lookup(8, 0, got.data(), got.size()));
}

TEST(BlockCacheTest, PropertyStringReportsCounters) {
  BlockCache cache(1 << 20, 2, true);
  std::string p = Payload(1, 0, 256);
  cache.Insert(1, 0, p.data(), p.size());
  std::string got(p.size(), '\0');
  cache.Lookup(1, 0, got.data(), got.size());
  cache.Lookup(1, 999, got.data(), got.size());
  std::string prop = cache.PropertyString();
  EXPECT_NE(std::string::npos, prop.find("hits=1"));
  EXPECT_NE(std::string::npos, prop.find("misses=1"));
  EXPECT_NE(std::string::npos, prop.find("inserts=1"));
  cache.set_offline(true);
  EXPECT_NE(std::string::npos, cache.PropertyString().find("offline"));
}

}  // namespace
}  // namespace dlsm
