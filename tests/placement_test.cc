// Tests for the multi-memory-node data plane: PlacementPolicy routing,
// the growable remote arena, and heat-based table migration.
//
// The core contract is that placement is invisible to readers: whatever
// policy scatters the tables across memory nodes — and however the heat
// rebalancer later moves them — the DB's contents stay byte-identical to
// the round-robin baseline on the same seeded workload.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/core/placement.h"
#include "src/rdma/fabric.h"
#include "src/remote/remote_alloc.h"
#include "src/sim/sim_env.h"
#include "src/util/random.h"
#include "tests/dlsm_test_util.h"

namespace dlsm {
namespace {

using test::SmallOptions;
using test::TestKey;
using test::TestValue;

constexpr int kMemoryNodes = 4;

// Builds a 1-compute / kMemoryNodes-memory deployment and runs body
// against an open multi-node DLsmDB. env == nullptr runs under SimEnv
// virtual time; otherwise (Env::Std()) everything is real threads.
void RunMultiNodeDb(Env* std_env, const std::function<void(Options*)>& tune,
                    const std::function<void(DB*, Env*, rdma::Fabric*,
                                             std::vector<rdma::Node*>*)>& body) {
  auto run = [&](Env* env) {
    rdma::Fabric fabric(env);
    rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
    std::vector<rdma::Node*> memory_nodes;
    std::vector<std::unique_ptr<MemoryNodeService>> services;
    for (int i = 0; i < kMemoryNodes; i++) {
      memory_nodes.push_back(fabric.AddNode("memory-" + std::to_string(i), 4,
                                            4ull << 30));
      services.push_back(std::make_unique<MemoryNodeService>(
          &fabric, memory_nodes.back(), 2));
      services.back()->Start();
    }

    Options options = SmallOptions(env);
    options.flush_region_size = 64 << 20;
    if (tune) tune(&options);

    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    for (auto& s : services) deps.memories.push_back(s.get());

    DB* raw = nullptr;
    Status s = DLsmDB::Open(options, deps, &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    std::unique_ptr<DB> db(raw);

    body(db.get(), env, &fabric, &memory_nodes);

    ASSERT_TRUE(db->Close().ok());
    db.reset();
    for (auto& svc : services) svc->Stop();
  };

  if (std_env != nullptr) {
    run(std_env);
    return;
  }
  SimEnv env;
  env.Run(0, [&] { run(&env); });
}

// Seeded workload with flushes, compactions, overwrites and deletes;
// returns the DB's full contents plus a sample of point-get answers.
std::vector<std::string> WorkloadFingerprint(DB* db, Env* env, int n) {
  Random rnd(401);
  const uint64_t space = static_cast<uint64_t>(n) * 2;
  for (int i = 0; i < n; i++) {
    uint64_t k = rnd.Uniform(space);
    EXPECT_TRUE(db->Put(WriteOptions(), TestKey(k), TestValue(k + i)).ok());
    if (rnd.OneIn(11)) {
      EXPECT_TRUE(
          db->Delete(WriteOptions(), TestKey(rnd.Uniform(space))).ok());
    }
    if (i == n / 2) {
      EXPECT_TRUE(db->Flush().ok());
      EXPECT_TRUE(db->WaitForBackgroundIdle().ok());
    }
  }
  EXPECT_TRUE(db->Flush().ok());
  EXPECT_TRUE(db->WaitForBackgroundIdle().ok());
  // A second unflushed wave so reads cross MemTable + L0 + compacted runs.
  for (int i = 0; i < n / 4; i++) {
    uint64_t k = rnd.Uniform(space);
    EXPECT_TRUE(db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
  }

  std::vector<std::string> fingerprint;
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    fingerprint.push_back(it->key().ToString() + "=" +
                          it->value().ToString());
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  for (int i = 0; i < 200; i++) {
    uint64_t k = rnd.Uniform(space);
    std::string value;
    Status s = db->Get(ReadOptions(), TestKey(k), &value);
    EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    fingerprint.push_back(TestKey(k) + "->" +
                          (s.ok() ? value : "<notfound>"));
  }
  (void)env;
  return fingerprint;
}

// Param: (use_std_env, policy under test).
class PlacementEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, PlacementPolicyKind>> {
};

TEST_P(PlacementEquivalenceTest, PolicyIsByteIdenticalToRoundRobin) {
  const bool use_std_env = std::get<0>(GetParam());
  const PlacementPolicyKind policy = std::get<1>(GetParam());
  // StdEnv legs pay real wire latency per op; keep them smaller.
  const int n = use_std_env ? 1200 : 4000;

  auto capture = [&](PlacementPolicyKind kind) {
    std::vector<std::string> fingerprint;
    RunMultiNodeDb(
        use_std_env ? Env::Std() : nullptr,
        [kind](Options* options) { options->placement_policy = kind; },
        [&](DB* db, Env* env, rdma::Fabric*, std::vector<rdma::Node*>*) {
          fingerprint = WorkloadFingerprint(db, env, n);
        });
    return fingerprint;
  };

  std::vector<std::string> baseline = capture(PlacementPolicyKind::kRoundRobin);
  std::vector<std::string> got = capture(policy);
  ASSERT_EQ(baseline.size(), got.size());
  for (size_t i = 0; i < baseline.size(); i++) {
    ASSERT_EQ(baseline[i], got[i]) << "diverged at entry " << i;
  }
  ASSERT_GT(baseline.size(), 1000u);  // The workload actually ran.
}

INSTANTIATE_TEST_SUITE_P(
    EnvAndPolicy, PlacementEquivalenceTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(PlacementPolicyKind::kRoundRobin,
                                         PlacementPolicyKind::kTable,
                                         PlacementPolicyKind::kLevel,
                                         PlacementPolicyKind::kRange)),
    [](const ::testing::TestParamInfo<std::tuple<bool, PlacementPolicyKind>>&
           info) {
      std::string name = std::get<0>(info.param) ? "StdEnv" : "SimEnv";
      switch (std::get<1>(info.param)) {
        case PlacementPolicyKind::kRoundRobin: return name + "RoundRobin";
        case PlacementPolicyKind::kTable: return name + "Table";
        case PlacementPolicyKind::kLevel: return name + "Level";
        case PlacementPolicyKind::kRange: return name + "Range";
      }
      return name + "Unknown";
    });

TEST(PlacementTest, TablePolicySpreadsAcrossNodes) {
  // Round-robin pins a single engine (shard 0) to one node; the table
  // policy must scatter its tables instead.
  RunMultiNodeDb(
      nullptr,
      [](Options* options) {
        options->placement_policy = PlacementPolicyKind::kTable;
      },
      [](DB* db, Env*, rdma::Fabric*, std::vector<rdma::Node*>*) {
        Random rnd(7);
        for (int i = 0; i < 4000; i++) {
          uint64_t k = rnd.Uniform(8000);
          ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
        DbStats stats = db->GetStats();
        ASSERT_EQ(static_cast<size_t>(kMemoryNodes), stats.per_node.size());
        int nodes_with_writes = 0;
        for (const auto& node : stats.per_node) {
          if (node.write_bytes > 0) nodes_with_writes++;
        }
        EXPECT_GT(nodes_with_writes, 1);
        std::string prop;
        ASSERT_TRUE(db->GetProperty("dlsm.placement", &prop));
        EXPECT_NE(std::string::npos, prop.find("policy: table")) << prop;
      });
}

TEST(PlacementTest, MigrationUnderConcurrentReadsStaysCorrect) {
  // Round-robin parks every table of this single engine on node 0; a
  // skewed read storm must trip the heat rebalancer, and every read
  // issued while tables are being copied and swapped must stay correct.
  RunMultiNodeDb(
      nullptr,
      [](Options* options) {
        options->placement_rebalance = true;
        options->placement_rebalance_interval_ns = 1'000'000;
        options->placement_rebalance_max_tables = 4;
      },
      [](DB* db, Env* env, rdma::Fabric*, std::vector<rdma::Node*>*) {
        const uint64_t space = 6000;
        std::map<std::string, std::string> model;
        Random rnd(19);
        for (uint64_t i = 0; i < space; i++) {
          std::string v = TestValue(i);
          ASSERT_TRUE(db->Put(WriteOptions(), TestKey(i), v).ok());
          model[TestKey(i)] = v;
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());

        std::atomic<int> mismatches{0};
        std::vector<ThreadHandle> hs;
        for (int t = 0; t < 4; t++) {
          hs.push_back(env->StartThread(0, "reader", [&, t] {
            Random trnd(23 + t);
            for (int i = 0; i < 4000; i++) {
              uint64_t k = trnd.Uniform(space);
              std::string value;
              Status s = db->Get(ReadOptions(), TestKey(k), &value);
              if (!s.ok() || value != model[TestKey(k)]) mismatches++;
              if (i % 64 == 0) env->MaybeYield();
            }
          }));
        }
        for (ThreadHandle h : hs) env->Join(h);
        EXPECT_EQ(0, mismatches.load());

        DbStats stats = db->GetStats();
        EXPECT_GT(stats.tables_migrated, 0u) << "rebalancer never fired";
        EXPECT_GT(stats.migration_bytes, 0u);

        // Post-migration full verification: the version swap preserved
        // every table's contents.
        std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
        auto m = model.begin();
        for (it->SeekToFirst(); it->Valid(); it->Next(), ++m) {
          ASSERT_NE(model.end(), m);
          EXPECT_EQ(m->first, it->key().ToString());
          EXPECT_EQ(m->second, it->value().ToString());
        }
        EXPECT_EQ(model.end(), m);
        ASSERT_TRUE(it->status().ok());
      });
}

TEST(PlacementTest, CrashNodeMidMigrationFailsClosed) {
  // A memory node dying while the rebalancer is copying tables toward or
  // away from it must surface as Status errors (reads may fail while the
  // node is down) — never a crash, never a hang, and after restart +
  // recovery the DB still closes cleanly.
  RunMultiNodeDb(
      nullptr,
      [](Options* options) {
        options->placement_rebalance = true;
        options->placement_rebalance_interval_ns = 500'000;
        options->placement_rebalance_max_tables = 2;
        options->rdma_max_retries = 2;
        options->rdma_retry_backoff_ns = 100'000;
      },
      [](DB* db, Env* env, rdma::Fabric* fabric,
         std::vector<rdma::Node*>* memories) {
        const uint64_t space = 5000;
        for (uint64_t i = 0; i < space; i++) {
          ASSERT_TRUE(
              db->Put(WriteOptions(), TestKey(i), TestValue(i)).ok());
        }
        ASSERT_TRUE(db->Flush().ok());
        ASSERT_TRUE(db->WaitForBackgroundIdle().ok());

        // Heat the tables so migration rounds are in flight, then yank a
        // destination node mid-sweep. Reads keep running across the
        // crash; each one must return a Status, good or bad.
        Random rnd(31);
        for (int i = 0; i < 1500; i++) {
          std::string value;
          Status s = db->Get(ReadOptions(), TestKey(rnd.Uniform(space)),
                             &value);
          if (i < 600) {
            // All nodes up: reads must succeed.
            ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
          }
          // After the crashes, reads of tables already migrated onto a
          // dead node legitimately fail — but always with a Status, never
          // an abort or a hang.
          if (i == 600) fabric->CrashNode((*memories)[1]);
          if (i == 900) fabric->CrashNode((*memories)[2]);
          if (i % 64 == 0) env->MaybeYield();
        }
        env->SleepNanos(20'000'000);  // A few rebalance periods.
        fabric->RestartNode((*memories)[1]);
        fabric->RestartNode((*memories)[2]);
        env->SleepNanos(5'000'000);
        // The engine survived; migration counters never went backwards
        // and the property still renders.
        std::string prop;
        ASSERT_TRUE(db->GetProperty("dlsm.placement", &prop));
        EXPECT_NE(std::string::npos, prop.find("rebalance: on")) << prop;
      });
}

TEST(RemoteArenaTest, GrowsOnDemandAndRecycles) {
  const size_t kChunk = 4096;
  int grows = 0;
  remote::RemoteArena arena(
      kChunk, /*owner_node=*/7, /*growth_bytes=*/4 * kChunk,
      [&grows](size_t bytes, rdma::MemoryRegion* region) {
        grows++;
        region->addr = 0x1000000ull * grows;
        region->length = bytes;
        region->rkey = 100 + grows;
        region->node_id = 42;
        return Status::OK();
      });

  // Empty arena: the first allocation provisions a region via grow.
  remote::RemoteChunk a = arena.Allocate();
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(1, grows);
  EXPECT_EQ(42u, a.home_node);
  EXPECT_EQ(7u, a.owner_node);

  // Drain the first region (4 chunks), forcing a second grow.
  std::vector<remote::RemoteChunk> held;
  for (int i = 0; i < 5; i++) {
    remote::RemoteChunk c = arena.Allocate();
    ASSERT_TRUE(c.valid());
    held.push_back(c);
  }
  EXPECT_EQ(2, grows);

  // Freed chunks are reused before any further growth.
  arena.Free(held.back());
  held.pop_back();
  remote::RemoteChunk reused = arena.Allocate();
  ASSERT_TRUE(reused.valid());
  EXPECT_EQ(2, grows);
  EXPECT_EQ(2u, arena.grow_calls());
}

TEST(RemoteArenaTest, ExhaustedNodeFailsWithoutGrowing) {
  const size_t kChunk = 4096;
  remote::RemoteArena arena(
      kChunk, 1, 4 * kChunk,
      [](size_t, rdma::MemoryRegion* region) {
        region->addr = 0;  // Node out of memory: addr==0 reply.
        return Status::OK();
      });
  remote::RemoteChunk c = arena.Allocate();
  EXPECT_FALSE(c.valid());
}

TEST(PlacementPolicyTest, FactoryAndNames) {
  Options options;
  for (PlacementPolicyKind kind :
       {PlacementPolicyKind::kRoundRobin, PlacementPolicyKind::kTable,
        PlacementPolicyKind::kLevel, PlacementPolicyKind::kRange}) {
    options.placement_policy = kind;
    std::unique_ptr<PlacementPolicy> policy = NewPlacementPolicy(options);
    ASSERT_NE(nullptr, policy);
    EXPECT_STREQ(PlacementPolicyKindName(kind), policy->Name());
    PlacementContext ctx;
    ctx.shard = 3;
    ctx.level = 1;
    ctx.table_seq = 17;
    std::string key = TestKey(123);
    ctx.first_key = key;
    for (int nodes : {1, 2, 4, 7}) {
      int slot = policy->Place(ctx, nodes);
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, nodes);
    }
  }
}

TEST(PlacementPolicyTest, RangeHonorsSplitPoints) {
  Options options;
  options.placement_policy = PlacementPolicyKind::kRange;
  options.placement_split_points = {TestKey(1000), TestKey(2000)};
  std::unique_ptr<PlacementPolicy> policy = NewPlacementPolicy(options);
  PlacementContext ctx;
  std::string low = TestKey(10), mid = TestKey(1500), high = TestKey(9000);
  ctx.first_key = low;
  EXPECT_EQ(0, policy->Place(ctx, 3));
  ctx.first_key = mid;
  EXPECT_EQ(1, policy->Place(ctx, 3));
  ctx.first_key = high;
  EXPECT_EQ(2, policy->Place(ctx, 3));
}

}  // namespace
}  // namespace dlsm
