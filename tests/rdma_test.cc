// Tests for the software RDMA fabric: registration/rkey validation, verb
// semantics, link timing (latency- vs bandwidth-bound transfers), FIFO
// completion ordering, atomics, and the RdmaManager wrappers.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/rdma/fabric.h"
#include "src/rdma/rdma_manager.h"
#include "src/sim/sim_env.h"

namespace dlsm {
namespace rdma {
namespace {

constexpr size_t kMB = 1024 * 1024;

// The SimEnv charges *measured* host CPU into virtual time, so the fabric's
// timing-calibration assertions (latency-bound, bandwidth-bound) only hold
// when the host runs at native speed. Sanitizer instrumentation inflates
// host CPU 5-20x; skip the calibration tests there — the semantic and
// ordering tests are what the sanitizer jobs exist to check.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

#define DLSM_SKIP_TIMING_UNDER_SANITIZERS()                               \
  do {                                                                    \
    if (kSanitizedBuild)                                                  \
      GTEST_SKIP() << "timing calibration is meaningless when sanitizer " \
                      "instrumentation inflates the measured host CPU";   \
  } while (0)

class FabricTest : public ::testing::Test {
 protected:
  void RunSim(std::function<void(Fabric*, Node*, Node*)> body) {
    SimEnv env;
    Fabric fabric(&env);
    Node* compute = fabric.AddNode("compute", 24, 64 * kMB);
    Node* memory = fabric.AddNode("memory", 4, 256 * kMB);
    env.Run(0, [&] { body(&fabric, compute, memory); });
  }
};

TEST_F(FabricTest, WriteThenReadRoundTrip) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);

    std::string payload = "the quick brown fox";
    ASSERT_TRUE(
        mgr.Write(payload.data(), mr.addr, mr.rkey, payload.size()).ok());

    char back[64] = {0};
    ASSERT_TRUE(mgr.Read(back, mr.addr, mr.rkey, payload.size()).ok());
    EXPECT_EQ(payload, std::string(back, payload.size()));
  });
}

TEST_F(FabricTest, InvalidRkeyRejected) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);

    char buf[16] = {0};
    Status s = mgr.Read(buf, mr.addr, mr.rkey + 12345, 16);
    EXPECT_FALSE(s.ok());
  });
}

TEST_F(FabricTest, OutOfRangeAccessRejected) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);

    char buf[16] = {0};
    // Reading past the registered range must fail and, as on a real RC QP,
    // the failure leaves the queue pair in the error state.
    EXPECT_FALSE(mgr.Read(buf, mr.addr + 4090, mr.rkey, 16).ok());
    EXPECT_TRUE(mgr.ThreadVq()->qp()->InError());
    // After recovery (drain + reset) the edge read succeeds again.
    ASSERT_TRUE(mgr.ThreadVq()->Recover().ok());
    EXPECT_FALSE(mgr.ThreadVq()->qp()->InError());
    EXPECT_TRUE(mgr.Read(buf, mr.addr + 4080, mr.rkey, 16).ok());
  });
}

TEST_F(FabricTest, SmallTransfersAreLatencyBound) {
  DLSM_SKIP_TIMING_UNDER_SANITIZERS();
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    Env* env = f->env();
    char* remote = memory->AllocDram(kMB);
    MemoryRegion mr = f->RegisterMemory(memory, remote, kMB);
    RdmaManager mgr(f, compute, memory);

    char buf[64];
    // Warm up: thread-local QP creation is real CPU and must not count.
    ASSERT_TRUE(mgr.Read(buf, mr.addr, mr.rkey, 64).ok());
    uint64_t start = env->NowNanos();
    ASSERT_TRUE(mgr.Read(buf, mr.addr, mr.rkey, 64).ok());
    uint64_t small_ns = env->NowNanos() - start;
    // A 64 B read should cost roughly the base latency (1.6 us).
    EXPECT_GE(small_ns, f->params().read_latency_ns);
    EXPECT_LT(small_ns, 3 * f->params().read_latency_ns);
  });
}

TEST_F(FabricTest, LargeTransfersAreBandwidthBound) {
  DLSM_SKIP_TIMING_UNDER_SANITIZERS();
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    Env* env = f->env();
    char* remote = memory->AllocDram(2 * kMB);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 2 * kMB);
    RdmaManager mgr(f, compute, memory);

    std::string buf(kMB, 'x');
    uint64_t start = env->NowNanos();
    ASSERT_TRUE(mgr.Read(buf.data(), mr.addr, mr.rkey, kMB).ok());
    uint64_t big_ns = env->NowNanos() - start;
    // 1 MB at 12.5 GB/s is ~84 us; the base latency is negligible.
    uint64_t expected =
        static_cast<uint64_t>(kMB / f->params().BytesPerNano());
    EXPECT_GE(big_ns, expected);
    EXPECT_LT(big_ns, expected * 2);
  });
}

TEST_F(FabricTest, PerByteThroughputGapMatchesPaperClaim) {
  // Paper Sec. I: ~100x gap between moving data in 64 B units vs 1 MB units.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    Env* env = f->env();
    char* remote = memory->AllocDram(4 * kMB);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4 * kMB);
    RdmaManager mgr(f, compute, memory);
    std::string buf(kMB, 'x');

    uint64_t start = env->NowNanos();
    for (int i = 0; i < 64; i++) {
      ASSERT_TRUE(mgr.Read(buf.data(), mr.addr, mr.rkey, 64).ok());
    }
    double small_bpns = 64.0 * 64 / (env->NowNanos() - start);

    start = env->NowNanos();
    ASSERT_TRUE(mgr.Read(buf.data(), mr.addr, mr.rkey, kMB).ok());
    double big_bpns = static_cast<double>(kMB) / (env->NowNanos() - start);

    EXPECT_GT(big_bpns / small_bpns, 50.0);
  });
}

TEST_F(FabricTest, AsyncWritesPipelineOnTheLink) {
  // Posting k writes back-to-back should take ~k*transfer + 1 latency, not
  // k*(transfer + latency): the NIC overlaps request issue with transfers.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    Env* env = f->env();
    constexpr int kWrites = 8;
    char* remote = memory->AllocDram(kWrites * kMB);
    MemoryRegion mr = f->RegisterMemory(memory, remote, kWrites * kMB);
    std::string buf(kMB, 'y');

    auto [qp, peer] = f->CreateQpPair(compute, memory);
    (void)peer;

    // Serial baseline: wait out each write's round trip.
    uint64_t start = env->NowNanos();
    for (int i = 0; i < kWrites; i++) {
      qp->PostWrite(buf.data(), mr.addr + i * kMB, mr.rkey, kMB);
      Completion c = qp->WaitCompletion();
      ASSERT_TRUE(c.status.ok());
    }
    uint64_t serial = env->NowNanos() - start;

    // Pipelined: post all, then drain.
    start = env->NowNanos();
    for (int i = 0; i < kWrites; i++) {
      qp->PostWrite(buf.data(), mr.addr + i * kMB, mr.rkey, kMB);
    }
    for (int i = 0; i < kWrites; i++) {
      Completion c = qp->WaitCompletion();
      ASSERT_TRUE(c.status.ok());
    }
    uint64_t elapsed = env->NowNanos() - start;

    uint64_t transfer =
        static_cast<uint64_t>(kMB / f->params().BytesPerNano());
    const uint64_t latency = f->params().write_latency_ns;
    EXPECT_GE(elapsed, kWrites * transfer);
    EXPECT_GE(serial, kWrites * (transfer + latency));
    // Pipelining hides all but one base latency. SimEnv charges the
    // loops' measured host CPU into virtual time, so an absolute upper
    // bound on `elapsed` flakes — both loops post the same verbs, so the
    // charge cancels in the difference. Demand at least half the ideal
    // (kWrites - 1) * latency saving.
    EXPECT_GT(serial - elapsed, (kWrites / 2) * latency);
  });
}

TEST_F(FabricTest, CompletionsAreFifoPerQp) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(kMB);
    MemoryRegion mr = f->RegisterMemory(memory, remote, kMB);
    auto [qp, peer] = f->CreateQpPair(compute, memory);
    (void)peer;
    char buf[256];
    for (int i = 1; i <= 10; i++) {
      qp->PostWrite(buf, mr.addr, mr.rkey, 256, /*wr_id=*/100 + i);
    }
    uint64_t last_time = 0;
    for (int i = 1; i <= 10; i++) {
      Completion c = qp->WaitCompletion();
      EXPECT_EQ(100u + i, c.wr_id);
      EXPECT_GE(c.completion_ns, last_time);
      last_time = c.completion_ns;
    }
  });
}

TEST_F(FabricTest, SendRecvDeliversPayload) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    auto [cq, sq] = f->CreateQpPair(compute, memory);
    char rbuf[128] = {0};
    sq->PostRecv(rbuf, sizeof(rbuf), 7);

    std::string msg = "hello from compute";
    cq->PostSend(msg.data(), msg.size());

    Completion rc = sq->WaitRecvCompletion();
    ASSERT_TRUE(rc.status.ok());
    EXPECT_EQ(7u, rc.wr_id);
    EXPECT_EQ(msg.size(), rc.byte_len);
    EXPECT_EQ(msg, std::string(rbuf, rc.byte_len));

    Completion sc = cq->WaitCompletion();
    EXPECT_TRUE(sc.status.ok());
  });
}

TEST_F(FabricTest, SendWithoutRecvReportsRnr) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    auto [cq, sq] = f->CreateQpPair(compute, memory);
    (void)sq;
    std::string msg = "nobody listening";
    cq->PostSend(msg.data(), msg.size());
    Completion rc = sq->WaitRecvCompletion();
    EXPECT_FALSE(rc.status.ok());
  });
}

TEST_F(FabricTest, WriteWithImmNotifiesPeer) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    auto [cq, sq] = f->CreateQpPair(compute, memory);
    char dummy[8];
    sq->PostRecv(dummy, sizeof(dummy), 9);

    std::string payload = "data";
    cq->PostWriteWithImm(payload.data(), mr.addr, mr.rkey, payload.size(),
                         0xfeed);

    Completion rc = sq->WaitRecvCompletion();
    ASSERT_TRUE(rc.status.ok());
    EXPECT_TRUE(rc.has_imm);
    EXPECT_EQ(0xfeedu, rc.imm);
    EXPECT_EQ(9u, rc.wr_id);
    EXPECT_EQ(0, memcmp(remote, "data", 4));
  });
}

TEST_F(FabricTest, FetchAddIsAtomicAndReturnsPrevious) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(64);
    memset(remote, 0, 64);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 64);
    RdmaManager mgr(f, compute, memory);

    uint64_t prev = 99;
    ASSERT_TRUE(mgr.FetchAdd(mr.addr, mr.rkey, 5, &prev).ok());
    EXPECT_EQ(0u, prev);
    ASSERT_TRUE(mgr.FetchAdd(mr.addr, mr.rkey, 3, &prev).ok());
    EXPECT_EQ(5u, prev);
    uint64_t value;
    memcpy(&value, remote, 8);
    EXPECT_EQ(8u, value);
  });
}

TEST_F(FabricTest, CmpSwapSemantics) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(64);
    uint64_t init = 42;
    memcpy(remote, &init, 8);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 64);
    RdmaManager mgr(f, compute, memory);

    uint64_t prev = 0;
    // Mismatched expectation: value unchanged, previous returned.
    ASSERT_TRUE(mgr.CmpSwap(mr.addr, mr.rkey, 7, 100, &prev).ok());
    EXPECT_EQ(42u, prev);
    uint64_t value;
    memcpy(&value, remote, 8);
    EXPECT_EQ(42u, value);

    // Matching expectation: swapped.
    ASSERT_TRUE(mgr.CmpSwap(mr.addr, mr.rkey, 42, 100, &prev).ok());
    EXPECT_EQ(42u, prev);
    memcpy(&value, remote, 8);
    EXPECT_EQ(100u, value);
  });
}

TEST_F(FabricTest, MisalignedAtomicRejected) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(64);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 64);
    RdmaManager mgr(f, compute, memory);
    uint64_t prev;
    EXPECT_FALSE(mgr.FetchAdd(mr.addr + 1, mr.rkey, 1, &prev).ok());
  });
}

TEST_F(FabricTest, StampedWriteReleasesStampWithCompletionTime) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    Env* env = f->env();
    char* remote = memory->AllocDram(4096);
    memset(remote, 0, 4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    auto [qp, peer] = f->CreateQpPair(compute, memory);
    (void)peer;

    std::string payload = "stamped payload";
    qp->PostWriteStamped(payload.data(), mr.addr, mr.rkey, payload.size());
    uint64_t stamp = QueuePair::ReadReadyStamp(remote + payload.size());
    ASSERT_NE(0u, stamp);
    env->AdvanceTo(stamp);
    EXPECT_GE(env->NowNanos(), stamp);
    EXPECT_EQ(0, memcmp(remote, payload.data(), payload.size()));
    Completion c = qp->WaitCompletion();
    EXPECT_TRUE(c.status.ok());
    EXPECT_EQ(stamp, c.completion_ns);
  });
}

TEST_F(FabricTest, ConcurrentThreadsShareLinkBandwidth) {
  DLSM_SKIP_TIMING_UNDER_SANITIZERS();
  // Two threads each reading 8 MB over the same link should take ~2x the
  // virtual time of one thread reading 8 MB: the wire serializes.
  SimEnv env;
  Fabric fabric(&env);
  Node* compute = fabric.AddNode("compute", 24, 64 * kMB);
  Node* memory = fabric.AddNode("memory", 4, 256 * kMB);
  uint64_t one = 0, two = 0;
  env.Run(0, [&] {
    char* remote = memory->AllocDram(8 * kMB);
    MemoryRegion mr = fabric.RegisterMemory(memory, remote, 8 * kMB);
    RdmaManager mgr(&fabric, compute, memory);

    auto read_8mb = [&] {
      std::string buf(kMB, 0);
      for (int i = 0; i < 8; i++) {
        ASSERT_TRUE(mgr.Read(buf.data(), mr.addr, mr.rkey, kMB).ok());
      }
    };

    uint64_t start = env.NowNanos();
    read_8mb();
    one = env.NowNanos() - start;

    Barrier barrier(&env, 3);
    auto worker = [&] {
      barrier.Arrive();
      read_8mb();
      barrier.Arrive();
    };
    ThreadHandle h1 = env.StartThread(compute->env_node(), "r1", worker);
    ThreadHandle h2 = env.StartThread(compute->env_node(), "r2", worker);
    barrier.Arrive();
    start = env.NowNanos();
    barrier.Arrive();
    two = env.NowNanos() - start;
    env.Join(h1);
    env.Join(h2);
  });
  // Loose bounds: measured-CPU noise moves these a little between runs,
  // but wire serialization must dominate.
  EXPECT_GT(two, one * 13 / 10);
  EXPECT_LT(two, one * 4);
}

TEST_F(FabricTest, WireAccountingTracksBytes) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);
    uint64_t bytes0 = f->wire_bytes();
    char buf[512];
    ASSERT_TRUE(mgr.Write(buf, mr.addr, mr.rkey, 512).ok());
    ASSERT_TRUE(mgr.Read(buf, mr.addr, mr.rkey, 512).ok());
    EXPECT_EQ(bytes0 + 1024, f->wire_bytes());
  });
}

TEST(NodeTest, DramAllocationIsBoundedAndAligned) {
  SimEnv env;
  Fabric fabric(&env);
  Node* n = fabric.AddNode("n", 1, 1024 * 1024);
  char* a = n->AllocDram(100);
  ASSERT_NE(nullptr, a);
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(a) % 64);
  char* b = n->AllocDram(100);
  EXPECT_GE(b - a, 100);
  EXPECT_EQ(nullptr, n->AllocDram(2 * 1024 * 1024));
}

TEST(FabricStdEnvTest, WorksInRealTime) {
  // The fabric must also run under StdEnv (used by engine unit tests).
  Env* env = Env::Std();
  LinkParams fast;
  fast.read_latency_ns = 1000;
  Fabric fabric(env, fast);
  Node* compute = fabric.AddNode("compute", 0, 16 * kMB);
  Node* memory = fabric.AddNode("memory", 0, 16 * kMB);
  char* remote = memory->AllocDram(4096);
  MemoryRegion mr = fabric.RegisterMemory(memory, remote, 4096);
  RdmaManager mgr(&fabric, compute, memory);
  std::string payload = "real time";
  ASSERT_TRUE(
      mgr.Write(payload.data(), mr.addr, mr.rkey, payload.size()).ok());
  char back[32] = {0};
  ASSERT_TRUE(mgr.Read(back, mr.addr, mr.rkey, payload.size()).ok());
  EXPECT_EQ(payload, std::string(back, payload.size()));
}

TEST_F(FabricTest, HandlesHarvestOutOfPostOrder) {
  // PostReadAsync posts without waiting and returns a WrHandle. The wire
  // still completes per-QP FIFO (non-decreasing completion times), but
  // handles may be waited in ANY order: a completion popping before its
  // handle asks is stashed until claimed.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    constexpr int kReads = 8;
    constexpr size_t kLen = 512;
    char* remote = memory->AllocDram(kReads * kLen);
    for (int i = 0; i < kReads; i++) {
      memset(remote + i * kLen, 'a' + i, kLen);
    }
    MemoryRegion mr = f->RegisterMemory(memory, remote, kReads * kLen);
    RdmaManager mgr(f, compute, memory);

    std::vector<std::string> bufs(kReads, std::string(kLen, '\0'));
    std::vector<WrHandle> handles;
    for (int i = 0; i < kReads; i++) {
      handles.push_back(
          mgr.PostReadAsync(bufs[i].data(), mr.addr + i * kLen, mr.rkey,
                            kLen));
    }
    // Harvest in reverse post order.
    for (int i = kReads - 1; i >= 0; i--) {
      EXPECT_TRUE(handles[i].Wait().ok());
    }
    // The wire completed FIFO regardless of harvest order.
    for (int i = 1; i < kReads; i++) {
      EXPECT_LE(handles[i - 1].completion_ns(), handles[i].completion_ns());
    }
    for (int i = 0; i < kReads; i++) {
      EXPECT_EQ(std::string(kLen, 'a' + i), bufs[i]);
    }
  });
}

TEST_F(FabricTest, SyncVerbsInterleaveWithOutstandingHandles) {
  // The old layer forbade any sync verb while async posts were in flight.
  // With handle-based harvest, sync wrappers are post+wait on the same
  // queue and interleave freely with outstanding reads.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    memset(remote, 'r', 4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);

    std::string a(256, '\0'), b(256, '\0');
    WrHandle ra = mgr.PostReadAsync(a.data(), mr.addr, mr.rkey, 256);
    // Sync WRITE and READ on the same thread (same QP) while ra is live.
    std::string w(64, 'w');
    ASSERT_TRUE(mgr.Write(w.data(), mr.addr + 1024, mr.rkey, 64).ok());
    std::string back(64, '\0');
    ASSERT_TRUE(mgr.Read(back.data(), mr.addr + 1024, mr.rkey, 64).ok());
    EXPECT_EQ(w, back);
    // Atomics too.
    uint64_t prev = 0;
    ASSERT_TRUE(mgr.FetchAdd(mr.addr + 2048, mr.rkey, 5, &prev).ok());
    // A second async read posted mid-stream also resolves.
    WrHandle rb = mgr.PostReadAsync(b.data(), mr.addr, mr.rkey, 256);
    EXPECT_TRUE(rb.Wait().ok());
    EXPECT_TRUE(ra.Wait().ok());
    EXPECT_EQ(std::string(256, 'r'), a);
    EXPECT_EQ(std::string(256, 'r'), b);
  });
}

TEST_F(FabricTest, InterleavedReadWriteOneQpKeepsWireOrder) {
  // Fabric-level ordering: READs and WRITEs mixed on one verb queue
  // complete FIFO on the wire, and a READ posted after a WRITE to the
  // same remote range observes the written bytes.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    memset(remote, '0', 4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);
    VerbQueue* vq = mgr.ThreadVq();

    std::string w1(512, 'x'), w2(512, 'y');
    std::string r1(512, '\0'), r2(512, '\0');
    WrHandle h1 = vq->Write(w1.data(), mr.addr, mr.rkey, 512);
    WrHandle h2 = vq->Read(r1.data(), mr.addr, mr.rkey, 512);
    WrHandle h3 = vq->Write(w2.data(), mr.addr, mr.rkey, 512);
    WrHandle h4 = vq->Read(r2.data(), mr.addr, mr.rkey, 512);
    EXPECT_EQ(4u, vq->in_flight());

    // Harvest out of order: reads first, then writes.
    EXPECT_TRUE(h4.Wait().ok());
    EXPECT_TRUE(h2.Wait().ok());
    EXPECT_TRUE(h3.Wait().ok());
    EXPECT_TRUE(h1.Wait().ok());
    EXPECT_EQ(0u, vq->in_flight());

    // Each read saw the preceding write's bytes (program order on one QP).
    EXPECT_EQ(w1, r1);
    EXPECT_EQ(w2, r2);
    // Wire completion times are FIFO in post order.
    EXPECT_LE(h1.completion_ns(), h2.completion_ns());
    EXPECT_LE(h2.completion_ns(), h3.completion_ns());
    EXPECT_LE(h3.completion_ns(), h4.completion_ns());
  });
}

TEST_F(FabricTest, ReadBatchDestructorCancelsWithoutBlocking) {
  // Satellite: ~ReadBatch used to block in WaitAll, which could wedge a
  // SimEnv thread during error unwind. Destroying an un-waited batch now
  // cancels its handles without blocking, and the thread's verb queue
  // remains fully usable afterwards.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(8192);
    memset(remote, 'k', 8192);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 8192);
    RdmaManager mgr(f, compute, memory);

    std::vector<std::string> bufs(4, std::string(256, '\0'));
    {
      ReadBatch batch(&mgr);
      for (int i = 0; i < 4; i++) {
        batch.Add(bufs[i].data(), mr.addr + i * 256, mr.rkey, 256);
      }
      // No WaitAll: simulate error unwind abandoning the wave.
    }
    EXPECT_EQ(4u, mgr.outstanding_ops());  // Cancelled, not yet popped.

    // The same thread can immediately issue sync verbs and new batches;
    // the abandoned completions are swept, not misattributed.
    std::string back(64, '\0');
    ASSERT_TRUE(mgr.Read(back.data(), mr.addr, mr.rkey, 64).ok());
    EXPECT_EQ(std::string(64, 'k'), back);
    {
      ReadBatch batch(&mgr);
      std::string b2(128, '\0');
      batch.Add(b2.data(), mr.addr, mr.rkey, 128);
      ASSERT_TRUE(batch.WaitAll().ok());
      EXPECT_EQ(std::string(128, 'k'), b2);
    }
    EXPECT_EQ(0u, mgr.outstanding_ops());
    RdmaVerbStats vs = mgr.StatsSnapshot();
    EXPECT_EQ(4u, vs.abandoned);
  });
}

TEST_F(FabricTest, ExplicitCancelDropsCompletionEvenIfAlreadyStashed) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(1024);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 1024);
    RdmaManager mgr(f, compute, memory);
    VerbQueue* vq = mgr.ThreadVq();

    std::string b1(128, '\0'), b2(128, '\0');
    WrHandle h1 = vq->Read(b1.data(), mr.addr, mr.rkey, 128);
    WrHandle h2 = vq->Read(b2.data(), mr.addr, mr.rkey, 128);
    // Waiting h2 stashes h1's (earlier, FIFO) completion.
    ASSERT_TRUE(h2.Wait().ok());
    h1.Cancel();  // Drops the stashed completion.
    EXPECT_FALSE(h1.valid());
    EXPECT_EQ(0u, vq->in_flight());
    RdmaVerbStats vs = mgr.StatsSnapshot();
    EXPECT_EQ(1u, vs.abandoned);
    EXPECT_EQ(2u, vs.completed);
  });
}

TEST_F(FabricTest, VerbStatsAccountPerClassOpsBytesAndLatency) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(1 << 20);
    memset(remote, 's', 1 << 20);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 1 << 20);
    RdmaManager mgr(f, compute, memory);

    std::string buf(4096, '\0');
    ReadBatch batch(&mgr);
    for (int i = 0; i < 8; i++) {
      batch.Add(buf.data(), mr.addr, mr.rkey, 512);
    }
    ASSERT_TRUE(batch.WaitAll().ok());
    ASSERT_TRUE(mgr.Write(buf.data(), mr.addr, mr.rkey, 4096).ok());
    uint64_t prev;
    ASSERT_TRUE(mgr.FetchAdd(mr.addr, mr.rkey, 1, &prev).ok());

    RdmaVerbStats vs = mgr.StatsSnapshot();
    EXPECT_EQ(8u, vs.read.ops);
    EXPECT_EQ(8u * 512u, vs.read.bytes);
    EXPECT_EQ(1u, vs.write.ops);
    EXPECT_EQ(4096u, vs.write.bytes);
    EXPECT_EQ(1u, vs.atomic.ops);
    EXPECT_EQ(10u, vs.posted);
    EXPECT_EQ(10u, vs.completed);
    EXPECT_EQ(0u, vs.outstanding);
    EXPECT_GE(vs.max_outstanding, 8u);  // The wave was fully in flight.
    EXPECT_EQ(8u, vs.read.latency_us.Count());
    // Wire latency is at least the base READ latency.
    EXPECT_GE(vs.read.latency_us.Min(),
              f->params().read_latency_ns / 1000.0);
    // Merge is exact: doubling a snapshot doubles counts.
    RdmaVerbStats dbl = vs;
    dbl.MergeFrom(vs);
    EXPECT_EQ(16u, dbl.read.ops);
    EXPECT_EQ(16u, dbl.read.latency_us.Count());
    EXPECT_FALSE(dbl.ToString().empty());
  });
}

TEST_F(FabricTest, ConcurrentWavesOnOneThreadStayIndependent) {
  // Two live batches plus a raw handle on the same thread — the old
  // "one live batch per thread" restriction is gone.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(8192);
    memset(remote, 'm', 8192);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 8192);
    RdmaManager mgr(f, compute, memory);

    std::string a(256, '\0'), b(256, '\0'), c(256, '\0');
    ReadBatch wave1(&mgr);
    wave1.Add(a.data(), mr.addr, mr.rkey, 256);
    ReadBatch wave2(&mgr);
    wave2.Add(b.data(), mr.addr + 256, mr.rkey, 256);
    WrHandle lone = mgr.PostReadAsync(c.data(), mr.addr + 512, mr.rkey, 256);

    // Drain newest-first.
    EXPECT_TRUE(lone.Wait().ok());
    EXPECT_TRUE(wave2.WaitAll().ok());
    EXPECT_TRUE(wave1.WaitAll().ok());
    EXPECT_EQ(std::string(256, 'm'), a);
    EXPECT_EQ(std::string(256, 'm'), b);
    EXPECT_EQ(std::string(256, 'm'), c);
  });
}

TEST_F(FabricTest, DoorbellBatchPaysOneLatencyPerWave) {
  DLSM_SKIP_TIMING_UNDER_SANITIZERS();
  // A wave of N small READs must cost about the sum of their wire
  // occupancy plus ONE base latency — not N round trips. This is the
  // whole payoff of posting the batch before draining the CQ.
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    Env* env = f->env();
    constexpr int kReads = 16;
    constexpr size_t kLen = 256;
    char* remote = memory->AllocDram(kReads * kLen);
    MemoryRegion mr = f->RegisterMemory(memory, remote, kReads * kLen);
    RdmaManager mgr(f, compute, memory);
    std::vector<std::string> bufs(kReads, std::string(kLen, '\0'));

    // Serial baseline: one blocking READ at a time.
    uint64_t start = env->NowNanos();
    for (int i = 0; i < kReads; i++) {
      ASSERT_TRUE(
          mgr.Read(bufs[i].data(), mr.addr + i * kLen, mr.rkey, kLen).ok());
    }
    uint64_t serial = env->NowNanos() - start;

    // Doorbell batch: post all, drain once.
    start = env->NowNanos();
    {
      ReadBatch batch(&mgr);
      for (int i = 0; i < kReads; i++) {
        batch.Add(bufs[i].data(), mr.addr + i * kLen, mr.rkey, kLen);
      }
      ASSERT_TRUE(batch.WaitAll().ok());
      for (int i = 0; i < kReads; i++) {
        EXPECT_TRUE(batch.status(i).ok());
      }
    }
    uint64_t batched = env->NowNanos() - start;

    const uint64_t latency = f->params().read_latency_ns;
    // Serial pays the full round trip every time.
    EXPECT_GE(serial, kReads * latency);
    EXPECT_GE(batched, latency);
    // The batch hides all but one base latency. SimEnv charges the
    // posting loop's measured host CPU into virtual time, and both
    // loops post the same kReads verbs, so that charge cancels in the
    // difference; asserting on the saving (rather than an absolute
    // batch bound) keeps this robust. Demand at least half the ideal
    // (kReads - 1) * latency saving.
    EXPECT_GT(serial - batched, (kReads / 2) * latency);
  });
}

TEST_F(FabricTest, ReadBatchReportsPerSlotStatus) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    memset(remote, 'z', 4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);

    std::string good(64, '\0'), bad(64, '\0'), tail(64, '\0');
    ReadBatch batch(&mgr);
    size_t s0 = batch.Add(good.data(), mr.addr, mr.rkey, 64);
    size_t s1 = batch.Add(bad.data(), mr.addr, mr.rkey + 999, 64);
    size_t s2 = batch.Add(tail.data(), mr.addr + 128, mr.rkey, 64);
    EXPECT_EQ(3u, batch.size());
    EXPECT_FALSE(batch.WaitAll().ok());  // First failure surfaces.
    EXPECT_FALSE(batch.status(s1).ok());  // The access error itself.
    EXPECT_NE(std::string::npos, batch.status(s1).ToString().find("rkey"));
    // Posted after the failure: flushed by the now-errored QP.
    EXPECT_FALSE(batch.status(s2).ok());
    EXPECT_NE(std::string::npos, batch.status(s2).ToString().find("flush"));
    // The first slot raced the error: it either completed on the wire
    // before the QP erred (bytes valid) or was flushed along with it.
    if (batch.status(s0).ok()) {
      EXPECT_EQ(std::string(64, 'z'), good);
    }
    // Recovery restores the queue and the re-posted read lands.
    ASSERT_TRUE(mgr.ThreadVq()->Recover().ok());
    ReadBatch retry(&mgr);
    size_t r0 = retry.Add(tail.data(), mr.addr + 128, mr.rkey, 64);
    EXPECT_TRUE(retry.WaitAll().ok());
    EXPECT_TRUE(retry.status(r0).ok());
    EXPECT_EQ(std::string(64, 'z'), tail);
  });
}

TEST_F(FabricTest, ErrorStateFlushesOutstandingInPostOrder) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    // Reads large enough (~80 us of wire time each) that none can be
    // wire-complete before SetError fires, even when host load inflates
    // the virtual clock.
    constexpr size_t kLen = 1 * kMB;
    char* remote = memory->AllocDram(4 * kLen);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4 * kLen);
    RdmaManager mgr(f, compute, memory);
    QueuePair* qp = mgr.ThreadVq()->qp();

    std::vector<std::string> bufs(4, std::string(kLen, '\0'));
    for (uint64_t i = 0; i < 4; i++) {
      qp->PostRead(bufs[i].data(), mr.addr + i * kLen, mr.rkey, kLen, i + 1);
    }
    qp->SetError(Status::IOError("injected"));
    EXPECT_TRUE(qp->InError());
    EXPECT_FALSE(qp->ErrorCause().ok());

    // Outstanding WRs flush immediately, in post order, with the
    // WC_WR_FLUSH_ERR analog. Once one entry has flushed every later entry
    // must flush too (no success after a flush).
    bool saw_failure = false;
    for (uint64_t i = 0; i < 4; i++) {
      Completion c = qp->WaitCompletion();
      EXPECT_EQ(i + 1, c.wr_id);
      if (saw_failure) {
        EXPECT_FALSE(c.status.ok());
      }
      if (!c.status.ok()) saw_failure = true;
    }
    EXPECT_TRUE(saw_failure);

    // WRs posted while errored never reach the wire: their payload stays
    // untouched and the completion carries the flush status.
    std::string late(64, '\0');
    qp->PostRead(late.data(), mr.addr, mr.rkey, 64, 99);
    Completion c = qp->WaitCompletion();
    EXPECT_EQ(99u, c.wr_id);
    EXPECT_FALSE(c.status.ok());
    EXPECT_NE(std::string::npos, c.status.ToString().find("flush"));
    EXPECT_EQ(std::string(64, '\0'), late);

    // Reset (ERR -> RESET -> RTS) restores service on the same wiring.
    ASSERT_TRUE(qp->Reset().ok());
    EXPECT_FALSE(qp->InError());
    EXPECT_TRUE(qp->ErrorCause().ok());
    memset(remote, 'k', 64);
    ASSERT_TRUE(mgr.Read(late.data(), mr.addr, mr.rkey, 64).ok());
    EXPECT_EQ(std::string(64, 'k'), late);
  });
}

TEST(FabricFaultTest, InjectionIsDeterministicPerSeed) {
  // A given (seed, QP, post sequence) must fault identically run to run —
  // the randomized fault sweep replays schedules across environments on
  // the strength of this.
  auto run = [](uint64_t seed) {
    std::vector<int> failed;
    SimEnv env;
    Fabric fabric(&env);
    FaultParams fp;
    fp.seed = seed;
    fp.wr_error_rate = 0.2;
    fabric.set_fault_params(fp);
    Node* compute = fabric.AddNode("compute", 24, 64 * kMB);
    Node* memory = fabric.AddNode("memory", 4, 256 * kMB);
    env.Run(0, [&] {
      char* remote = memory->AllocDram(4096);
      MemoryRegion mr = fabric.RegisterMemory(memory, remote, 4096);
      RdmaManager mgr(&fabric, compute, memory);
      char buf[64];
      for (int i = 0; i < 64; i++) {
        Status s = mgr.Read(buf, mr.addr, mr.rkey, 64);
        if (!s.ok()) {
          failed.push_back(i);
          ASSERT_TRUE(mgr.ThreadVq()->Recover().ok());
        }
      }
    });
    return failed;
  };
  std::vector<int> a = run(7);
  EXPECT_FALSE(a.empty());  // 64 draws at 20%: failureless is ~6e-7.
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a, run(8));  // Distinct seeds diverge (same odds).
}

TEST_F(FabricTest, RnrDelaySlowsButDoesNotFail) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    memset(remote, 'r', 4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);

    FaultParams fp;
    fp.rnr_delay_rate = 1.0;
    fp.rnr_delay_ns = 500 * 1000;
    f->set_fault_params(fp);

    RdmaManager mgr(f, compute, memory);
    char buf[64] = {0};
    uint64_t start = f->env()->NowNanos();
    ASSERT_TRUE(mgr.Read(buf, mr.addr, mr.rkey, 64).ok());
    // The retransmission delay is paid in virtual time but the payload
    // still lands intact and the QP stays healthy.
    EXPECT_GE(f->env()->NowNanos() - start, fp.rnr_delay_ns);
    EXPECT_EQ(std::string(64, 'r'), std::string(buf, 64));
    EXPECT_FALSE(mgr.ThreadVq()->qp()->InError());
  });
}

TEST_F(FabricTest, CrashedNodeFailsClosedUntilRestart) {
  RunSim([](Fabric* f, Node* compute, Node* memory) {
    char* remote = memory->AllocDram(4096);
    memset(remote, 'm', 4096);
    MemoryRegion mr = f->RegisterMemory(memory, remote, 4096);
    RdmaManager mgr(f, compute, memory);

    char buf[64] = {0};
    ASSERT_TRUE(mgr.Read(buf, mr.addr, mr.rkey, 64).ok());

    f->CrashNode(memory);
    EXPECT_TRUE(memory->crashed());
    EXPECT_FALSE(mgr.Read(buf, mr.addr, mr.rkey, 64).ok());
    // Reconnect cannot succeed while the peer is down: the QP stays in the
    // error state and every verb keeps failing fast.
    EXPECT_FALSE(mgr.ThreadVq()->Recover().ok());
    EXPECT_TRUE(mgr.ThreadVq()->qp()->InError());
    EXPECT_FALSE(mgr.Read(buf, mr.addr, mr.rkey, 64).ok());

    f->RestartNode(memory);
    EXPECT_FALSE(memory->crashed());
    ASSERT_TRUE(mgr.ThreadVq()->Recover().ok());
    // The DRAM arena survives fail-stop (disaggregated memory is the
    // durable tier in this model); the re-read sees the old bytes.
    ASSERT_TRUE(mgr.Read(buf, mr.addr, mr.rkey, 64).ok());
    EXPECT_EQ(std::string(64, 'm'), std::string(buf, 64));
  });
}

}  // namespace
}  // namespace rdma
}  // namespace dlsm
