// Continuous telemetry (DESIGN Sec. 4.9): the Series ring and its counter
// deltas, Histogram windowing, the coordinated-omission-safe interval
// recorder, exemplar top-k retention, sampler determinism under pure
// discrete-event SimEnv, and the stall watchdog — both directions: no
// false positive under injected RNR delays (deadlines are virtual time,
// so sanitizer slowdown cannot trip them either), and exactly one dump
// naming the stuck handle when a WR genuinely never completes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/db.h"
#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/rdma/fabric.h"
#include "src/rdma/rdma_manager.h"
#include "src/sim/sim_env.h"
#include "src/util/histogram.h"
#include "src/util/timeseries.h"
#include "src/util/trace.h"
#include "src/util/watchdog.h"
#include "tests/dlsm_test_util.h"

namespace dlsm {
namespace {

using test::SmallOptions;
using test::TestKey;
using test::TestValue;

// ---------------------------------------------------------------------------
// Series ring
// ---------------------------------------------------------------------------

telemetry::Series MakeSeries(size_t capacity) {
  std::vector<telemetry::Series::Column> cols;
  cols.push_back({"ops", telemetry::Series::Kind::kCounter});
  cols.push_back({"gauge", telemetry::Series::Kind::kGauge});
  return telemetry::Series(std::move(cols), capacity);
}

TEST(SeriesTest, CounterColumnsStorePerIntervalDeltas) {
  telemetry::Series s = MakeSeries(8);
  s.Append(1000, {100.0, 7.0});
  s.Append(2000, {150.0, 8.0});
  s.Append(3000, {150.0, 9.0});
  auto rows = s.Snapshot();
  ASSERT_EQ(rows.size(), 3u);
  // First row has no prior interval: counter records 0. Gauges pass
  // through as sampled.
  EXPECT_EQ(rows[0][0], 1000.0);
  EXPECT_EQ(rows[0][1], 0.0);
  EXPECT_EQ(rows[0][2], 7.0);
  EXPECT_EQ(rows[1][1], 50.0);
  EXPECT_EQ(rows[2][1], 0.0);
  EXPECT_EQ(rows[2][2], 9.0);
}

TEST(SeriesTest, CounterResetClampsToZero) {
  telemetry::Series s = MakeSeries(4);
  s.Append(1, {100.0, 0.0});
  s.Append(2, {40.0, 0.0});  // Raw value went backwards (process restart).
  auto rows = s.Snapshot();
  EXPECT_EQ(rows[1][1], 0.0);
}

TEST(SeriesTest, RingOverwritesOldestAndCountsDropped) {
  telemetry::Series s = MakeSeries(4);
  for (int i = 1; i <= 10; i++) {
    s.Append(i * 1000, {static_cast<double>(i * 10), 1.0});
  }
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total_appended(), 10u);
  auto rows = s.Snapshot();
  ASSERT_EQ(rows.size(), 4u);
  // Oldest retained row is append #7; every delta stayed 10 even across
  // the wraparound (prev_raw_ is independent of the ring).
  EXPECT_EQ(rows[0][0], 7000.0);
  for (const auto& row : rows) EXPECT_EQ(row[1], 10.0);
  std::string json = s.ToJson();
  EXPECT_NE(json.find("\"dropped\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"columns\":[\"ts_ns\",\"ops\",\"gauge\"]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kinds\":[\"ts\",\"counter\",\"gauge\"]"),
            std::string::npos)
      << json;
}

TEST(SeriesTest, TailJsonReturnsNewestRows) {
  telemetry::Series s = MakeSeries(8);
  for (int i = 1; i <= 5; i++) {
    s.Append(i * 1000, {static_cast<double>(i), 0.0});
  }
  std::string tail = s.TailJson(2);
  EXPECT_EQ(tail.find("[1000"), std::string::npos) << tail;
  EXPECT_NE(tail.find("[4000"), std::string::npos) << tail;
  EXPECT_NE(tail.find("[5000"), std::string::npos) << tail;
}

// ---------------------------------------------------------------------------
// Histogram windowing + interval recorder
// ---------------------------------------------------------------------------

TEST(HistogramTest, DeltaSinceIsolatesTheWindow) {
  Histogram h;
  for (int i = 0; i < 100; i++) h.Add(10.0);
  Histogram snapshot = h;
  for (int i = 0; i < 100; i++) h.Add(1000.0);
  Histogram delta = h.DeltaSince(snapshot);
  // The cumulative histogram's median straddles both batches; the delta
  // sees only the second.
  EXPECT_LT(snapshot.Median(), 20.0);
  EXPECT_GT(delta.Median(), 500.0);
  EXPECT_GT(h.DeltaSince(h).Median(), -1.0);  // Empty delta is valid.
}

TEST(IntervalRecorderTest, ChargesQueueingDelayToDelayedOps) {
  // 1 ms intended interval. Ops 0-9 complete on schedule with 100 us of
  // service time; op 10 stalls for 50 ms, and ops 11-19, issued
  // back-to-back after the stall, each still pay the schedule they missed.
  bench::IntervalRecorder rec(0, 1'000'000);
  for (uint64_t i = 0; i < 10; i++) {
    rec.Record(i, rec.IntendedStartNs(i) + 100'000);
  }
  uint64_t stall_done = rec.IntendedStartNs(10) + 50'000'000;
  rec.Record(10, stall_done);
  for (uint64_t i = 11; i < 20; i++) {
    stall_done += 100'000;  // Back-to-back service after the stall.
    rec.Record(i, stall_done);
  }
  const Histogram& h = rec.latency_us();
  // Half the ops sat behind the stall, so the recorded p75 is tens of
  // milliseconds — a naive per-op timer would have shown 100 us for all
  // but one op.
  EXPECT_LT(h.Median(), 50'000.0);
  EXPECT_GT(h.Percentile(75.0), 30'000.0);
  // An op that completes before its intended start records 0, not a wrap.
  bench::IntervalRecorder early(1'000'000, 1'000'000);
  early.Record(5, 0);
  EXPECT_LT(early.latency_us().Percentile(99.0), 1.0);
}

// ---------------------------------------------------------------------------
// Exemplar retention
// ---------------------------------------------------------------------------

TEST(ExemplarTest, RetainsTopKPerWindow) {
  SimEnv::Options so;
  so.cpu_scale = 0.0;
  SimEnv env(so);
  trace::EnableWithEnv(&env);
  trace::ExemplarPolicy policy;
  policy.k = 2;
  policy.window_ns = 1'000'000;
  trace::Tracer::SetExemplarPolicy(policy);

  env.Run(0, [&] {
    for (int w = 0; w < 3; w++) {
      uint64_t window_start = env.NowNanos();
      for (int i = 1; i <= 5; i++) {
        trace::TraceOp op("Get", "test");
        env.SleepNanos(i * 10'000ull);  // 10..50 us ops.
      }
      env.SleepNanos(policy.window_ns - (env.NowNanos() - window_start));
    }
  });

  auto index = trace::Tracer::ExemplarIndex();
  trace::Tracer::Disable();
  // Export order: windows ascending, duration descending within a window;
  // every window keeps at most k, and what it keeps is its slowest ops.
  ASSERT_EQ(index.size(), 6u);
  size_t i = 0;
  for (int w = 0; w < 3; w++) {
    EXPECT_GE(index[i].dur_ns, index[i + 1].dur_ns);
    EXPECT_EQ(index[i].window, index[i + 1].window);
    EXPECT_GE(index[i + 1].dur_ns, 40'000u);  // Top-2 of 10..50 us.
    if (w > 0) {
      EXPECT_GT(index[i].window, index[i - 1].window);
    }
    i += 2;
  }
}

// ---------------------------------------------------------------------------
// Engine sampler
// ---------------------------------------------------------------------------

// Runs a small workload with the 1 ms sampler on and returns the
// "dlsm.timeseries" JSON. Pure discrete-event mode: the series is a
// function of the seed alone.
std::string SampledWorkloadSeries(uint64_t seed) {
  SimEnv::Options so;
  so.cpu_scale = 0.0;
  SimEnv env(so);
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 4ull << 30);

  std::string json;
  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 4);
    service.Start();
    Options options = SmallOptions(&env);
    options.stats_sample_period_ms = 1;
    options.stats_ring_capacity = 256;
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;
    DB* raw = nullptr;
    ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
    std::unique_ptr<DB> db(raw);

    Random rnd(seed);
    for (int i = 0; i < 6000; i++) {
      uint64_t k = rnd.Uniform(2000);
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
      // In pure discrete-event mode the memtable path costs no virtual
      // time, so the whole load can finish inside one sample period;
      // deterministic pauses spread it across several ticks.
      if (i % 1000 == 999) env.SleepNanos(600'000);
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    for (int i = 0; i < 500; i++) {
      std::string value;
      Status s = db->Get(ReadOptions(), TestKey(rnd.Uniform(2000)), &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
    }
    ASSERT_TRUE(db->GetProperty("dlsm.timeseries", &json));
    ASSERT_TRUE(db->Close().ok());
    db.reset();
    service.Stop();
  });
  return json;
}

TEST(SamplerTest, SeriesExportsSchemaAndSamples) {
  std::string json = SampledWorkloadSeries(301);
  EXPECT_NE(json.find("\"columns\":[\"ts_ns\",\"writes\",\"reads\""),
            std::string::npos)
      << json.substr(0, 200);
  EXPECT_NE(json.find("node0_read_verbs"), std::string::npos);
  EXPECT_NE(json.find("read_p99_us"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":[["), std::string::npos)
      << "sampler produced no rows";
}

TEST(SamplerTest, SameSeedRunsAreByteIdentical) {
  std::string a = SampledWorkloadSeries(301);
  std::string b = SampledWorkloadSeries(301);
  EXPECT_EQ(a, b);
  std::string c = SampledWorkloadSeries(777);
  // Different workload, same schema: the header must match even when the
  // samples differ.
  EXPECT_EQ(c.substr(0, c.find("\"samples\"")),
            a.substr(0, a.find("\"samples\"")));
}

TEST(SamplerTest, PropertyAbsentWhenSamplerOff) {
  test::RunDbTest(nullptr, [](DB* db, Env*) {
    std::string json;
    EXPECT_FALSE(db->GetProperty("dlsm.timeseries", &json));
  });
}

TEST(SamplerTest, ShardedPropertyWrapsPerShardSeries) {
  test::RunDbTest(
      [](Options* options) {
        options->shards = 2;
        options->stats_sample_period_ms = 1;
      },
      [](DB* db, Env*) {
        ASSERT_TRUE(db->Put(WriteOptions(), TestKey(1), TestValue(1)).ok());
        std::string json;
        ASSERT_TRUE(db->GetProperty("dlsm.timeseries", &json));
        EXPECT_EQ(json.find("{\"shards\":["), 0u) << json.substr(0, 80);
      });
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, NoFalsePositiveUnderRnrDelays) {
  // 200 us injected retransmission delays against a 5 ms virtual-time
  // deadline: slow, but alive — the watchdog must stay quiet. The
  // deadline is virtual time, so running this under tsan/asan (CI does)
  // cannot push real ops over it.
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 4ull << 30);
  std::vector<std::string> dumps;

  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 4);
    service.Start();
    Options options = SmallOptions(&env);
    options.watchdog_deadline_ms = 5;
    options.stats_sample_period_ms = 1;
    options.watchdog_sink = [&dumps](const std::string& d) {
      dumps.push_back(d);
    };
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;
    DB* raw = nullptr;
    ASSERT_TRUE(DLsmDB::Open(options, deps, &raw).ok());
    std::unique_ptr<DB> db(raw);

    rdma::FaultParams fp;
    fp.seed = 7;
    fp.rnr_delay_rate = 0.05;
    fabric.set_fault_params(fp);

    Random rnd(7);
    for (int i = 0; i < 6000; i++) {
      uint64_t k = rnd.Uniform(2000);
      ASSERT_TRUE(db->Put(WriteOptions(), TestKey(k), TestValue(k)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->WaitForBackgroundIdle().ok());
    for (int i = 0; i < 500; i++) {
      std::string value;
      Status s = db->Get(ReadOptions(), TestKey(rnd.Uniform(2000)), &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
    }
    EXPECT_EQ(db->GetStats().watchdog_stalls, 0u);
    ASSERT_TRUE(db->Close().ok());
    db.reset();
    service.Stop();
  });
  EXPECT_TRUE(dumps.empty()) << dumps[0];
}

TEST(WatchdogTest, StuckWrFiresExactlyOneDumpNamingTheHandle) {
  // FaultParams::stuck_wr_nth parks the first admitted WR's completion
  // unreachably far in the future — the silent-stall scenario. The probe
  // over the verb layer's outstanding mirror must catch it, the one-shot
  // dump must name the wr_id, and a second poll must stay quiet.
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 4, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 2, 1ull << 30);

  env.Run(0, [&] {
    char* remote = memory->AllocDram(1 << 20);
    rdma::MemoryRegion mr = fabric.RegisterMemory(memory, remote, 1 << 20);
    rdma::RdmaManager mgr(&fabric, compute, memory);
    std::vector<char> buf(4096);

    // A healthy verb first: the mirror must not report completed work.
    ASSERT_TRUE(mgr.Read(buf.data(), mr.addr, mr.rkey, 4096).ok());

    rdma::FaultParams fp;
    fp.stuck_wr_nth = 1;  // Next admitted post never completes.
    fabric.set_fault_params(fp);
    rdma::WrHandle stuck =
        mgr.ThreadVq()->Read(buf.data(), mr.addr, mr.rkey, 4096);
    uint64_t stuck_id = stuck.wr_id();

    std::vector<std::string> dumps;
    telemetry::Watchdog::Options wo;
    wo.clock = [&env] { return env.NowNanos(); };
    wo.deadline_ns = 1'000'000;
    wo.sink = [&dumps](const std::string& d) { dumps.push_back(d); };
    telemetry::Watchdog wd(wo);
    wd.AddProbe("outstanding_verbs",
                [&mgr](uint64_t now, uint64_t deadline_ns,
                       std::vector<telemetry::Watchdog::StuckOp>* out) {
                  std::vector<rdma::OutstandingVerb> verbs;
                  mgr.ListOutstanding(&verbs);
                  for (const rdma::OutstandingVerb& v : verbs) {
                    if (now > v.post_ns && now - v.post_ns > deadline_ns) {
                      out->push_back(telemetry::Watchdog::StuckOp{
                          "verb:READ", v.wr_id, now - v.post_ns});
                    }
                  }
                });
    wd.AddDiagnostic("qp_state", [&mgr] { return mgr.QpStateSummary(); });

    // Within the deadline: quiet.
    env.SleepNanos(500'000);
    EXPECT_FALSE(wd.Poll());
    EXPECT_EQ(wd.stalls(), 0u);

    // Past the deadline: exactly one dump, naming the stuck handle.
    env.SleepNanos(2'000'000);
    EXPECT_TRUE(wd.Poll());
    EXPECT_TRUE(wd.fired());
    EXPECT_EQ(wd.stalls(), 1u);
    ASSERT_EQ(dumps.size(), 1u);
    EXPECT_NE(dumps[0].find("kind=verb:READ"), std::string::npos) << dumps[0];
    EXPECT_NE(dumps[0].find("id=" + std::to_string(stuck_id)),
              std::string::npos)
        << dumps[0];
    EXPECT_NE(dumps[0].find("qp_state"), std::string::npos) << dumps[0];
    EXPECT_NE(dumps[0].find("in_flight=1"), std::string::npos) << dumps[0];

    // One-shot: the wedge is still there, the dump is not repeated.
    env.SleepNanos(2'000'000);
    EXPECT_FALSE(wd.Poll());
    EXPECT_EQ(dumps.size(), 1u);

    // Never Wait() on the stuck handle (virtual time would jump to the
    // parked completion); Cancel drops it and teardown sweeps the rest.
    stuck.Cancel();
  });
}

TEST(WatchdogTest, ArmedOpFiresAndProgressResetsTheClock) {
  uint64_t now = 0;
  std::vector<std::string> dumps;
  telemetry::Watchdog::Options wo;
  wo.clock = [&now] { return now; };
  wo.deadline_ns = 1000;
  wo.sink = [&dumps](const std::string& d) { dumps.push_back(d); };
  telemetry::Watchdog wd(wo);

  uint64_t token = wd.Arm("migration");
  now = 900;
  EXPECT_FALSE(wd.Poll());
  wd.Progress(token);  // Checkpoint at t=900: clock resets.
  now = 1800;
  EXPECT_FALSE(wd.Poll());
  now = 3000;
  EXPECT_TRUE(wd.Poll());
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].find("kind=migration"), std::string::npos) << dumps[0];
  wd.Disarm(token);
}

}  // namespace
}  // namespace dlsm
