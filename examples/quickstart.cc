// Quickstart: bring up a simulated disaggregated deployment (one compute
// node, one memory node, a 100 Gb/s fabric), open a dLSM database, and do
// basic puts/gets/deletes/scans.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"

int main() {
  using namespace dlsm;

  // 1. The world: a virtual-time environment and two machines joined by an
  //    RDMA fabric. The compute node has many cores and little DRAM; the
  //    memory node has few cores and lots of DRAM.
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", /*cores=*/24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", /*cores=*/4, 16ull << 30);

  // Everything that consumes (virtual) time runs inside env.Run.
  env.Run(0, [&] {
    // 2. The memory node's resident service: RPC server + near-data
    //    compaction workers.
    MemoryNodeService service(&fabric, memory, /*compaction_workers=*/4);
    service.Start();

    // 3. Open dLSM on the compute node.
    Options options;
    options.env = &env;
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;

    DB* raw = nullptr;
    Status s = DLsmDB::Open(options, deps, &raw);
    if (!s.ok()) {
      std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return;
    }
    std::unique_ptr<DB> db(raw);

    // 4. Writes hit the local MemTable; flush and compaction happen in the
    //    background against remote memory.
    db->Put(WriteOptions(), "language", "C++");
    db->Put(WriteOptions(), "venue", "ICDE 2023");
    db->Put(WriteOptions(), "system", "dLSM");
    db->Delete(WriteOptions(), "venue");

    std::string value;
    s = db->Get(ReadOptions(), "system", &value);
    std::printf("system  -> %s\n", s.ok() ? value.c_str() : s.ToString().c_str());
    s = db->Get(ReadOptions(), "venue", &value);
    std::printf("venue   -> %s\n", s.IsNotFound() ? "(deleted)" : value.c_str());

    // 5. Range scan.
    std::printf("scan:\n");
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::printf("  %s = %s\n", it->key().ToString().c_str(),
                  it->value().ToString().c_str());
    }

    // 6. Force a flush so the data provably lives in remote memory, then
    //    read it back through the byte-addressable SSTable path.
    db->Flush();
    db->WaitForBackgroundIdle();
    s = db->Get(ReadOptions(), "language", &value);
    std::printf("after flush: language -> %s (served from remote memory)\n",
                value.c_str());
    std::printf("virtual time elapsed: %.3f ms\n", env.NowNanos() / 1e6);

    db->Close();
    service.Stop();
  });
  std::printf("done.\n");
  return 0;
}
