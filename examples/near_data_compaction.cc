// Near-data compaction demo (paper Sec. V): loads the same workload twice —
// once with compaction offloaded to the memory node and once with
// compaction on the compute node — and shows the difference in wire
// traffic and throughput. The offloaded run moves flushes only; the
// compute-side run re-reads and re-writes every compacted byte.
//
// Build & run:  ./build/examples/near_data_compaction

#include <cstdio>
#include <memory>

#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"
#include "src/util/random.h"

namespace {

std::string Key(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

struct RunOutcome {
  double secs = 0;
  double wire_mb = 0;
  uint64_t compactions = 0;
  double comp_mb = 0;
};

RunOutcome RunOnce(dlsm::CompactionPlacement placement) {
  using namespace dlsm;
  constexpr uint64_t kKeys = 60000;

  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 16ull << 30);
  RunOutcome outcome;

  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 8);
    service.Start();

    Options options;
    options.env = &env;
    options.compaction_placement = placement;
    options.memtable_size = 2 << 20;
    options.sstable_size = 2 << 20;
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;

    DB* raw = nullptr;
    DLSM_CHECK(DLsmDB::Open(options, deps, &raw).ok());
    std::unique_ptr<DB> db(raw);

    Random rnd(1);
    std::string value(400, 'v');
    uint64_t t0 = env.NowNanos();
    uint64_t wire0 = fabric.wire_bytes();
    for (uint64_t i = 0; i < kKeys; i++) {
      DLSM_CHECK(db->Put(WriteOptions(), Key(rnd.Uniform(kKeys)), value).ok());
      if ((i & 63) == 0) env.MaybeYield();
    }
    DLSM_CHECK(db->Flush().ok());
    DLSM_CHECK(db->WaitForBackgroundIdle().ok());
    uint64_t t1 = env.NowNanos();

    DbStats stats = db->GetStats();
    outcome.secs = (t1 - t0) / 1e9;
    outcome.wire_mb = (fabric.wire_bytes() - wire0) / 1e6;
    outcome.compactions = stats.compactions;
    outcome.comp_mb =
        (stats.compaction_input_bytes + stats.compaction_output_bytes) / 1e6;

    db->Close();
    service.Stop();
  });
  return outcome;
}

}  // namespace

int main() {
  std::printf("Loading 60K keys (~26 MB) twice, same engine, different "
              "compaction placement:\n\n");

  RunOutcome near = RunOnce(dlsm::CompactionPlacement::kNearData);
  std::printf("near-data compaction (memory node executes):\n");
  std::printf("  load+settle time : %.1f ms (virtual)\n", near.secs * 1e3);
  std::printf("  wire traffic     : %.1f MB\n", near.wire_mb);
  std::printf("  compactions      : %llu (%.1f MB merged, all local to the "
              "memory node)\n\n",
              static_cast<unsigned long long>(near.compactions),
              near.comp_mb);

  RunOutcome far = RunOnce(dlsm::CompactionPlacement::kComputeSide);
  std::printf("compute-side compaction (paper's ablation):\n");
  std::printf("  load+settle time : %.1f ms (virtual)\n", far.secs * 1e3);
  std::printf("  wire traffic     : %.1f MB\n", far.wire_mb);
  std::printf("  compactions      : %llu (%.1f MB merged, every byte "
              "crossing the wire twice)\n\n",
              static_cast<unsigned long long>(far.compactions), far.comp_mb);

  std::printf("near-data compaction saved %.1f MB of wire traffic (%.1fx)\n",
              far.wire_mb - near.wire_mb, far.wire_mb / near.wire_mb);
  return 0;
}
