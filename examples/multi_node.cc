// Multi-node deployment (paper Sec. IX, Fig. 5): 2 compute nodes x 2
// memory nodes, lambda = 4 shards per compute node, shards assigned
// round-robin to memory nodes. Client threads run on the compute node that
// owns their keys.
//
// Build & run:  ./build/examples/multi_node

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/shard.h"
#include "src/sim/sim_env.h"
#include "src/util/random.h"

namespace {

std::string Key(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

}  // namespace

int main() {
  using namespace dlsm;

  constexpr uint64_t kKeys = 40000;
  SimEnv env;

  env.Run(0, [&] {
    ClusterTopology topology;
    topology.compute_nodes = 2;
    topology.memory_nodes = 2;
    topology.shards_per_compute = 4;  // lambda = 4.
    topology.compaction_workers_per_memory = 4;

    Options options;
    options.env = &env;
    options.memtable_size = 1 << 20;
    options.sstable_size = 1 << 20;
    options.flush_region_size = 512 << 20;

    int total_shards = topology.compute_nodes * topology.shards_per_compute;
    std::unique_ptr<Cluster> cluster;
    Status s = Cluster::Create(
        &env, options, topology,
        ShardedDB::UniformDecimalBoundaries(total_shards, 16), &cluster);
    DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());

    std::printf("cluster: %d compute x %d memory, lambda=%d (%d shards)\n",
                topology.compute_nodes, topology.memory_nodes,
                topology.shards_per_compute, total_shards);

    // Writers per compute node, each writing keys its node owns.
    Barrier done(&env, topology.compute_nodes + 1);
    std::vector<ThreadHandle> hs;
    for (int c = 0; c < topology.compute_nodes; c++) {
      uint64_t lo = kKeys * c / topology.compute_nodes;
      uint64_t hi = kKeys * (c + 1) / topology.compute_nodes;
      hs.push_back(env.StartThread(
          cluster->compute_node(c)->env_node(), "loader", [&, c, lo, hi] {
            Random rnd(c);
            std::string value(400, 'v');
            for (uint64_t k = lo; k < hi; k++) {
              DLSM_CHECK(cluster->Put(Key(k), value).ok());
              if ((k & 63) == 0) env.MaybeYield();
            }
            done.Arrive();
          }));
    }
    done.Arrive();
    for (ThreadHandle h : hs) env.Join(h);

    DLSM_CHECK(cluster->Flush().ok());
    DLSM_CHECK(cluster->WaitForBackgroundIdle().ok());

    // Cross-cluster reads routed by key.
    Random rnd(99);
    int found = 0;
    for (int i = 0; i < 1000; i++) {
      std::string value;
      if (cluster->Get(Key(rnd.Uniform(kKeys)), &value).ok()) found++;
    }
    std::printf("read back 1000 random keys: %d found\n", found);

    // Show the shard map.
    for (int shard = 0; shard < total_shards; shard++) {
      std::printf("  shard %d: compute-%d -> memory-%d, L0 files: %d\n",
                  shard, cluster->ComputeOfShard(shard),
                  shard % topology.memory_nodes,
                  cluster->shard_db(shard)->NumFilesAtLevel(0));
    }
    std::printf("virtual time: %.2f ms\n", env.NowNanos() / 1e6);
    DLSM_CHECK(cluster->Close().ok());
  });
  return 0;
}
