// A YCSB-style mixed workload on a sharded dLSM (paper Sec. VII): several
// client threads issue zipfian-skewed reads and writes against dLSM-8,
// while the memory node compacts near the data. Prints throughput and the
// engine's internal statistics.
//
// Build & run:  ./build/examples/ycsb_mixed

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/memory_node_service.h"
#include "src/core/shard.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"
#include "src/util/random.h"

namespace {

std::string Key(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

}  // namespace

int main() {
  using namespace dlsm;

  constexpr uint64_t kKeySpace = 50000;
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 10000;
  constexpr double kReadRatio = 0.5;  // YCSB-A.

  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 16ull << 30);

  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 8);
    service.Start();

    Options options;
    options.env = &env;
    options.shards = 8;  // dLSM-8: parallel L0 compaction per shard.
    options.memtable_size = 4 << 20;
    options.sstable_size = 4 << 20;
    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;

    DB* raw = nullptr;
    Status s = ShardedDB::Open(
        options, deps, ShardedDB::UniformDecimalBoundaries(8, 16), &raw);
    if (!s.ok()) {
      std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return;
    }
    std::unique_ptr<DB> db(raw);

    // Load phase.
    std::printf("loading %llu keys...\n",
                static_cast<unsigned long long>(kKeySpace));
    Random load_rnd(42);
    std::string value(400, 'v');
    for (uint64_t k = 0; k < kKeySpace; k++) {
      db->Put(WriteOptions(), Key(k), value);
      if ((k & 63) == 0) env.MaybeYield();
    }

    // Mixed phase: zipfian key popularity, 50/50 reads and writes.
    std::printf("running YCSB-A (%d threads, zipfian)...\n", kThreads);
    Barrier start(&env, kThreads + 1), stop(&env, kThreads + 1);
    std::vector<ThreadHandle> workers;
    for (int t = 0; t < kThreads; t++) {
      workers.push_back(env.StartThread(compute->env_node(), "client",
                                        [&, t] {
          ZipfianGenerator zipf(kKeySpace, 0.99, 1000 + t);
          Random rnd(t);
          start.Arrive();
          for (uint64_t i = 0; i < kOpsPerThread; i++) {
            uint64_t k = zipf.Next();
            if (rnd.NextDouble() < kReadRatio) {
              std::string out;
              Status st = db->Get(ReadOptions(), Key(k), &out);
              DLSM_CHECK(st.ok() || st.IsNotFound());
            } else {
              DLSM_CHECK(db->Put(WriteOptions(), Key(k), value).ok());
            }
            if ((i & 63) == 0) env.MaybeYield();
          }
          stop.Arrive();
        }));
    }
    start.Arrive();
    uint64_t t0 = env.NowNanos();
    stop.Arrive();
    uint64_t t1 = env.NowNanos();
    for (ThreadHandle h : workers) env.Join(h);

    double secs = (t1 - t0) / 1e9;
    std::printf("mixed throughput: %.0f ops/s (virtual)\n",
                kThreads * kOpsPerThread / secs);

    DbStats stats = db->GetStats();
    std::printf("engine stats: %llu writes, %llu reads, %llu flushes, "
                "%llu compactions\n",
                static_cast<unsigned long long>(stats.writes),
                static_cast<unsigned long long>(stats.reads),
                static_cast<unsigned long long>(stats.flushes),
                static_cast<unsigned long long>(stats.compactions));
    std::printf("compaction I/O: %.1f MB in, %.1f MB out; "
                "write-stall time: %.1f ms\n",
                stats.compaction_input_bytes / 1e6,
                stats.compaction_output_bytes / 1e6, stats.stall_ns / 1e6);
    std::printf("bloom filters skipped %llu remote reads\n",
                static_cast<unsigned long long>(stats.bloom_useful));

    db->Close();
    service.Stop();
  });
  return 0;
}
