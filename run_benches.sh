#!/bin/bash
# Regenerates every paper figure; output to bench_output.txt.
set -u
cd "$(dirname "$0")"
B=build/bench
{
echo "##########################################################"
echo "# dLSM reproduction: full benchmark sweep"
echo "# $(date)"
echo "##########################################################"
timeout 1200 $B/rdma_primitives
# --stats_json: machine-readable BENCH_*.json next to bench_output.txt
# (ops/s, latency percentiles, per-verb-class bytes/ops, fault counters).
timeout 2400 $B/fig7_write --keys=60000 --stats_json=BENCH_fig7.json
timeout 2400 $B/fig8_read --keys=60000 --stats_json=BENCH_fig8.json
# Compute-side cache A/B: cache off (x2, determinism guard) vs 64 MiB
# TinyLFU cache at zipfian 0.99; asserts >= 3x READ-verb reduction.
timeout 2400 $B/fig8_read --cache_ab --keys=60000 --stats_json=BENCH_cache_ab.json
# Continuous telemetry: A/B overhead guard (1ms sampler + 50ms watchdog,
# wire must be unchanged) and a sampled series for the dLSM read cell.
timeout 2400 $B/fig8_read --telemetry_ab --keys=60000
timeout 2400 $B/fig8_read --keys=60000 --only=dLSM --threads=8 \
  --stats_series=BENCH_fig8_series.json --watchdog_ms=100
timeout 2400 $B/fig9_datasizes --base=30000 --steps=4
timeout 2400 $B/fig10_mixed --keys=60000
timeout 1200 $B/fig11_scan --keys=80000
timeout 2400 $B/fig12_compaction --keys=150000 --stats_json=BENCH_fig12.json
timeout 1200 $B/fig13_byteaddr --keys=80000
timeout 2400 $B/fig14_scalability --base=20000
timeout 2400 $B/fig15_multinode --base=20000
# Placement A/B: zipfian 0.99 on 4C4M, heat rebalancer off vs on; asserts
# >= 2x per-node READ-verb imbalance cut and <= 2% uniform p50 regression.
timeout 2400 $B/fig15_multinode --placement_ab --base=50000 --stats_json=BENCH_placement.json
timeout 1200 $B/ablations --keys=60000
timeout 1200 $B/ablation_readbatch --keys=20000
echo; echo "=== micro benchmarks (wall clock, google-benchmark) ==="
timeout 1200 $B/micro_bench 2>&1 | grep -v "^\*\*\*"
} 2>&1
