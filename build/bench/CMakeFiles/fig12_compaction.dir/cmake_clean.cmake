file(REMOVE_RECURSE
  "CMakeFiles/fig12_compaction.dir/fig12_compaction.cc.o"
  "CMakeFiles/fig12_compaction.dir/fig12_compaction.cc.o.d"
  "fig12_compaction"
  "fig12_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
