# Empty dependencies file for fig12_compaction.
# This may be replaced when dependencies are built.
