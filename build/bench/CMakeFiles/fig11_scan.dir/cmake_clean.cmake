file(REMOVE_RECURSE
  "CMakeFiles/fig11_scan.dir/fig11_scan.cc.o"
  "CMakeFiles/fig11_scan.dir/fig11_scan.cc.o.d"
  "fig11_scan"
  "fig11_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
