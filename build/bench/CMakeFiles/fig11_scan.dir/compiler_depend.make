# Empty compiler generated dependencies file for fig11_scan.
# This may be replaced when dependencies are built.
