# Empty dependencies file for fig13_byteaddr.
# This may be replaced when dependencies are built.
