file(REMOVE_RECURSE
  "CMakeFiles/fig13_byteaddr.dir/fig13_byteaddr.cc.o"
  "CMakeFiles/fig13_byteaddr.dir/fig13_byteaddr.cc.o.d"
  "fig13_byteaddr"
  "fig13_byteaddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_byteaddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
