# Empty compiler generated dependencies file for fig8_read.
# This may be replaced when dependencies are built.
