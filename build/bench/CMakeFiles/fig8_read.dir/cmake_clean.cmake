file(REMOVE_RECURSE
  "CMakeFiles/fig8_read.dir/fig8_read.cc.o"
  "CMakeFiles/fig8_read.dir/fig8_read.cc.o.d"
  "fig8_read"
  "fig8_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
