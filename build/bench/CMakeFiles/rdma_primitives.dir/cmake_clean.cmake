file(REMOVE_RECURSE
  "CMakeFiles/rdma_primitives.dir/rdma_primitives.cc.o"
  "CMakeFiles/rdma_primitives.dir/rdma_primitives.cc.o.d"
  "rdma_primitives"
  "rdma_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
