# Empty compiler generated dependencies file for rdma_primitives.
# This may be replaced when dependencies are built.
