# Empty dependencies file for fig7_write.
# This may be replaced when dependencies are built.
