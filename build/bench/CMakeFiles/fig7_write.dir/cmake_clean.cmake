file(REMOVE_RECURSE
  "CMakeFiles/fig7_write.dir/fig7_write.cc.o"
  "CMakeFiles/fig7_write.dir/fig7_write.cc.o.d"
  "fig7_write"
  "fig7_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
