# Empty dependencies file for fig9_datasizes.
# This may be replaced when dependencies are built.
