file(REMOVE_RECURSE
  "CMakeFiles/fig9_datasizes.dir/fig9_datasizes.cc.o"
  "CMakeFiles/fig9_datasizes.dir/fig9_datasizes.cc.o.d"
  "fig9_datasizes"
  "fig9_datasizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_datasizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
