file(REMOVE_RECURSE
  "libdlsm_bench_harness.a"
)
