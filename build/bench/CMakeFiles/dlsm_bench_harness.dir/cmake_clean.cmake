file(REMOVE_RECURSE
  "CMakeFiles/dlsm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/dlsm_bench_harness.dir/harness.cc.o.d"
  "libdlsm_bench_harness.a"
  "libdlsm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
