# Empty dependencies file for dlsm_bench_harness.
# This may be replaced when dependencies are built.
