file(REMOVE_RECURSE
  "CMakeFiles/fig15_multinode.dir/fig15_multinode.cc.o"
  "CMakeFiles/fig15_multinode.dir/fig15_multinode.cc.o.d"
  "fig15_multinode"
  "fig15_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
