file(REMOVE_RECURSE
  "CMakeFiles/fig10_mixed.dir/fig10_mixed.cc.o"
  "CMakeFiles/fig10_mixed.dir/fig10_mixed.cc.o.d"
  "fig10_mixed"
  "fig10_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
