# Empty dependencies file for fig10_mixed.
# This may be replaced when dependencies are built.
