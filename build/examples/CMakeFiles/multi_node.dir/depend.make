# Empty dependencies file for multi_node.
# This may be replaced when dependencies are built.
