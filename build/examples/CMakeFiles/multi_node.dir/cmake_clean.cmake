file(REMOVE_RECURSE
  "CMakeFiles/multi_node.dir/multi_node.cc.o"
  "CMakeFiles/multi_node.dir/multi_node.cc.o.d"
  "multi_node"
  "multi_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
