file(REMOVE_RECURSE
  "CMakeFiles/ycsb_mixed.dir/ycsb_mixed.cc.o"
  "CMakeFiles/ycsb_mixed.dir/ycsb_mixed.cc.o.d"
  "ycsb_mixed"
  "ycsb_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
