# Empty compiler generated dependencies file for near_data_compaction.
# This may be replaced when dependencies are built.
