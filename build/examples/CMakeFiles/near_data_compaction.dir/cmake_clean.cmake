file(REMOVE_RECURSE
  "CMakeFiles/near_data_compaction.dir/near_data_compaction.cc.o"
  "CMakeFiles/near_data_compaction.dir/near_data_compaction.cc.o.d"
  "near_data_compaction"
  "near_data_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_data_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
