# Empty dependencies file for iterator_edge_test.
# This may be replaced when dependencies are built.
