file(REMOVE_RECURSE
  "CMakeFiles/iterator_edge_test.dir/iterator_edge_test.cc.o"
  "CMakeFiles/iterator_edge_test.dir/iterator_edge_test.cc.o.d"
  "iterator_edge_test"
  "iterator_edge_test.pdb"
  "iterator_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
