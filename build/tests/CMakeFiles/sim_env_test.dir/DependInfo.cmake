
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_env_test.cc" "tests/CMakeFiles/sim_env_test.dir/sim_env_test.cc.o" "gcc" "tests/CMakeFiles/sim_env_test.dir/sim_env_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/dlsm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/dlsm_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dlsm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
