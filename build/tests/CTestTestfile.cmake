# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_env_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/remote_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/compaction_test[1]_include.cmake")
include("/root/repo/build/tests/version_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/db_property_test[1]_include.cmake")
include("/root/repo/build/tests/iterator_edge_test[1]_include.cmake")
