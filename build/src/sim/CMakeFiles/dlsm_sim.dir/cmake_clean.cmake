file(REMOVE_RECURSE
  "CMakeFiles/dlsm_sim.dir/sim_env.cc.o"
  "CMakeFiles/dlsm_sim.dir/sim_env.cc.o.d"
  "CMakeFiles/dlsm_sim.dir/std_env.cc.o"
  "CMakeFiles/dlsm_sim.dir/std_env.cc.o.d"
  "CMakeFiles/dlsm_sim.dir/thread_pool.cc.o"
  "CMakeFiles/dlsm_sim.dir/thread_pool.cc.o.d"
  "libdlsm_sim.a"
  "libdlsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
