
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/sim_env.cc" "src/sim/CMakeFiles/dlsm_sim.dir/sim_env.cc.o" "gcc" "src/sim/CMakeFiles/dlsm_sim.dir/sim_env.cc.o.d"
  "/root/repo/src/sim/std_env.cc" "src/sim/CMakeFiles/dlsm_sim.dir/std_env.cc.o" "gcc" "src/sim/CMakeFiles/dlsm_sim.dir/std_env.cc.o.d"
  "/root/repo/src/sim/thread_pool.cc" "src/sim/CMakeFiles/dlsm_sim.dir/thread_pool.cc.o" "gcc" "src/sim/CMakeFiles/dlsm_sim.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dlsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
