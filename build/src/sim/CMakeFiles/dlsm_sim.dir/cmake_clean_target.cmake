file(REMOVE_RECURSE
  "libdlsm_sim.a"
)
