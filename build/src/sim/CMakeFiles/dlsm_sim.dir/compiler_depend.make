# Empty compiler generated dependencies file for dlsm_sim.
# This may be replaced when dependencies are built.
