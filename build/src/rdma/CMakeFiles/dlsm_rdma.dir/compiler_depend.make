# Empty compiler generated dependencies file for dlsm_rdma.
# This may be replaced when dependencies are built.
