file(REMOVE_RECURSE
  "CMakeFiles/dlsm_rdma.dir/fabric.cc.o"
  "CMakeFiles/dlsm_rdma.dir/fabric.cc.o.d"
  "CMakeFiles/dlsm_rdma.dir/rdma_manager.cc.o"
  "CMakeFiles/dlsm_rdma.dir/rdma_manager.cc.o.d"
  "libdlsm_rdma.a"
  "libdlsm_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsm_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
