file(REMOVE_RECURSE
  "libdlsm_rdma.a"
)
