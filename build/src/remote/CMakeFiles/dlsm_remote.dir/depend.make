# Empty dependencies file for dlsm_remote.
# This may be replaced when dependencies are built.
