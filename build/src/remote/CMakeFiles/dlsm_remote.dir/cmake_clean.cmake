file(REMOVE_RECURSE
  "CMakeFiles/dlsm_remote.dir/remote_alloc.cc.o"
  "CMakeFiles/dlsm_remote.dir/remote_alloc.cc.o.d"
  "CMakeFiles/dlsm_remote.dir/rpc.cc.o"
  "CMakeFiles/dlsm_remote.dir/rpc.cc.o.d"
  "libdlsm_remote.a"
  "libdlsm_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsm_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
