file(REMOVE_RECURSE
  "libdlsm_remote.a"
)
