
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remote/remote_alloc.cc" "src/remote/CMakeFiles/dlsm_remote.dir/remote_alloc.cc.o" "gcc" "src/remote/CMakeFiles/dlsm_remote.dir/remote_alloc.cc.o.d"
  "/root/repo/src/remote/rpc.cc" "src/remote/CMakeFiles/dlsm_remote.dir/rpc.cc.o" "gcc" "src/remote/CMakeFiles/dlsm_remote.dir/rpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/dlsm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
