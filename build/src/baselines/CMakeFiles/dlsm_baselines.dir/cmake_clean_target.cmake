file(REMOVE_RECURSE
  "libdlsm_baselines.a"
)
