file(REMOVE_RECURSE
  "CMakeFiles/dlsm_baselines.dir/presets.cc.o"
  "CMakeFiles/dlsm_baselines.dir/presets.cc.o.d"
  "CMakeFiles/dlsm_baselines.dir/sherman.cc.o"
  "CMakeFiles/dlsm_baselines.dir/sherman.cc.o.d"
  "libdlsm_baselines.a"
  "libdlsm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
