# Empty dependencies file for dlsm_baselines.
# This may be replaced when dependencies are built.
