file(REMOVE_RECURSE
  "CMakeFiles/dlsm_util.dir/arena.cc.o"
  "CMakeFiles/dlsm_util.dir/arena.cc.o.d"
  "CMakeFiles/dlsm_util.dir/coding.cc.o"
  "CMakeFiles/dlsm_util.dir/coding.cc.o.d"
  "CMakeFiles/dlsm_util.dir/crc32c.cc.o"
  "CMakeFiles/dlsm_util.dir/crc32c.cc.o.d"
  "CMakeFiles/dlsm_util.dir/hash.cc.o"
  "CMakeFiles/dlsm_util.dir/hash.cc.o.d"
  "CMakeFiles/dlsm_util.dir/histogram.cc.o"
  "CMakeFiles/dlsm_util.dir/histogram.cc.o.d"
  "CMakeFiles/dlsm_util.dir/logging.cc.o"
  "CMakeFiles/dlsm_util.dir/logging.cc.o.d"
  "CMakeFiles/dlsm_util.dir/status.cc.o"
  "CMakeFiles/dlsm_util.dir/status.cc.o.d"
  "libdlsm_util.a"
  "libdlsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
