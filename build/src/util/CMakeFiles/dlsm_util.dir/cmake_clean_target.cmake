file(REMOVE_RECURSE
  "libdlsm_util.a"
)
