# Empty compiler generated dependencies file for dlsm_util.
# This may be replaced when dependencies are built.
