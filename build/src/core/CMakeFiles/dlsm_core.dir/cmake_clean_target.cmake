file(REMOVE_RECURSE
  "libdlsm_core.a"
)
