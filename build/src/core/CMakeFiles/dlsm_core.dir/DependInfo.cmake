
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bloom.cc" "src/core/CMakeFiles/dlsm_core.dir/bloom.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/bloom.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/dlsm_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/compaction.cc" "src/core/CMakeFiles/dlsm_core.dir/compaction.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/compaction.cc.o.d"
  "/root/repo/src/core/comparator.cc" "src/core/CMakeFiles/dlsm_core.dir/comparator.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/comparator.cc.o.d"
  "/root/repo/src/core/db_impl.cc" "src/core/CMakeFiles/dlsm_core.dir/db_impl.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/db_impl.cc.o.d"
  "/root/repo/src/core/db_iter.cc" "src/core/CMakeFiles/dlsm_core.dir/db_iter.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/db_iter.cc.o.d"
  "/root/repo/src/core/dbformat.cc" "src/core/CMakeFiles/dlsm_core.dir/dbformat.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/dbformat.cc.o.d"
  "/root/repo/src/core/iterator.cc" "src/core/CMakeFiles/dlsm_core.dir/iterator.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/iterator.cc.o.d"
  "/root/repo/src/core/memory_node_service.cc" "src/core/CMakeFiles/dlsm_core.dir/memory_node_service.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/memory_node_service.cc.o.d"
  "/root/repo/src/core/memtable.cc" "src/core/CMakeFiles/dlsm_core.dir/memtable.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/memtable.cc.o.d"
  "/root/repo/src/core/merger.cc" "src/core/CMakeFiles/dlsm_core.dir/merger.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/merger.cc.o.d"
  "/root/repo/src/core/shard.cc" "src/core/CMakeFiles/dlsm_core.dir/shard.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/shard.cc.o.d"
  "/root/repo/src/core/table_builder.cc" "src/core/CMakeFiles/dlsm_core.dir/table_builder.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/table_builder.cc.o.d"
  "/root/repo/src/core/table_index.cc" "src/core/CMakeFiles/dlsm_core.dir/table_index.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/table_index.cc.o.d"
  "/root/repo/src/core/table_reader.cc" "src/core/CMakeFiles/dlsm_core.dir/table_reader.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/table_reader.cc.o.d"
  "/root/repo/src/core/table_sink.cc" "src/core/CMakeFiles/dlsm_core.dir/table_sink.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/table_sink.cc.o.d"
  "/root/repo/src/core/version.cc" "src/core/CMakeFiles/dlsm_core.dir/version.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/version.cc.o.d"
  "/root/repo/src/core/write_batch.cc" "src/core/CMakeFiles/dlsm_core.dir/write_batch.cc.o" "gcc" "src/core/CMakeFiles/dlsm_core.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/remote/CMakeFiles/dlsm_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dlsm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
