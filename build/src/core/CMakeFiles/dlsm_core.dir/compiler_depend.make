# Empty compiler generated dependencies file for dlsm_core.
# This may be replaced when dependencies are built.
