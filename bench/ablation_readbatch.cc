// Read-batching ablation: serial Get vs async-L0 Get vs MultiGet under an
// L0 backlog. Round r writes the keys with k % rounds == r — disjoint
// stripes that all span the full key range — then flushes, with compaction
// and bloom filters disabled (the bulkload trick, as Fig. 7b). Every L0
// file therefore may-matches every lookup, but each key lives in exactly
// one file, so a newest-first serial search probes half the backlog on
// average while the async wave overlaps all those round trips.
//
// Three legs per table layout:
//   serial-get   one blocking READ per probe (ReadOptions.async_reads off)
//   async-get    per-key doorbell wave over the may-match L0 files
//   multiget-B   MultiGet with batch size B: one wave per level across keys
//
// Byte-addressable tables resolve probes from the cached per-record index,
// so async-get degenerates to serial there (at most one data READ per
// lookup) while MultiGet still batches across keys; block tables must fetch
// a block per may-match file, which is where the per-key wave pays off.
//
// Usage: ablation_readbatch [--keys=N] [--rounds=N] [--reads=N]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace dlsm {
namespace bench {
namespace {

constexpr int kKeyWidth = 16;
constexpr size_t kValueSize = 400;

std::string MakeKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llu", kKeyWidth,
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

struct LegResult {
  double ops_per_sec = 0;
};

/// Runs one layout's legs in a fresh deployment; returns ops/s per leg in
/// the order: serial, async, multiget per batch size.
std::vector<LegResult> RunLayout(TableFormat format, uint64_t num_keys,
                                 int rounds, uint64_t read_ops,
                                 const std::vector<int>& batches,
                                 int* l0_files) {
  SimEnv env;
  rdma::Fabric fabric(&env);
  uint64_t entry = kKeyWidth + kValueSize + 28;
  size_t mem_dram = num_keys * entry * (rounds + 2) * 4 + (2ull << 30);
  rdma::Node* compute = fabric.AddNode("compute", 24, 2ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, mem_dram);

  std::vector<LegResult> results;
  env.Run(0, [&] {
    MemoryNodeService service(&fabric, memory, 4);
    service.Start();

    Options options;
    options.env = &env;
    options.table_format = format;
    if (format == TableFormat::kBlock) {
      options.block_size = 2048;
      // Bloom off on the block layout: overlapping L0 files must stay
      // may-match, as for workloads whose false-positive rate or range
      // overlap defeats the filter — the case the per-key async wave is
      // for. The byte-addressable layout keeps the dLSM default; its
      // cached per-record index prunes to the one owning file either way,
      // so its lookups are a single READ and MultiGet's cross-key batching
      // is the only lever.
      options.bloom_bits_per_key = 0;
    }
    options.memtable_size = 4 << 20;
    options.sstable_size = 4 << 20;
    options.estimated_entry_size = entry;
    // Bulkload posture: flush freely, never compact, never stall — the L0
    // backlog is the point of the experiment.
    options.l0_compaction_trigger = 1 << 30;
    options.l0_stop_writes_trigger = 1 << 30;
    options.max_immutables = 1 << 20;
    options.flush_threads = 4;
    options.flush_region_size = num_keys * entry * (rounds + 2) * 2 +
                                (256ull << 20);

    DbDeps deps;
    deps.fabric = &fabric;
    deps.compute = compute;
    deps.memory = &service;
    DB* raw = nullptr;
    Status s = DLsmDB::Open(options, deps, &raw);
    DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
    std::unique_ptr<DB> db(raw);

    for (int r = 0; r < rounds; r++) {
      std::string value = "r" + std::to_string(r) + ".";
      value.resize(kValueSize, 'x');
      for (uint64_t i = r; i < num_keys; i += rounds) {
        DLSM_CHECK(db->Put(WriteOptions(), MakeKey(i), value).ok());
      }
      DLSM_CHECK(db->Flush().ok());
    }
    DLSM_CHECK(db->WaitForBackgroundIdle().ok());
    *l0_files = db->NumFilesAtLevel(0);

    // Pre-generate the lookup sequence so every leg reads the same keys
    // and no key-formatting CPU is charged inside the timed region.
    std::vector<std::string> lookup_keys(read_ops);
    {
      Random rnd(17);
      for (uint64_t i = 0; i < read_ops; i++) {
        lookup_keys[i] = MakeKey(rnd.Uniform(num_keys));
      }
    }

    // One client thread on the compute node, as the paper's single-thread
    // latency experiments do.
    auto timed = [&](const std::function<void()>& body) {
      Barrier b0(&env, 2), b1(&env, 2);
      ThreadHandle h = env.StartThread(compute->env_node(), "reader", [&] {
        b0.Arrive();
        body();
        b1.Arrive();
      });
      b0.Arrive();
      uint64_t t0 = env.NowNanos();
      b1.Arrive();
      uint64_t t1 = env.NowNanos();
      env.Join(h);
      LegResult r;
      r.ops_per_sec =
          t1 > t0 ? read_ops / (static_cast<double>(t1 - t0) / 1e9) : 0;
      return r;
    };

    ReadOptions serial_opts;
    serial_opts.async_reads = false;
    results.push_back(timed([&] {
      std::string value;
      for (uint64_t i = 0; i < read_ops; i++) {
        Status st = db->Get(serial_opts, lookup_keys[i], &value);
        DLSM_CHECK(st.ok());
        if ((i & 63) == 0) env.MaybeYield();
      }
    }));

    results.push_back(timed([&] {
      std::string value;
      for (uint64_t i = 0; i < read_ops; i++) {
        Status st = db->Get(ReadOptions(), lookup_keys[i], &value);
        DLSM_CHECK(st.ok());
        if ((i & 63) == 0) env.MaybeYield();
      }
    }));

    for (int batch : batches) {
      results.push_back(timed([&] {
        std::vector<Slice> slices(batch);
        std::vector<std::string> values;
        std::vector<Status> statuses;
        for (uint64_t i = 0; i + batch <= read_ops; i += batch) {
          for (int j = 0; j < batch; j++) slices[j] = lookup_keys[i + j];
          db->MultiGet(ReadOptions(), slices, &values, &statuses);
          for (int j = 0; j < batch; j++) DLSM_CHECK(statuses[j].ok());
          env.MaybeYield();
        }
      }));
    }

    DLSM_CHECK(db->Close().ok());
    db.reset();
    service.Stop();
  });
  return results;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 20000);
  int rounds = static_cast<int>(flags.GetInt("rounds", 8));
  uint64_t reads = flags.GetInt("reads", 32768);
  std::vector<int> batches = {1, 4, 16, 64};

  std::printf(
      "\n=== Read-batching ablation: %llu keys x %d rounds, %llu reads, "
      "L0 backlog ===\n",
      static_cast<unsigned long long>(keys), rounds,
      static_cast<unsigned long long>(reads));

  for (TableFormat format :
       {TableFormat::kByteAddressable, TableFormat::kBlock}) {
    const char* name =
        format == TableFormat::kByteAddressable ? "byte-addressable"
                                                : "block(2KB)";
    int l0_files = 0;
    std::vector<LegResult> r =
        RunLayout(format, keys, rounds, reads, batches, &l0_files);
    double serial = r[0].ops_per_sec;
    std::printf("\n--- layout=%s, L0 files=%d ---\n", name, l0_files);
    std::printf("%-14s %14s %10s\n", "leg", "throughput", "vs serial");
    std::printf("%-14s %14s %9.2fx\n", "serial-get",
                FormatThroughput(serial).c_str(), 1.0);
    std::printf("%-14s %14s %9.2fx\n", "async-get",
                FormatThroughput(r[1].ops_per_sec).c_str(),
                r[1].ops_per_sec / serial);
    for (size_t b = 0; b < batches.size(); b++) {
      char leg[32];
      std::snprintf(leg, sizeof(leg), "multiget-%d", batches[b]);
      std::printf("%-14s %14s %9.2fx\n", leg,
                  FormatThroughput(r[2 + b].ops_per_sec).c_str(),
                  r[2 + b].ops_per_sec / serial);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
