// Benchmark harness: assembles a simulated deployment (compute node(s),
// memory node(s), 100 Gb/s fabric) for one of the seven evaluated systems
// and drives db_bench-style workloads — randomfill (normal / bulkload),
// randomread, mixed read/write, readseq — measuring throughput in virtual
// time, exactly as the paper's Figs. 7-15 do on real hardware.
//
// Default sizes are the paper's setup scaled by ~1/16 (64 MB MemTables and
// SSTables become 4 MB; 100 M keys become --keys, default 100 K) so every
// figure regenerates in seconds on one host core. EXPERIMENTS.md records
// the mapping.

#ifndef DLSM_BENCH_HARNESS_H_
#define DLSM_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/db.h"
#include "src/core/options.h"
#include "src/util/histogram.h"

namespace dlsm {
namespace bench {

/// The systems of Sec. XI-A.
enum class SystemKind {
  kDLsm,          ///< The paper's system.
  kDLsmBlock,     ///< dLSM with 8 KB block SSTables (Fig. 13 ablation).
  kRocks8K,       ///< RocksDB-RDMA (8 KB).
  kRocks2K,       ///< RocksDB-RDMA (2 KB).
  kMemoryRocks,   ///< Memory-RocksDB-RDMA (entry-sized blocks).
  kNovaLsm,       ///< Nova-LSM (tmpfs port, sub-ranges, remote compaction).
  kSherman,       ///< Sherman B+-tree.
};

const char* SystemName(SystemKind kind);

/// One benchmark run's knobs.
struct BenchConfig {
  BenchConfig() {}
  SystemKind system = SystemKind::kDLsm;
  int threads = 1;
  uint64_t num_keys = 100000;
  uint64_t key_range = 0;  ///< 0 = num_keys.
  size_t value_size = 400;
  int key_width = 16;
  int shards = 1;              ///< dLSM-lambda (Sec. VII).
  bool bulkload = false;       ///< No L0 stop trigger (Fig. 7b).
  double read_ratio = 1.0;     ///< For the mixed workload.
  uint64_t mixed_ops = 0;      ///< 0 = num_keys.
  int compute_cores = 24;
  int memory_cores = 4;
  int compaction_workers = 12;
  CompactionPlacement placement = CompactionPlacement::kNearData;
  /// Engine scale: MemTable/SSTable bytes (paper 64 MB, default 4 MB).
  size_t memtable_size = 4 << 20;
  size_t sstable_size = 4 << 20;
  uint64_t seed = 301;
  /// Skewed key choice for the read / mixed phases: Zipfian theta
  /// (YCSB-style; 0.99 = heavy skew). 0 keeps the uniform default. Each
  /// worker scrambles the Zipfian rank through a 64-bit mix so the hot
  /// keys spread across the key space instead of clustering in one table.
  double zipfian_theta = 0.0;
  /// Compute-side block cache (Options passthrough). Zero size = off,
  /// matching the paper's cache-less dLSM.
  size_t block_cache_size = 0;
  int cache_shards = 16;
  bool cache_admission = true;
  /// Ablation overrides (applied after the system preset).
  bool override_switch_policy = false;
  MemTableSwitchPolicy switch_policy = MemTableSwitchPolicy::kSeqRange;
  /// Async write path (group sequence batching, deferred flush WRITEs,
  /// pipelined compaction RPCs); off = the blocking ablation legs.
  bool async_write = true;
  /// Options::compaction_verb_budget passthrough (async_write only).
  uint64_t compaction_verb_budget = 64;
  /// Deterministic fabric fault injection (rdma::FaultParams), enabled
  /// after the deployment opens. Nonzero wr_error_rate also turns on the
  /// engine's RPC retry policy so transient faults are absorbed rather
  /// than aborting the run.
  uint64_t fault_seed = 1;
  double wr_error_rate = 0.0;
  double rnr_delay_rate = 0.0;
  /// Observability. trace_out: when nonempty, tracing is enabled for this
  /// run and a Chrome trace-event JSON (Perfetto-loadable; pid = node,
  /// tid = sim thread) is written there after the run. record_latency:
  /// record per-op latency into PhaseResult::latency_us (two extra virtual
  /// clock reads per op; off by default so the measured fast path is
  /// byte-identical to earlier PRs).
  std::string trace_out;
  bool record_latency = false;
  /// Continuous telemetry (DESIGN Sec. 4.9). stats_series: when nonempty,
  /// the engine's background sampler runs at stats_sample_period_ms
  /// (virtual time) and the "dlsm.timeseries" JSON is written to this path
  /// after the run. Exemplars: when exemplar_k > 0 (and trace_out is set),
  /// only the k slowest ops per exemplar_window_ms window keep their span
  /// trees — 0 keeps every span, the pre-exemplar behaviour the CI smoke
  /// test asserts on. watchdog_deadline_ms arms the stall watchdog.
  std::string stats_series;
  uint64_t stats_sample_period_ms = 1;
  size_t exemplar_k = 0;
  uint64_t exemplar_window_ms = 10;
  uint64_t watchdog_deadline_ms = 0;
};

/// One phase's outcome.
struct PhaseResult {
  double elapsed_s = 0;   ///< Virtual seconds.
  double ops_per_sec = 0;
  uint64_t ops = 0;
  DbStats stats;          ///< DB counters at phase end.
  uint64_t wire_bytes = 0;     ///< Fabric bytes moved during the phase.
  double memory_cpu_util = 0;  ///< Memory-node worker utilization [0,1].
  int l0_files = 0;
  /// Per-op latency in microseconds, merged across worker threads.
  /// Populated only when BenchConfig::record_latency is set.
  Histogram latency_us;
};

/// Workload phases, named after their db_bench counterparts.
enum class Phase {
  kFillRandom,
  kReadRandom,
  kReadWriteMixed,
  kReadSeq,
};

/// Runs `phases` in order against a fresh deployment of config.system;
/// returns one result per phase. The fill phase always runs first
/// implicitly when not listed (read benches need data).
std::vector<PhaseResult> RunBench(const BenchConfig& config,
                                  const std::vector<Phase>& phases);

/// Formats ops/s as the paper's figures do (Kops/Mops).
std::string FormatThroughput(double ops_per_sec);

/// Compact one-line per-verb telemetry from a phase's DbStats (ops, bytes,
/// wire p50/p99, peak outstanding), for the figure binaries' --verb_stats
/// mode. Empty string when the system posted no verbs.
std::string VerbStatsSummary(const DbStats& stats);

/// Accumulates one machine-readable record per bench cell and writes them
/// as a JSON array — the --stats_json output behind the BENCH_*.json perf
/// trajectory. Each record carries the sweep coordinates (figure, system,
/// threads, phase), throughput, per-op latency percentiles (when the run
/// recorded them) and the full StatsJson counter/verb dump. The array's
/// first element is a provenance record {"meta":{...}} — git SHA and
/// build type (stamped at configure time), UTC write timestamp, and the
/// process command line (captured by the Flags constructor) — so a
/// BENCH_*.json pulled from an artifact store identifies the build that
/// produced it.
class StatsJsonWriter {
 public:
  /// An empty path disables the writer (Add/Write become no-ops).
  explicit StatsJsonWriter(const std::string& path) : path_(path) {}

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& figure, const std::string& system, int threads,
           const std::string& phase, const BenchConfig& config,
           const PhaseResult& r);

  /// Writes the accumulated array to the path. Returns false on IO error
  /// (and true, doing nothing, when disabled).
  bool Write() const;

 private:
  std::string path_;
  std::vector<std::string> records_;
};

/// Coordinated-omission-safe latency recorder for fixed-rate (closed-loop
/// with intended schedule) workloads. Op i's intended start is
/// start_ns + i * interval_ns; Record charges completion - intended start,
/// so an op delayed behind a stall also pays the queueing delay the stall
/// imposed on it — the latency a real client at that arrival rate would
/// see — instead of the stall hiding everywhere but in the one op that
/// measured it (Tene's coordinated-omission critique of db_bench-style
/// loops). Not thread-safe; use one per worker and Merge the histograms.
class IntervalRecorder {
 public:
  IntervalRecorder(uint64_t start_ns, uint64_t interval_ns)
      : start_ns_(start_ns),
        interval_ns_(interval_ns > 0 ? interval_ns : 1) {}

  uint64_t IntendedStartNs(uint64_t i) const {
    return start_ns_ + i * interval_ns_;
  }

  /// Records op i completing at completion_ns (same clock as start_ns).
  /// A completion before the intended start (the worker ran ahead of
  /// schedule) records 0 rather than wrapping.
  void Record(uint64_t i, uint64_t completion_ns) {
    uint64_t intended = IntendedStartNs(i);
    uint64_t lat = completion_ns > intended ? completion_ns - intended : 0;
    hist_.Add(static_cast<double>(lat) / 1e3);
  }

  const Histogram& latency_us() const { return hist_; }

 private:
  uint64_t start_ns_;
  uint64_t interval_ns_;
  Histogram hist_;
};

/// Multi-node deployment knobs (paper Sec. IX / Figs. 14-15).
struct ClusterBenchConfig {
  ClusterBenchConfig() {}
  SystemKind system = SystemKind::kDLsm;
  int compute_nodes = 1;
  int memory_nodes = 1;
  int shards_per_compute = 8;  ///< lambda.
  int threads_per_compute = 8;
  uint64_t num_keys = 100000;  ///< Total across the cluster.
  size_t value_size = 400;
  int key_width = 16;
  size_t memtable_size = 4 << 20;
  size_t sstable_size = 4 << 20;
  int compute_cores = 16;      ///< CloudLab c6220: 2x8 cores.
  int memory_cores = 4;
  int compaction_workers = 8;
  uint64_t seed = 301;
  /// Skewed key choice for the read phase: Zipfian theta over each
  /// compute node's key slice (0 = uniform). Unlike BenchConfig, the rank
  /// is NOT scrambled: the popular keys cluster at the bottom of each
  /// compute's range, so under static placement their shards' tables pile
  /// onto one memory node — the hotspot the heat rebalancer must fix.
  double zipfian_theta = 0.0;
  /// Table-to-memory-node placement (Options passthrough; LSM systems).
  PlacementPolicyKind placement_policy = PlacementPolicyKind::kRoundRobin;
  bool placement_rebalance = false;
  /// Rebalance pass period override; 0 keeps the Options default. The
  /// placement A/B leg drops this to ~2 ms virtual so the rebalancer gets
  /// several rounds within the scaled-down read phase.
  uint64_t placement_rebalance_interval_ns = 0;
  /// Read phase repetitions; passes before the last are warm-up (the heat
  /// rebalancer settles the layout) and only the last is measured.
  int read_passes = 1;
  /// Record per-op read latency (read_p50_us in the result).
  bool record_latency = false;
};

struct ClusterBenchResult {
  double fill_ops_per_sec = 0;
  double read_ops_per_sec = 0;
  /// Read-phase per-op latency p50 in microseconds (record_latency only).
  double read_p50_us = 0;
  Histogram read_latency_us;
  /// Read-phase READ-verb / WRITE-byte deltas per memory node, summed
  /// slot-wise across every shard (LSM systems only; empty for Sherman).
  std::vector<uint64_t> node_read_verbs;
  std::vector<uint64_t> node_write_bytes;
  /// max/mean over node_read_verbs: 1.0 = perfectly balanced, 0 = unknown.
  double read_imbalance = 0;
  uint64_t tables_migrated = 0;
  uint64_t migration_bytes = 0;
  /// Cluster-merged engine counters at end of run (LSM systems only).
  DbStats stats;
};

/// Fills then reads across the whole cluster; client threads run on their
/// keys' owning compute node, as the paper's multi-node db_bench does.
ClusterBenchResult RunClusterBench(const ClusterBenchConfig& config);

/// Tiny --key=value flag parser for the figure binaries.
class Flags {
 public:
  Flags(int argc, char** argv);
  uint64_t GetInt(const std::string& name, uint64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name,
                        const std::string& def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace bench
}  // namespace dlsm

#endif  // DLSM_BENCH_HARNESS_H_
