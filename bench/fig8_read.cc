// Figure 8: random-read throughput vs. threads, all systems. The read
// phase starts after all background compaction finishes, as in the paper.
//
// Usage: fig8_read [--keys=N] [--threads=1,2,4,8,16]

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 100000);
  std::vector<int> threads;
  {
    std::stringstream ss(flags.GetString("threads", "1,2,4,8,16"));
    std::string tok;
    while (std::getline(ss, tok, ',')) threads.push_back(std::stoi(tok));
  }

  std::vector<SystemKind> systems = {
      SystemKind::kDLsm,        SystemKind::kRocks8K,
      SystemKind::kRocks2K,     SystemKind::kMemoryRocks,
      SystemKind::kNovaLsm,     SystemKind::kSherman,
  };

  std::printf("\n=== Figure 8: randomread after compaction, %llu keys ===\n",
              static_cast<unsigned long long>(keys));
  std::printf("%-22s", "system");
  for (int t : threads) std::printf("%12d-thr", t);
  std::printf("\n");

  bool verb_stats = flags.GetBool("verb_stats", false);
  for (SystemKind system : systems) {
    std::printf("%-22s", SystemName(system));
    std::fflush(stdout);
    std::string verbs;
    for (int t : threads) {
      BenchConfig config;
      config.system = system;
      config.threads = t;
      config.num_keys = keys;
      auto r = RunBench(config, {Phase::kReadRandom});
      std::printf("%16s", FormatThroughput(r[0].ops_per_sec).c_str());
      std::fflush(stdout);
      verbs = VerbStatsSummary(r[0].stats);
    }
    std::printf("\n");
    // Per-verb wire telemetry for the last (widest) thread count.
    if (verb_stats && !verbs.empty()) std::printf("  [%s]\n", verbs.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
