// Figure 8: random-read throughput vs. threads, all systems. The read
// phase starts after all background compaction finishes, as in the paper.
//
// Usage: fig8_read [--keys=N] [--threads=1,2,4,8,16] [--only=SUBSTR]
//                  [--memtable_kb=N] [--stats_json=FILE] [--trace_out=FILE]

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

// SLO mode (--slo_read_p99_us=N): mixed 50/50 read/write workload on dLSM
// so flushes and near-data compactions run concurrently with foreground
// READ waves, then checks the one-sided READ p99 against the threshold.
// This is the guardrail for the compaction verb budget: an uncapped
// pipelined compaction scheduler could queue enough verbs to blow up
// foreground tail latency. Returns nonzero on violation (CI-friendly).
int RunReadSlo(uint64_t keys, int threads, double slo_us, uint64_t budget) {
  BenchConfig config;
  config.threads = threads;
  config.num_keys = keys;
  config.read_ratio = 0.5;
  config.compaction_verb_budget = budget;
  config.memtable_size = 1 << 20;
  config.sstable_size = 1 << 20;
  auto r = RunBench(config, {Phase::kReadWriteMixed});
  const auto& read = r[0].stats.rdma.cls(rdma::VerbClass::kRead);
  double p99 = read.latency_us.Percentile(99.0);
  bool ok = p99 <= slo_us;
  std::printf("\n=== READ p99 SLO under concurrent compaction: %llu keys, "
              "%d threads, budget=%llu ===\n",
              static_cast<unsigned long long>(keys), threads,
              static_cast<unsigned long long>(budget));
  std::printf("mixed %.1f Kops/s | %llu READs p50 %.1fus p99 %.1fus | "
              "compactions %llu (rpc inflight peak %llu) | SLO %.1fus: %s\n",
              r[0].ops_per_sec / 1e3,
              static_cast<unsigned long long>(read.ops),
              read.latency_us.Percentile(50.0), p99,
              static_cast<unsigned long long>(r[0].stats.compactions),
              static_cast<unsigned long long>(
                  r[0].stats.compaction_rpc_inflight_peak),
              slo_us, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 100000);
  std::vector<int> threads;
  {
    std::stringstream ss(flags.GetString("threads", "1,2,4,8,16"));
    std::string tok;
    while (std::getline(ss, tok, ',')) threads.push_back(std::stoi(tok));
  }
  double slo_us = flags.GetDouble("slo_read_p99_us", 0);
  if (slo_us > 0) {
    return RunReadSlo(keys, static_cast<int>(flags.GetInt("slo_threads", 8)),
                      slo_us, flags.GetInt("budget", 64));
  }

  std::vector<SystemKind> systems = {
      SystemKind::kDLsm,        SystemKind::kRocks8K,
      SystemKind::kRocks2K,     SystemKind::kMemoryRocks,
      SystemKind::kNovaLsm,     SystemKind::kSherman,
  };
  // --only=SUBSTR: run the matching systems only (CI smoke / tracing one
  // system without paying for the full sweep).
  std::string only = flags.GetString("only", "");
  if (!only.empty()) {
    std::vector<SystemKind> filtered;
    for (SystemKind sk : systems) {
      if (std::string(SystemName(sk)).find(only) != std::string::npos) {
        filtered.push_back(sk);
      }
    }
    systems = filtered;
  }

  std::printf("\n=== Figure 8: randomread after compaction, %llu keys ===\n",
              static_cast<unsigned long long>(keys));
  std::printf("%-22s", "system");
  for (int t : threads) std::printf("%12d-thr", t);
  std::printf("\n");

  bool verb_stats = flags.GetBool("verb_stats", false);
  // Deterministic fault injection; --verb_stats then shows per-verb error
  // counts, QP reconnects and retry/timeout totals.
  double fault_rate = flags.GetDouble("fault_rate", 0);
  double rnr_rate = flags.GetDouble("rnr_rate", 0);
  uint64_t fault_seed = flags.GetInt("fault_seed", 1);
  // --stats_json=FILE: machine-readable records (one per cell).
  // --trace_out=FILE: Chrome trace JSON; every traced cell rewrites the
  // file, so the trace covers the last cell run — narrow the sweep with
  // --only/--threads to trace one deployment.
  StatsJsonWriter stats_json(flags.GetString("stats_json", ""));
  std::string trace_out = flags.GetString("trace_out", "");
  // --memtable_kb: shrink the engine scale so small smoke runs still hit
  // flush + L0 compaction (the paper's 64 MB scaled with the dataset).
  size_t memtable_kb = flags.GetInt("memtable_kb", 4096);
  for (SystemKind system : systems) {
    std::printf("%-22s", SystemName(system));
    std::fflush(stdout);
    std::string verbs;
    for (int t : threads) {
      BenchConfig config;
      config.system = system;
      config.threads = t;
      config.num_keys = keys;
      config.fault_seed = fault_seed;
      config.wr_error_rate = fault_rate;
      config.rnr_delay_rate = rnr_rate;
      config.memtable_size = memtable_kb << 10;
      config.sstable_size = memtable_kb << 10;
      config.record_latency = stats_json.enabled();
      config.trace_out = trace_out;
      auto r = RunBench(config, {Phase::kReadRandom});
      std::printf("%16s", FormatThroughput(r[0].ops_per_sec).c_str());
      std::fflush(stdout);
      stats_json.Add("fig8", SystemName(system), t, "readrandom", config,
                     r[0]);
      verbs = VerbStatsSummary(r[0].stats);
    }
    std::printf("\n");
    // Per-verb wire telemetry for the last (widest) thread count.
    if (verb_stats && !verbs.empty()) std::printf("  [%s]\n", verbs.c_str());
  }
  if (!stats_json.Write()) {
    std::fprintf(stderr, "warning: could not write --stats_json file\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
