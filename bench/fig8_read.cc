// Figure 8: random-read throughput vs. threads, all systems. The read
// phase starts after all background compaction finishes, as in the paper.
//
// Usage: fig8_read [--keys=N] [--threads=1,2,4,8,16] [--only=SUBSTR]
//                  [--memtable_kb=N] [--stats_json=FILE] [--trace_out=FILE]
//                  [--zipfian=THETA] [--cache_ab [--cache_mb=64]]
//                  [--stats_series=FILE [--stats_period_ms=1]]
//                  [--watchdog_ms=N] [--exemplar_k=N [--exemplar_window_ms=10]]
//                  [--telemetry_ab]

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

// SLO mode (--slo_read_p99_us=N): mixed 50/50 read/write workload on dLSM
// so flushes and near-data compactions run concurrently with foreground
// READ waves, then checks the one-sided READ p99 against the threshold.
// This is the guardrail for the compaction verb budget: an uncapped
// pipelined compaction scheduler could queue enough verbs to blow up
// foreground tail latency. Returns nonzero on violation (CI-friendly).
int RunReadSlo(uint64_t keys, int threads, double slo_us, uint64_t budget) {
  BenchConfig config;
  config.threads = threads;
  config.num_keys = keys;
  config.read_ratio = 0.5;
  config.compaction_verb_budget = budget;
  config.memtable_size = 1 << 20;
  config.sstable_size = 1 << 20;
  auto r = RunBench(config, {Phase::kReadWriteMixed});
  const auto& read = r[0].stats.rdma.cls(rdma::VerbClass::kRead);
  double p99 = read.latency_us.Percentile(99.0);
  bool ok = p99 <= slo_us;
  std::printf("\n=== READ p99 SLO under concurrent compaction: %llu keys, "
              "%d threads, budget=%llu ===\n",
              static_cast<unsigned long long>(keys), threads,
              static_cast<unsigned long long>(budget));
  std::printf("mixed %.1f Kops/s | %llu READs p50 %.1fus p99 %.1fus | "
              "compactions %llu (rpc inflight peak %llu) | SLO %.1fus: %s\n",
              r[0].ops_per_sec / 1e3,
              static_cast<unsigned long long>(read.ops),
              read.latency_us.Percentile(50.0), p99,
              static_cast<unsigned long long>(r[0].stats.compactions),
              static_cast<unsigned long long>(
                  r[0].stats.compaction_rpc_inflight_peak),
              slo_us, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// --cache_ab mode: A/B guard + speedup series for the compute-side block
// cache under a skewed read workload. Three runs of the same fill+read
// deployment:
//   off — cache disabled (the no-cache configuration every earlier PR
//         measured), run as fill + two identical back-to-back read phases
//         on one warm deployment. SimEnv folds measured host CPU into
//         virtual time, so throughput and op latency carry host noise;
//         the phase-vs-phase guard (PR 5's tracing-guard idea) therefore
//         checks the wire, which the simulator models deterministically:
//         the two phases must post the identical number of one-sided
//         READ verbs and the READ wire p50 must stay within 2%. The
//         CPU-measured op p50 delta is reported informationally.
//   on  — --cache_mb (default 64 MiB) with TinyLFU admission, same
//         shape: read phase 1 fills the cache, read phase 2 is steady
//         state.
// At theta=0.99 the hot set fits in 64 MiB, so the steady-state read
// phase's one-sided READ verbs must drop >= 3x and op p50 must not
// regress. Returns nonzero on any guard violation (CI-friendly).
int RunCacheAb(uint64_t keys, const Flags& flags) {
  BenchConfig base;
  base.threads = static_cast<int>(flags.GetInt("ab_threads", 8));
  base.num_keys = keys;
  base.zipfian_theta = flags.GetDouble("zipfian", 0.99);
  size_t memtable_kb = flags.GetInt("memtable_kb", 1024);
  base.memtable_size = memtable_kb << 10;
  base.sstable_size = memtable_kb << 10;
  base.record_latency = true;
  StatsJsonWriter stats_json(flags.GetString("stats_json", ""));

  // One deployment per config: fill, then two identical read phases.
  // Stats are cumulative, so phase i's READ verbs are the i-to-(i-1)
  // difference.
  auto run = [&](size_t cache_bytes, const char* label) {
    BenchConfig config = base;
    config.block_cache_size = cache_bytes;
    auto r = RunBench(config, {Phase::kFillRandom, Phase::kReadRandom,
                               Phase::kReadRandom});
    stats_json.Add("cache_ab", label, config.threads, "readrandom", config,
                   r[2]);
    return r;
  };
  auto phase_reads = [](const std::vector<PhaseResult>& r, size_t i) {
    return r[i].stats.rdma.cls(rdma::VerbClass::kRead).ops -
           r[i - 1].stats.rdma.cls(rdma::VerbClass::kRead).ops;
  };

  auto off = run(0, "dLSM");
  size_t cache_bytes = flags.GetInt("cache_mb", 64) << 20;
  auto on = run(cache_bytes, "dLSM+cache");

  double off1_p50 = off[1].latency_us.Percentile(50.0);
  double p50_off = off[2].latency_us.Percentile(50.0);
  double op_delta = 100.0 * (p50_off - off1_p50) / off1_p50;
  // Wire-side statistics (deterministic): stats are cumulative, so if the
  // two read phases are byte-identical on the wire, the cumulative READ
  // p50 is unchanged after phase 2.
  double wire1_p50 =
      off[1].stats.rdma.cls(rdma::VerbClass::kRead).latency_us.Percentile(
          50.0);
  double wire2_p50 =
      off[2].stats.rdma.cls(rdma::VerbClass::kRead).latency_us.Percentile(
          50.0);
  double off_delta = 100.0 * (wire2_p50 - wire1_p50) / wire1_p50;
  uint64_t reads_off = phase_reads(off, 2), reads_on = phase_reads(on, 2);
  bool verbs_ok = phase_reads(off, 1) == reads_off;
  // reads_on == 0 means the steady-state hot set fits entirely — an
  // infinite reduction, reported as the off count.
  double verb_ratio = static_cast<double>(reads_off) /
                      (reads_on > 0 ? reads_on : 1);
  double p50_on = on[2].latency_us.Percentile(50.0);
  uint64_t hits = on[2].stats.cache_hits - on[1].stats.cache_hits;
  uint64_t lookups = hits + on[2].stats.cache_misses -
                     on[1].stats.cache_misses;

  bool off_ok = off_delta <= 2.0 && off_delta >= -2.0;
  bool ratio_ok = verb_ratio >= 3.0;
  bool p50_ok = p50_on <= p50_off;
  std::printf("\n=== Cache A/B: %llu keys, %d threads, zipfian %.2f, "
              "%zu MiB cache ===\n",
              static_cast<unsigned long long>(keys), base.threads,
              base.zipfian_theta, cache_bytes >> 20);
  std::printf("%14s %14s %14s %12s %10s\n", "config", "read ops/s",
              "READ verbs", "op p50 us", "hit rate");
  std::printf("%14s %14.0f %14llu %12.2f %10s\n", "cache off",
              off[1].ops_per_sec,
              static_cast<unsigned long long>(phase_reads(off, 1)),
              off1_p50, "-");
  std::printf("%14s %14.0f %14llu %12.2f %10s\n", "off rerun",
              off[2].ops_per_sec,
              static_cast<unsigned long long>(reads_off), p50_off, "-");
  std::printf("%14s %14.0f %14llu %12.2f %9.1f%%\n", "cache on",
              on[2].ops_per_sec,
              static_cast<unsigned long long>(reads_on), p50_on,
              lookups > 0 ? 100.0 * hits / lookups : 0.0);
  std::printf("off-vs-off wire p50 delta %+.2f%% (guard |delta| <= 2%%: "
              "%s) | off verb traffic identical: %s | "
              "READ verb reduction %.1fx (guard >= 3x: %s) | "
              "p50 %.2f -> %.2f us (guard no regress: %s) | "
              "off-vs-off op p50 delta %+.2f%% (host CPU noise, "
              "informational)\n",
              off_delta, off_ok ? "PASS" : "FAIL",
              verbs_ok ? "PASS" : "FAIL", verb_ratio,
              ratio_ok ? "PASS" : "FAIL", p50_off, p50_on,
              p50_ok ? "PASS" : "FAIL", op_delta);
  if (!stats_json.Write()) {
    std::fprintf(stderr, "warning: could not write --stats_json file\n");
    return 1;
  }
  return off_ok && verbs_ok && ratio_ok && p50_ok ? 0 : 1;
}

// --telemetry_ab mode: overhead guard for the continuous-telemetry stack
// (DESIGN Sec. 4.9). Two identical fill+read dLSM runs: off — telemetry
// never configured (the default every earlier PR measured) — and on —
// 1 ms sampler plus a 50 ms stall watchdog. Neither posts verbs or sits
// on an op path, so the wire must be unchanged: the read phase's
// one-sided READ verb count and wire p50 must stay within 2%. The
// virtual-time ops/s delta folds host CPU (the sampler thread's real
// cost) and is reported against the same 2% budget. Returns nonzero on
// violation (CI-friendly).
int RunTelemetryAb(uint64_t keys, const Flags& flags) {
  BenchConfig base;
  base.threads = static_cast<int>(flags.GetInt("ab_threads", 8));
  base.num_keys = keys;
  size_t memtable_kb = flags.GetInt("memtable_kb", 1024);
  base.memtable_size = memtable_kb << 10;
  base.sstable_size = memtable_kb << 10;

  auto run = [&](bool telemetry) {
    BenchConfig config = base;
    if (telemetry) {
      config.stats_series = flags.GetString("stats_series", "/dev/null");
      config.stats_sample_period_ms = flags.GetInt("stats_period_ms", 1);
      config.watchdog_deadline_ms = flags.GetInt("watchdog_ms", 50);
    }
    return RunBench(config, {Phase::kFillRandom, Phase::kReadRandom});
  };
  auto off = run(false);
  auto on = run(true);

  auto read_cls = [](const PhaseResult& r) {
    return r.stats.rdma.cls(rdma::VerbClass::kRead);
  };
  uint64_t verbs_off = read_cls(off[1]).ops - read_cls(off[0]).ops;
  uint64_t verbs_on = read_cls(on[1]).ops - read_cls(on[0]).ops;
  double verb_delta = verbs_off > 0
                          ? 100.0 * (static_cast<double>(verbs_on) -
                                     static_cast<double>(verbs_off)) /
                                static_cast<double>(verbs_off)
                          : 0.0;
  double wire_off = read_cls(on[1]).latency_us.Percentile(50.0);
  double wire_ref = read_cls(off[1]).latency_us.Percentile(50.0);
  double wire_delta = wire_ref > 0 ? 100.0 * (wire_off - wire_ref) / wire_ref
                                   : 0.0;
  double ops_delta = 100.0 * (on[1].ops_per_sec - off[1].ops_per_sec) /
                     off[1].ops_per_sec;
  uint64_t stalls = on[1].stats.watchdog_stalls;

  bool verbs_ok = verb_delta <= 2.0 && verb_delta >= -2.0;
  bool wire_ok = wire_delta <= 2.0 && wire_delta >= -2.0;
  bool stalls_ok = stalls == 0;
  std::printf("\n=== Telemetry A/B: %llu keys, %d threads, 1ms sampler + "
              "50ms watchdog ===\n",
              static_cast<unsigned long long>(keys), base.threads);
  std::printf("%14s %14s %14s %12s\n", "config", "read ops/s", "READ verbs",
              "wire p50 us");
  std::printf("%14s %14.0f %14llu %12.2f\n", "telemetry off",
              off[1].ops_per_sec,
              static_cast<unsigned long long>(verbs_off), wire_ref);
  std::printf("%14s %14.0f %14llu %12.2f\n", "telemetry on",
              on[1].ops_per_sec,
              static_cast<unsigned long long>(verbs_on), wire_off);
  std::printf("READ verb delta %+.2f%% (guard |delta| <= 2%%: %s) | "
              "wire p50 delta %+.2f%% (guard |delta| <= 2%%: %s) | "
              "watchdog stalls %llu (guard 0: %s) | "
              "ops/s delta %+.2f%% (host CPU folded, informational)\n",
              verb_delta, verbs_ok ? "PASS" : "FAIL", wire_delta,
              wire_ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(stalls),
              stalls_ok ? "PASS" : "FAIL", ops_delta);
  return verbs_ok && wire_ok && stalls_ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 100000);
  if (flags.GetBool("cache_ab", false)) return RunCacheAb(keys, flags);
  if (flags.GetBool("telemetry_ab", false)) {
    return RunTelemetryAb(keys, flags);
  }
  std::vector<int> threads;
  {
    std::stringstream ss(flags.GetString("threads", "1,2,4,8,16"));
    std::string tok;
    while (std::getline(ss, tok, ',')) threads.push_back(std::stoi(tok));
  }
  double slo_us = flags.GetDouble("slo_read_p99_us", 0);
  if (slo_us > 0) {
    return RunReadSlo(keys, static_cast<int>(flags.GetInt("slo_threads", 8)),
                      slo_us, flags.GetInt("budget", 64));
  }

  std::vector<SystemKind> systems = {
      SystemKind::kDLsm,        SystemKind::kRocks8K,
      SystemKind::kRocks2K,     SystemKind::kMemoryRocks,
      SystemKind::kNovaLsm,     SystemKind::kSherman,
  };
  // --only=SUBSTR: run the matching systems only (CI smoke / tracing one
  // system without paying for the full sweep).
  std::string only = flags.GetString("only", "");
  if (!only.empty()) {
    std::vector<SystemKind> filtered;
    for (SystemKind sk : systems) {
      if (std::string(SystemName(sk)).find(only) != std::string::npos) {
        filtered.push_back(sk);
      }
    }
    systems = filtered;
  }

  std::printf("\n=== Figure 8: randomread after compaction, %llu keys ===\n",
              static_cast<unsigned long long>(keys));
  std::printf("%-22s", "system");
  for (int t : threads) std::printf("%12d-thr", t);
  std::printf("\n");

  bool verb_stats = flags.GetBool("verb_stats", false);
  // Deterministic fault injection; --verb_stats then shows per-verb error
  // counts, QP reconnects and retry/timeout totals.
  double fault_rate = flags.GetDouble("fault_rate", 0);
  double rnr_rate = flags.GetDouble("rnr_rate", 0);
  uint64_t fault_seed = flags.GetInt("fault_seed", 1);
  // --stats_json=FILE: machine-readable records (one per cell).
  // --trace_out=FILE: Chrome trace JSON; every traced cell rewrites the
  // file, so the trace covers the last cell run — narrow the sweep with
  // --only/--threads to trace one deployment.
  StatsJsonWriter stats_json(flags.GetString("stats_json", ""));
  std::string trace_out = flags.GetString("trace_out", "");
  // Continuous telemetry: --stats_series writes the engine's sampler ring
  // ("dlsm.timeseries") after the run. Like --trace_out, every cell
  // rewrites the file — narrow the sweep to series one deployment.
  // --exemplar_k keeps only the k slowest ops' span trees per window in
  // the trace; --watchdog_ms arms the stall watchdog.
  std::string stats_series = flags.GetString("stats_series", "");
  uint64_t stats_period_ms = flags.GetInt("stats_period_ms", 1);
  uint64_t watchdog_ms = flags.GetInt("watchdog_ms", 0);
  size_t exemplar_k = flags.GetInt("exemplar_k", 0);
  uint64_t exemplar_window_ms = flags.GetInt("exemplar_window_ms", 10);
  // --memtable_kb: shrink the engine scale so small smoke runs still hit
  // flush + L0 compaction (the paper's 64 MB scaled with the dataset).
  size_t memtable_kb = flags.GetInt("memtable_kb", 4096);
  for (SystemKind system : systems) {
    std::printf("%-22s", SystemName(system));
    std::fflush(stdout);
    std::string verbs;
    for (int t : threads) {
      BenchConfig config;
      config.system = system;
      config.threads = t;
      config.num_keys = keys;
      config.fault_seed = fault_seed;
      config.wr_error_rate = fault_rate;
      config.rnr_delay_rate = rnr_rate;
      config.memtable_size = memtable_kb << 10;
      config.sstable_size = memtable_kb << 10;
      config.zipfian_theta = flags.GetDouble("zipfian", 0);
      config.record_latency = stats_json.enabled();
      config.trace_out = trace_out;
      config.stats_series = stats_series;
      config.stats_sample_period_ms = stats_period_ms;
      config.watchdog_deadline_ms = watchdog_ms;
      config.exemplar_k = exemplar_k;
      config.exemplar_window_ms = exemplar_window_ms;
      auto r = RunBench(config, {Phase::kReadRandom});
      std::printf("%16s", FormatThroughput(r[0].ops_per_sec).c_str());
      std::fflush(stdout);
      stats_json.Add("fig8", SystemName(system), t, "readrandom", config,
                     r[0]);
      verbs = VerbStatsSummary(r[0].stats);
    }
    std::printf("\n");
    // Per-verb wire telemetry for the last (widest) thread count.
    if (verb_stats && !verbs.empty()) std::printf("  [%s]\n", verbs.c_str());
  }
  if (!stats_json.Write()) {
    std::fprintf(stderr, "warning: could not write --stats_json file\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
