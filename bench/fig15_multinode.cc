// Figure 15: multi-node design — x compute nodes and x memory nodes scale
// together (xCxM), lambda = 8, data grows with the cluster; dLSM vs
// Sherman vs Nova-LSM.
//
// Usage: fig15_multinode [--base=N]

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t base = flags.GetInt("base", 50000);

  std::printf("\n=== Figure 15: xCxM scaling, lambda=8 ===\n");
  std::printf("%-10s %8s %10s %16s %16s\n", "system", "nodes", "keys",
              "write", "read");
  for (SystemKind system :
       {SystemKind::kDLsm, SystemKind::kNovaLsm, SystemKind::kSherman}) {
    for (int x : {1, 2, 4, 8}) {
      ClusterBenchConfig config;
      config.system = system;
      config.compute_nodes = x;
      config.memory_nodes = x;
      config.shards_per_compute = 8;
      config.threads_per_compute = 8;
      config.num_keys = base * x;
      ClusterBenchResult r = RunClusterBench(config);
      std::printf("%-10s %dC%dM %12llu %16s %16s\n", SystemName(system), x,
                  x, static_cast<unsigned long long>(config.num_keys),
                  FormatThroughput(r.fill_ops_per_sec).c_str(),
                  FormatThroughput(r.read_ops_per_sec).c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
