// Figure 15: multi-node design — x compute nodes and x memory nodes scale
// together (xCxM), lambda = 8, data grows with the cluster; dLSM vs
// Sherman vs Nova-LSM. Multi-memory-node rows also report the per-node
// READ-verb distribution and its max/mean imbalance ratio.
//
// --placement_ab runs the placement A/B instead: a Zipfian-0.99 read
// phase on 4C4M with the heat rebalancer off vs on (imbalance ratio must
// drop), then a uniform leg off vs on (p50 must not regress). --stats_json
// writes one record per leg (BENCH_placement.json).
//
// Usage: fig15_multinode [--base=N] [--placement_ab] [--zipfian=T]
//                        [--stats_json=PATH]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

std::string NodeDistribution(const ClusterBenchResult& r) {
  std::string out = "[";
  for (size_t i = 0; i < r.node_read_verbs.size(); i++) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : " ",
                  static_cast<unsigned long long>(r.node_read_verbs[i]));
    out.append(buf);
  }
  out.append("]");
  return out;
}

// One leg of the placement A/B; returns the result and logs a record.
ClusterBenchResult PlacementLeg(uint64_t base, double theta, bool rebalance,
                                StatsJsonWriter* json, const char* phase) {
  ClusterBenchConfig config;
  config.system = SystemKind::kDLsm;
  config.compute_nodes = 4;
  config.memory_nodes = 4;
  config.shards_per_compute = 8;
  config.threads_per_compute = 8;
  config.num_keys = base * 4;
  // Smaller tables than the default scale-down: the hot shard then spans
  // ~20 tables, giving the rebalancer migratable units to spread.
  config.memtable_size = 1 << 20;
  config.sstable_size = 1 << 20;
  config.zipfian_theta = theta;
  config.placement_rebalance = rebalance;
  // The scaled-down read phase lasts tens of virtual milliseconds; a 2 ms
  // pass period gives the rebalancer several rounds within it.
  config.placement_rebalance_interval_ns = 2'000'000;
  // First pass settles the layout (heat accrues, tables migrate); the
  // measured second pass sees the rebalanced placement.
  config.read_passes = rebalance ? 2 : 1;
  config.record_latency = true;
  ClusterBenchResult r = RunClusterBench(config);
  if (json != nullptr && json->enabled()) {
    BenchConfig meta;
    meta.system = config.system;
    meta.num_keys = config.num_keys;
    meta.zipfian_theta = theta;
    PhaseResult pr;
    pr.ops = config.num_keys;
    pr.ops_per_sec = r.read_ops_per_sec;
    pr.elapsed_s = r.read_ops_per_sec > 0
                       ? static_cast<double>(config.num_keys) /
                             r.read_ops_per_sec
                       : 0;
    pr.stats = r.stats;
    pr.latency_us = r.read_latency_us;
    json->Add("fig15_placement_ab", SystemName(config.system),
              config.compute_nodes * config.threads_per_compute, phase, meta,
              pr);
  }
  return r;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t base = flags.GetInt("base", 50000);
  double theta = flags.GetDouble("zipfian", 0.99);
  StatsJsonWriter json(flags.GetString("stats_json", ""));

  if (flags.GetBool("placement_ab", false)) {
    std::printf("\n=== Placement A/B: 4C4M, lambda=8, heat rebalancer ===\n");
    std::printf("%-22s %12s %10s %10s %10s\n", "leg", "read", "imbalance",
                "migrated", "p50(us)");
    auto row = [&](const char* leg, const ClusterBenchResult& r) {
      std::printf("%-22s %12s %9.2fx %10llu %10.1f\n", leg,
                  FormatThroughput(r.read_ops_per_sec).c_str(),
                  r.read_imbalance,
                  static_cast<unsigned long long>(r.tables_migrated),
                  r.read_p50_us);
      std::printf("  per-node read verbs %s\n", NodeDistribution(r).c_str());
      std::fflush(stdout);
    };
    ClusterBenchResult zoff =
        PlacementLeg(base, theta, false, &json, "zipf_static");
    row("zipf static", zoff);
    ClusterBenchResult zon =
        PlacementLeg(base, theta, true, &json, "zipf_rebalance");
    row("zipf rebalance", zon);
    ClusterBenchResult uoff =
        PlacementLeg(base, 0.0, false, &json, "uniform_static");
    row("uniform static", uoff);
    ClusterBenchResult uon =
        PlacementLeg(base, 0.0, true, &json, "uniform_rebalance");
    row("uniform rebalance", uon);
    double cut = zon.read_imbalance > 0
                     ? zoff.read_imbalance / zon.read_imbalance
                     : 0;
    double p50_delta = uoff.read_p50_us > 0
                           ? (uon.read_p50_us - uoff.read_p50_us) /
                                 uoff.read_p50_us * 100.0
                           : 0;
    std::printf("imbalance cut %.2fx  uniform p50 delta %+.2f%%\n", cut,
                p50_delta);
    if (!json.Write()) {
      std::fprintf(stderr, "warning: could not write stats json\n");
      return 1;
    }
    // CI guard thresholds: the rebalancer must halve the skew and must
    // not tax the balanced workload.
    bool ok = true;
    if (cut < 2.0) {
      std::fprintf(stderr, "FAIL: imbalance cut %.2fx < 2x\n", cut);
      ok = false;
    }
    if (p50_delta > 2.0) {
      std::fprintf(stderr, "FAIL: uniform p50 regression %+.2f%% > 2%%\n",
                   p50_delta);
      ok = false;
    }
    return ok ? 0 : 1;
  }

  std::printf("\n=== Figure 15: xCxM scaling, lambda=8 ===\n");
  std::printf("%-10s %8s %10s %16s %16s %10s\n", "system", "nodes", "keys",
              "write", "read", "imbalance");
  for (SystemKind system :
       {SystemKind::kDLsm, SystemKind::kNovaLsm, SystemKind::kSherman}) {
    for (int x : {1, 2, 4, 8}) {
      ClusterBenchConfig config;
      config.system = system;
      config.compute_nodes = x;
      config.memory_nodes = x;
      config.shards_per_compute = 8;
      config.threads_per_compute = 8;
      config.num_keys = base * x;
      ClusterBenchResult r = RunClusterBench(config);
      char imb[24] = "-";
      if (r.read_imbalance > 0) {
        std::snprintf(imb, sizeof(imb), "%.2fx", r.read_imbalance);
      }
      std::printf("%-10s %dC%dM %12llu %16s %16s %10s\n", SystemName(system),
                  x, x, static_cast<unsigned long long>(config.num_keys),
                  FormatThroughput(r.fill_ops_per_sec).c_str(),
                  FormatThroughput(r.read_ops_per_sec).c_str(), imb);
      if (r.node_read_verbs.size() > 1) {
        std::printf("  per-node read verbs %s\n",
                    NodeDistribution(r).c_str());
      }
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
