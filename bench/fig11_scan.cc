// Figure 11: readseq — full-table scan throughput. All LSM systems enable
// chunk prefetching; Sherman walks 1 KB leaves. Nova-LSM is omitted, as in
// the paper ("due to a bug on the range index for Nova-LSM").
//
// Usage: fig11_scan [--keys=N]

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 100000);

  std::vector<SystemKind> systems = {
      SystemKind::kDLsm,        SystemKind::kRocks8K,
      SystemKind::kRocks2K,     SystemKind::kMemoryRocks,
      SystemKind::kSherman,
  };

  std::printf("\n=== Figure 11: readseq full scan, %llu keys ===\n",
              static_cast<unsigned long long>(keys));
  std::printf("%-22s %16s %14s %14s\n", "system", "scan", "entries",
              "wire MB");
  bool verb_stats = flags.GetBool("verb_stats", false);
  for (SystemKind system : systems) {
    BenchConfig config;
    config.system = system;
    config.num_keys = keys;
    auto r = RunBench(config, {Phase::kReadSeq});
    std::printf("%-22s %16s %14llu %14.1f\n", SystemName(system),
                FormatThroughput(r[0].ops_per_sec).c_str(),
                static_cast<unsigned long long>(r[0].ops),
                r[0].wire_bytes / 1e6);
    std::string verbs = VerbStatsSummary(r[0].stats);
    if (verb_stats && !verbs.empty()) std::printf("  [%s]\n", verbs.c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
