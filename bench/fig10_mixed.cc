// Figure 10: mixed read/write throughput at varying read ratios, with
// dLSM-lambda sharding (Sec. VII) against the baselines.
//
// Usage: fig10_mixed [--keys=N] [--threads=8] [--ratios=0,5,50,95,100]
//                    [--zipfian=THETA]

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

struct Entry {
  SystemKind system;
  int shards;
  const char* label;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 100000);
  int threads = static_cast<int>(flags.GetInt("threads", 8));
  std::vector<int> ratios;
  {
    std::stringstream ss(flags.GetString("ratios", "0,5,50,95,100"));
    std::string tok;
    while (std::getline(ss, tok, ',')) ratios.push_back(std::stoi(tok));
  }

  std::vector<Entry> entries = {
      {SystemKind::kDLsm, 1, "dLSM-1"},
      {SystemKind::kDLsm, 2, "dLSM-2"},
      {SystemKind::kDLsm, 8, "dLSM-8"},
      {SystemKind::kRocks8K, 1, "RocksDB-RDMA(8KB)"},
      {SystemKind::kMemoryRocks, 1, "Memory-RocksDB-RDMA"},
      {SystemKind::kNovaLsm, 1, "Nova-LSM"},
      {SystemKind::kSherman, 1, "Sherman"},
  };

  std::printf(
      "\n=== Figure 10: randomreadrandomwrite, %llu keys, %d threads ===\n",
      static_cast<unsigned long long>(keys), threads);
  std::printf("%-22s", "system");
  for (int r : ratios) std::printf("%11d%%rd", r);
  std::printf("\n");

  for (const Entry& e : entries) {
    std::printf("%-22s", e.label);
    std::fflush(stdout);
    for (int ratio : ratios) {
      BenchConfig config;
      config.system = e.system;
      config.shards = e.shards;
      config.threads = threads;
      config.num_keys = keys;
      config.read_ratio = ratio / 100.0;
      // Small MemTables keep L0 churning during the mixed phase — the
      // regime where sub-range parallelism pays (Sec. VII).
      config.memtable_size = 1 << 20;
      config.sstable_size = 1 << 20;
      config.zipfian_theta = flags.GetDouble("zipfian", 0);
      config.mixed_ops = keys;
      auto r = RunBench(config, {Phase::kReadWriteMixed});
      std::printf("%15s", FormatThroughput(r[0].ops_per_sec).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
