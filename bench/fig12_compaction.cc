// Figure 12: the impact of near-data compaction — randomfill (normal mode)
// while sweeping the memory node's compaction cores, with different
// front-end writer counts, against compaction on the compute node. Bars
// are annotated with the memory node's CPU utilization, as in the paper.
//
// Usage: fig12_compaction [--keys=N] [--writers=1,4,12] [--cores=1,2,4,8,12]
//                         [--stats_json=FILE]

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

std::vector<int> ParseList(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(std::stoi(tok));
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 150000);
  std::vector<int> writers = ParseList(flags.GetString("writers", "1,4,12"));
  std::vector<int> cores = ParseList(flags.GetString("cores", "1,2,4,8,12"));
  bool async_write = flags.GetBool("async_write", true);
  uint64_t budget = flags.GetInt("budget", 64);
  bool verb_stats = flags.GetBool("verb_stats", false);
  // Deterministic fault injection; --verb_stats then shows per-verb error
  // counts, QP reconnects and retry/timeout totals.
  double fault_rate = flags.GetDouble("fault_rate", 0);
  double rnr_rate = flags.GetDouble("rnr_rate", 0);
  uint64_t fault_seed = flags.GetInt("fault_seed", 1);
  // --stats_json=FILE: machine-readable records (one per cell).
  StatsJsonWriter stats_json(flags.GetString("stats_json", ""));

  std::printf("\n=== Figure 12: near-data compaction, randomfill normal "
              "mode, %llu keys, async_write=%s budget=%llu ===\n",
              static_cast<unsigned long long>(keys),
              async_write ? "on" : "off",
              static_cast<unsigned long long>(budget));
  std::printf("(cells: write throughput @ memory-node CPU utilization)\n");
  std::printf("%-10s", "writers");
  for (int c : cores) std::printf("   %8d-core", c);
  std::printf("        compute-side\n");

  for (int w : writers) {
    std::printf("%-10d", w);
    std::fflush(stdout);
    std::string verbs;
    uint64_t rpc_peak = 0;
    for (int c : cores) {
      BenchConfig config;
      config.threads = w;
      config.num_keys = keys;
      config.memory_cores = c;
      config.compaction_workers = c;
      config.async_write = async_write;
      config.compaction_verb_budget = budget;
      config.memtable_size = 1 << 20;
      config.sstable_size = 1 << 20;
      config.fault_seed = fault_seed;
      config.wr_error_rate = fault_rate;
      config.rnr_delay_rate = rnr_rate;
      config.record_latency = stats_json.enabled();
      auto r = RunBench(config, {Phase::kFillRandom});
      std::printf(" %9s@%3.0f%%",
                  FormatThroughput(r[0].ops_per_sec).c_str(),
                  r[0].memory_cpu_util * 100);
      std::fflush(stdout);
      stats_json.Add("fig12", "dLSM-" + std::to_string(c) + "core", w,
                     "fillrandom", config, r[0]);
      verbs = VerbStatsSummary(r[0].stats);
      rpc_peak = r[0].stats.compaction_rpc_inflight_peak;
    }
    // The last group of bars: compaction executed on the compute node.
    BenchConfig config;
    config.threads = w;
    config.num_keys = keys;
    config.placement = CompactionPlacement::kComputeSide;
    config.async_write = async_write;
    config.memtable_size = 1 << 20;
    config.sstable_size = 1 << 20;
    config.fault_seed = fault_seed;
    config.wr_error_rate = fault_rate;
    config.rnr_delay_rate = rnr_rate;
    config.record_latency = stats_json.enabled();
    auto r = RunBench(config, {Phase::kFillRandom});
    std::printf("   %16s\n", FormatThroughput(r[0].ops_per_sec).c_str());
    std::fflush(stdout);
    stats_json.Add("fig12", "dLSM-compute-side", w, "fillrandom", config,
                   r[0]);
    // Telemetry from the widest-core near-data cell of this row.
    if (verb_stats && !verbs.empty()) {
      std::printf("  [%s | rpc inflight peak %llu]\n", verbs.c_str(),
                  static_cast<unsigned long long>(rpc_peak));
    }
  }
  if (!stats_json.Write()) {
    std::fprintf(stderr, "warning: could not write --stats_json file\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
