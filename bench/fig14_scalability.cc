// Figure 14: scalability.
//   (a) 1 compute node, memory nodes 1..16, data grows with the nodes
//       (paper: 50 M -> 800 M keys; scaled here), plus the single-server
//       reference (the dotted line).
//   (b) 1 memory node, compute nodes 1..8, fixed data size.
//
// Usage: fig14_scalability [--sweep=memory|compute|both] [--base=N]

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

void SweepMemory(uint64_t base_keys) {
  std::printf("\n--- Fig 14(a): 1 compute node, scale out memory nodes ---\n");
  std::printf("%8s %10s %16s %16s %16s %16s\n", "m-nodes", "keys",
              "write", "read", "1-server write", "1-server read");
  for (int m : {1, 2, 4, 8, 16}) {
    ClusterBenchConfig config;
    config.compute_nodes = 1;
    config.memory_nodes = m;
    config.shards_per_compute = 16;  // Enough shards to spread over 16 m.
    config.threads_per_compute = 8;
    config.num_keys = base_keys * m;
    ClusterBenchResult r = RunClusterBench(config);

    // Dotted line: the same data held in a single memory node.
    ClusterBenchConfig single = config;
    single.memory_nodes = 1;
    ClusterBenchResult s = RunClusterBench(single);

    std::printf("%8d %10llu %16s %16s %16s %16s\n", m,
                static_cast<unsigned long long>(config.num_keys),
                FormatThroughput(r.fill_ops_per_sec).c_str(),
                FormatThroughput(r.read_ops_per_sec).c_str(),
                FormatThroughput(s.fill_ops_per_sec).c_str(),
                FormatThroughput(s.read_ops_per_sec).c_str());
    std::fflush(stdout);
  }
}

void SweepCompute(uint64_t base_keys) {
  std::printf("\n--- Fig 14(b): 1 memory node, scale out compute nodes ---\n");
  std::printf("%8s %16s %16s\n", "c-nodes", "write", "read");
  for (int c : {1, 2, 4, 8}) {
    ClusterBenchConfig config;
    config.compute_nodes = c;
    config.memory_nodes = 1;
    config.shards_per_compute = 8;
    config.threads_per_compute = 8;
    config.num_keys = base_keys;
    ClusterBenchResult r = RunClusterBench(config);
    std::printf("%8d %16s %16s\n", c,
                FormatThroughput(r.fill_ops_per_sec).c_str(),
                FormatThroughput(r.read_ops_per_sec).c_str());
    std::fflush(stdout);
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t base = flags.GetInt("base", 50000);
  std::string sweep = flags.GetString("sweep", "both");
  std::printf("\n=== Figure 14: dLSM scalability (CloudLab-style nodes) ===\n");
  if (sweep == "memory" || sweep == "both") SweepMemory(base);
  if (sweep == "compute" || sweep == "both") SweepCompute(base);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
