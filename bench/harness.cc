#include "bench/harness.h"

#include <cstdio>
#include <ctime>
#include <memory>

#include "src/baselines/presets.h"
#include "src/baselines/sherman.h"
#include "src/core/cluster.h"
#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/core/shard.h"
#include "src/rdma/fabric.h"
#include "src/sim/sim_env.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/trace.h"

namespace dlsm {
namespace bench {

namespace {

// Build provenance stamped into every BENCH_*.json (see StatsJsonWriter).
// The SHA and build type are configure-time values from bench/CMakeLists;
// the command line is captured by the Flags constructor, which every
// figure binary runs through before its first StatsJsonWriter.
#ifndef DLSM_GIT_SHA
#define DLSM_GIT_SHA "unknown"
#endif
#ifndef DLSM_BUILD_TYPE
#define DLSM_BUILD_TYPE "unknown"
#endif
std::string g_command_line;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

std::string MakeKey(uint64_t n, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llu", width,
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

std::string MakeValue(uint64_t n, size_t len, Random* rnd) {
  std::string v;
  v.reserve(len);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.",
                static_cast<unsigned long long>(n));
  v = buf;
  while (v.size() < len) {
    v.push_back(static_cast<char>('a' + rnd->Uniform(26)));
  }
  v.resize(len);
  return v;
}

Options MakeEngineOptions(const BenchConfig& config, Env* env) {
  Options options;
  switch (config.system) {
    case SystemKind::kDLsm:
      options = Options();
      options.env = env;
      break;
    case SystemKind::kDLsmBlock:
      options = Options();
      options.env = env;
      options.table_format = TableFormat::kBlock;
      options.block_size = 8192;
      break;
    case SystemKind::kRocks8K:
      options = baselines::RocksDbRdmaOptions(env, 8192);
      break;
    case SystemKind::kRocks2K:
      options = baselines::RocksDbRdmaOptions(env, 2048);
      break;
    case SystemKind::kMemoryRocks:
      options = baselines::MemoryRocksDbRdmaOptions(
          env, config.key_width + config.value_size + 32);
      break;
    case SystemKind::kNovaLsm:
      // Sub-range count follows the paper's Nova-LSM configuration (64),
      // scaled down with the data so each sub-range still flushes.
      options = baselines::NovaLsmOptions(
          env, config.num_keys >= 400000 ? 64 : 16);
      break;
    case SystemKind::kSherman:
      DLSM_CHECK_MSG(false, "Sherman does not take engine options");
  }
  options.memtable_size = config.memtable_size;
  options.sstable_size = config.sstable_size;
  options.estimated_entry_size = config.key_width + config.value_size + 28;
  options.l0_stop_writes_trigger = config.bulkload ? 1 << 30 : 36;
  options.max_immutables = config.bulkload ? 1 << 20 : 16;
  options.flush_threads = 4;
  options.compaction_scheduler_threads = 4;
  options.max_subcompactions = 12;
  // config.placement is a dLSM ablation knob (Fig. 12); the baseline
  // presets fix their own placement (the ports compact on the compute
  // node, Nova-LSM at the storage component).
  if (config.system == SystemKind::kDLsm ||
      config.system == SystemKind::kDLsmBlock) {
    options.compaction_placement = config.placement;
  }
  if (config.shards > 1) options.shards = config.shards;
  if (config.override_switch_policy) {
    options.switch_policy = config.switch_policy;
  }
  options.async_write = config.async_write;
  options.compaction_verb_budget = config.compaction_verb_budget;
  options.block_cache_size = config.block_cache_size;
  options.cache_shards = config.cache_shards;
  options.cache_admission = config.cache_admission;
  // Continuous telemetry (sampler ring + stall watchdog). The sampler is
  // keyed off the output path: no --stats_series, no background sampler
  // thread, so default runs stay byte-identical to earlier PRs.
  if (!config.stats_series.empty()) {
    options.stats_sample_period_ms = config.stats_sample_period_ms;
  }
  options.watchdog_deadline_ms = config.watchdog_deadline_ms;
  if (config.wr_error_rate > 0.0) {
    // Injected WR errors surface as fast IOErrors; a bounded RPC retry
    // policy (the one-sided paths already retry by default) keeps the
    // workload running through transient faults.
    options.rpc_timeout_ns = 20 * 1000 * 1000;
    options.rpc_max_retries = 4;
  }
  // Flush region: enough for the whole dataset plus compaction churn,
  // pinned snapshots and per-shard slab rounding.
  uint64_t data = config.num_keys *
                  (config.key_width + config.value_size + 28) * 8 +
                  (512ull << 20);
  options.flush_region_size = data;
  return options;
}

}  // namespace

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kDLsm:
      return "dLSM";
    case SystemKind::kDLsmBlock:
      return "dLSM-Block";
    case SystemKind::kRocks8K:
      return "RocksDB-RDMA(8KB)";
    case SystemKind::kRocks2K:
      return "RocksDB-RDMA(2KB)";
    case SystemKind::kMemoryRocks:
      return "Memory-RocksDB-RDMA";
    case SystemKind::kNovaLsm:
      return "Nova-LSM";
    case SystemKind::kSherman:
      return "Sherman";
  }
  return "?";
}

std::string FormatThroughput(double ops_per_sec) {
  char buf[64];
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mops/s", ops_per_sec / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f Kops/s", ops_per_sec / 1e3);
  }
  return buf;
}

std::string VerbStatsSummary(const DbStats& stats) {
  const rdma::RdmaVerbStats& v = stats.rdma;
  std::string out;
  char buf[128];
  for (int i = 0; i < rdma::kNumVerbClasses; i++) {
    auto c = static_cast<rdma::VerbClass>(i);
    const rdma::VerbClassStats& s = v.cls(c);
    if (s.ops == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s%s %llu ops %.1f MB p50 %.1fus p99 %.1fus",
                  out.empty() ? "" : " | ", rdma::VerbClassName(c),
                  static_cast<unsigned long long>(s.ops),
                  static_cast<double>(s.bytes) / (1024.0 * 1024.0),
                  s.latency_us.Percentile(50.0), s.latency_us.Percentile(99.0));
    out += buf;
    if (s.errors > 0) {
      std::snprintf(buf, sizeof(buf), " errs %llu",
                    static_cast<unsigned long long>(s.errors));
      out += buf;
    }
  }
  if (out.empty()) return out;
  std::snprintf(buf, sizeof(buf), " | max outstanding %llu abandoned %llu",
                static_cast<unsigned long long>(v.max_outstanding),
                static_cast<unsigned long long>(v.abandoned));
  out += buf;
  // Fault/recovery telemetry; omitted on a clean run to keep the line as
  // it always was.
  if (v.reconnects + stats.read_retries + stats.flush_retries +
          stats.rpc_retries + stats.rpc_timeouts >
      0) {
    std::snprintf(buf, sizeof(buf),
                  " | reconnects %llu retries read %llu flush %llu rpc %llu "
                  "timeouts %llu",
                  static_cast<unsigned long long>(v.reconnects),
                  static_cast<unsigned long long>(stats.read_retries),
                  static_cast<unsigned long long>(stats.flush_retries),
                  static_cast<unsigned long long>(stats.rpc_retries),
                  static_cast<unsigned long long>(stats.rpc_timeouts));
    out += buf;
  }
  return out;
}

void StatsJsonWriter::Add(const std::string& figure, const std::string& system,
                          int threads, const std::string& phase,
                          const BenchConfig& config, const PhaseResult& r) {
  if (!enabled()) return;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"figure\":\"%s\",\"system\":\"%s\",\"threads\":%d,"
      "\"phase\":\"%s\",\"keys\":%llu,\"value_size\":%zu,"
      "\"ops\":%llu,\"elapsed_s\":%.6f,\"ops_per_sec\":%.1f,"
      "\"wire_bytes\":%llu,\"memory_cpu_util\":%.4f,\"l0_files\":%d,",
      figure.c_str(), system.c_str(), threads, phase.c_str(),
      static_cast<unsigned long long>(config.num_keys), config.value_size,
      static_cast<unsigned long long>(r.ops), r.elapsed_s, r.ops_per_sec,
      static_cast<unsigned long long>(r.wire_bytes), r.memory_cpu_util,
      r.l0_files);
  std::string rec = buf;
  rec.append("\"latency_us\":");
  rec.append(r.latency_us.ToJson());
  rec.append(",\"stats\":");
  rec.append(StatsJson(r.stats));
  rec.append("}");
  records_.push_back(std::move(rec));
}

bool StatsJsonWriter::Write() const {
  if (!enabled()) return true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return false;
  // Provenance record first: which build produced these numbers. The
  // timestamp is wall-clock (the one non-virtual time in the harness —
  // it stamps the artifact, not the measurement).
  char ts[32] = "unknown";
  std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
  std::string out = "[\n{\"meta\":{\"git_sha\":\"" DLSM_GIT_SHA
                    "\",\"build_type\":\"" DLSM_BUILD_TYPE "\"";
  out.append(",\"written_utc\":\"");
  out.append(ts);
  out.append("\",\"command\":\"");
  out.append(JsonEscape(g_command_line));
  out.append("\"}}");
  out.append(records_.empty() ? "\n" : ",\n");
  for (size_t i = 0; i < records_.size(); i++) {
    out.append(records_[i]);
    out.append(i + 1 < records_.size() ? ",\n" : "\n");
  }
  out.append("]\n");
  size_t n = std::fwrite(out.data(), 1, out.size(), f);
  return std::fclose(f) == 0 && n == out.size();
}

std::vector<PhaseResult> RunBench(const BenchConfig& config,
                                  const std::vector<Phase>& phases) {
  std::vector<PhaseResult> results(phases.size());

  SimEnv env;
  rdma::Fabric fabric(&env);
  uint64_t entry = config.key_width + config.value_size + 28;
  // Memory node sized for the dataset with generous slack (MAP_NORESERVE:
  // only touched pages cost physical memory).
  size_t mem_dram = config.num_keys * entry * 10 + (2ull << 30);
  rdma::Node* compute =
      fabric.AddNode("compute", config.compute_cores, 2ull << 30);
  rdma::Node* memory =
      fabric.AddNode("memory", config.memory_cores, mem_dram);

  // Tracing spans virtual time, so enabling before Run and exporting after
  // it returns captures the whole deployment deterministically.
  if (!config.trace_out.empty()) {
    trace::EnableWithEnv(&env);
    if (config.exemplar_k > 0) {
      trace::ExemplarPolicy policy;
      policy.k = config.exemplar_k;
      policy.window_ns = (config.exemplar_window_ms > 0
                              ? config.exemplar_window_ms
                              : 10) *
                         1'000'000ull;
      trace::Tracer::SetExemplarPolicy(policy);
    }
  }
  std::string series_json;

  env.Run(0, [&] {
    std::unique_ptr<MemoryNodeService> service;
    std::unique_ptr<DB> db;
    DB* raw = nullptr;
    // Uncached-index systems (RocksDB-RDMA) reject async probing with a
    // Status; read synchronously there (set per engine options below).
    ReadOptions read_opts;

    if (config.system == SystemKind::kSherman) {
      baselines::ShermanOptions sherman;
      sherman.env = &env;
      sherman.leaf_region_size = config.num_keys * entry * 12 + (512 << 20);
      Status s = baselines::ShermanDB::Open(sherman, &fabric, compute,
                                            memory, &raw);
      DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
    } else {
      service = std::make_unique<MemoryNodeService>(
          &fabric, memory, config.compaction_workers);
      service->Start();
      Options options = MakeEngineOptions(config, &env);
      read_opts.async_reads = options.cache_index_blocks;
      DbDeps deps;
      deps.fabric = &fabric;
      deps.compute = compute;
      deps.memory = service.get();
      Status s;
      if (options.shards > 1) {
        // Range-aware boundaries: bench keys live in [0, key_range), so
        // full-decimal-space boundaries would funnel them into shard 0.
        s = ShardedDB::Open(options, deps,
                            ShardedDB::RangeDecimalBoundaries(
                                options.shards, config.key_width,
                                config.key_range != 0 ? config.key_range
                                                      : config.num_keys),
                            &raw);
      } else {
        s = DLsmDB::Open(options, deps, &raw);
      }
      DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
    }
    db.reset(raw);

    if ((config.wr_error_rate > 0.0 || config.rnr_delay_rate > 0.0) &&
        config.system != SystemKind::kSherman) {
      // Start injection only once the deployment is up, so the schedule
      // covers the measured workload, not setup. Sherman is excluded: the
      // baseline has no retry layer, so an injected error aborts the run
      // rather than measuring anything.
      rdma::FaultParams fp;
      fp.seed = config.fault_seed;
      fp.wr_error_rate = config.wr_error_rate;
      fp.rnr_delay_rate = config.rnr_delay_rate;
      fabric.set_fault_params(fp);
    }

    const uint64_t key_range =
        config.key_range != 0 ? config.key_range : config.num_keys;

    // Runs `total` operations across config.threads workers;
    // op(i, rnd, zipf) performs one operation (zipf is null when
    // zipfian_theta == 0). Returns the phase measurement.
    auto run_phase =
        [&](uint64_t total,
            const std::function<void(uint64_t, Random*, ZipfianGenerator*)>&
                op) -> PhaseResult {
      Barrier start(&env, config.threads + 1);
      Barrier stop(&env, config.threads + 1);
      // One latency histogram per worker, merged after Join; the gated
      // branch keeps the default fast path free of extra clock reads.
      std::vector<Histogram> lat(config.threads);
      std::vector<ThreadHandle> workers;
      for (int t = 0; t < config.threads; t++) {
        uint64_t begin = total * t / config.threads;
        uint64_t end = total * (t + 1) / config.threads;
        workers.push_back(env.StartThread(
            compute->env_node(), "worker", [&, t, begin, end] {
              Random rnd(config.seed + 17 * t);
              // The O(key_range) zeta precompute happens before the start
              // barrier, outside the measured interval.
              std::unique_ptr<ZipfianGenerator> zipf;
              if (config.zipfian_theta > 0) {
                zipf = std::make_unique<ZipfianGenerator>(
                    key_range, config.zipfian_theta, config.seed + 977 * t);
              }
              start.Arrive();
              for (uint64_t i = begin; i < end; i++) {
                if (config.record_latency) {
                  uint64_t op0 = env.NowNanos();
                  op(i, &rnd, zipf.get());
                  lat[t].Add(static_cast<double>(env.NowNanos() - op0) / 1e3);
                } else {
                  op(i, &rnd, zipf.get());
                }
                if (((i - begin) & 63) == 0) env.MaybeYield();
              }
              stop.Arrive();
            }));
      }
      start.Arrive();
      uint64_t t0 = env.NowNanos();
      uint64_t wire0 = fabric.wire_bytes();
      uint64_t busy0 = service != nullptr ? service->worker_busy_ns() : 0;
      stop.Arrive();
      uint64_t t1 = env.NowNanos();
      for (ThreadHandle h : workers) env.Join(h);

      PhaseResult r;
      for (const Histogram& h : lat) r.latency_us.Merge(h);
      r.ops = total;
      r.elapsed_s = static_cast<double>(t1 - t0) / 1e9;
      r.ops_per_sec = r.elapsed_s > 0 ? total / r.elapsed_s : 0;
      r.stats = db->GetStats();
      r.wire_bytes = fabric.wire_bytes() - wire0;
      if (service != nullptr && config.memory_cores > 0 && t1 > t0) {
        r.memory_cpu_util =
            static_cast<double>(service->worker_busy_ns() - busy0) /
            static_cast<double>((t1 - t0) * config.memory_cores);
        if (r.memory_cpu_util > 1.0) r.memory_cpu_util = 1.0;
      }
      r.l0_files = db->NumFilesAtLevel(0);
      return r;
    };

    // Skewed reads draw a Zipfian popularity rank and scramble it through
    // a 64-bit mix so the hot set spreads across the sorted key space
    // (otherwise every hot key lands in one SSTable).
    auto choose_key = [&](Random* rnd, ZipfianGenerator* zipf) -> uint64_t {
      if (zipf == nullptr) return rnd->Uniform(key_range);
      return Hash64(zipf->Next()) % key_range;
    };
    auto fill_op = [&](uint64_t i, Random* rnd, ZipfianGenerator*) {
      (void)i;
      // Loads stay uniform even under --zipfian so the dataset always
      // covers the key range; skew shapes the read traffic.
      uint64_t k = rnd->Uniform(key_range);
      Status s = db->Put(WriteOptions(), MakeKey(k, config.key_width),
                         MakeValue(k, config.value_size, rnd));
      DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
    };
    auto read_op = [&](uint64_t i, Random* rnd, ZipfianGenerator* zipf) {
      (void)i;
      uint64_t k = choose_key(rnd, zipf);
      std::string value;
      Status s = db->Get(read_opts, MakeKey(k, config.key_width), &value);
      DLSM_CHECK_MSG(s.ok() || s.IsNotFound(), s.ToString().c_str());
    };
    auto mixed_op = [&](uint64_t i, Random* rnd, ZipfianGenerator* zipf) {
      if (rnd->NextDouble() < config.read_ratio) {
        read_op(i, rnd, zipf);
      } else {
        fill_op(i, rnd, zipf);
      }
    };

    bool filled = false;
    auto ensure_filled = [&](bool timed, PhaseResult* out) {
      if (filled) return;
      PhaseResult r = run_phase(config.num_keys, fill_op);
      if (timed && out != nullptr) *out = r;
      filled = true;
    };

    for (size_t p = 0; p < phases.size(); p++) {
      switch (phases[p]) {
        case Phase::kFillRandom:
          ensure_filled(true, &results[p]);
          break;
        case Phase::kReadRandom: {
          ensure_filled(false, nullptr);
          // Paper: "the benchmark starts after all the background
          // compaction tasks finish."
          DLSM_CHECK(db->Flush().ok());
          DLSM_CHECK(db->WaitForBackgroundIdle().ok());
          results[p] = run_phase(config.num_keys, read_op);
          break;
        }
        case Phase::kReadWriteMixed: {
          ensure_filled(false, nullptr);
          uint64_t ops =
              config.mixed_ops != 0 ? config.mixed_ops : config.num_keys;
          results[p] = run_phase(ops, mixed_op);
          break;
        }
        case Phase::kReadSeq: {
          ensure_filled(false, nullptr);
          DLSM_CHECK(db->Flush().ok());
          DLSM_CHECK(db->WaitForBackgroundIdle().ok());
          // Whole-table scan with a single iterator (readseq), split
          // nowhere: the paper scans the full database.
          Barrier b0(&env, 2), b1(&env, 2);
          uint64_t scanned = 0;
          ThreadHandle h = env.StartThread(compute->env_node(), "scanner",
                                           [&] {
              b0.Arrive();
              std::unique_ptr<Iterator> it(db->NewIterator(read_opts));
              uint64_t count = 0;
              for (it->SeekToFirst(); it->Valid(); it->Next()) {
                count++;
                if ((count & 255) == 0) env.MaybeYield();
              }
              scanned = count;
              b1.Arrive();
            });
          b0.Arrive();
          uint64_t t0 = env.NowNanos();
          uint64_t wire0 = fabric.wire_bytes();
          b1.Arrive();
          uint64_t t1 = env.NowNanos();
          env.Join(h);
          PhaseResult r;
          r.ops = scanned;
          r.elapsed_s = static_cast<double>(t1 - t0) / 1e9;
          r.ops_per_sec = r.elapsed_s > 0 ? scanned / r.elapsed_s : 0;
          r.stats = db->GetStats();
          r.wire_bytes = fabric.wire_bytes() - wire0;
          r.l0_files = db->NumFilesAtLevel(0);
          results[p] = r;
          break;
        }
      }
    }

    // Read the series before Close tears the sampler down; the property
    // is engine-side, so Sherman (no GetProperty) just leaves it empty.
    if (!config.stats_series.empty()) {
      db->GetProperty("dlsm.timeseries", &series_json);
    }
    DLSM_CHECK(db->Close().ok());
    db.reset();
    if (service != nullptr) service->Stop();
  });

  if (!config.stats_series.empty()) {
    std::FILE* f = std::fopen(config.stats_series.c_str(), "w");
    if (f == nullptr || series_json.empty()) {
      std::fprintf(stderr, "warning: could not write series to %s\n",
                   config.stats_series.c_str());
    } else {
      std::fwrite(series_json.data(), 1, series_json.size(), f);
      std::fputc('\n', f);
    }
    if (f != nullptr) std::fclose(f);
  }

  if (!config.trace_out.empty()) {
    if (!trace::Tracer::WriteChromeTrace(config.trace_out)) {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   config.trace_out.c_str());
    }
    trace::Tracer::Disable();
  }

  return results;
}

ClusterBenchResult RunClusterBench(const ClusterBenchConfig& config) {
  ClusterBenchResult result;
  SimEnv env;
  uint64_t entry = config.key_width + config.value_size + 28;
  const int total_shards = config.compute_nodes * config.shards_per_compute;
  const uint64_t key_range = config.num_keys;

  // Sherman has no shard machinery: deploy one tree per compute node,
  // each on its round-robin memory node, range-partitioned by compute.
  if (config.system == SystemKind::kSherman) {
    rdma::Fabric fabric(&env);
    std::vector<rdma::Node*> computes, memories;
    for (int i = 0; i < config.compute_nodes; i++) {
      computes.push_back(fabric.AddNode("compute-" + std::to_string(i),
                                        config.compute_cores, 2ull << 30));
    }
    for (int i = 0; i < config.memory_nodes; i++) {
      memories.push_back(fabric.AddNode(
          "memory-" + std::to_string(i), config.memory_cores,
          config.num_keys * entry * 12 / config.memory_nodes +
              (1ull << 30)));
    }
    env.Run(0, [&] {
      std::vector<std::unique_ptr<DB>> trees;
      for (int c = 0; c < config.compute_nodes; c++) {
        baselines::ShermanOptions sherman;
        sherman.env = &env;
        sherman.leaf_region_size =
            config.num_keys * entry * 12 / config.compute_nodes +
            (256ull << 20);
        DB* raw = nullptr;
        Status s = baselines::ShermanDB::Open(
            sherman, &fabric, computes[c],
            memories[c % config.memory_nodes], &raw);
        DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
        trees.emplace_back(raw);
      }
      auto run = [&](bool reads) {
        int workers_total = config.compute_nodes * config.threads_per_compute;
        Barrier start(&env, workers_total + 1), stop(&env, workers_total + 1);
        std::vector<ThreadHandle> hs;
        for (int c = 0; c < config.compute_nodes; c++) {
          uint64_t lo = key_range * c / config.compute_nodes;
          uint64_t hi = key_range * (c + 1) / config.compute_nodes;
          for (int t = 0; t < config.threads_per_compute; t++) {
            uint64_t ops = (hi - lo) / config.threads_per_compute;
            hs.push_back(env.StartThread(
                computes[c]->env_node(), "worker",
                [&, c, t, lo, hi, ops, reads] {
                  Random rnd(config.seed + c * 131 + t);
                  start.Arrive();
                  for (uint64_t i = 0; i < ops; i++) {
                    uint64_t k = lo + rnd.Uniform(hi - lo);
                    if (reads) {
                      std::string value;
                      Status s = trees[c]->Get(
                          ReadOptions(), MakeKey(k, config.key_width),
                          &value);
                      DLSM_CHECK(s.ok() || s.IsNotFound());
                    } else {
                      Random vr(k);
                      DLSM_CHECK(trees[c]
                                     ->Put(WriteOptions(),
                                           MakeKey(k, config.key_width),
                                           MakeValue(k, config.value_size,
                                                     &vr))
                                     .ok());
                    }
                    if ((i & 63) == 0) env.MaybeYield();
                  }
                  stop.Arrive();
                }));
          }
        }
        start.Arrive();
        uint64_t t0 = env.NowNanos();
        stop.Arrive();
        uint64_t t1 = env.NowNanos();
        for (ThreadHandle h : hs) env.Join(h);
        double elapsed = (t1 - t0) / 1e9;
        return elapsed > 0 ? config.num_keys / elapsed : 0.0;
      };
      result.fill_ops_per_sec = run(false);
      result.read_ops_per_sec = run(true);
      for (auto& t : trees) DLSM_CHECK(t->Close().ok());
    });
    return result;
  }

  // LSM systems: the Sec. IX deployment via Cluster.
  BenchConfig base;
  base.system = config.system;
  base.num_keys = config.num_keys;
  base.value_size = config.value_size;
  base.key_width = config.key_width;
  base.memtable_size = config.memtable_size;
  base.sstable_size = config.sstable_size;

  ClusterTopology topology;
  topology.compute_nodes = config.compute_nodes;
  topology.memory_nodes = config.memory_nodes;
  topology.shards_per_compute = config.shards_per_compute;
  topology.compute_cores = config.compute_cores;
  topology.memory_cores = config.memory_cores;
  topology.compaction_workers_per_memory = config.compaction_workers;
  topology.memory_dram =
      config.num_keys * entry * 24 / config.memory_nodes + (4ull << 30);

  env.Run(0, [&] {
    Options options = MakeEngineOptions(base, &env);
    options.shards = 1;  // Sharding is the cluster's job here.
    // Per-shard scaling, as ShardedDB does for single-node lambda.
    options.memtable_size = std::max<size_t>(
        config.memtable_size / config.shards_per_compute, 64 << 10);
    options.sstable_size = std::max<size_t>(
        config.sstable_size / config.shards_per_compute, 128 << 10);
    options.flush_region_size =
        config.num_keys * entry * 4 / total_shards + (64ull << 20);
    options.compaction_scheduler_threads = 2;
    options.max_subcompactions = 4;
    options.placement_policy = config.placement_policy;
    options.placement_rebalance = config.placement_rebalance;
    if (config.placement_rebalance_interval_ns > 0) {
      options.placement_rebalance_interval_ns =
          config.placement_rebalance_interval_ns;
    }

    std::unique_ptr<Cluster> cluster;
    Status s = Cluster::Create(
        &env, options, topology,
        ShardedDB::RangeDecimalBoundaries(total_shards, config.key_width,
                                          key_range),
        &cluster);
    DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());

    // Cluster-wide counter view: every shard sees all memory nodes, so the
    // per-node verb breakdown merges slot-wise across shards.
    auto merged_stats = [&]() {
      DbStats m;
      for (int s = 0; s < cluster->num_shards(); s++) {
        DbStats d = cluster->shard_db(s)->GetStats();
        m.writes += d.writes;
        m.reads += d.reads;
        m.flushes += d.flushes;
        m.compactions += d.compactions;
        m.compaction_input_bytes += d.compaction_input_bytes;
        m.compaction_output_bytes += d.compaction_output_bytes;
        m.stall_ns += d.stall_ns;
        m.bloom_useful += d.bloom_useful;
        m.compaction_rpc_inflight_peak = std::max(
            m.compaction_rpc_inflight_peak, d.compaction_rpc_inflight_peak);
        m.read_retries += d.read_retries;
        m.flush_retries += d.flush_retries;
        m.rpc_retries += d.rpc_retries;
        m.rpc_timeouts += d.rpc_timeouts;
        m.tables_migrated += d.tables_migrated;
        m.migration_bytes += d.migration_bytes;
        m.cache_hits += d.cache_hits;
        m.cache_misses += d.cache_misses;
        m.cache_inserts += d.cache_inserts;
        m.cache_evictions += d.cache_evictions;
        m.cache_admission_rejects += d.cache_admission_rejects;
        if (m.per_node.size() < d.per_node.size()) {
          m.per_node.resize(d.per_node.size());
        }
        for (size_t i = 0; i < d.per_node.size(); i++) {
          m.per_node[i].read_verbs += d.per_node[i].read_verbs;
          m.per_node[i].read_bytes += d.per_node[i].read_bytes;
          m.per_node[i].write_verbs += d.per_node[i].write_verbs;
          m.per_node[i].write_bytes += d.per_node[i].write_bytes;
        }
        m.rdma.MergeFrom(d.rdma);
      }
      return m;
    };

    int workers_total = config.compute_nodes * config.threads_per_compute;
    std::vector<Histogram> latencies(workers_total);
    auto run = [&](bool reads) {
      for (Histogram& h : latencies) h.Clear();
      Barrier start(&env, workers_total + 1), stop(&env, workers_total + 1);
      std::vector<ThreadHandle> hs;
      for (int c = 0; c < config.compute_nodes; c++) {
        uint64_t lo = key_range * c / config.compute_nodes;
        uint64_t hi = key_range * (c + 1) / config.compute_nodes;
        for (int t = 0; t < config.threads_per_compute; t++) {
          uint64_t ops = (hi - lo) / config.threads_per_compute;
          int w = c * config.threads_per_compute + t;
          hs.push_back(env.StartThread(
              cluster->compute_node(c)->env_node(), "worker",
              [&, c, t, w, lo, hi, ops, reads] {
                Random rnd(config.seed + c * 131 + t);
                // Skewed reads draw an UNSCRAMBLED Zipfian rank over this
                // compute's slice: the popular ranks land in the slice's
                // first shard, whose tables all sit on one memory node
                // under static round-robin. The popular ranks are strided
                // across that shard's key range so the heat covers many
                // tables (a migratable unit each), not one.
                std::unique_ptr<ZipfianGenerator> zipf;
                if (reads && config.zipfian_theta > 0) {
                  zipf = std::make_unique<ZipfianGenerator>(
                      hi - lo, config.zipfian_theta,
                      config.seed + 977 * w + 13);
                }
                uint64_t hot_span = std::max<uint64_t>(
                    (hi - lo) / config.shards_per_compute, 1);
                start.Arrive();
                for (uint64_t i = 0; i < ops; i++) {
                  uint64_t k;
                  if (zipf != nullptr) {
                    uint64_t r = zipf->Next();
                    k = r < hot_span
                            ? lo + (r * 2654435761ull) % hot_span
                            : lo + r;
                  } else {
                    k = lo + rnd.Uniform(hi - lo);
                  }
                  std::string key = MakeKey(k, config.key_width);
                  if (reads) {
                    std::string value;
                    uint64_t rt0 =
                        config.record_latency ? env.NowNanos() : 0;
                    Status st = cluster->Get(key, &value);
                    DLSM_CHECK(st.ok() || st.IsNotFound());
                    if (config.record_latency) {
                      latencies[w].Add(
                          static_cast<double>(env.NowNanos() - rt0) / 1e3);
                    }
                  } else {
                    Random vr(k);
                    DLSM_CHECK(cluster
                                   ->Put(key, MakeValue(
                                                  k, config.value_size, &vr))
                                   .ok());
                  }
                  if ((i & 63) == 0) env.MaybeYield();
                }
                stop.Arrive();
              }));
        }
      }
      start.Arrive();
      uint64_t t0 = env.NowNanos();
      stop.Arrive();
      uint64_t t1 = env.NowNanos();
      for (ThreadHandle h : hs) env.Join(h);
      double elapsed = (t1 - t0) / 1e9;
      return elapsed > 0 ? config.num_keys / elapsed : 0.0;
    };

    result.fill_ops_per_sec = run(false);
    DLSM_CHECK(cluster->Flush().ok());
    DLSM_CHECK(cluster->WaitForBackgroundIdle().ok());
    // Warm-up passes let the heat rebalancer settle the layout; only the
    // last pass is measured (and only its per-node verb delta counted).
    for (int p = 1; p < config.read_passes; p++) run(true);
    DbStats before = merged_stats();
    result.read_ops_per_sec = run(true);
    DbStats after = merged_stats();
    for (Histogram& h : latencies) result.read_latency_us.Merge(h);
    result.read_p50_us = result.read_latency_us.Median();
    result.tables_migrated = after.tables_migrated;
    result.migration_bytes = after.migration_bytes;
    result.stats = after;
    uint64_t sum = 0, mx = 0;
    for (size_t i = 0; i < after.per_node.size(); i++) {
      uint64_t b = i < before.per_node.size()
                       ? before.per_node[i].read_verbs
                       : 0;
      uint64_t bw = i < before.per_node.size()
                        ? before.per_node[i].write_bytes
                        : 0;
      uint64_t rd = after.per_node[i].read_verbs - b;
      result.node_read_verbs.push_back(rd);
      result.node_write_bytes.push_back(after.per_node[i].write_bytes - bw);
      sum += rd;
      mx = std::max(mx, rd);
    }
    if (!result.node_read_verbs.empty() && sum > 0) {
      double mean = static_cast<double>(sum) /
                    static_cast<double>(result.node_read_verbs.size());
      result.read_imbalance = static_cast<double>(mx) / mean;
    }
    DLSM_CHECK(cluster->Close().ok());
  });
  return result;
}

Flags::Flags(int argc, char** argv) {
  // Capture the invocation for the BENCH_*.json meta record.
  g_command_line.clear();
  for (int i = 0; i < argc; i++) {
    if (i > 0) g_command_line.push_back(' ');
    g_command_line.append(argv[i]);
  }
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

uint64_t Flags::GetInt(const std::string& name, uint64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::stoull(it->second);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::stod(it->second);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1";
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

}  // namespace bench
}  // namespace dlsm
