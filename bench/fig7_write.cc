// Figure 7: random-write throughput vs. front-end threads, all systems.
//   (a) normal mode   — level0_stop_writes_trigger = 36 (write stalls).
//   (b) bulkload mode — trigger = infinity (pure in-memory write path).
//
// Usage: fig7_write [--keys=N] [--threads=1,2,4,8,16] [--mode=normal|bulkload|both]

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

std::vector<int> ParseThreads(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(std::stoi(tok));
  return out;
}

void RunMode(bool bulkload, uint64_t keys, const std::vector<int>& threads,
             const std::string& only, bool async_write, bool verb_stats,
             StatsJsonWriter* stats_json) {
  std::vector<SystemKind> systems = {
      SystemKind::kDLsm,       SystemKind::kRocks8K, SystemKind::kRocks2K,
      SystemKind::kMemoryRocks, SystemKind::kNovaLsm,
  };
  if (!bulkload) {
    systems.push_back(SystemKind::kSherman);  // N/A in bulkload (paper).
  }
  if (!only.empty()) {
    std::vector<SystemKind> filtered;
    for (SystemKind sk : systems) {
      if (std::string(SystemName(sk)).find(only) != std::string::npos) {
        filtered.push_back(sk);
      }
    }
    systems = filtered;
  }

  std::printf("\n=== Figure 7(%s): randomfill, %s mode, %llu keys, "
              "async_write=%s ===\n",
              bulkload ? "b" : "a", bulkload ? "bulkload" : "normal",
              static_cast<unsigned long long>(keys),
              async_write ? "on" : "off");
  std::printf("%-22s", "system");
  for (int t : threads) std::printf("%12d-thr", t);
  std::printf("\n");

  for (SystemKind system : systems) {
    std::printf("%-22s", SystemName(system));
    std::fflush(stdout);
    std::string verbs;
    uint64_t rpc_peak = 0;
    double stall_ms = 0;
    for (int t : threads) {
      BenchConfig config;
      config.system = system;
      config.threads = t;
      config.num_keys = keys;
      config.bulkload = bulkload;
      config.async_write = async_write;
      // 1 MB MemTables/SSTables (paper's 64 MB scaled with the dataset):
      // normal mode must feel flush and L0-compaction pressure.
      config.memtable_size = 1 << 20;
      config.sstable_size = 1 << 20;
      config.record_latency = stats_json->enabled();
      auto r = RunBench(config, {Phase::kFillRandom});
      std::printf("%16s", FormatThroughput(r[0].ops_per_sec).c_str());
      std::fflush(stdout);
      stats_json->Add(bulkload ? "fig7b" : "fig7a", SystemName(system), t,
                      "fillrandom", config, r[0]);
      verbs = VerbStatsSummary(r[0].stats);
      rpc_peak = r[0].stats.compaction_rpc_inflight_peak;
      stall_ms = static_cast<double>(r[0].stats.stall_ns) / 1e6;
    }
    std::printf("\n");
    // Per-verb wire telemetry for the last (widest) thread count.
    if (verb_stats && !verbs.empty()) {
      std::printf("  [%s | rpc inflight peak %llu | stall %.1f ms]\n",
                  verbs.c_str(), static_cast<unsigned long long>(rpc_peak),
                  stall_ms);
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 100000);
  std::vector<int> threads =
      ParseThreads(flags.GetString("threads", "1,2,4,8,16"));
  std::string mode = flags.GetString("mode", "both");
  std::string only = flags.GetString("only", "");
  bool async_write = flags.GetBool("async_write", true);
  bool verb_stats = flags.GetBool("verb_stats", false);
  // --stats_json=FILE: machine-readable records (one per cell) with
  // latency percentiles and the full counter/verb dump.
  StatsJsonWriter stats_json(flags.GetString("stats_json", ""));
  if (mode == "normal" || mode == "both") {
    RunMode(false, keys, threads, only, async_write, verb_stats, &stats_json);
  }
  if (mode == "bulkload" || mode == "both") {
    RunMode(true, keys, threads, only, async_write, verb_stats, &stats_json);
  }
  if (!stats_json.Write()) {
    std::fprintf(stderr, "warning: could not write --stats_json file\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
