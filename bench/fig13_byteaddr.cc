// Figure 13: the byte-addressable SSTable ablation — dLSM vs dLSM-Block
// (8 KB blocks) on randomfill and randomread.
//
// Usage: fig13_byteaddr [--keys=N] [--threads=8]

#include <cstdio>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t keys = flags.GetInt("keys", 100000);
  int threads = static_cast<int>(flags.GetInt("threads", 8));

  std::printf("\n=== Figure 13: byte-addressable SSTable ablation, "
              "%llu keys, %d threads ===\n",
              static_cast<unsigned long long>(keys), threads);
  std::printf("%-14s %16s %16s %16s\n", "system", "write", "read",
              "read wire MB");
  for (SystemKind system : {SystemKind::kDLsm, SystemKind::kDLsmBlock}) {
    BenchConfig config;
    config.system = system;
    config.threads = threads;
    config.num_keys = keys;
    config.memtable_size = 1 << 20;
    config.sstable_size = 1 << 20;
    auto r = RunBench(config, {Phase::kFillRandom, Phase::kReadRandom});
    std::printf("%-14s %16s %16s %16.1f\n", SystemName(system),
                FormatThroughput(r[0].ops_per_sec).c_str(),
                FormatThroughput(r[1].ops_per_sec).c_str(),
                r[1].wire_bytes / 1e6);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
