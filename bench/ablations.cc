// Ablation benches for the design choices DESIGN.md calls out:
//   --which=seqrange   sequence-range MemTable switching (Sec. IV) vs the
//                      naive double-checked-locking switch.
//   --which=asyncflush asynchronous pipelined flushing (Sec. X-C, Fig. 6)
//                      vs synchronous per-buffer writes.
//   --which=rpc        customized one-sided-reply RPC vs dispatcher work.
//
// Usage: ablations [--which=all] [--keys=N] [--threads=8]

#include <cstdio>

#include "bench/harness.h"
#include "src/core/table_sink.h"
#include "src/rdma/fabric.h"
#include "src/remote/rpc.h"
#include "src/sim/sim_env.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace dlsm {
namespace bench {
namespace {

void AblateSeqRange(uint64_t keys, int threads) {
  std::printf("\n--- Ablation: MemTable switch policy (bulkload, %d threads) "
              "---\n",
              threads);
  // Bulkload isolates the in-memory write path, where the policy matters.
  for (bool seqrange : {true, false}) {
    BenchConfig config;
    config.num_keys = keys;
    config.threads = threads;
    config.bulkload = true;
    config.system = SystemKind::kDLsm;
    config.override_switch_policy = true;
    config.switch_policy = seqrange
                               ? MemTableSwitchPolicy::kSeqRange
                               : MemTableSwitchPolicy::kDoubleCheckedSize;
    auto r = RunBench(config, {Phase::kFillRandom});
    std::printf("%-36s %16s\n",
                seqrange ? "seq-range switching (dLSM, Sec. IV)"
                         : "double-checked size switching",
                FormatThroughput(r[0].ops_per_sec).c_str());
  }
}

void AblateAsyncFlush(uint64_t mb) {
  std::printf("\n--- Ablation: async pipelined flush vs sync flush "
              "(%llu MB stream) ---\n",
              static_cast<unsigned long long>(mb));
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 4ull << 30);
  env.Run(0, [&] {
    char* region = memory->AllocDram(mb << 20);
    rdma::MemoryRegion mr = fabric.RegisterMemory(memory, region, mb << 20);
    rdma::RdmaManager mgr(&fabric, compute, memory);
    remote::RemoteChunk chunk;
    chunk.addr = mr.addr;
    chunk.size = mb << 20;
    chunk.rkey = mr.rkey;
    chunk.owner_node = compute->id();

    std::string payload(4096, 'x');
    uint64_t chunks = (mb << 20) / payload.size();

    for (bool async : {true, false}) {
      uint64_t t0 = env.NowNanos();
      std::unique_ptr<TableSink> sink;
      if (async) {
        sink = std::make_unique<AsyncRemoteSink>(&mgr, chunk, 256 << 10, 4);
      } else {
        sink = std::make_unique<SyncRemoteSink>(&mgr, chunk, 256 << 10);
      }
      for (uint64_t i = 0; i < chunks; i++) {
        DLSM_CHECK(sink->Append(payload.data(), payload.size()).ok());
      }
      DLSM_CHECK(sink->Finish().ok());
      uint64_t t1 = env.NowNanos();
      double secs = (t1 - t0) / 1e9;
      std::printf("%-28s %10.2f GB/s\n",
                  async ? "async pipelined (Fig. 6)" : "synchronous",
                  (mb << 20) / secs / 1e9);
    }
  });
}

void AblateRpc(int calls) {
  std::printf("\n--- Ablation: RPC reply path (one-sided write vs extra "
              "dispatcher hop) ---\n");
  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 1ull << 30);
  env.Run(0, [&] {
    remote::RpcServer server(&fabric, memory, 2);
    server.set_handler([](uint8_t, const Slice& args, std::string* reply) {
      *reply = args.ToString();
    });
    server.Start();
    remote::RpcClient client(&fabric, compute, &server);

    // Poll-based general RPC (reply bypasses dispatchers).
    uint64_t t0 = env.NowNanos();
    for (int i = 0; i < calls; i++) {
      std::string reply;
      DLSM_CHECK(client.Call(remote::RpcType::kStats, "x", &reply).ok());
    }
    uint64_t t1 = env.NowNanos();
    std::printf("%-36s %8.2f us/call\n", "general RPC (one-sided reply)",
                (t1 - t0) / 1e3 / calls);

    // Wakeup-based RPC (dispatcher + notifier + condvar on the reply path).
    t0 = env.NowNanos();
    for (int i = 0; i < calls; i++) {
      std::string reply;
      DLSM_CHECK(
          client.CallWithWakeup(remote::RpcType::kStats, "x", &reply).ok());
    }
    t1 = env.NowNanos();
    std::printf("%-36s %8.2f us/call\n",
                "wakeup RPC (sleep + IMM notify)", (t1 - t0) / 1e3 / calls);
    server.Stop();
  });
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string which = flags.GetString("which", "all");
  uint64_t keys = flags.GetInt("keys", 60000);
  int threads = static_cast<int>(flags.GetInt("threads", 8));
  if (which == "seqrange" || which == "all") {
    AblateSeqRange(keys, threads);
  }
  if (which == "asyncflush" || which == "all") {
    AblateAsyncFlush(flags.GetInt("mb", 64));
  }
  if (which == "rpc" || which == "all") {
    AblateRpc(static_cast<int>(flags.GetInt("calls", 2000)));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
