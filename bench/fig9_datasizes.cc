// Figure 9: write and read throughput as the data size grows within one
// memory node, plus the remote-memory space usage of each system.
//
// Usage: fig9_datasizes [--base=N] [--steps=4] [--threads=8]

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace dlsm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t base = flags.GetInt("base", 50000);
  int steps = static_cast<int>(flags.GetInt("steps", 4));
  int threads = static_cast<int>(flags.GetInt("threads", 8));

  std::vector<SystemKind> systems = {
      SystemKind::kDLsm, SystemKind::kRocks8K, SystemKind::kMemoryRocks,
      SystemKind::kNovaLsm, SystemKind::kSherman,
  };

  std::printf("\n=== Figure 9: varied data sizes (%d threads) ===\n",
              threads);
  for (SystemKind system : systems) {
    std::printf("\n%s\n", SystemName(system));
    std::printf("%14s %16s %16s\n", "keys", "write", "read");
    uint64_t keys = base;
    for (int s = 0; s < steps; s++, keys *= 2) {
      BenchConfig config;
      config.system = system;
      config.threads = threads;
      config.num_keys = keys;
      config.memtable_size = 1 << 20;
      config.sstable_size = 1 << 20;
      auto r = RunBench(config, {Phase::kFillRandom, Phase::kReadRandom});
      std::printf("%14llu %16s %16s\n",
                  static_cast<unsigned long long>(keys),
                  FormatThroughput(r[0].ops_per_sec).c_str(),
                  FormatThroughput(r[1].ops_per_sec).c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
