// The Sec. I motivation claim: transferring data in 64 B units vs 1 MB
// units differs by ~100x on the modeled EDR link (the OFED perf-test
// observation that motivates the LSM design). Sweeps payload size and
// prints achieved one-sided READ bandwidth.
//
// Usage: rdma_primitives [--total_mb=64]

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/rdma/fabric.h"
#include "src/rdma/rdma_manager.h"
#include "src/sim/sim_env.h"
#include "src/util/logging.h"

namespace dlsm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t total = flags.GetInt("total_mb", 64) << 20;

  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 1ull << 30);

  std::printf("\n=== RDMA one-sided READ bandwidth vs payload size ===\n");
  std::printf("(link: %.0f Gb/s, %.1f us read latency)\n",
              fabric.params().bandwidth_gbps,
              fabric.params().read_latency_ns / 1000.0);
  std::printf("%12s %14s %14s\n", "payload", "GB/s", "ops/s");

  env.Run(0, [&] {
    char* remote = memory->AllocDram(4 << 20);
    rdma::MemoryRegion mr = fabric.RegisterMemory(memory, remote, 4 << 20);
    rdma::RdmaManager mgr(&fabric, compute, memory);
    std::vector<char> buf(4 << 20);

    // Pipelined reads at queue depth 16, as the OFED perf-test drives the
    // NIC (the paper's Sec. I measurement).
    constexpr int kQueueDepth = 16;
    double small_bw = 0, big_bw = 0;
    for (size_t payload : {64ul, 256ul, 1024ul, 4096ul, 16384ul, 65536ul,
                           262144ul, 1048576ul}) {
      uint64_t ops = total / payload;
      if (ops > 200000) ops = 200000;
      rdma::QueuePair* qp = mgr.ThreadQp();
      uint64_t t0 = env.NowNanos();
      uint64_t posted = 0, completed = 0;
      rdma::Completion c;
      while (completed < ops) {
        while (posted < ops && posted - completed < kQueueDepth) {
          qp->PostRead(buf.data(), mr.addr, mr.rkey, payload);
          posted++;
        }
        c = qp->WaitCompletion();
        DLSM_CHECK(c.status.ok());
        completed++;
      }
      uint64_t t1 = env.NowNanos();
      double secs = (t1 - t0) / 1e9;
      double gbs = ops * payload / secs / 1e9;
      std::printf("%12zu %14.3f %14.0f\n", payload, gbs, ops / secs);
      if (payload == 64) small_bw = gbs;
      if (payload == 1048576) big_bw = gbs;
    }
    std::printf("\n64B vs 1MB throughput gap: %.0fx (paper cites ~100x)\n",
                big_bw / small_bw);
  });
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
