// The Sec. I motivation claim: transferring data in 64 B units vs 1 MB
// units differs by ~100x on the modeled EDR link (the OFED perf-test
// observation that motivates the LSM design). Sweeps payload size and
// prints achieved one-sided READ bandwidth.
//
// Also measures the unified verb layer's overhead: synchronous wrappers
// (post+wait per verb) vs handle waves (doorbell batches) vs interleaved
// read+write handles on one queue pair — the three shapes engine code
// drives the layer with.
//
// Usage: rdma_primitives [--total_mb=64]

#include <cstdio>
#include <deque>
#include <vector>

#include "bench/harness.h"
#include "src/rdma/fabric.h"
#include "src/rdma/rdma_manager.h"
#include "src/sim/sim_env.h"
#include "src/util/logging.h"
#include "src/util/trace.h"
#include "src/util/watchdog.h"

namespace dlsm {
namespace bench {
namespace {

void VerbLayerSeries(SimEnv* env, rdma::Fabric* fabric,
                     rdma::RdmaManager* mgr, const rdma::MemoryRegion& mr) {
  std::printf("\n=== Verb-layer overhead (one QP, %u ops/series) ===\n",
              20000u);
  std::printf("%10s %12s %14s %14s %14s\n", "payload", "wave", "sync ops/s",
              "wave ops/s", "mixed ops/s");
  constexpr uint64_t kOps = 20000;
  constexpr size_t kWave = 16;
  std::vector<char> buf(1 << 20);
  for (size_t payload : {64ul, 4096ul}) {
    // Sync wrappers: one post+wait round trip per verb.
    uint64_t t0 = env->NowNanos();
    for (uint64_t i = 0; i < kOps; i++) {
      DLSM_CHECK(mgr->Read(buf.data(), mr.addr, mr.rkey, payload).ok());
    }
    double sync_rate = kOps / ((env->NowNanos() - t0) / 1e9);

    // Handle waves: post kWave, wait the handles (doorbell batching).
    t0 = env->NowNanos();
    for (uint64_t i = 0; i < kOps; i += kWave) {
      rdma::ReadBatch batch(mgr);
      for (size_t j = 0; j < kWave; j++) {
        batch.Add(buf.data() + j * payload, mr.addr + j * payload, mr.rkey,
                  payload);
      }
      DLSM_CHECK(batch.WaitAll().ok());
    }
    double wave_rate = kOps / ((env->NowNanos() - t0) / 1e9);

    // Interleaved read+write waves on the same queue — legal under the
    // handle layer (was forbidden by the pre-refactor contract).
    t0 = env->NowNanos();
    for (uint64_t i = 0; i < kOps; i += kWave) {
      std::vector<rdma::WrHandle> handles;
      handles.reserve(kWave);
      rdma::VerbQueue* vq = mgr->ThreadVq();
      for (size_t j = 0; j < kWave; j++) {
        uint64_t addr = mr.addr + j * payload;
        char* b = buf.data() + j * payload;
        handles.push_back(j % 2 == 0 ? vq->Read(b, addr, mr.rkey, payload)
                                     : vq->Write(b, addr, mr.rkey, payload));
      }
      for (auto& h : handles) DLSM_CHECK(h.Wait().ok());
    }
    double mixed_rate = kOps / ((env->NowNanos() - t0) / 1e9);

    std::printf("%10zu %12zu %14.0f %14.0f %14.0f\n", payload, kWave,
                sync_rate, wave_rate, mixed_rate);
  }
  std::printf("\nVerb-layer telemetry after the series:\n%s",
              mgr->StatsSnapshot().ToString().c_str());
  (void)fabric;
}

// A/B guard for the tracing fast path: the disabled check is one relaxed
// atomic load per span, so the same READ loop with tracing off must stay
// within noise (±2%) of a build that never heard of tracing; with tracing
// on, the recorder's per-event cost shows up as the third column.
void TracingOverheadSeries(SimEnv* env, rdma::RdmaManager* mgr,
                           const rdma::MemoryRegion& mr) {
  constexpr uint64_t kOps = 20000;
  constexpr size_t kPayload = 64;
  std::vector<char> buf(kPayload);
  auto series = [&] {
    uint64_t t0 = env->NowNanos();
    for (uint64_t i = 0; i < kOps; i++) {
      DLSM_CHECK(mgr->Read(buf.data(), mr.addr, mr.rkey, kPayload).ok());
    }
    return kOps / ((env->NowNanos() - t0) / 1e9);
  };

  double off1 = series();
  double off2 = series();  // Tracing-off rerun: the noise floor.
  trace::EnableWithEnv(env);
  double on = series();
  uint64_t events = 0;
  {
    // Count "verb" events without parsing: each completion emits one.
    std::string json = trace::Tracer::ChromeTraceJson();
    for (size_t p = json.find("\"cat\":\"verb\""); p != std::string::npos;
         p = json.find("\"cat\":\"verb\"", p + 1)) {
      events++;
    }
  }
  trace::Tracer::Disable();

  double off_delta = 100.0 * (off2 - off1) / off1;
  double on_delta = 100.0 * (on - off2) / off2;
  std::printf("\n=== Tracing overhead (sync READ, %zu B x %llu) ===\n",
              kPayload, static_cast<unsigned long long>(kOps));
  std::printf("%14s %14s %14s %10s\n", "off ops/s", "off rerun", "on ops/s",
              "events");
  std::printf("%14.0f %14.0f %14.0f %10llu\n", off1, off2, on,
              static_cast<unsigned long long>(events));
  std::printf("off-vs-off delta %+.2f%% (guard: |delta| <= 2%%: %s), "
              "on-vs-off delta %+.2f%%\n",
              off_delta, off_delta <= 2.0 && off_delta >= -2.0 ? "PASS"
                                                               : "FAIL",
              on_delta);
}

// A/B guard for the continuous-telemetry stack at the verb layer. Legs:
//   off x2      — the noise floor (SimEnv folds host CPU into virtual
//                 time, so ops/s carries host jitter).
//   watchdog    — a stall watchdog whose probe enumerates the in-flight
//                 WR mirror, polled at its deadline/4 cadence. This is
//                 the always-on production configuration, so it carries
//                 the 2% acceptance budget (widened to the measured noise
//                 floor when the host is noisier than the budget).
//   exemplars   — watchdog plus exemplar-mode tracing (per-op top-k
//                 admission and thread-buffer rollback). Like the full-
//                 tracing delta above, a debug mode: reported, not
//                 guarded — its cost is the price of keeping p99 span
//                 trees at production rates.
void TelemetryOverheadSeries(SimEnv* env, rdma::RdmaManager* mgr,
                             const rdma::MemoryRegion& mr) {
  constexpr uint64_t kOps = 20000;
  constexpr size_t kPayload = 64;
  constexpr uint64_t kPollNs = 250'000;  // 1 ms deadline / 4.
  std::vector<char> buf(kPayload);
  telemetry::Watchdog* wd = nullptr;
  auto series = [&] {
    uint64_t next_poll = env->NowNanos() + kPollNs;
    uint64_t t0 = env->NowNanos();
    for (uint64_t i = 0; i < kOps; i++) {
      trace::TraceOp op("Read", "bench");
      DLSM_CHECK(mgr->Read(buf.data(), mr.addr, mr.rkey, kPayload).ok());
      if (wd != nullptr && env->NowNanos() >= next_poll) {
        wd->Poll();
        next_poll = env->NowNanos() + kPollNs;
      }
    }
    return kOps / ((env->NowNanos() - t0) / 1e9);
  };

  double off1 = series();
  double off2 = series();  // Telemetry-off rerun: the noise floor.

  telemetry::Watchdog::Options wo;
  wo.clock = [env] { return env->NowNanos(); };
  wo.deadline_ns = 1'000'000;
  wo.sink = [](const std::string&) {};  // A healthy run never fires.
  telemetry::Watchdog watchdog(wo);
  watchdog.AddProbe(
      "outstanding_verbs",
      [mgr](uint64_t now, uint64_t deadline_ns,
            std::vector<telemetry::Watchdog::StuckOp>* out) {
        std::vector<rdma::OutstandingVerb> verbs;
        mgr->ListOutstanding(&verbs);
        for (const rdma::OutstandingVerb& v : verbs) {
          if (now > v.post_ns && now - v.post_ns > deadline_ns) {
            out->push_back(telemetry::Watchdog::StuckOp{
                "verb", v.wr_id, now - v.post_ns});
          }
        }
      });
  wd = &watchdog;
  double wd_on = series();

  trace::EnableWithEnv(env);
  trace::ExemplarPolicy policy;
  policy.k = 4;
  policy.window_ns = 1'000'000;
  trace::Tracer::SetExemplarPolicy(policy);
  double ex_on = series();
  size_t exemplars = trace::Tracer::ExemplarIndex().size();
  trace::Tracer::Disable();
  wd = nullptr;

  double off_delta = 100.0 * (off2 - off1) / off1;
  double wd_delta = 100.0 * (wd_on - off2) / off2;
  double ex_delta = 100.0 * (ex_on - off2) / off2;
  double budget = off_delta < 0 ? -off_delta : off_delta;
  if (budget < 2.0) budget = 2.0;
  bool wd_ok = wd_delta <= budget && wd_delta >= -budget;
  std::printf("\n=== Telemetry overhead (sync READ, %zu B x %llu) ===\n",
              kPayload, static_cast<unsigned long long>(kOps));
  std::printf("%14s %14s %14s %14s %10s %8s\n", "off ops/s", "off rerun",
              "wd ops/s", "exemp ops/s", "exemplars", "fired");
  std::printf("%14.0f %14.0f %14.0f %14.0f %10zu %8s\n", off1, off2, wd_on,
              ex_on, exemplars, watchdog.fired() ? "yes" : "no");
  std::printf("off-vs-off delta %+.2f%% (noise floor) | watchdog delta "
              "%+.2f%% (guard |delta| <= %.1f%%: %s) | +exemplars delta "
              "%+.2f%% (debug mode, informational)\n",
              off_delta, wd_delta, budget, wd_ok ? "PASS" : "FAIL",
              ex_delta);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t total = flags.GetInt("total_mb", 64) << 20;

  SimEnv env;
  rdma::Fabric fabric(&env);
  rdma::Node* compute = fabric.AddNode("compute", 24, 1ull << 30);
  rdma::Node* memory = fabric.AddNode("memory", 4, 1ull << 30);

  std::printf("\n=== RDMA one-sided READ bandwidth vs payload size ===\n");
  std::printf("(link: %.0f Gb/s, %.1f us read latency)\n",
              fabric.params().bandwidth_gbps,
              fabric.params().read_latency_ns / 1000.0);
  std::printf("%12s %14s %14s\n", "payload", "GB/s", "ops/s");

  env.Run(0, [&] {
    char* remote = memory->AllocDram(4 << 20);
    rdma::MemoryRegion mr = fabric.RegisterMemory(memory, remote, 4 << 20);
    rdma::RdmaManager mgr(&fabric, compute, memory);
    std::vector<char> buf(4 << 20);

    // Pipelined reads at queue depth 16, as the OFED perf-test drives the
    // NIC (the paper's Sec. I measurement). A deque of in-flight handles
    // keeps the pipe full; the oldest handle is waited as new posts go out.
    constexpr size_t kQueueDepth = 16;
    double small_bw = 0, big_bw = 0;
    for (size_t payload : {64ul, 256ul, 1024ul, 4096ul, 16384ul, 65536ul,
                           262144ul, 1048576ul}) {
      uint64_t ops = total / payload;
      if (ops > 200000) ops = 200000;
      rdma::VerbQueue* vq = mgr.ThreadVq();
      uint64_t t0 = env.NowNanos();
      uint64_t posted = 0, completed = 0;
      std::deque<rdma::WrHandle> inflight;
      while (completed < ops) {
        while (posted < ops && inflight.size() < kQueueDepth) {
          inflight.push_back(vq->Read(buf.data(), mr.addr, mr.rkey, payload));
          posted++;
        }
        DLSM_CHECK(inflight.front().Wait().ok());
        inflight.pop_front();
        completed++;
      }
      uint64_t t1 = env.NowNanos();
      double secs = (t1 - t0) / 1e9;
      double gbs = ops * payload / secs / 1e9;
      std::printf("%12zu %14.3f %14.0f\n", payload, gbs, ops / secs);
      if (payload == 64) small_bw = gbs;
      if (payload == 1048576) big_bw = gbs;
    }
    std::printf("\n64B vs 1MB throughput gap: %.0fx (paper cites ~100x)\n",
                big_bw / small_bw);

    VerbLayerSeries(&env, &fabric, &mgr, mr);
    TracingOverheadSeries(&env, &mgr, mr);
    TelemetryOverheadSeries(&env, &mgr, mr);
  });
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dlsm

int main(int argc, char** argv) { return dlsm::bench::Main(argc, argv); }
