// Wall-clock microbenchmarks (google-benchmark) of the data structures on
// dLSM's hot paths: skiplist insert/lookup, bloom filter build/probe,
// varint coding, CRC32C, byte-record vs block build and parse. These are
// host-hardware numbers (not virtual time); they feed the CPU cost side of
// the simulation and catch regressions in the real code.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/core/bloom.h"
#include "src/core/dbformat.h"
#include "src/core/memtable.h"
#include "src/core/skiplist.h"
#include "src/util/arena.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/random.h"

namespace dlsm {
namespace {

std::string BenchKey(uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(n));
  return std::string(buf);
}

void BM_SkipListInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Arena arena;
    struct Cmp {
      int operator()(const char* a, const char* b) const {
        return strcmp(a, b);
      }
    };
    SkipList<const char*, Cmp> list(Cmp(), &arena);
    Random rnd(301);
    std::vector<std::string> keys;
    for (int i = 0; i < state.range(0); i++) {
      keys.push_back(BenchKey(rnd.Next64()));
    }
    state.ResumeTiming();
    for (const std::string& k : keys) {
      char* mem = arena.Allocate(k.size() + 1);
      memcpy(mem, k.c_str(), k.size() + 1);
      list.Insert(mem);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkipListInsert)->Arg(1000)->Arg(10000);

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::string value(400, 'v');
  for (auto _ : state) {
    state.PauseTiming();
    MemTable* mem = new MemTable(icmp, 0, kMaxSequenceNumber);
    mem->Ref();
    Random rnd(301);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); i++) {
      mem->Add(i + 1, kTypeValue, BenchKey(rnd.Next64()), value);
    }
    state.PauseTiming();
    mem->Unref();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemTableAdd)->Arg(10000);

void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp, 0, kMaxSequenceNumber);
  mem->Ref();
  std::string value(400, 'v');
  const int kN = 100000;
  for (int i = 0; i < kN; i++) {
    mem->Add(i + 1, kTypeValue, BenchKey(i), value);
  }
  Random rnd(17);
  for (auto _ : state) {
    LookupKey lkey(BenchKey(rnd.Uniform(kN)), kMaxSequenceNumber);
    std::string out;
    Status s;
    benchmark::DoNotOptimize(mem->Get(lkey, &out, &s));
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableGet);

void BM_BloomCreate(benchmark::State& state) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < state.range(0); i++) keys.push_back(BenchKey(i));
  for (const auto& k : keys) slices.emplace_back(k);
  for (auto _ : state) {
    std::string filter;
    policy.CreateFilter(slices.data(), static_cast<int>(slices.size()),
                        &filter);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomCreate)->Arg(10000);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 10000; i++) keys.push_back(BenchKey(i));
  for (const auto& k : keys) slices.emplace_back(k);
  std::string filter;
  policy.CreateFilter(slices.data(), static_cast<int>(slices.size()),
                      &filter);
  Random rnd(7);
  for (auto _ : state) {
    std::string probe = BenchKey(rnd.Uniform(20000));
    benchmark::DoNotOptimize(policy.KeyMayMatch(probe, filter));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_VarintEncodeDecode(benchmark::State& state) {
  Random rnd(3);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; i++) values.push_back(rnd.Next64() >> (i % 64));
  for (auto _ : state) {
    std::string buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    Slice input(buf);
    uint64_t out = 0;
    while (GetVarint64(&input, &out)) {
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncodeDecode);

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(1 << 20);

}  // namespace
}  // namespace dlsm

BENCHMARK_MAIN();
