// Range sharding (paper Sec. VII): the key space is divided into lambda
// shards, each an independent LSM-tree with its own MemTables and L0, so
// L0 compactions parallelize and readers traverse fewer overlapping
// SSTables. Shards share the flush pool and the RPC client.

#ifndef DLSM_CORE_SHARD_H_
#define DLSM_CORE_SHARD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/db.h"
#include "src/core/db_impl.h"

namespace dlsm {

/// A DB facade over lambda range shards on one compute node.
class ShardedDB : public DB {
 public:
  /// boundaries must be sorted and have size options.shards - 1; shard i
  /// covers [boundaries[i-1], boundaries[i]).
  static Status Open(const Options& options, const DbDeps& deps,
                     std::vector<std::string> boundaries, DB** dbptr);

  /// Evenly spaced boundaries for zero-padded decimal keys of the given
  /// width (the bench harness key format).
  static std::vector<std::string> UniformDecimalBoundaries(int shards,
                                                           int key_width);

  /// Evenly spaced boundaries for zero-padded decimal keys drawn from
  /// [0, key_range). UniformDecimalBoundaries splits the full 10^width
  /// space, which collapses to one shard when the workload's keys are
  /// small integers — use this form when the key range is known.
  static std::vector<std::string> RangeDecimalBoundaries(int shards,
                                                         int key_width,
                                                         uint64_t key_range);

  ~ShardedDB() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  /// Fans the batch out per shard; each shard runs its own doorbell waves
  /// over its keys and results scatter back to the caller's order.
  void MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status Flush() override;
  Status WaitForBackgroundIdle() override;
  DbStats GetStats() override;
  int NumFilesAtLevel(int level) override;
  /// "dlsm.timeseries" answers with {"shards":[...]} — one series object
  /// per shard (each samples independently); other names defer to the
  /// base implementation over the merged stats.
  bool GetProperty(const Slice& property, std::string* value) override;
  Status Close() override;

  int ShardForKey(const Slice& key) const;
  DB* shard(int i) { return shards_[i].get(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  ShardedDB(const Options& options, std::vector<std::string> boundaries);

  Options options_;
  std::vector<std::string> boundaries_;
  std::unique_ptr<ThreadPool> flush_pool_;
  // One shared RPC client per memory node (all shards of this compute
  // node multiplex onto them); single-node deployments have exactly one.
  std::vector<std::unique_ptr<remote::RpcClient>> rpcs_;
  std::vector<std::unique_ptr<DB>> shards_;
  bool closed_ = false;
};

}  // namespace dlsm

#endif  // DLSM_CORE_SHARD_H_
