// Merging iterator over N sorted children, as used by range scans (the
// paper's outer iterator over per-level sub-iterators, Sec. VI) and by
// compaction merges.

#ifndef DLSM_CORE_MERGER_H_
#define DLSM_CORE_MERGER_H_

#include "src/core/dbformat.h"
#include "src/core/iterator.h"

namespace dlsm {

/// Returns an iterator yielding the union of children[0..n) in comparator
/// order. Takes ownership of the children.
Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             Iterator** children, int n);

}  // namespace dlsm

#endif  // DLSM_CORE_MERGER_H_
