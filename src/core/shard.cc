#include "src/core/shard.h"

#include <algorithm>

#include "src/core/merger.h"
#include "src/util/logging.h"

namespace dlsm {

ShardedDB::ShardedDB(const Options& options,
                     std::vector<std::string> boundaries)
    : options_(options), boundaries_(std::move(boundaries)) {}

std::vector<std::string> ShardedDB::UniformDecimalBoundaries(int shards,
                                                             int key_width) {
  std::vector<std::string> bounds;
  for (int i = 1; i < shards; i++) {
    // boundary = i / shards of the decimal key space, as a zero-padded
    // decimal string.
    double frac = static_cast<double>(i) / shards;
    uint64_t first_digits = static_cast<uint64_t>(frac * 1e9);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%09llu",
                  static_cast<unsigned long long>(first_digits));
    std::string b(buf);
    b.resize(key_width, '0');
    bounds.push_back(std::move(b));
  }
  return bounds;
}

std::vector<std::string> ShardedDB::RangeDecimalBoundaries(
    int shards, int key_width, uint64_t key_range) {
  std::vector<std::string> bounds;
  for (int i = 1; i < shards; i++) {
    uint64_t b = key_range / static_cast<uint64_t>(shards) *
                 static_cast<uint64_t>(i);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%0*llu", key_width,
                  static_cast<unsigned long long>(b));
    bounds.push_back(std::string(buf));
  }
  return bounds;
}

Status ShardedDB::Open(const Options& options, const DbDeps& deps,
                       std::vector<std::string> boundaries, DB** dbptr) {
  *dbptr = nullptr;
  if (static_cast<int>(boundaries.size()) != options.shards - 1) {
    return Status::InvalidArgument("boundaries must have shards-1 entries");
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    return Status::InvalidArgument("boundaries must be sorted");
  }
  auto db =
      std::unique_ptr<ShardedDB>(new ShardedDB(options, std::move(boundaries)));

  // Shared infrastructure: one flush pool and one RPC client per memory
  // node serve all shards of this compute node.
  db->flush_pool_ = std::make_unique<ThreadPool>(
      options.env, deps.compute->env_node(), options.flush_threads, "flush");
  std::vector<MemoryNodeService*> memories = deps.memories;
  if (memories.empty()) memories.push_back(deps.memory);
  for (MemoryNodeService* m : memories) {
    if (m == nullptr) {
      return Status::InvalidArgument("null memory node in deps.memories");
    }
    db->rpcs_.push_back(std::make_unique<remote::RpcClient>(
        deps.fabric, deps.compute, m->rpc_server()));
    if (options.rpc_timeout_ns > 0) {
      remote::RpcPolicy policy;
      policy.timeout_ns = options.rpc_timeout_ns;
      policy.max_retries = options.rpc_max_retries;
      policy.retry_backoff_ns = options.rpc_retry_backoff_ns;
      db->rpcs_.back()->set_policy(policy);
    }
  }

  Options shard_options = options;
  shard_options.shards = 1;
  // Keep aggregate memory and coordinator counts comparable to lambda=1.
  shard_options.memtable_size =
      std::max<size_t>(options.memtable_size / options.shards, 64 << 10);
  shard_options.sstable_size =
      std::max<size_t>(options.sstable_size / options.shards, 128 << 10);
  shard_options.compaction_scheduler_threads = std::max(
      1, options.compaction_scheduler_threads / options.shards);
  shard_options.max_subcompactions =
      std::max(1, options.max_subcompactions / options.shards);
  shard_options.flush_region_size = options.flush_region_size / options.shards;

  DbDeps shard_deps = deps;
  shard_deps.shared_flush_pool = db->flush_pool_.get();
  shard_deps.memories = memories;
  shard_deps.shared_rpcs.clear();
  for (auto& rpc : db->rpcs_) shard_deps.shared_rpcs.push_back(rpc.get());
  shard_deps.memory = memories[0];
  shard_deps.shared_rpc = db->rpcs_[0].get();
  for (int i = 0; i < options.shards; i++) {
    // Each shard places tables independently; the shard index seeds the
    // policy so round-robin spreads shards across memory nodes.
    shard_options.placement_shard = options.placement_shard + i;
    DB* shard = nullptr;
    DLSM_RETURN_NOT_OK(DLsmDB::Open(shard_options, shard_deps, &shard));
    db->shards_.emplace_back(shard);
  }
  *dbptr = db.release();
  return Status::OK();
}

ShardedDB::~ShardedDB() { Close(); }

int ShardedDB::ShardForKey(const Slice& key) const {
  // First boundary > key determines the shard.
  auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), key,
      [](const Slice& k, const std::string& b) { return k.compare(b) < 0; });
  return static_cast<int>(it - boundaries_.begin());
}

Status ShardedDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  return shards_[ShardForKey(key)]->Put(options, key, value);
}

Status ShardedDB::Delete(const WriteOptions& options, const Slice& key) {
  return shards_[ShardForKey(key)]->Delete(options, key);
}

Status ShardedDB::Write(const WriteOptions& options, WriteBatch* batch) {
  // Split the batch by shard, preserving intra-shard order.
  struct Splitter : public WriteBatch::Handler {
    ShardedDB* db;
    std::vector<WriteBatch> per_shard;
    void Put(const Slice& key, const Slice& value) override {
      per_shard[db->ShardForKey(key)].Put(key, value);
    }
    void Delete(const Slice& key) override {
      per_shard[db->ShardForKey(key)].Delete(key);
    }
  };
  Splitter splitter;
  splitter.db = this;
  splitter.per_shard.resize(shards_.size());
  DLSM_RETURN_NOT_OK(batch->Iterate(&splitter));
  for (size_t i = 0; i < shards_.size(); i++) {
    if (splitter.per_shard[i].Count() > 0) {
      DLSM_RETURN_NOT_OK(shards_[i]->Write(options, &splitter.per_shard[i]));
    }
  }
  return Status::OK();
}

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value) {
  return shards_[ShardForKey(key)]->Get(options, key, value);
}

void ShardedDB::MultiGet(const ReadOptions& options,
                         std::span<const Slice> keys,
                         std::vector<std::string>* values,
                         std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  // Group the batch by owning shard, preserving per-shard key order.
  std::vector<std::vector<Slice>> shard_keys(shards_.size());
  std::vector<std::vector<size_t>> shard_idx(shards_.size());
  for (size_t i = 0; i < keys.size(); i++) {
    int s = ShardForKey(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_idx[s].push_back(i);
  }
  std::vector<std::string> vals;
  std::vector<Status> stats;
  for (size_t s = 0; s < shards_.size(); s++) {
    if (shard_keys[s].empty()) continue;
    shards_[s]->MultiGet(options, shard_keys[s], &vals, &stats);
    for (size_t j = 0; j < shard_idx[s].size(); j++) {
      (*values)[shard_idx[s][j]] = std::move(vals[j]);
      (*statuses)[shard_idx[s][j]] = std::move(stats[j]);
    }
  }
}

namespace {

/// Shards are disjoint, ordered ranges, so a cross-shard scan is a simple
/// concatenation of per-shard (already user-level) iterators.
class ShardConcatIterator : public Iterator {
 public:
  explicit ShardConcatIterator(std::vector<Iterator*> children)
      : children_(children.begin(), children.end()) {}

  bool Valid() const override {
    return current_ < children_.size() && children_[current_]->Valid();
  }
  Slice key() const override { return children_[current_]->key(); }
  Slice value() const override { return children_[current_]->value(); }
  Status status() const override {
    for (const auto& c : children_) {
      Status s = c->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  void SeekToFirst() override {
    for (auto& c : children_) c->SeekToFirst();
    current_ = 0;
    SkipForward();
  }
  void SeekToLast() override {
    for (auto& c : children_) c->SeekToLast();
    current_ = children_.size() - 1;
    SkipBackward();
  }
  void Seek(const Slice& target) override {
    for (auto& c : children_) c->Seek(target);
    current_ = 0;
    SkipForward();
  }
  void Next() override {
    children_[current_]->Next();
    SkipForward();
  }
  void Prev() override {
    children_[current_]->Prev();
    SkipBackward();
  }

 private:
  void SkipForward() {
    while (current_ < children_.size() && !children_[current_]->Valid()) {
      current_++;
      if (current_ < children_.size()) children_[current_]->SeekToFirst();
    }
  }
  void SkipBackward() {
    while (current_ < children_.size() && !children_[current_]->Valid()) {
      if (current_ == 0) {
        current_ = children_.size();  // Invalid.
        return;
      }
      current_--;
      children_[current_]->SeekToLast();
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  size_t current_ = 0;
};

/// Composite snapshot over all shards.
class ShardedSnapshot : public Snapshot {
 public:
  ShardedSnapshot(std::vector<std::pair<DB*, const Snapshot*>> snaps)
      : snaps_(std::move(snaps)) {}
  ~ShardedSnapshot() override = default;
  uint64_t sequence() const override {
    return snaps_.empty() ? 0 : snaps_[0].second->sequence();
  }
  const std::vector<std::pair<DB*, const Snapshot*>>& snaps() const {
    return snaps_;
  }

 private:
  std::vector<std::pair<DB*, const Snapshot*>> snaps_;
};

}  // namespace

Iterator* ShardedDB::NewIterator(const ReadOptions& options) {
  std::vector<Iterator*> children;
  children.reserve(shards_.size());
  for (auto& shard : shards_) {
    children.push_back(shard->NewIterator(options));
  }
  return new ShardConcatIterator(std::move(children));
}

const Snapshot* ShardedDB::GetSnapshot() {
  std::vector<std::pair<DB*, const Snapshot*>> snaps;
  snaps.reserve(shards_.size());
  for (auto& shard : shards_) {
    snaps.emplace_back(shard.get(), shard->GetSnapshot());
  }
  return new ShardedSnapshot(std::move(snaps));
}

void ShardedDB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  const auto* s = static_cast<const ShardedSnapshot*>(snapshot);
  for (const auto& [db, snap] : s->snaps()) {
    db->ReleaseSnapshot(snap);
  }
  delete s;
}

Status ShardedDB::Flush() {
  for (auto& shard : shards_) {
    DLSM_RETURN_NOT_OK(shard->Flush());
  }
  return Status::OK();
}

Status ShardedDB::WaitForBackgroundIdle() {
  for (auto& shard : shards_) {
    DLSM_RETURN_NOT_OK(shard->WaitForBackgroundIdle());
  }
  return Status::OK();
}

DbStats ShardedDB::GetStats() {
  DbStats total;
  for (auto& shard : shards_) {
    DbStats s = shard->GetStats();
    total.writes += s.writes;
    total.reads += s.reads;
    total.flushes += s.flushes;
    total.compactions += s.compactions;
    total.compaction_input_bytes += s.compaction_input_bytes;
    total.compaction_output_bytes += s.compaction_output_bytes;
    total.stall_ns += s.stall_ns;
    total.bloom_useful += s.bloom_useful;
    total.compaction_rpc_inflight_peak = std::max(
        total.compaction_rpc_inflight_peak, s.compaction_rpc_inflight_peak);
    total.read_retries += s.read_retries;
    total.flush_retries += s.flush_retries;
    // Per-shard rpc_* counters are zero here: shards share this wrapper's
    // client, whose counters are folded in once below.
    total.rpc_retries += s.rpc_retries;
    total.rpc_timeouts += s.rpc_timeouts;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_inserts += s.cache_inserts;
    total.cache_evictions += s.cache_evictions;
    total.cache_admission_rejects += s.cache_admission_rejects;
    total.tables_migrated += s.tables_migrated;
    total.migration_bytes += s.migration_bytes;
    total.watchdog_stalls += s.watchdog_stalls;
    // Slot-wise merge: slot i means the same memory node in every shard
    // of this compute node.
    if (s.per_node.size() > total.per_node.size()) {
      total.per_node.resize(s.per_node.size());
    }
    for (size_t i = 0; i < s.per_node.size(); i++) {
      total.per_node[i].read_verbs += s.per_node[i].read_verbs;
      total.per_node[i].read_bytes += s.per_node[i].read_bytes;
      total.per_node[i].write_verbs += s.per_node[i].write_verbs;
      total.per_node[i].write_bytes += s.per_node[i].write_bytes;
    }
    total.rdma.MergeFrom(s.rdma);
  }
  for (auto& rpc : rpcs_) {
    total.rpc_retries += rpc->rpc_retries();
    total.rpc_timeouts += rpc->rpc_timeouts();
  }
  return total;
}

int ShardedDB::NumFilesAtLevel(int level) {
  int total = 0;
  for (auto& shard : shards_) total += shard->NumFilesAtLevel(level);
  return total;
}

bool ShardedDB::GetProperty(const Slice& property, std::string* value) {
  if (property == Slice("dlsm.timeseries")) {
    // Each shard samples its own series; export them side by side rather
    // than pretending the rows line up for a merge.
    std::string out = "{\"shards\":[";
    bool any = false;
    for (size_t i = 0; i < shards_.size(); i++) {
      std::string one;
      if (!shards_[i]->GetProperty(property, &one)) return false;
      if (i > 0) out.append(",");
      out.append(one);
      any = true;
    }
    if (!any) return false;
    out.append("]}");
    *value = std::move(out);
    return true;
  }
  return DB::GetProperty(property, value);
}

Status ShardedDB::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  // Best-effort: a shard failing to close (a fail-closed background
  // error, say) must not leave its siblings' threads running against
  // infrastructure this wrapper is about to tear down. Remember the first
  // error, still close everything.
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->Close();
    if (first.ok() && !s.ok()) first = s;
  }
  shards_.clear();
  flush_pool_.reset();
  rpcs_.clear();
  return first;
}

}  // namespace dlsm
