// Comparator interface for user keys, as in LevelDB/RocksDB.

#ifndef DLSM_CORE_COMPARATOR_H_
#define DLSM_CORE_COMPARATOR_H_

#include "src/util/slice.h"

namespace dlsm {

/// A total order over user keys.
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Three-way comparison: <0, 0, >0 as a is <, ==, > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  /// The comparator's name, recorded in table metadata.
  virtual const char* Name() const = 0;
};

/// Returns the singleton lexicographic (memcmp-order) comparator.
const Comparator* BytewiseComparator();

}  // namespace dlsm

#endif  // DLSM_CORE_COMPARATOR_H_
