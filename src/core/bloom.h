// Bloom filter (double-hashing scheme, as in LevelDB's built-in policy).
// Each SSTable carries one filter over its user keys; the compute node
// caches filters locally to skip remote reads (paper Secs. II-C, VI).

#ifndef DLSM_CORE_BLOOM_H_
#define DLSM_CORE_BLOOM_H_

#include <string>
#include <vector>

#include "src/util/slice.h"

namespace dlsm {

/// Builds and probes bloom filters with a configurable bits-per-key budget.
class BloomFilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key);

  /// Appends a filter over keys[0..n) to *dst.
  void CreateFilter(const Slice* keys, int n, std::string* dst) const;

  /// Returns false only if key is definitely not in the filter.
  bool KeyMayMatch(const Slice& key, const Slice& filter) const;

  int bits_per_key() const { return bits_per_key_; }

 private:
  int bits_per_key_;
  int k_;  // Number of probes.
};

}  // namespace dlsm

#endif  // DLSM_CORE_BLOOM_H_
