// DbStats serialization and the DB::GetProperty base implementation.
//
// Everything here derives from the public DB interface (GetStats,
// NumFilesAtLevel), so all engines — dLSM, the baselines, and the sharded
// wrappers — answer the "dlsm.*" property names without per-engine code.
// DLsmDB overrides "dlsm.levels" to add per-level byte counts, which only
// it can see (Version tracks the remote chunk sizes).

#include <cstdio>

#include "src/core/db.h"

namespace dlsm {

namespace {

// Matches Options::num_levels' default; GetProperty reports all of them
// even when empty so output rows are stable across runs.
constexpr int kReportLevels = 7;

void AppendCounter(std::string* out, const char* name, uint64_t v,
                   bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", *first ? "" : ",", name,
                static_cast<unsigned long long>(v));
  out->append(buf);
  *first = false;
}

}  // namespace

std::string DbStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "writes %llu  reads %llu  flushes %llu  compactions %llu\n"
      "compaction in %llu B  out %llu B  stall %.3f ms  bloom useful %llu\n"
      "compaction rpc inflight peak %llu\n"
      "retries: read %llu  flush %llu  rpc %llu  rpc timeouts %llu  "
      "watchdog stalls %llu\n"
      "cache: hits %llu  misses %llu  inserts %llu  evictions %llu  "
      "admission rejects %llu\n",
      static_cast<unsigned long long>(writes),
      static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(flushes),
      static_cast<unsigned long long>(compactions),
      static_cast<unsigned long long>(compaction_input_bytes),
      static_cast<unsigned long long>(compaction_output_bytes),
      static_cast<double>(stall_ns) / 1e6,
      static_cast<unsigned long long>(bloom_useful),
      static_cast<unsigned long long>(compaction_rpc_inflight_peak),
      static_cast<unsigned long long>(read_retries),
      static_cast<unsigned long long>(flush_retries),
      static_cast<unsigned long long>(rpc_retries),
      static_cast<unsigned long long>(rpc_timeouts),
      static_cast<unsigned long long>(watchdog_stalls),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_inserts),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(cache_admission_rejects));
  std::string out(buf);
  if (tables_migrated > 0 || migration_bytes > 0 || per_node.size() > 1) {
    std::snprintf(buf, sizeof(buf),
                  "placement: tables migrated %llu  migration %llu B\n",
                  static_cast<unsigned long long>(tables_migrated),
                  static_cast<unsigned long long>(migration_bytes));
    out.append(buf);
    for (size_t i = 0; i < per_node.size(); i++) {
      std::snprintf(buf, sizeof(buf),
                    "node%zu: read verbs %llu (%llu B)  write verbs %llu "
                    "(%llu B)\n",
                    i, static_cast<unsigned long long>(per_node[i].read_verbs),
                    static_cast<unsigned long long>(per_node[i].read_bytes),
                    static_cast<unsigned long long>(per_node[i].write_verbs),
                    static_cast<unsigned long long>(per_node[i].write_bytes));
      out.append(buf);
    }
  }
  return out + rdma.ToString();
}

std::string StatsJson(const DbStats& stats) {
  std::string out = "{";
  bool first = true;
  AppendCounter(&out, "writes", stats.writes, &first);
  AppendCounter(&out, "reads", stats.reads, &first);
  AppendCounter(&out, "flushes", stats.flushes, &first);
  AppendCounter(&out, "compactions", stats.compactions, &first);
  AppendCounter(&out, "compaction_input_bytes", stats.compaction_input_bytes,
                &first);
  AppendCounter(&out, "compaction_output_bytes", stats.compaction_output_bytes,
                &first);
  AppendCounter(&out, "stall_ns", stats.stall_ns, &first);
  AppendCounter(&out, "bloom_useful", stats.bloom_useful, &first);
  AppendCounter(&out, "compaction_rpc_inflight_peak",
                stats.compaction_rpc_inflight_peak, &first);
  AppendCounter(&out, "read_retries", stats.read_retries, &first);
  AppendCounter(&out, "flush_retries", stats.flush_retries, &first);
  AppendCounter(&out, "rpc_retries", stats.rpc_retries, &first);
  AppendCounter(&out, "rpc_timeouts", stats.rpc_timeouts, &first);
  AppendCounter(&out, "watchdog_stalls", stats.watchdog_stalls, &first);
  AppendCounter(&out, "cache_hits", stats.cache_hits, &first);
  AppendCounter(&out, "cache_misses", stats.cache_misses, &first);
  AppendCounter(&out, "cache_inserts", stats.cache_inserts, &first);
  AppendCounter(&out, "cache_evictions", stats.cache_evictions, &first);
  AppendCounter(&out, "cache_admission_rejects",
                stats.cache_admission_rejects, &first);
  AppendCounter(&out, "tables_migrated", stats.tables_migrated, &first);
  AppendCounter(&out, "migration_bytes", stats.migration_bytes, &first);
  out.append(",\"per_node\":[");
  for (size_t i = 0; i < stats.per_node.size(); i++) {
    if (i > 0) out.append(",");
    std::string node = "{";
    bool nf = true;
    AppendCounter(&node, "read_verbs", stats.per_node[i].read_verbs, &nf);
    AppendCounter(&node, "read_bytes", stats.per_node[i].read_bytes, &nf);
    AppendCounter(&node, "write_verbs", stats.per_node[i].write_verbs, &nf);
    AppendCounter(&node, "write_bytes", stats.per_node[i].write_bytes, &nf);
    node.append("}");
    out.append(node);
  }
  out.append("]");
  out.append(",\"rdma\":");
  out.append(stats.rdma.ToJson());
  out.append("}");
  return out;
}

bool DB::GetProperty(const Slice& property, std::string* value) {
  if (property == Slice("dlsm.stats")) {
    *value = GetStats().ToString();
    return true;
  }
  if (property == Slice("dlsm.levels")) {
    std::string out;
    char buf[64];
    for (int level = 0; level < kReportLevels; level++) {
      std::snprintf(buf, sizeof(buf), "L%d: %d files\n", level,
                    NumFilesAtLevel(level));
      out.append(buf);
    }
    *value = std::move(out);
    return true;
  }
  if (property == Slice("dlsm.rdma")) {
    *value = GetStats().rdma.ToString();
    return true;
  }
  if (property == Slice("dlsm.cache")) {
    // Counter-only view; DLsmDB overrides this to add capacity/usage,
    // which only the engine owning the BlockCache can see.
    DbStats s = GetStats();
    uint64_t accesses = s.cache_hits + s.cache_misses;
    double hit_rate = accesses == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(s.cache_hits) /
                                static_cast<double>(accesses);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "block-cache: hits=%llu misses=%llu hit-rate=%.2f%%\n"
                  "inserts=%llu evictions=%llu admission-rejects=%llu\n",
                  static_cast<unsigned long long>(s.cache_hits),
                  static_cast<unsigned long long>(s.cache_misses), hit_rate,
                  static_cast<unsigned long long>(s.cache_inserts),
                  static_cast<unsigned long long>(s.cache_evictions),
                  static_cast<unsigned long long>(s.cache_admission_rejects));
    *value = buf;
    return true;
  }
  if (property == Slice("dlsm.placement")) {
    // Counter-only view; DLsmDB overrides this to add the policy name and
    // live per-node table distribution, which only the engine can see.
    DbStats s = GetStats();
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "placement: tables migrated %llu  migration %llu B\n",
                  static_cast<unsigned long long>(s.tables_migrated),
                  static_cast<unsigned long long>(s.migration_bytes));
    out.append(buf);
    for (size_t i = 0; i < s.per_node.size(); i++) {
      std::snprintf(buf, sizeof(buf),
                    "node%zu: read verbs %llu (%llu B)  write verbs %llu "
                    "(%llu B)\n",
                    i, static_cast<unsigned long long>(s.per_node[i].read_verbs),
                    static_cast<unsigned long long>(s.per_node[i].read_bytes),
                    static_cast<unsigned long long>(s.per_node[i].write_verbs),
                    static_cast<unsigned long long>(s.per_node[i].write_bytes));
      out.append(buf);
    }
    *value = std::move(out);
    return true;
  }
  return false;
}

}  // namespace dlsm
