// SSTable index + bloom filter, cached on the compute node (paper Sec. VI).
//
// Byte-addressable format: one index entry per key-value record — (internal
// key, record offset, record length) — so a point read fetches exactly one
// record from remote memory.
//
// Block format: one index entry per block — (last internal key in block,
// block offset, block length) — so a point read fetches a whole block, as
// RocksDB does on block devices.
//
// The serialized form is what near-data compaction ships back in its RPC
// reply ("the memory node sends the metadata of the new SSTables").

#ifndef DLSM_CORE_TABLE_INDEX_H_
#define DLSM_CORE_TABLE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bloom.h"
#include "src/core/dbformat.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dlsm {

/// Parsed, binary-searchable SSTable index plus bloom filter.
class TableIndex {
 public:
  enum Kind : uint8_t {
    kPerRecord = 1,  // Byte-addressable layout.
    kPerBlock = 2,   // Block layout.
  };

  struct Entry {
    Slice key;        ///< Internal key (per-record) or block's last key.
    uint64_t offset;  ///< Byte offset inside the table's data region.
    uint32_t length;  ///< Record length or block length.
  };

  /// Parses a serialized index blob; returns nullptr on corruption.
  static std::shared_ptr<TableIndex> Parse(std::string blob);

  Kind kind() const { return kind_; }
  size_t num_entries() const { return starts_.size(); }
  Entry entry(size_t i) const;

  /// Returns the position of the first entry whose key is >= target
  /// (per-record), or the first block that could contain target
  /// (per-block). num_entries() if past the end.
  size_t Find(const InternalKeyComparator& cmp, const Slice& target) const;

  /// Bloom probe over the user key. Returns true if absent filters.
  bool KeyMayMatch(const BloomFilterPolicy& policy,
                   const Slice& user_key) const;

  /// The serialized form (for RPC shipping and accounting).
  const std::string& blob() const { return blob_; }

  /// Builder-side serialization.
  class Builder {
   public:
    explicit Builder(Kind kind) : kind_(kind) {}

    /// Records must be appended in key order.
    void Add(const Slice& key, uint64_t offset, uint32_t length);

    /// Attaches the bloom filter bytes.
    void SetFilter(const std::string& filter) { filter_ = filter; }

    /// Produces the serialized blob.
    std::string Finish();

   private:
    Kind kind_;
    std::string entries_;
    uint32_t count_ = 0;
    std::string filter_;
  };

 private:
  TableIndex() = default;

  Kind kind_ = kPerRecord;
  std::string blob_;
  std::vector<uint32_t> starts_;  // Offset of each entry within blob_.
  Slice filter_;                  // Points into blob_.
};

}  // namespace dlsm

#endif  // DLSM_CORE_TABLE_INDEX_H_
