// MemTable: the in-memory write buffer — a lock-free skiplist of internal
// keys (paper Secs. III, IV).
//
// dLSM novelty (Sec. IV): each MemTable owns a *predefined sequence-number
// range* [seq_base, seq_limit). A writer routes its entry by sequence
// number, so the newest version of a key can never land in an older table
// than an older version, and the switch lock is only ever touched by the
// writers that cross a range boundary.

#ifndef DLSM_CORE_MEMTABLE_H_
#define DLSM_CORE_MEMTABLE_H_

#include <atomic>
#include <string>

#include "src/core/dbformat.h"
#include "src/core/iterator.h"
#include "src/core/skiplist.h"
#include "src/util/arena.h"
#include "src/util/status.h"

namespace dlsm {

/// Reference-counted in-memory table. Insert-only; deletions are
/// tombstones. Add() may run concurrently from many writers.
class MemTable {
 public:
  /// A table accepting sequences in [seq_base, seq_limit).
  MemTable(const InternalKeyComparator& comparator, SequenceNumber seq_base,
           SequenceNumber seq_limit);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }

  SequenceNumber seq_base() const { return seq_base_; }
  SequenceNumber seq_limit() const { return seq_limit_; }

  /// True if seq routes to this table under the seq-range policy.
  bool AcceptsSequence(SequenceNumber seq) const {
    return seq >= seq_base_ && seq < seq_limit_;
  }

  /// Approximate memory consumed.
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  /// Number of entries added.
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  /// Adds an entry. Thread-safe (lock-free skiplist + arena).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// If the table contains a visible version of key, sets *value (or
  /// returns NotFound for a tombstone) and returns true; false if the key
  /// is absent from this table.
  bool Get(const LookupKey& key, std::string* value, Status* s);

  /// Writer presence tracking: a flush must not serialize the table while
  /// in-range writers are still inserting (stragglers with smaller
  /// sequence numbers are legal after a switch).
  void BeginWrite() { active_writers_.fetch_add(1, std::memory_order_acquire); }
  void EndWrite() { active_writers_.fetch_sub(1, std::memory_order_release); }
  int active_writers() const {
    return active_writers_.load(std::memory_order_acquire);
  }

  /// Marks the table immutable (a newer table has been installed).
  void MarkImmutable() { immutable_.store(true, std::memory_order_release); }
  bool immutable() const { return immutable_.load(std::memory_order_acquire); }

  /// Returns an iterator over the table's entries (internal keys).
  /// The caller must keep a reference to the MemTable alive.
  Iterator* NewIterator();

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  ~MemTable() = default;  // Private: use Unref().

  KeyComparator comparator_;
  SequenceNumber seq_base_;
  SequenceNumber seq_limit_;
  std::atomic<int> refs_{0};
  std::atomic<uint64_t> num_entries_{0};
  std::atomic<int> active_writers_{0};
  std::atomic<bool> immutable_{false};
  Arena arena_;
  Table table_;
};

}  // namespace dlsm

#endif  // DLSM_CORE_MEMTABLE_H_
