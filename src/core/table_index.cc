#include "src/core/table_index.h"

#include "src/util/coding.h"

namespace dlsm {

// Serialized layout:
//   u8 kind
//   varint32 count
//   count * [ varint32 key_len | key | varint64 offset | varint32 length ]
//   varint32 filter_len | filter bytes

void TableIndex::Builder::Add(const Slice& key, uint64_t offset,
                              uint32_t length) {
  PutVarint32(&entries_, static_cast<uint32_t>(key.size()));
  entries_.append(key.data(), key.size());
  PutVarint64(&entries_, offset);
  PutVarint32(&entries_, length);
  count_++;
}

std::string TableIndex::Builder::Finish() {
  std::string blob;
  blob.push_back(static_cast<char>(kind_));
  PutVarint32(&blob, count_);
  blob.append(entries_);
  PutVarint32(&blob, static_cast<uint32_t>(filter_.size()));
  blob.append(filter_);
  return blob;
}

std::shared_ptr<TableIndex> TableIndex::Parse(std::string blob) {
  auto index = std::shared_ptr<TableIndex>(new TableIndex());
  index->blob_ = std::move(blob);
  const std::string& b = index->blob_;
  Slice input(b);
  if (input.size() < 2) return nullptr;
  uint8_t kind = static_cast<uint8_t>(input[0]);
  if (kind != kPerRecord && kind != kPerBlock) return nullptr;
  index->kind_ = static_cast<Kind>(kind);
  input.remove_prefix(1);
  uint32_t count;
  if (!GetVarint32(&input, &count)) return nullptr;
  index->starts_.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    index->starts_.push_back(
        static_cast<uint32_t>(input.data() - b.data()));
    uint32_t key_len;
    if (!GetVarint32(&input, &key_len) || input.size() < key_len) {
      return nullptr;
    }
    input.remove_prefix(key_len);
    uint64_t offset;
    uint32_t length;
    if (!GetVarint64(&input, &offset) || !GetVarint32(&input, &length)) {
      return nullptr;
    }
  }
  uint32_t filter_len;
  if (!GetVarint32(&input, &filter_len) || input.size() < filter_len) {
    return nullptr;
  }
  index->filter_ = Slice(input.data(), filter_len);
  return index;
}

TableIndex::Entry TableIndex::entry(size_t i) const {
  Entry e;
  const char* p = blob_.data() + starts_[i];
  const char* limit = blob_.data() + blob_.size();
  uint32_t key_len;
  p = GetVarint32Ptr(p, limit, &key_len);
  e.key = Slice(p, key_len);
  p += key_len;
  p = GetVarint64Ptr(p, limit, &e.offset);
  GetVarint32Ptr(p, limit, &e.length);
  return e;
}

size_t TableIndex::Find(const InternalKeyComparator& cmp,
                        const Slice& target) const {
  // Binary search for the first entry with key >= target. For per-block
  // indexes the entry key is the block's *last* key, so this lands on the
  // first block that could contain the target — the same invariant.
  size_t lo = 0, hi = starts_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cmp.Compare(entry(mid).key, target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool TableIndex::KeyMayMatch(const BloomFilterPolicy& policy,
                             const Slice& user_key) const {
  if (filter_.empty()) return true;
  return policy.KeyMayMatch(user_key, filter_);
}

}  // namespace dlsm
