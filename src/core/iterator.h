// Iterator interface over sorted key/value sequences, as in LevelDB.

#ifndef DLSM_CORE_ITERATOR_H_
#define DLSM_CORE_ITERATOR_H_

#include "src/util/slice.h"
#include "src/util/status.h"

namespace dlsm {

/// Iterates a sorted sequence of (internal key, value) pairs.
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;
  /// Requires Valid().
  virtual Slice key() const = 0;
  /// Requires Valid().
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

/// Returns an iterator over an empty sequence.
Iterator* NewEmptyIterator();

/// Returns an empty iterator carrying the given error status.
Iterator* NewErrorIterator(const Status& status);

}  // namespace dlsm

#endif  // DLSM_CORE_ITERATOR_H_
