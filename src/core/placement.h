// Memory-node placement policies (ROADMAP "Multi-memory-node data plane").
//
// When a deployment has several memory nodes, every new SSTable — flush
// output, compaction output, or migration copy — must pick the node whose
// DRAM will hold it. That choice used to be one hard-coded line in the
// cluster wiring (shard s -> node s % m, forever); it is now a strategy
// consulted at install time with the table's shard, level, sequence and
// first key, so tables — not shards — are the unit of placement.
//
// All policies are deterministic pure functions of their context: the
// same seeded workload places the same tables on the same nodes, which is
// what makes the policy-equivalence sweep in placement_test.cc meaningful.

#ifndef DLSM_CORE_PLACEMENT_H_
#define DLSM_CORE_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/util/slice.h"

namespace dlsm {

/// What is known about a table at placement time.
struct PlacementContext {
  int shard = 0;           ///< Owning engine's shard ordinal.
  int level = 0;           ///< Level the table installs into (0 = flush).
  uint64_t table_seq = 0;  ///< Monotonic per-engine table counter.
  Slice first_key;         ///< First user key (empty until known).
};

/// Strategy interface: maps a table to a memory-node slot in [0, nodes).
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Returns the slot (index into the engine's memory-node vector) for a
  /// new table. nodes >= 1.
  virtual int Place(const PlacementContext& ctx, int nodes) const = 0;

  /// Policy name for the dlsm.placement property.
  virtual const char* Name() const = 0;
};

/// Builds the policy selected by the options. Never returns null.
std::unique_ptr<PlacementPolicy> NewPlacementPolicy(const Options& options);

const char* PlacementPolicyKindName(PlacementPolicyKind kind);

}  // namespace dlsm

#endif  // DLSM_CORE_PLACEMENT_H_
