// WriteBatch: a group of updates committed atomically with consecutive
// sequence numbers (paper Sec. II-C: "entries are first written into a
// write batch that are committed all at once").

#ifndef DLSM_CORE_WRITE_BATCH_H_
#define DLSM_CORE_WRITE_BATCH_H_

#include <string>

#include "src/core/dbformat.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dlsm {

class MemTable;

/// An ordered collection of Put/Delete operations.
class WriteBatch {
 public:
  WriteBatch() { Clear(); }

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  /// Number of operations in the batch.
  uint32_t Count() const;

  /// Approximate serialized size.
  size_t ApproximateSize() const { return rep_.size(); }

  /// Visitor interface for replaying a batch.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;
  std::string rep_;  // [count fixed32][records...]
};

/// Internal helpers used by the DB write path.
class WriteBatchInternal {
 public:
  static uint32_t Count(const WriteBatch* batch);

  /// Inserts the batch into mem with sequences starting at base_seq; entry
  /// i gets sequence base_seq + i.
  static Status InsertInto(const WriteBatch* batch, SequenceNumber base_seq,
                           MemTable* mem);
};

}  // namespace dlsm

#endif  // DLSM_CORE_WRITE_BATCH_H_
