#include "src/core/table_reader.h"

#include <string>
#include <vector>

#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/trace.h"

namespace dlsm {

namespace {
/// Models the index-block fetch a port without compute-side index caching
/// pays before every table probe: one remote read of the (per-table)
/// index block. The bytes land in a scratch buffer; only the cost matters.
Status FetchIndexBlock(const RemoteReadPath& rp, const FileMetaData& file) {
  // One index partition per probe (RocksDB's two-level index keeps
  // partitions around 4 KB), not the whole per-table index.
  size_t len = file.index != nullptr ? file.index->blob().size() : 4096;
  if (len > 4096) len = 4096;
  if (len > file.data_len) len = file.data_len;
  if (len == 0) return Status::OK();
  thread_local std::string scratch;
  scratch.resize(len);
  return rp.MgrRead(scratch.data(), file.chunk.addr, file.chunk.rkey, len);
}
}  // namespace

Status RemoteReadPath::MgrRead(void* dst, uint64_t addr, uint32_t rkey,
                               size_t len) const {
  Status s = mgr->Read(dst, addr, rkey, len);
  for (int attempt = 0; !s.ok() && s.IsIOError() && attempt < max_retries;
       attempt++) {
    if (retry_counter != nullptr) {
      retry_counter->fetch_add(1, std::memory_order_relaxed);
    }
    // Recover the errored QP before re-posting. While the memory node is
    // down this fails and the re-read flush-fails immediately; the loop
    // still backs off so exhaustion takes ~max_retries * backoff.
    mgr->ThreadVq()->Recover();
    mgr->env()->SleepNanos(retry_backoff_ns << (attempt < 6 ? attempt : 6));
    s = mgr->Read(dst, addr, rkey, len);
  }
  return s;
}

Status RemoteReadPath::Read(void* dst, uint64_t addr, uint32_t rkey,
                            size_t len) const {
  if (rpc != nullptr && len <= rpc_limit) {
    // Nova-LSM-style server-mediated read: the request crosses the wire,
    // a memory-node worker copies the bytes out of its DRAM (tmpfs), and
    // the reply comes back with a one-sided write.
    std::string args, reply;
    PutFixed64(&args, addr);
    PutFixed64(&args, len);
    DLSM_RETURN_NOT_OK(rpc->Call(remote::RpcType::kReadBlock, args, &reply));
    if (reply.size() != len) {
      return Status::IOError("short server-mediated read");
    }
    memcpy(dst, reply.data(), len);
    return Status::OK();
  }
  if (!extra_copy) {
    return MgrRead(dst, addr, rkey, len);
  }
  // File-system staging copy: the RDMA lands in an FS buffer and is then
  // copied to the caller (the cost the byte-addressable design removes).
  thread_local std::string staging;
  staging.resize(len);
  DLSM_RETURN_NOT_OK(MgrRead(staging.data(), addr, rkey, len));
  memcpy(dst, staging.data(), len);
  return Status::OK();
}

bool SupportsAsyncProbe(const RemoteReadPath& read_path) {
  return read_path.rpc == nullptr && !read_path.extra_copy &&
         !read_path.uncached_index;
}

namespace {

// ---------------------------------------------------------------------------
// Record parsing (byte-addressable layout)
// ---------------------------------------------------------------------------

/// Parses one record at p; returns a pointer past it, or nullptr on
/// corruption. *key/*value point into the input buffer.
const char* ParseRecord(const char* p, const char* limit, Slice* key,
                        Slice* value) {
  uint32_t klen;
  p = GetVarint32Ptr(p, limit, &klen);
  if (p == nullptr || p + klen > limit) return nullptr;
  *key = Slice(p, klen);
  p += klen;
  uint32_t vlen;
  p = GetVarint32Ptr(p, limit, &vlen);
  if (p == nullptr || p + vlen > limit) return nullptr;
  *value = Slice(p, vlen);
  return p + vlen;
}

// ---------------------------------------------------------------------------
// Block iterator (prefix-compressed block with restart points)
// ---------------------------------------------------------------------------

class BlockIter : public Iterator {
 public:
  BlockIter(const InternalKeyComparator* icmp, const char* data,
            uint32_t size)
      : icmp_(icmp), data_(data), size_(size) {
    if (size_ < 4) {
      status_ = Status::Corruption("block too small");
      return;
    }
    num_restarts_ = DecodeFixed32(data_ + size_ - 4);
    if (4 + 4ull * num_restarts_ > size_) {
      status_ = Status::Corruption("bad restart count");
      return;
    }
    restarts_ = size_ - 4 - 4 * num_restarts_;
    current_ = restarts_;
  }

  bool Valid() const override { return current_ < restarts_; }
  Status status() const override { return status_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }

  void SeekToFirst() override {
    if (!status_.ok()) return;
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    if (!status_.ok()) return;
    SeekToRestartPoint(num_restarts_ - 1);
    while (ParseNextKey() && NextEntryOffset() < restarts_) {
    }
  }

  void Seek(const Slice& target) override {
    if (!status_.ok()) return;
    // Binary search over restart points for the last one with key < target.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      uint32_t region_offset = RestartPoint(mid);
      uint32_t shared, non_shared, value_length;
      const char* key_ptr = DecodeEntry(
          data_ + region_offset, data_ + restarts_, &shared, &non_shared,
          &value_length);
      if (key_ptr == nullptr || shared != 0) {
        status_ = Status::Corruption("bad restart entry");
        return;
      }
      Slice mid_key(key_ptr, non_shared);
      if (icmp_->Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    while (ParseNextKey()) {
      if (icmp_->Compare(Slice(key_), target) >= 0) return;
    }
  }

  void Next() override {
    DLSM_CHECK(Valid());
    ParseNextKey();
  }

  void Prev() override {
    DLSM_CHECK(Valid());
    // Back up to the restart point before the current entry, then scan.
    const uint32_t original = current_;
    while (RestartPoint(restart_index_) >= original) {
      if (restart_index_ == 0) {
        current_ = restarts_;  // Before-first.
        return;
      }
      restart_index_--;
    }
    SeekToRestartPoint(restart_index_);
    do {
    } while (ParseNextKey() && NextEntryOffset() < original);
  }

 private:
  uint32_t RestartPoint(uint32_t index) const {
    return DecodeFixed32(data_ + restarts_ + index * 4);
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    current_ = RestartPoint(index);
    value_ = Slice(data_ + current_, 0);
  }

  uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) - data_);
  }

  static const char* DecodeEntry(const char* p, const char* limit,
                                 uint32_t* shared, uint32_t* non_shared,
                                 uint32_t* value_length) {
    p = GetVarint32Ptr(p, limit, shared);
    if (p == nullptr) return nullptr;
    p = GetVarint32Ptr(p, limit, non_shared);
    if (p == nullptr) return nullptr;
    p = GetVarint32Ptr(p, limit, value_length);
    if (p == nullptr) return nullptr;
    if (static_cast<uint32_t>(limit - p) < (*non_shared + *value_length)) {
      return nullptr;
    }
    return p;
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;
    if (p >= limit) {
      current_ = restarts_;
      return false;
    }
    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      status_ = Status::Corruption("bad block entry");
      current_ = restarts_;
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < num_restarts_ &&
           RestartPoint(restart_index_ + 1) < current_) {
      restart_index_++;
    }
    return true;
  }

  const InternalKeyComparator* icmp_;
  const char* data_;
  uint32_t size_;
  uint32_t restarts_ = 0;       // Offset of the restart array.
  uint32_t num_restarts_ = 0;
  uint32_t current_ = 0;        // Offset of the current entry.
  uint32_t restart_index_ = 0;
  std::string key_;
  Slice value_;
  Status status_;
};

// ---------------------------------------------------------------------------
// Remote iterators
// ---------------------------------------------------------------------------

/// Double-buffered sequential window over a remote table's data region.
/// On the plain one-sided read path, every sequential window swap posts
/// the following chunk's READ on a private verb queue before the caller
/// consumes the current one, so chunk k+1 crosses the wire while the CPU
/// drains chunk k. Random repositioning falls back to a synchronous
/// fetch, cancelling any in-flight prefetch (the handle layer discards
/// its completion; no drain stall). Baseline read paths (RPC / staging
/// copy / uncached index) stay fully synchronous through
/// RemoteReadPath::Read. The destructor never blocks: an outstanding
/// prefetch handle cancels itself.
class PrefetchWindow {
 public:
  PrefetchWindow(const RemoteReadPath& read_path, uint64_t base_addr,
                 uint32_t rkey, uint64_t data_len, size_t chunk_bytes)
      : rp_(read_path), base_(base_addr), rkey_(rkey), data_len_(data_len),
        chunk_(chunk_bytes), async_(SupportsAsyncProbe(read_path)) {}

  PrefetchWindow(const PrefetchWindow&) = delete;
  PrefetchWindow& operator=(const PrefetchWindow&) = delete;

  /// Makes [off, off+len) contiguously addressable; *out points at off.
  /// The pointer stays valid until the next Acquire call.
  Status Acquire(uint64_t off, size_t len, const char** out) {
    if (off + len > data_len_) {
      return Status::Corruption("record extends past table data");
    }
    if (Covers(front_off_, front_.size(), off, len)) {
      *out = front_.data() + (off - front_off_);
      return Status::OK();
    }
    if (pending_.valid()) {
      uint64_t got_off = pending_off_;
      size_t got_len = back_.size();
      if (Covers(got_off, got_len, off, len)) {
        trace::TraceSpan prefetch_span("scan_prefetch_wait", "db");
        Status ps = WaitPending();
        prefetch_span.End();
        if (ps.ok()) {
          std::swap(front_, back_);
          front_off_ = got_off;
          PostNext();  // Keep the pipeline primed while the caller parses.
          *out = front_.data() + (off - front_off_);
          return Status::OK();
        }
        if (!ps.IsIOError() || rp_.max_retries == 0) return ps;
        // Transient fault on the prefetched chunk: recover the private
        // queue so later prefetches can flow, then refetch synchronously
        // below through the retrying read path.
        if (rp_.retry_counter != nullptr) {
          rp_.retry_counter->fetch_add(1, std::memory_order_relaxed);
        }
        if (vq_ != nullptr) vq_->Recover();
      } else {
        // The consumer jumped elsewhere; the prefetched bytes are useless.
        // Cancel rather than drain: the handle layer discards the
        // completion, so repositioning pays no stall for the dead READ.
        pending_.Cancel();
      }
    }
    bool forward = off >= front_off_;
    size_t want = chunk_ > len ? chunk_ : len;
    if (off + want > data_len_) want = static_cast<size_t>(data_len_ - off);
    front_.resize(want);
    // Scan fills only touch the cache when Options::cache_scans opted in;
    // by default sequential traffic never competes with the point-read
    // hot set. Keys use the chunk geometry (table, chunk offset).
    BlockCache* cache =
        rp_.cache_scans && rp_.cache_table != 0 ? rp_.cache : nullptr;
    if (cache == nullptr ||
        !cache->Lookup(rp_.cache_table, off, front_.data(), want)) {
      DLSM_RETURN_NOT_OK(rp_.Read(front_.data(), base_ + off, rkey_, want));
      if (cache != nullptr) {
        cache->Insert(rp_.cache_table, off, front_.data(), want);
      }
    }
    front_off_ = off;
    if (forward) PostNext();
    *out = front_.data() + (off - front_off_);
    return Status::OK();
  }

 private:
  static bool Covers(uint64_t win_off, size_t win_len, uint64_t off,
                     size_t len) {
    return win_len > 0 && off >= win_off && off + len <= win_off + win_len;
  }

  void PostNext() {
    if (!async_) return;
    uint64_t off = front_off_ + front_.size();
    if (off >= data_len_) return;
    size_t want = chunk_;
    if (off + want > data_len_) want = static_cast<size_t>(data_len_ - off);
    if (vq_ == nullptr) vq_ = rp_.mgr->CreateExclusiveVq();
    back_.resize(want);
    pending_ = vq_->Read(back_.data(), base_ + off, rkey_, want);
    pending_off_ = off;
  }

  Status WaitPending() {
    Status s = pending_.Wait();
    pending_ = rdma::WrHandle();
    return s;
  }

  RemoteReadPath rp_;
  uint64_t base_;
  uint32_t rkey_;
  uint64_t data_len_;
  size_t chunk_;
  bool async_;
  // Private verb queue: the iterator may outlive probes on the caller
  // thread's queue, and its in-flight chunk must not queue behind them.
  // Declared before pending_ so the handle dies first.
  std::unique_ptr<rdma::VerbQueue> vq_;
  std::string front_, back_;
  uint64_t front_off_ = 0;
  rdma::WrHandle pending_;
  uint64_t pending_off_ = 0;
};

/// Byte-addressable remote iterator: positions through the per-record
/// index; the data region is consumed through a prefetch window.
class RemoteByteTableIterator : public Iterator {
 public:
  RemoteByteTableIterator(const RemoteReadPath& read_path,
                          const InternalKeyComparator& icmp, FileRef file,
                          size_t prefetch)
      : icmp_(icmp), file_(std::move(file)),
        window_(read_path, file_->chunk.addr, file_->chunk.rkey,
                file_->data_len, prefetch < 4096 ? 4096 : prefetch) {}

  bool Valid() const override { return valid_; }
  Status status() const override { return status_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }

  void SeekToFirst() override { Position(0); }
  void SeekToLast() override {
    size_t n = file_->index->num_entries();
    if (n == 0) {
      valid_ = false;
      return;
    }
    Position(n - 1);
  }
  void Seek(const Slice& target) override {
    Position(file_->index->Find(icmp_, target));
  }
  void Next() override {
    DLSM_CHECK(Valid());
    Position(ordinal_ + 1);
  }
  void Prev() override {
    DLSM_CHECK(Valid());
    if (ordinal_ == 0) {
      valid_ = false;
      return;
    }
    Position(ordinal_ - 1);
  }

 private:
  void Position(size_t ordinal) {
    const TableIndex& index = *file_->index;
    if (ordinal >= index.num_entries()) {
      valid_ = false;
      return;
    }
    TableIndex::Entry e = index.entry(ordinal);
    // Sequential chunk prefetch (Sec. VI): one RDMA READ covers many
    // upcoming records, and the window double-buffers the next chunk.
    const char* p = nullptr;
    Status s = window_.Acquire(e.offset, e.length, &p);
    if (!s.ok()) {
      status_ = s;
      valid_ = false;
      return;
    }
    if (ParseRecord(p, p + e.length, &key_, &value_) == nullptr) {
      status_ = Status::Corruption("bad record in table");
      valid_ = false;
      return;
    }
    ordinal_ = ordinal;
    valid_ = true;
  }

  InternalKeyComparator icmp_;
  FileRef file_;
  PrefetchWindow window_;
  size_t ordinal_ = 0;
  bool valid_ = false;
  Slice key_, value_;
  Status status_;
};

/// Block-format remote iterator: per-block index; whole blocks are fetched
/// (optionally several at a time) and unwrapped with a BlockIter.
class RemoteBlockTableIterator : public Iterator {
 public:
  RemoteBlockTableIterator(const RemoteReadPath& read_path,
                           const InternalKeyComparator& icmp, FileRef file,
                           size_t prefetch)
      : read_path_(read_path), icmp_(icmp), file_(std::move(file)),
        window_(read_path, file_->chunk.addr, file_->chunk.rkey,
                file_->data_len, prefetch) {}

  bool Valid() const override { return inner_ != nullptr && inner_->Valid(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return inner_ != nullptr ? inner_->status() : Status::OK();
  }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }

  void SeekToFirst() override {
    MaybeFetchIndex();
    if (!LoadBlock(0)) return;
    inner_->SeekToFirst();
    SkipForwardEmpty();
  }

  void SeekToLast() override {
    MaybeFetchIndex();
    size_t n = file_->index->num_entries();
    if (n == 0 || !LoadBlock(n - 1)) return;
    inner_->SeekToLast();
  }

  void Seek(const Slice& target) override {
    MaybeFetchIndex();
    size_t b = file_->index->Find(icmp_, target);
    if (!LoadBlock(b)) return;
    inner_->Seek(target);
    SkipForwardEmpty();
  }

  void Next() override {
    DLSM_CHECK(Valid());
    inner_->Next();
    SkipForwardEmpty();
  }

  void Prev() override {
    DLSM_CHECK(Valid());
    inner_->Prev();
    while (inner_ != nullptr && !inner_->Valid() && block_ > 0) {
      if (!LoadBlock(block_ - 1)) return;
      inner_->SeekToLast();
    }
  }

 private:
  void SkipForwardEmpty() {
    while (inner_ != nullptr && !inner_->Valid() &&
           block_ + 1 < file_->index->num_entries()) {
      if (!LoadBlock(block_ + 1)) return;
      inner_->SeekToFirst();
    }
  }

  void MaybeFetchIndex() {
    if (!read_path_.uncached_index || index_fetched_) return;
    Status s = FetchIndexBlock(read_path_, *file_);
    if (!s.ok()) status_ = s;
    index_fetched_ = true;
  }

  bool LoadBlock(size_t b) {
    const TableIndex& index = *file_->index;
    if (b >= index.num_entries()) {
      inner_.reset();
      return false;
    }
    TableIndex::Entry e = index.entry(b);
    const char* p = nullptr;
    Status s = window_.Acquire(e.offset, e.length, &p);
    if (!s.ok()) {
      status_ = s;
      inner_.reset();
      return false;
    }
    // Unwrap the block: BlockIter re-materializes keys entry by entry —
    // the copy overhead the byte-addressable layout avoids.
    inner_ = std::make_unique<BlockIter>(&icmp_, p, e.length);
    block_ = b;
    return true;
  }

  RemoteReadPath read_path_;
  InternalKeyComparator icmp_;
  FileRef file_;
  PrefetchWindow window_;
  size_t block_ = 0;
  bool index_fetched_ = false;
  std::unique_ptr<BlockIter> inner_;
  Status status_;
};

// ---------------------------------------------------------------------------
// Local iterators (memory-node side)
// ---------------------------------------------------------------------------

class LocalByteTableIterator : public Iterator {
 public:
  LocalByteTableIterator(const char* data, uint64_t len,
                         const InternalKeyComparator& icmp)
      : data_(data), limit_(data + len), icmp_(icmp) {}

  bool Valid() const override { return valid_; }
  Status status() const override { return status_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }

  void SeekToFirst() override {
    next_ = data_;
    Advance();
  }

  void SeekToLast() override {
    // Forward-only structure: scan to the final record.
    SeekToFirst();
    while (valid_ && next_ < limit_) {
      Advance();
    }
  }

  void Seek(const Slice& target) override {
    // Self-delimiting stream without an index: a single forward scan
    // under the internal-key comparator. Resume from the current record
    // when the target lies ahead; otherwise restart from the front.
    if (!valid_ || icmp_.Compare(key_, target) >= 0) {
      SeekToFirst();
    }
    while (valid_ && icmp_.Compare(key_, target) < 0) {
      Advance();
    }
  }

  void Next() override {
    DLSM_CHECK(Valid());
    Advance();
  }

  void Prev() override {
    DLSM_CHECK_MSG(false, "LocalByteTableIterator is forward-only");
  }

 private:
  void Advance() {
    if (next_ >= limit_) {
      valid_ = false;
      return;
    }
    const char* after = ParseRecord(next_, limit_, &key_, &value_);
    if (after == nullptr) {
      status_ = Status::Corruption("bad record in local table");
      valid_ = false;
      return;
    }
    next_ = after;
    valid_ = true;
  }

  const char* data_;
  const char* limit_;
  InternalKeyComparator icmp_;
  const char* next_ = nullptr;
  bool valid_ = false;
  Slice key_, value_;
  Status status_;
};

class LocalBlockTableIterator : public Iterator {
 public:
  LocalBlockTableIterator(const char* data, uint64_t len,
                          std::shared_ptr<TableIndex> index,
                          const InternalKeyComparator& icmp)
      : data_(data), len_(len), index_(std::move(index)), icmp_(icmp) {}

  bool Valid() const override { return inner_ != nullptr && inner_->Valid(); }
  Status status() const override {
    return inner_ != nullptr ? inner_->status() : Status::OK();
  }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }

  void SeekToFirst() override {
    if (!LoadBlock(0)) return;
    inner_->SeekToFirst();
    SkipForwardEmpty();
  }
  void SeekToLast() override {
    size_t n = index_->num_entries();
    if (n == 0 || !LoadBlock(n - 1)) return;
    inner_->SeekToLast();
  }
  void Seek(const Slice& target) override {
    size_t b = index_->Find(icmp_, target);
    if (!LoadBlock(b)) return;
    inner_->Seek(target);
    SkipForwardEmpty();
  }
  void Next() override {
    DLSM_CHECK(Valid());
    inner_->Next();
    SkipForwardEmpty();
  }
  void Prev() override {
    DLSM_CHECK(Valid());
    inner_->Prev();
    while (inner_ != nullptr && !inner_->Valid() && block_ > 0) {
      if (!LoadBlock(block_ - 1)) return;
      inner_->SeekToLast();
    }
  }

 private:
  void SkipForwardEmpty() {
    while (inner_ != nullptr && !inner_->Valid() &&
           block_ + 1 < index_->num_entries()) {
      if (!LoadBlock(block_ + 1)) return;
      inner_->SeekToFirst();
    }
  }

  bool LoadBlock(size_t b) {
    if (b >= index_->num_entries()) {
      inner_.reset();
      return false;
    }
    TableIndex::Entry e = index_->entry(b);
    DLSM_CHECK(e.offset + e.length <= len_);
    inner_ = std::make_unique<BlockIter>(&icmp_, data_ + e.offset, e.length);
    block_ = b;
    return true;
  }

  const char* data_;
  uint64_t len_;
  std::shared_ptr<TableIndex> index_;
  InternalKeyComparator icmp_;
  size_t block_ = 0;
  std::unique_ptr<BlockIter> inner_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Point lookup
// ---------------------------------------------------------------------------

Status TableProbePrepare(const InternalKeyComparator& icmp,
                         const BloomFilterPolicy& bloom,
                         const FileMetaData& file, const LookupKey& lkey,
                         TableProbe* probe, bool* skipped_by_bloom) {
  probe->need_read = false;
  probe->definitive = false;
  probe->file = &file;
  if (skipped_by_bloom != nullptr) *skipped_by_bloom = false;
  if (file.index == nullptr) {
    return Status::Corruption("table has no cached index");
  }
  const TableIndex& index = *file.index;

  // Bloom filters skip remote reads for absent keys (Sec. III).
  if (!index.KeyMayMatch(bloom, lkey.user_key())) {
    if (skipped_by_bloom != nullptr) *skipped_by_bloom = true;
    return Status::OK();
  }

  size_t pos = index.Find(icmp, lkey.internal_key());
  if (pos >= index.num_entries()) {
    return Status::OK();
  }
  TableIndex::Entry e = index.entry(pos);
  if (index.kind() == TableIndex::kPerRecord) {
    if (icmp.user_comparator()->Compare(ExtractUserKey(e.key),
                                        lkey.user_key()) != 0) {
      return Status::OK();  // Next entry is a different user key.
    }
    // The cached index already proved a visible version lives here, so
    // the read's outcome settles the whole lookup (newest-wins harvest).
    probe->definitive = true;
  }
  probe->need_read = true;
  probe->read_off = e.offset;
  probe->buf.assign(e.length, '\0');
  probe->index_key = e.key;
  return Status::OK();
}

Status TableProbeFinish(const InternalKeyComparator& icmp,
                        const LookupKey& lkey, TableProbe* probe,
                        TableLookupResult* result, std::string* value) {
  *result = TableLookupResult::kNotPresent;
  if (!probe->need_read) {
    return Status::OK();
  }
  const TableIndex& index = *probe->file->index;

  if (index.kind() == TableIndex::kPerRecord) {
    Slice ikey, v;
    if (ParseRecord(probe->buf.data(), probe->buf.data() + probe->buf.size(),
                    &ikey, &v) == nullptr ||
        ikey != probe->index_key) {
      return Status::Corruption("record/index mismatch");
    }
    ParsedInternalKey parsed;
    if (!ParseInternalKey(ikey, &parsed)) {
      return Status::Corruption("bad internal key in table");
    }
    if (parsed.type == kTypeDeletion) {
      *result = TableLookupResult::kDeleted;
    } else {
      value->assign(v.data(), v.size());
      *result = TableLookupResult::kFound;
    }
    return Status::OK();
  }

  // Block layout: unwrap the fetched block.
  BlockIter iter(&icmp, probe->buf.data(),
                 static_cast<uint32_t>(probe->buf.size()));
  iter.Seek(lkey.internal_key());
  if (!iter.Valid()) {
    return iter.status();
  }
  if (icmp.user_comparator()->Compare(ExtractUserKey(iter.key()),
                                      lkey.user_key()) != 0) {
    return Status::OK();
  }
  ParsedInternalKey parsed;
  if (!ParseInternalKey(iter.key(), &parsed)) {
    return Status::Corruption("bad internal key in block");
  }
  if (parsed.type == kTypeDeletion) {
    *result = TableLookupResult::kDeleted;
  } else {
    Slice v = iter.value();
    value->assign(v.data(), v.size());
    *result = TableLookupResult::kFound;
  }
  return Status::OK();
}

Status TableGet(const RemoteReadPath& read_path,
                const InternalKeyComparator& icmp,
                const BloomFilterPolicy& bloom, const FileMetaData& file,
                const LookupKey& lkey, TableLookupResult* result,
                std::string* value, bool* skipped_by_bloom) {
  *result = TableLookupResult::kNotPresent;
  TableProbe probe;
  bool bloom_skip = false;
  DLSM_RETURN_NOT_OK(
      TableProbePrepare(icmp, bloom, file, lkey, &probe, &bloom_skip));
  if (skipped_by_bloom != nullptr) *skipped_by_bloom = bloom_skip;
  // Ports without compute-side index caching pay the index-block fetch on
  // every bloom-passing probe, whether or not the data read happens.
  if (read_path.uncached_index && !bloom_skip) {
    DLSM_RETURN_NOT_OK(FetchIndexBlock(read_path, file));
  }
  if (!probe.need_read) {
    return Status::OK();
  }
  // Compute-side cache: a hit hands back the exact bytes the READ below
  // would fetch, eliding the fabric round trip (and, for baselines, the
  // RPC / staging copy as well).
  BlockCache* cache = read_path.cache;
  if (cache != nullptr && file.number != 0 &&
      cache->Lookup(file.number, probe.read_off, probe.buf.data(),
                    probe.buf.size())) {
    return TableProbeFinish(icmp, lkey, &probe, result, value);
  }
  // One RDMA READ of exactly the record (byte-addressability payoff), or
  // of the whole enclosing block under the block layout.
  if (cache != nullptr) {
    trace::TraceSpan fill_span("cache_miss_fill", "db");
    Status rs = read_path.Read(probe.buf.data(),
                               file.chunk.addr + probe.read_off,
                               file.chunk.rkey, probe.buf.size());
    fill_span.End();
    DLSM_RETURN_NOT_OK(rs);
    if (file.number != 0) {
      cache->Insert(file.number, probe.read_off, probe.buf.data(),
                    probe.buf.size());
    }
  } else {
    DLSM_RETURN_NOT_OK(read_path.Read(probe.buf.data(),
                                      file.chunk.addr + probe.read_off,
                                      file.chunk.rkey, probe.buf.size()));
  }
  return TableProbeFinish(icmp, lkey, &probe, result, value);
}

Iterator* NewRemoteTableIterator(const RemoteReadPath& read_path,
                                 const InternalKeyComparator& icmp,
                                 FileRef file, size_t prefetch_bytes) {
  if (file->index == nullptr) {
    return NewErrorIterator(Status::Corruption("table has no cached index"));
  }
  // Stamp the owning table onto the iterator's private read-path copy so
  // scan-fill cache entries (when cache_scans is on) carry the right key.
  RemoteReadPath rp = read_path;
  rp.cache_table = file->number;
  if (file->index->kind() == TableIndex::kPerRecord) {
    return new RemoteByteTableIterator(rp, icmp, std::move(file),
                                       prefetch_bytes);
  }
  return new RemoteBlockTableIterator(rp, icmp, std::move(file),
                                      prefetch_bytes);
}

Iterator* NewLocalByteTableIterator(const char* data, uint64_t data_len,
                                    const InternalKeyComparator& icmp) {
  return new LocalByteTableIterator(data, data_len, icmp);
}

Iterator* NewLocalBlockTableIterator(const char* data, uint64_t data_len,
                                     std::shared_ptr<TableIndex> index,
                                     const InternalKeyComparator& icmp) {
  return new LocalBlockTableIterator(data, data_len, std::move(index), icmp);
}

}  // namespace dlsm
