#include "src/core/memory_node_service.h"

#include "src/core/compaction.h"
#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/trace.h"

namespace dlsm {

namespace {
constexpr size_t kChunksPerRegion = 64;
}  // namespace

MemoryNodeService::MemoryNodeService(rdma::Fabric* fabric, rdma::Node* node,
                                     int compaction_workers)
    : fabric_(fabric),
      node_(node),
      workers_(compaction_workers),
      icmp_(BytewiseComparator()) {
  server_ = std::make_unique<remote::RpcServer>(fabric_, node_, workers_);
  server_->set_handler(
      [this](uint8_t type, const Slice& args, std::string* reply) {
        Handle(type, args, reply);
      });
}

MemoryNodeService::~MemoryNodeService() { Stop(); }

void MemoryNodeService::Start() { server_->Start(); }

void MemoryNodeService::Stop() { server_->Stop(); }

remote::SlabAllocator* MemoryNodeService::compaction_allocator(
    size_t chunk_size) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto& list = compaction_allocs_[chunk_size];
  for (auto& a : list) {
    if (a->allocated_chunks() < a->capacity_chunks()) return a.get();
  }
  // Grow: carve a fresh region out of this node's DRAM and register it so
  // compute nodes can read the tables it will hold.
  size_t region = chunk_size * kChunksPerRegion;
  char* base = node_->AllocDram(region);
  DLSM_CHECK_MSG(base != nullptr, "memory node DRAM exhausted");
  rdma::MemoryRegion mr = fabric_->RegisterMemory(node_, base, region);
  list.push_back(
      std::make_unique<remote::SlabAllocator>(mr, chunk_size, node_->id()));
  return list.back().get();
}

void MemoryNodeService::Handle(uint8_t type, const Slice& args,
                               std::string* reply) {
  switch (type) {
    case remote::RpcType::kAllocFlushRegion:
      HandleAllocFlushRegion(args, reply);
      break;
    case remote::RpcType::kFreeBatch:
      HandleFreeBatch(args, reply);
      break;
    case remote::RpcType::kCompaction:
      HandleCompaction(args, reply);
      break;
    case remote::RpcType::kStats:
      HandleStats(reply);
      break;
    case remote::RpcType::kReadBlock:
      HandleReadBlock(args, reply);
      break;
    default:
      DLSM_CHECK_MSG(false, "unknown RPC type at memory node");
  }
}

void MemoryNodeService::HandleAllocFlushRegion(const Slice& args,
                                               std::string* reply) {
  // args: fixed64 region_size. Hands the compute node a registered region
  // it will manage itself (paper Sec. V-A: "one region is controlled ...
  // by the compute node for regular MemTable flushing").
  DLSM_CHECK(args.size() >= 8);
  uint64_t size = DecodeFixed64(args.data());
  char* base = node_->AllocDram(size);
  if (base == nullptr) {
    PutFixed64(reply, 0);  // Out of memory signalled by addr == 0.
    PutFixed32(reply, 0);
    return;
  }
  rdma::MemoryRegion mr = fabric_->RegisterMemory(node_, base, size);
  PutFixed64(reply, mr.addr);
  PutFixed32(reply, mr.rkey);
}

void MemoryNodeService::HandleFreeBatch(const Slice& args,
                                        std::string* reply) {
  std::vector<uint64_t> addrs;
  DLSM_CHECK(remote::DecodeFreeBatch(args, &addrs).ok());
  uint32_t freed = 0;
  for (uint64_t addr : addrs) {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    for (auto& [chunk_size, list] : compaction_allocs_) {
      bool done = false;
      for (auto& a : list) {
        if (a->FreeByAddr(addr).ok()) {
          freed++;
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }
  PutFixed32(reply, freed);
}

void MemoryNodeService::HandleCompaction(const Slice& args,
                                         std::string* reply) {
  // Nested inside the server's generic rpc_handle span: the near-data
  // merge itself, on the memory node's worker track.
  trace::TraceSpan span("exec_compaction", "compaction");
  CompactionTask task;
  if (!CompactionTask::Deserialize(args, &task)) {
    DLSM_CHECK_MSG(false, "malformed compaction task");
  }
  span.arg("inputs", task.inputs.size());
  DLSM_CHECK(task.output_chunk_size >= task.target_file_size);

  auto alloc_chunk = [this, &task]() {
    return compaction_allocator(task.output_chunk_size)->Allocate();
  };
  auto free_chunk = [this, &task](const remote::RemoteChunk& c) {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    for (auto& a : compaction_allocs_[task.output_chunk_size]) {
      if (a->FreeByAddr(c.addr).ok()) return;
    }
  };

  CompactionResult result;
  Status s = ExecuteCompactionTask(fabric_->env(), task, icmp_, alloc_chunk,
                                   free_chunk, node_->id(), &result);
  // Reply: u8 ok | payload (result or error text).
  if (s.ok()) {
    reply->push_back(1);
    reply->append(result.Serialize());
  } else {
    reply->push_back(0);
    reply->append(s.ToString());
  }
}

void MemoryNodeService::HandleReadBlock(const Slice& args,
                                        std::string* reply) {
  // args: fixed64 addr | fixed64 len. The server-side copy out of "tmpfs"
  // is the real cost Nova-LSM-style reads pay on the weak memory node.
  DLSM_CHECK(args.size() >= 16);
  uint64_t addr = DecodeFixed64(args.data());
  uint64_t len = DecodeFixed64(args.data() + 8);
  auto base = reinterpret_cast<uint64_t>(node_->dram_base());
  DLSM_CHECK_MSG(addr >= base && addr + len <= base + node_->dram_size(),
                 "read-block outside node DRAM");
  reply->assign(reinterpret_cast<const char*>(addr), len);
}

void MemoryNodeService::HandleStats(std::string* reply) {
  PutFixed64(reply, server_->worker_busy_ns());
  PutFixed32(reply, static_cast<uint32_t>(workers_));
}

}  // namespace dlsm
