// DBIter: turns the internal-key merged stream (MemTables + SSTables) into
// the user-facing iterator — newest visible version per user key, hiding
// tombstones and out-of-snapshot entries.

#ifndef DLSM_CORE_DB_ITER_H_
#define DLSM_CORE_DB_ITER_H_

#include <functional>

#include "src/core/dbformat.h"
#include "src/core/iterator.h"

namespace dlsm {

/// Wraps internal_iter (owned). cleanup runs at destruction (releases
/// MemTable references and the pinned version).
Iterator* NewDBIterator(const InternalKeyComparator* icmp,
                        Iterator* internal_iter, SequenceNumber snapshot,
                        std::function<void()> cleanup);

}  // namespace dlsm

#endif  // DLSM_CORE_DB_ITER_H_
