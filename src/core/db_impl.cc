#include "src/core/db_impl.h"

#include <algorithm>

#include "src/core/db_iter.h"
#include "src/core/merger.h"
#include "src/core/table_reader.h"
#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/trace.h"

namespace dlsm {

namespace {

constexpr int kGcBatchSize = 32;

class SnapshotImpl : public Snapshot {
 public:
  explicit SnapshotImpl(uint64_t seq) : seq_(seq) {}
  uint64_t sequence() const override { return seq_; }

 private:
  uint64_t seq_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Status DLsmDB::Open(const Options& options, const DbDeps& deps, DB** dbptr) {
  *dbptr = nullptr;
  if (options.env == nullptr || deps.fabric == nullptr ||
      deps.compute == nullptr ||
      (deps.memory == nullptr && deps.memories.empty())) {
    return Status::InvalidArgument("missing env/fabric/node wiring");
  }
  for (MemoryNodeService* m : deps.memories) {
    if (m == nullptr) {
      return Status::InvalidArgument("null memory node in deps.memories");
    }
  }
  if (!deps.shared_rpcs.empty() &&
      deps.shared_rpcs.size() != deps.memories.size()) {
    return Status::InvalidArgument(
        "deps.shared_rpcs must parallel deps.memories");
  }
  auto db = std::unique_ptr<DLsmDB>(new DLsmDB(options, deps));
  DLSM_RETURN_NOT_OK(db->Init());
  *dbptr = db.release();
  return Status::OK();
}

DLsmDB::DLsmDB(const Options& options, const DbDeps& deps)
    : options_(options),
      deps_(deps),
      env_(options.env),
      icmp_(options.comparator),
      bloom_(options.bloom_bits_per_key),
      mig_mu_(options.env),
      mig_cv_(options.env, &mig_mu_),
      telem_mu_(options.env),
      telem_cv_(options.env, &telem_mu_),
      mem_mu_(options.env),
      backpressure_cv_(options.env, &mem_mu_),
      comp_mu_(options.env),
      comp_cv_(options.env, &comp_mu_),
      snap_mu_(options.env) {}

uint64_t DLsmDB::SeqRange() const {
  if (options_.memtable_seq_range != 0) return options_.memtable_seq_range;
  uint64_t derived = options_.memtable_size / options_.estimated_entry_size;
  return derived < 1024 ? 1024 : derived;
}

Status DLsmDB::Init() {
  // Normalize the one-node and many-node deps forms into nodes_: slot i of
  // this vector is what FileMetaData::memory_node indexes.
  std::vector<MemoryNodeService*> services = deps_.memories;
  if (services.empty()) services.push_back(deps_.memory);
  std::vector<remote::RpcClient*> shared(services.size(), nullptr);
  if (!deps_.shared_rpcs.empty()) {
    shared = deps_.shared_rpcs;
  } else if (deps_.shared_rpc != nullptr) {
    shared[0] = deps_.shared_rpc;
  }

  placement_ = NewPlacementPolicy(options_);
  home_ = services.size() > 1
              ? static_cast<size_t>(options_.placement_shard) % services.size()
              : 0;
  slab_size_ = options_.sstable_slab_size != 0
                   ? options_.sstable_slab_size
                   : options_.sstable_size + options_.sstable_size / 2;
  const size_t growth = options_.flush_region_growth != 0
                            ? options_.flush_region_growth
                            : options_.flush_region_size;

  if (options_.block_cache_size > 0) {
    block_cache_ = std::make_unique<BlockCache>(options_.block_cache_size,
                                                options_.cache_shards,
                                                options_.cache_admission);
  }

  nodes_.resize(services.size());
  read_paths_.resize(services.size());
  gc_batches_.resize(services.size());
  for (size_t i = 0; i < services.size(); i++) {
    MemoryNodeState& n = nodes_[i];
    n.service = services[i];
    n.mgr = std::make_unique<rdma::RdmaManager>(deps_.fabric, deps_.compute,
                                                n.service->node());
    if (shared[i] != nullptr) {
      n.rpc = shared[i];
    } else {
      n.owned_rpc = std::make_unique<remote::RpcClient>(
          deps_.fabric, deps_.compute, n.service->rpc_server());
      n.rpc = n.owned_rpc.get();
    }
    if (options_.rpc_timeout_ns > 0) {
      // Shared clients get the same policy from every shard (same Options),
      // so the redundant installs are harmless.
      remote::RpcPolicy policy;
      policy.timeout_ns = options_.rpc_timeout_ns;
      policy.max_retries = options_.rpc_max_retries;
      policy.retry_backoff_ns = options_.rpc_retry_backoff_ns;
      n.rpc->set_policy(policy);
    }

    // Growable per-node arena (paper Sec. V-A): each grow call acquires a
    // compute-controlled region from that node via the general-purpose
    // RPC. Regions beyond the first are provisioned lazily, when
    // placement first routes a table (or growth) there.
    remote::RpcClient* rpc = n.rpc;
    const uint32_t fabric_id = n.service->node()->id();
    n.arena = std::make_unique<remote::RemoteArena>(
        slab_size_, deps_.compute->id(), growth,
        [rpc, fabric_id](size_t bytes, rdma::MemoryRegion* region) -> Status {
          std::string args, reply;
          PutFixed64(&args, bytes);
          DLSM_RETURN_NOT_OK(
              rpc->Call(remote::RpcType::kAllocFlushRegion, args, &reply));
          if (reply.size() < 12) {
            return Status::Corruption("bad alloc-region reply");
          }
          region->addr = DecodeFixed64(reply.data());
          region->rkey = DecodeFixed32(reply.data() + 8);
          region->length = bytes;
          region->node_id = fabric_id;
          return Status::OK();  // addr == 0: node out of memory (no grow).
        });

    RemoteReadPath& rp = read_paths_[i];
    rp.mgr = n.mgr.get();
    rp.rpc = options_.reads_via_rpc ? n.rpc : nullptr;
    rp.extra_copy = options_.extra_io_copy;
    rp.uncached_index = !options_.cache_index_blocks;
    rp.max_retries = options_.rdma_max_retries;
    rp.retry_backoff_ns = options_.rdma_retry_backoff_ns;
    rp.retry_counter = &stat_read_retries_;
    if (block_cache_ != nullptr) {
      rp.cache = block_cache_.get();
      rp.cache_scans = options_.cache_scans;
    }
  }
  router_ = ReadRouter{read_paths_.data(), read_paths_.size()};
  mgr_ = nodes_[home_].mgr.get();
  rpc_ = nodes_[home_].rpc;

  // Seed the home node's arena eagerly so Open fails fast (and loudly)
  // when the memory node cannot provision even one flush region.
  {
    std::string args, reply;
    PutFixed64(&args, options_.flush_region_size);
    DLSM_RETURN_NOT_OK(
        rpc_->Call(remote::RpcType::kAllocFlushRegion, args, &reply));
    if (reply.size() < 12) return Status::Corruption("bad alloc-region reply");
    uint64_t region_addr = DecodeFixed64(reply.data());
    if (region_addr == 0) {
      return Status::OutOfMemory("memory node cannot provision flush region");
    }
    rdma::MemoryRegion region;
    region.addr = region_addr;
    region.rkey = DecodeFixed32(reply.data() + 8);
    region.length = options_.flush_region_size;
    region.node_id = nodes_[home_].service->node()->id();
    nodes_[home_].arena->AddRegion(region);
  }

  if (block_cache_ != nullptr) {
    // Fail closed across memory-node faults: while any of our memory
    // nodes is crashed the cache refuses to serve (and drops its
    // contents), so a cached read can never succeed where the fabric
    // read would fail. Refcounted: the cache comes back online only when
    // every crashed node has restarted.
    std::vector<rdma::Node*> memory_nodes;
    for (const MemoryNodeState& n : nodes_) {
      memory_nodes.push_back(n.service->node());
    }
    crash_listener_id_ = deps_.fabric->AddCrashListener(
        [this, memory_nodes](rdma::Node* node, bool crashed) {
          for (rdma::Node* m : memory_nodes) {
            if (node != m) continue;
            int before = crashed_memory_nodes_.fetch_add(crashed ? 1 : -1,
                                                         std::memory_order_acq_rel);
            block_cache_->set_offline(crashed ? true : before > 1);
            break;
          }
        });
  }

  if (options_.write_path == WritePath::kWriterQueue) {
    write_mu_ = std::make_unique<Mutex>(env_);
  }

  versions_ = std::make_unique<VersionSet>(&icmp_, &options_);

  if (deps_.shared_flush_pool != nullptr) {
    flush_pool_ = deps_.shared_flush_pool;
  } else {
    owned_flush_pool_ = std::make_unique<ThreadPool>(
        env_, deps_.compute->env_node(), options_.flush_threads, "flush");
    flush_pool_ = owned_flush_pool_.get();
  }

  // Initial MemTable covering the first sequence range.
  MemTable* mem;
  if (options_.switch_policy == MemTableSwitchPolicy::kSeqRange) {
    mem = new MemTable(icmp_, 1, 1 + SeqRange());
  } else {
    mem = new MemTable(icmp_, 0, kMaxSequenceNumber);
  }
  mem->Ref();
  mem_.store(mem, std::memory_order_release);

  for (int i = 0; i < options_.compaction_scheduler_threads; i++) {
    coordinators_.push_back(env_->StartThread(
        deps_.compute->env_node(), "compaction-coordinator",
        [this] { CompactionCoordinatorLoop(); }));
  }

  if (options_.placement_rebalance && nodes_.size() > 1) {
    migrator_ = env_->StartThread(deps_.compute->env_node(), "rebalancer",
                                  [this] { RebalanceLoop(); });
    has_migrator_ = true;
  }

  SetupTelemetry();
  return Status::OK();
}

DLsmDB::~DLsmDB() { Close(); }

// ---------------------------------------------------------------------------
// Write path (Sec. IV)
// ---------------------------------------------------------------------------

Status DLsmDB::Put(const WriteOptions& options, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DLsmDB::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DLsmDB::Write(const WriteOptions& options, WriteBatch* batch) {
  (void)options;
  trace::TraceOp span("Write", "db");
  span.arg("entries", WriteBatchInternal::Count(batch));
  DLSM_RETURN_NOT_OK(BgError());
  if (options_.write_path == WritePath::kWriterQueue) {
    return WriteQueued(batch);
  }
  return WriteInternal(batch);
}

Status DLsmDB::WriteInternal(WriteBatch* batch) {
  const uint32_t n = WriteBatchInternal::Count(batch);
  if (n == 0) return Status::OK();

  bool have_seq = false;
  SequenceNumber seq_base = 0;
  for (;;) {
    MemTable* cur = mem_.load(std::memory_order_acquire);
    cur->BeginWrite();
    if (cur->immutable()) {
      // Lost a switch race; the new table is (or is about to be) current.
      cur->EndWrite();
      env_->MaybeYield();
      continue;
    }
    if (!have_seq) {
      // Atomic sequence allocation — the only synchronization on the hot
      // path (Fig. 3). BeginWrite precedes allocation, which guarantees a
      // flusher can never seal this table between our range check and our
      // insert (see HandleSwitch).
      seq_base = sequence_.fetch_add(n, std::memory_order_acq_rel) + 1;
      have_seq = true;
    }
    if (cur->AcceptsSequence(seq_base)) {
      Status s = WriteBatchInternal::InsertInto(batch, seq_base, cur);
      cur->EndWrite();
      stat_writes_.fetch_add(n, std::memory_order_relaxed);
      if (options_.switch_policy == MemTableSwitchPolicy::kDoubleCheckedSize &&
          cur->ApproximateMemoryUsage() >= options_.memtable_size) {
        // Naive policy: double-checked locking on the size limit.
        MutexLock l(&mem_mu_);
        if (mem_.load(std::memory_order_acquire) == cur &&
            cur->ApproximateMemoryUsage() >= options_.memtable_size) {
          SwitchMemTableLocked();
        }
      }
      return s;
    }
    cur->EndWrite();
    if (seq_base >= cur->seq_limit()) {
      DLSM_RETURN_NOT_OK(HandleSwitch(seq_base));
      // Retry; the new current table's range covers seq_base (unless
      // further switches raced past it, handled below).
    } else {
      // Our sequence landed behind the current table's range because other
      // writers pushed multiple switches while we were descheduled.
      // Discard the stale sequence numbers (gaps are harmless) and
      // reallocate — this keeps "newer version in newer table" absolute.
      have_seq = false;
    }
  }
}

Status DLsmDB::WriteAtSequence(WriteBatch* batch, SequenceNumber seq_base,
                               uint32_t n, bool* reallocated) {
  if (reallocated != nullptr) *reallocated = false;
  if (n == 0) return Status::OK();
  for (;;) {
    MemTable* cur = mem_.load(std::memory_order_acquire);
    cur->BeginWrite();
    if (cur->immutable()) {
      cur->EndWrite();
      env_->MaybeYield();
      continue;
    }
    if (cur->AcceptsSequence(seq_base)) {
      Status s = WriteBatchInternal::InsertInto(batch, seq_base, cur);
      cur->EndWrite();
      stat_writes_.fetch_add(n, std::memory_order_relaxed);
      if (options_.switch_policy == MemTableSwitchPolicy::kDoubleCheckedSize &&
          cur->ApproximateMemoryUsage() >= options_.memtable_size) {
        MutexLock l(&mem_mu_);
        if (mem_.load(std::memory_order_acquire) == cur &&
            cur->ApproximateMemoryUsage() >= options_.memtable_size) {
          SwitchMemTableLocked();
        }
      }
      return s;
    }
    cur->EndWrite();
    if (seq_base >= cur->seq_limit()) {
      DLSM_RETURN_NOT_OK(HandleSwitch(seq_base));
    } else {
      // The pre-allocated base landed behind the current table's range
      // (a switch burst or a Flush range burn overtook the group window):
      // discard it and draw a fresh one — gaps are harmless, and this
      // keeps "newer version in newer table" absolute, exactly as the
      // reallocation in WriteInternal does.
      seq_base = sequence_.fetch_add(n, std::memory_order_acq_rel) + 1;
      if (reallocated != nullptr) *reallocated = true;
    }
  }
}

/// A parked writer in the RocksDB-style queue.
struct DLsmDB::QueuedWriter {
  QueuedWriter(Env* env, Mutex* mu) : cv(env, mu) {}
  WriteBatch* batch = nullptr;
  bool done = false;
  Status status;
  CondVar cv;
};

Status DLsmDB::WriteQueued(WriteBatch* batch) {
  QueuedWriter w(env_, write_mu_.get());
  w.batch = batch;

  write_mu_->Lock();
  write_queue_.push_back(&w);
  while (!w.done && &w != write_queue_.front()) {
    w.cv.Wait();
  }
  if (w.done) {
    write_mu_->Unlock();
    return w.status;
  }

  // Queue head: commit a group (RocksDB group commit). The group is built
  // under the mutex; the inserts run outside it, then the group is retired.
  std::vector<QueuedWriter*> group;
  size_t group_bytes = 0;
  for (QueuedWriter* qw : write_queue_) {
    group.push_back(qw);
    group_bytes += qw->batch->ApproximateSize();
    if (group_bytes > (1 << 20)) break;
  }
  write_mu_->Unlock();

  if (options_.async_write && group.size() > 1) {
    // Group sequence batching (the sequence-allocation analogue of the
    // read path's doorbell waves): one fetch-add covers the whole group,
    // then each batch routes at its own sub-base. Queue order fixes the
    // sub-bases, so commit order matches arrival order exactly as in the
    // one-fetch-add-per-batch path.
    uint64_t total = 0;
    for (QueuedWriter* qw : group) {
      total += WriteBatchInternal::Count(qw->batch);
    }
    SequenceNumber base =
        total > 0 ? sequence_.fetch_add(total, std::memory_order_acq_rel) + 1
                  : 0;
    bool window_valid = total > 0;
    for (QueuedWriter* qw : group) {
      uint32_t n = WriteBatchInternal::Count(qw->batch);
      if (window_valid) {
        bool reallocated = false;
        qw->status = WriteAtSequence(qw->batch, base, n, &reallocated);
        base += n;
        // A reallocation jumped past the rest of the window; if later
        // members kept their (now lower) sub-bases, a later write could
        // commit below an earlier one and lose last-writer-wins within
        // the group. Fall back to fresh allocation for the remainder.
        if (reallocated) window_valid = false;
      } else {
        qw->status = WriteInternal(qw->batch);
      }
    }
  } else {
    for (QueuedWriter* qw : group) {
      qw->status = WriteInternal(qw->batch);
    }
  }

  write_mu_->Lock();
  for (QueuedWriter* qw : group) {
    DLSM_CHECK(write_queue_.front() == qw);
    write_queue_.pop_front();
    if (qw != &w) {
      qw->done = true;
      qw->cv.Signal();
    }
  }
  if (!write_queue_.empty()) {
    write_queue_.front()->cv.Signal();  // Promote the next leader.
  }
  write_mu_->Unlock();
  return w.status;
}

Status DLsmDB::HandleSwitch(SequenceNumber seq) {
  MutexLock l(&mem_mu_);
  MemTable* cur = mem_.load(std::memory_order_acquire);
  while (seq >= cur->seq_limit() && !shutdown_.load()) {
    // Backpressure before installing a new table: too many immutables
    // (flushing can't keep up) or L0 at the stop trigger (compaction
    // can't keep up) — the paper's write stalls. Stall time is charged as
    // the union of the concurrent writers' intervals (state under
    // mem_mu_): the first writer to park opens the interval, the last to
    // leave closes it. Per-writer timing would add the same wall-clock
    // window once per stalled writer, overstating stall_ns past elapsed
    // time.
    bool stalled = false;
    while (!shutdown_.load() &&
           !has_bg_error_.load(std::memory_order_acquire) &&
           (static_cast<int>(imms_.size()) >= options_.max_immutables ||
            versions_->NeedsStall())) {
      if (!stalled) {
        stalled = true;
        if (stalled_writers_++ == 0) stall_since_ = env_->NowNanos();
      }
      backpressure_cv_.TimedWait(2'000'000);  // 2 ms, re-check triggers.
    }
    if (stalled && --stalled_writers_ == 0) {
      uint64_t stall_end = env_->NowNanos();
      stat_stall_ns_.fetch_add(stall_end - stall_since_,
                               std::memory_order_relaxed);
      // One span per union interval (the last leaving writer closes it),
      // matching how stall_ns is charged.
      trace::Tracer::EmitComplete("write_stall", "db", stall_since_,
                                  stall_end - stall_since_);
    }
    // Fail closed instead of stalling forever on background work that can
    // no longer make progress.
    DLSM_RETURN_NOT_OK(BgError());
    cur = mem_.load(std::memory_order_acquire);
    if (seq < cur->seq_limit()) break;  // Another writer switched for us.
    SwitchMemTableLocked();
    cur = mem_.load(std::memory_order_acquire);
  }
  return Status::OK();
}

void DLsmDB::SwitchMemTableLocked() {
  MemTable* old = mem_.load(std::memory_order_acquire);
  SequenceNumber base, limit;
  if (options_.switch_policy == MemTableSwitchPolicy::kSeqRange) {
    base = old->seq_limit();
    limit = base + SeqRange();
  } else {
    base = 0;
    limit = kMaxSequenceNumber;
  }
  MemTable* next = new MemTable(icmp_, base, limit);
  next->Ref();
  old->MarkImmutable();
  imms_.push_back(old);  // Transfers our reference.
  mem_.store(next, std::memory_order_release);
  ScheduleFlushLocked(old);
}

void DLsmDB::ScheduleFlushLocked(MemTable* mem) {
  pending_flushes_++;
  uint64_t l0_order = mem->seq_base();
  flush_pool_->Submit([this, mem, l0_order] { FlushJob(mem, l0_order); });
}

// ---------------------------------------------------------------------------
// Flush (Sec. X-C)
// ---------------------------------------------------------------------------

void DLsmDB::FlushJob(MemTable* mem, uint64_t l0_order) {
  trace::TraceSpan span("flush", "flush");
  span.arg("entries", mem->num_entries());
  telemetry::WatchdogScope wd(watchdog_.get(), "flush");
  // Wait out in-flight writers still inserting into this table.
  while (mem->active_writers() > 0) {
    env_->YieldToOthers();
  }

  Status s;
  std::vector<CompactionOutput> outputs;
  if (mem->num_entries() > 0) {
    // async_write: all of this job's output WRITEs ride one FlushPipeline —
    // each sink's tail buffers are adopted as deferred handles at Finish()
    // instead of being waited per table, and the whole wave drains once
    // below, before install (the durability barrier: a table becomes
    // visible only after its bytes are on the memory node).
    //
    // Transient faults re-run the whole job: a failed wave leaves no record
    // of which bytes landed, so the failed attempt's chunks are recycled
    // and the still-pinned MemTable is rebuilt into fresh ones. Only after
    // flush_max_retries re-runs does the DB fail closed (SetBgError) — the
    // table is then never installed, so readers see the error, not a hole.
    const int max_attempts = 1 + std::max(0, options_.flush_max_retries);
    std::vector<remote::RemoteChunk> attempt_chunks;
    auto recycle_attempt = [this, &attempt_chunks] {
      for (const remote::RemoteChunk& c : attempt_chunks) {
        nodes_[SlotForNode(c.home_node)].arena->Free(c);
      }
      attempt_chunks.clear();
    };
    for (int attempt = 0; attempt < max_attempts; attempt++) {
      if (attempt > 0) {
        stat_flush_retries_.fetch_add(1, std::memory_order_relaxed);
        trace::Tracer::EmitInstant("flush_retry", "flush", "attempt",
                                   static_cast<uint64_t>(attempt));
        recycle_attempt();
        outputs.clear();
        RecoverAllVqs();
        int shift = attempt - 1 < 6 ? attempt - 1 : 6;
        env_->SleepNanos(options_.rdma_retry_backoff_ns << shift);
      }
      // One pipeline per memory node touched by this job: a table's WRITE
      // wave rides its destination node's connection; all waves drain
      // below before install (the durability barrier).
      std::vector<std::unique_ptr<FlushPipeline>> pipelines(nodes_.size());
      auto new_output = [this, &pipelines, &attempt_chunks](
                            const Slice& first_key, remote::RemoteChunk* chunk,
                            std::unique_ptr<TableSink>* sink) -> Status {
        const size_t slot = static_cast<size_t>(PlaceTable(0, first_key));
        MemoryNodeState& node = nodes_[slot];
        remote::RemoteChunk c = node.arena->Allocate();
        for (int tries = 0; !c.valid() && tries < 10000; tries++) {
          // Flush region exhausted and the node refused to grow: give GC
          // and compaction a chance to recycle chunks.
          DrainGc();
          env_->SleepNanos(1'000'000);
          c = node.arena->Allocate();
        }
        if (!c.valid()) {
          return Status::OutOfMemory("flush region exhausted");
        }
        *chunk = c;
        attempt_chunks.push_back(c);
        std::unique_ptr<TableSink> base;
        if (options_.async_write) {
          if (pipelines[slot] == nullptr) {
            pipelines[slot] = std::make_unique<FlushPipeline>(node.mgr.get());
          }
          base = std::make_unique<AsyncRemoteSink>(
              node.mgr.get(), c, options_.flush_buffer_size,
              options_.flush_buffers_per_thread, pipelines[slot].get());
        } else {
          // Ablation: one blocking WRITE per flush buffer.
          base = std::make_unique<SyncRemoteSink>(node.mgr.get(), c,
                                                  options_.flush_buffer_size);
        }
        *sink = options_.extra_io_copy
                    ? std::make_unique<CopySink>(std::move(base))
                    : std::move(base);
        return Status::OK();
      };

      s = MergeAndBuild(env_, mem->NewIterator(), icmp_, bloom_,
                        OldestSnapshot(), /*drop_tombstones=*/false,
                        options_.sstable_size, options_.table_format,
                        options_.block_size, new_output, &outputs);
      if (s.ok()) {
        // First drain failure wins; destruction cancels the rest safely.
        for (auto& p : pipelines) {
          if (p == nullptr) continue;
          Status d = p->Drain();
          if (s.ok()) s = d;
        }
      }
      if (s.ok() || !s.IsIOError()) break;
    }
    if (!s.ok()) {
      recycle_attempt();
      outputs.clear();
      SetBgError(s);
    }
  }

  // Flushes BUILD in parallel but INSTALL in MemTable age order: if a
  // newer table's tombstone reached L0 (and possibly a bottommost
  // compaction) while an older table holding a shadowed value were still
  // unflushed, the deleted value would resurrect once that older table
  // landed. imms_ is oldest-first; install only at its head. The flush
  // pool is FIFO over switch order, so the head's job is always already
  // running — no deadlock.
  {
    trace::TraceSpan install_wait("flush_install_wait", "flush");
    MutexLock l(&mem_mu_);
    while (!(imms_.front() == mem)) {
      backpressure_cv_.Wait();
    }
  }
  if (!outputs.empty()) {
    VersionEdit edit;
    for (const CompactionOutput& out : outputs) {
      edit.AddFile(0, InstallOutput(out, l0_order));
    }
    versions_->Apply(edit);
    stat_flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    MutexLock l(&mem_mu_);
    DLSM_CHECK(imms_.front() == mem);
    imms_.pop_front();
    pending_flushes_--;
    backpressure_cv_.SignalAll();
  }
  mem->Unref();
  {
    MutexLock l(&comp_mu_);
    comp_cv_.SignalAll();  // L0 may now warrant compaction.
  }
  DrainGc();
}

// ---------------------------------------------------------------------------
// Reads (Secs. III, VI)
// ---------------------------------------------------------------------------

Status DLsmDB::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  trace::TraceOp span("Get", "db");
  DLSM_RETURN_NOT_OK(BgError());
  if (options.async_reads && read_paths_[0].uncached_index) {
    // An uncached-index probe must fetch the index before it can size the
    // data read, so it can never join a doorbell wave. Reject instead of
    // silently degrading to synchronous probes (see table_reader.h).
    return Status::InvalidArgument(
        "async_reads requires compute-side index caching; pass "
        "ReadOptions::async_reads = false when Options::cache_index_blocks "
        "is off");
  }
  stat_reads_.fetch_add(1, std::memory_order_relaxed);
  SequenceNumber snapshot = options.snapshot_sequence != ~0ull
                                ? options.snapshot_sequence
                                : sequence_.load(std::memory_order_acquire);
  LookupKey lkey(key, snapshot);

  // Pin the MemTable chain (current + immutables), newest first.
  trace::TraceSpan mem_span("mem_probe", "db");
  std::vector<MemTable*> tables;
  {
    MutexLock l(&mem_mu_);
    MemTable* cur = mem_.load(std::memory_order_acquire);
    cur->Ref();
    tables.push_back(cur);
    for (auto it = imms_.rbegin(); it != imms_.rend(); ++it) {
      (*it)->Ref();
      tables.push_back(*it);
    }
  }
  Status result = Status::NotFound(Slice());
  bool done = false;
  for (MemTable* m : tables) {
    std::string v;
    Status s;
    if (!done && m->Get(lkey, &v, &s)) {
      done = true;
      result = s;
      if (s.ok()) *value = std::move(v);
    }
  }
  for (MemTable* m : tables) m->Unref();
  mem_span.End();
  if (done) return result;

  // SSTables: pinned via the version reference.
  VersionRef version = versions_->current();
  size_t num_l0 = 0;
  std::vector<const FileMetaData*> order;
  version->CollectSearchOrder(icmp_, key, &order, &num_l0);
  size_t start = 0;
  if (options.async_reads && num_l0 > 1 &&
      SupportsAsyncProbe(read_paths_[0])) {
    // Async L0 wave: post the data READs for every may-match L0 file in
    // one doorbell batch per memory node, then harvest completions
    // newest-first so the newest file's hit wins (the age order the
    // serial loop relies on). A definitive probe (per-record index
    // matched the user key) ends the wave early: older files cannot hold
    // a newer visible version.
    trace::TraceSpan wave_span("l0_wave", "db");
    wave_span.arg("l0_files", num_l0);
    std::vector<TableProbe> probes(num_l0);
    size_t wave_end = 0;
    for (size_t i = 0; i < num_l0; i++) {
      bool bloom_skip = false;
      Status s = TableProbePrepare(icmp_, bloom_, *order[i], lkey,
                                   &probes[i], &bloom_skip);
      if (bloom_skip) {
        stat_bloom_useful_.fetch_add(1, std::memory_order_relaxed);
      }
      DLSM_RETURN_NOT_OK(s);  // Nothing posted yet; safe to bail.
      wave_end = i + 1;
      if (probes[i].need_read && probes[i].definitive) break;
    }
    // One ReadBatch per memory node the wave touches (ReadBatch rides a
    // single connection); still one doorbell ring each, harvested in one
    // pass.
    std::vector<std::unique_ptr<rdma::ReadBatch>> batches(nodes_.size());
    std::vector<size_t> slots(wave_end, 0);
    std::vector<uint32_t> pnode(wave_end, 0);
    std::vector<char> cached(wave_end, 0);
    for (size_t i = 0; i < wave_end; i++) {
      if (!probes[i].need_read) continue;
      // Compute-side cache: a hit joins the wave as an already-complete
      // slot (no verb posted) and is still resolved at its age-order
      // position below, so newest-wins semantics are untouched.
      if (block_cache_ != nullptr &&
          block_cache_->Lookup(order[i]->number, probes[i].read_off,
                               probes[i].buf.data(), probes[i].buf.size())) {
        cached[i] = 1;
        continue;
      }
      uint32_t node = order[i]->memory_node < nodes_.size()
                          ? order[i]->memory_node
                          : 0;
      pnode[i] = node;
      if (batches[node] == nullptr) {
        batches[node] =
            std::make_unique<rdma::ReadBatch>(nodes_[node].mgr.get());
      }
      order[i]->heat.fetch_add(1, std::memory_order_relaxed);
      slots[i] = batches[node]->Add(probes[i].buf.data(),
                                    order[i]->chunk.addr + probes[i].read_off,
                                    order[i]->chunk.rkey,
                                    probes[i].buf.size());
    }
    for (auto& b : batches) {
      if (b != nullptr) b->WaitAll();  // Per-slot outcomes checked below.
    }
    for (size_t i = 0; i < wave_end; i++) {
      if (!probes[i].need_read) continue;
      Status s = cached[i] ? Status::OK() : batches[pnode[i]]->status(slots[i]);
      TableLookupResult lookup = TableLookupResult::kNotPresent;
      if (s.ok()) {
        if (!cached[i] && block_cache_ != nullptr) {
          block_cache_->Insert(order[i]->number, probes[i].read_off,
                               probes[i].buf.data(), probes[i].buf.size());
        }
        s = TableProbeFinish(icmp_, lkey, &probes[i], &lookup, value);
      } else if (s.IsIOError() && read_paths_[0].max_retries > 0) {
        // This slot's READ died with its batch QP. Recover that node's
        // connection once (no-op if a sibling slot already did) and
        // re-probe the file serially: TableGet rides MgrRead's retry
        // policy, so only an exhausted retry budget propagates.
        stat_read_retries_.fetch_add(1, std::memory_order_relaxed);
        trace::Tracer::EmitInstant("read_retry", "db", "file",
                                   order[i]->number);
        nodes_[pnode[i]].mgr->ThreadVq()->Recover();
        s = TableGet(router_.route(*order[i]), icmp_, bloom_, *order[i],
                     lkey, &lookup, value);
      }
      DLSM_RETURN_NOT_OK(s);
      if (lookup == TableLookupResult::kFound) return Status::OK();
      if (lookup == TableLookupResult::kDeleted) {
        return Status::NotFound(Slice());
      }
    }
    start = wave_end;
  }
  for (size_t i = start; i < order.size(); i++) {
    const FileMetaData* f = order[i];
    TableLookupResult lookup;
    bool bloom_skip = false;
    // Per-level remote probe: the span covers the one-sided READ wait
    // inside TableGet (bloom-skipped probes are ~instant).
    trace::TraceSpan probe_span("table_probe", "db");
    probe_span.arg("file", f->number);
    f->heat.fetch_add(1, std::memory_order_relaxed);
    Status s = TableGet(router_.route(*f), icmp_, bloom_, *f, lkey, &lookup,
                        value, &bloom_skip);
    probe_span.End();
    DLSM_RETURN_NOT_OK(s);
    if (bloom_skip) {
      stat_bloom_useful_.fetch_add(1, std::memory_order_relaxed);
    }
    if (lookup == TableLookupResult::kFound) return Status::OK();
    if (lookup == TableLookupResult::kDeleted) {
      return Status::NotFound(Slice());
    }
  }
  return Status::NotFound(Slice());
}

void DLsmDB::MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                      std::vector<std::string>* values,
                      std::vector<Status>* statuses) {
  trace::TraceOp span("MultiGet", "db");
  span.arg("keys", keys.size());
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::NotFound(Slice()));
  if (keys.empty()) return;
  Status bg = BgError();
  if (!bg.ok()) {
    statuses->assign(keys.size(), bg);
    return;
  }
  if (options.async_reads && read_paths_[0].uncached_index) {
    // Same contract as Get: async probing cannot model per-probe index
    // fetches, and silently degrading hid misconfiguration.
    statuses->assign(keys.size(),
                     Status::InvalidArgument(
                         "async_reads requires compute-side index caching; "
                         "pass ReadOptions::async_reads = false when "
                         "Options::cache_index_blocks is off"));
    return;
  }
  SequenceNumber snapshot = options.snapshot_sequence != ~0ull
                                ? options.snapshot_sequence
                                : sequence_.load(std::memory_order_acquire);
  if (!options.async_reads || !SupportsAsyncProbe(read_paths_[0])) {
    // Baseline read paths (RPC reads, staging copies) keep their modeled
    // per-read costs: serial lookups at one snapshot.
    ReadOptions ro = options;
    ro.snapshot_sequence = snapshot;
    for (size_t i = 0; i < keys.size(); i++) {
      (*statuses)[i] = Get(ro, keys[i], &(*values)[i]);
    }
    return;
  }
  stat_reads_.fetch_add(keys.size(), std::memory_order_relaxed);

  // Pin the MemTable chain once for the whole batch, newest first.
  std::vector<MemTable*> tables;
  {
    MutexLock l(&mem_mu_);
    MemTable* cur = mem_.load(std::memory_order_acquire);
    cur->Ref();
    tables.push_back(cur);
    for (auto it = imms_.rbegin(); it != imms_.rend(); ++it) {
      (*it)->Ref();
      tables.push_back(*it);
    }
  }
  struct KeyState {
    size_t idx = 0;                // Position in the caller's batch.
    const LookupKey* lkey = nullptr;
    // Remaining probe order (age order); borrowed from `version`.
    std::vector<const FileMetaData*> order;
    size_t num_l0 = 0;
    size_t cursor = 0;             // Next candidate in order.
  };
  std::deque<LookupKey> lkeys;     // Stable addresses; LookupKey is pinned.
  std::vector<KeyState> pending;
  for (size_t i = 0; i < keys.size(); i++) {
    lkeys.emplace_back(keys[i], snapshot);
    const LookupKey& lk = lkeys.back();
    bool done = false;
    for (MemTable* m : tables) {
      std::string v;
      Status s;
      if (m->Get(lk, &v, &s)) {
        (*statuses)[i] = s;
        if (s.ok()) (*values)[i] = std::move(v);
        done = true;
        break;
      }
    }
    if (!done) pending.push_back(KeyState{i, &lk, {}, 0, 0});
  }
  for (MemTable* m : tables) m->Unref();
  if (pending.empty()) return;

  // SSTables: pinned via the version reference; the bloom/index filtering
  // for the whole batch is local, only may-match data READs cross the wire.
  VersionRef version = versions_->current();
  for (KeyState& ks : pending) {
    version->CollectSearchOrder(icmp_, keys[ks.idx], &ks.order, &ks.num_l0);
  }

  // Level waves: each round, every unresolved key contributes its next
  // needed READs — all of its remaining may-match L0 files up to the
  // first definitive probe, or one candidate from its next deeper level —
  // to a single doorbell batch. Completions are harvested in one drain
  // and resolved per key in age order (newest wins).
  struct WaveProbe {
    size_t key;     // Index into pending.
    size_t slot;    // Batch slot for the posted READ (unused when cached).
    uint32_t node;  // Memory-node slot whose batch holds the READ.
    bool cached;    // Bytes came from the block cache; no verb posted.
    TableProbe probe;
  };
  std::vector<char> resolved(pending.size(), 0);
  size_t unresolved = pending.size();
  while (unresolved > 0) {
    trace::TraceSpan wave_span("level_wave", "db");
    wave_span.arg("unresolved", unresolved);
    // One ReadBatch per memory node the wave touches; all are posted
    // before any is drained, so the wave is still one round trip wide.
    std::vector<std::unique_ptr<rdma::ReadBatch>> batches(nodes_.size());
    std::vector<WaveProbe> wave;
    for (size_t k = 0; k < pending.size(); k++) {
      if (resolved[k]) continue;
      KeyState& ks = pending[k];
      size_t reads_this_wave = 0;
      while (ks.cursor < ks.order.size()) {
        bool in_l0 = ks.cursor < ks.num_l0;
        if (reads_this_wave > 0 && !in_l0) break;  // L0 results pending.
        const FileMetaData* f = ks.order[ks.cursor];
        TableProbe probe;
        bool bloom_skip = false;
        Status s = TableProbePrepare(icmp_, bloom_, *f, *ks.lkey, &probe,
                                     &bloom_skip);
        if (bloom_skip) {
          stat_bloom_useful_.fetch_add(1, std::memory_order_relaxed);
        }
        if (!s.ok()) {
          (*statuses)[ks.idx] = s;
          resolved[k] = 1;
          unresolved--;
          break;
        }
        ks.cursor++;
        if (!probe.need_read) continue;  // Not in this table; no wire cost.
        bool definitive = probe.definitive;
        // Cache hits still enter the wave (as pre-completed probes) so
        // they resolve at their age-order position during harvest; only
        // the verb is elided.
        bool cached =
            block_cache_ != nullptr &&
            block_cache_->Lookup(f->number, probe.read_off,
                                 probe.buf.data(), probe.buf.size());
        size_t slot = 0;
        uint32_t node = f->memory_node < nodes_.size() ? f->memory_node : 0;
        if (!cached) {
          if (batches[node] == nullptr) {
            batches[node] =
                std::make_unique<rdma::ReadBatch>(nodes_[node].mgr.get());
          }
          f->heat.fetch_add(1, std::memory_order_relaxed);
          slot = batches[node]->Add(probe.buf.data(),
                                    f->chunk.addr + probe.read_off,
                                    f->chunk.rkey, probe.buf.size());
        }
        wave.push_back(WaveProbe{k, slot, node, cached, std::move(probe)});
        reads_this_wave++;
        if (definitive || !in_l0) break;
      }
      if (!resolved[k] && reads_this_wave == 0 &&
          pending[k].cursor >= pending[k].order.size()) {
        resolved[k] = 1;  // Exhausted without a hit: stays NotFound.
        unresolved--;
      }
    }
    if (wave.empty()) break;
    for (auto& b : batches) {
      if (b != nullptr) b->WaitAll();  // One CQ drain per touched node.
    }
    for (WaveProbe& wp : wave) {
      size_t k = wp.key;
      if (resolved[k]) continue;  // A newer probe already decided this key.
      KeyState& ks = pending[k];
      Status s = wp.cached ? Status::OK() : batches[wp.node]->status(wp.slot);
      TableLookupResult lookup = TableLookupResult::kNotPresent;
      if (s.ok()) {
        if (!wp.cached && block_cache_ != nullptr) {
          block_cache_->Insert(wp.probe.file->number, wp.probe.read_off,
                               wp.probe.buf.data(), wp.probe.buf.size());
        }
        s = TableProbeFinish(icmp_, *ks.lkey, &wp.probe, &lookup,
                             &(*values)[ks.idx]);
      } else if (s.IsIOError() && read_paths_[0].max_retries > 0) {
        // Same per-slot recovery as Get's L0 wave: recover that node's QP
        // and fall back to a serial retrying probe of this file.
        stat_read_retries_.fetch_add(1, std::memory_order_relaxed);
        trace::Tracer::EmitInstant("read_retry", "db", "file",
                                   wp.probe.file->number);
        nodes_[wp.node].mgr->ThreadVq()->Recover();
        s = TableGet(router_.route(*wp.probe.file), icmp_, bloom_,
                     *wp.probe.file, *ks.lkey, &lookup, &(*values)[ks.idx]);
      }
      if (!s.ok()) {
        (*statuses)[ks.idx] = s;
        resolved[k] = 1;
        unresolved--;
        continue;
      }
      if (lookup == TableLookupResult::kFound) {
        (*statuses)[ks.idx] = Status::OK();
        resolved[k] = 1;
        unresolved--;
      } else if (lookup == TableLookupResult::kDeleted) {
        resolved[k] = 1;  // Tombstone: stays NotFound.
        unresolved--;
      }
      // kNotPresent: the key stays unresolved for the next wave.
    }
  }
}

Iterator* DLsmDB::NewIterator(const ReadOptions& options) {
  trace::TraceSpan span("NewIterator", "db");
  Status bg = BgError();
  if (!bg.ok()) return NewErrorIterator(bg);
  SequenceNumber snapshot = options.snapshot_sequence != ~0ull
                                ? options.snapshot_sequence
                                : sequence_.load(std::memory_order_acquire);

  std::vector<Iterator*> children;
  std::vector<MemTable*> pinned;
  {
    MutexLock l(&mem_mu_);
    MemTable* cur = mem_.load(std::memory_order_acquire);
    cur->Ref();
    pinned.push_back(cur);
    children.push_back(cur->NewIterator());
    for (auto it = imms_.rbegin(); it != imms_.rend(); ++it) {
      (*it)->Ref();
      pinned.push_back(*it);
      children.push_back((*it)->NewIterator());
    }
  }
  VersionRef version = versions_->current();
  version->AddIterators(router_, icmp_, options_.scan_prefetch_size,
                        &children);

  Iterator* merged = NewMergingIterator(&icmp_, children.data(),
                                        static_cast<int>(children.size()));
  auto cleanup = [pinned = std::move(pinned), version]() mutable {
    for (MemTable* m : pinned) m->Unref();
    version.reset();
  };
  return NewDBIterator(&icmp_, merged, snapshot, std::move(cleanup));
}

const Snapshot* DLsmDB::GetSnapshot() {
  MutexLock l(&snap_mu_);
  uint64_t seq = sequence_.load(std::memory_order_acquire);
  snapshots_.insert(seq);
  return new SnapshotImpl(seq);
}

void DLsmDB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  {
    MutexLock l(&snap_mu_);
    auto it = snapshots_.find(snapshot->sequence());
    DLSM_CHECK(it != snapshots_.end());
    snapshots_.erase(it);
  }
  delete snapshot;
}

SequenceNumber DLsmDB::OldestSnapshot() {
  MutexLock l(&snap_mu_);
  if (snapshots_.empty()) {
    return sequence_.load(std::memory_order_acquire);
  }
  return *snapshots_.begin();
}

// ---------------------------------------------------------------------------
// Compaction (Sec. V)
// ---------------------------------------------------------------------------

void DLsmDB::CompactionCoordinatorLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    {
      MutexLock l(&comp_mu_);
      while (!shutdown_.load() && !versions_->NeedsCompaction()) {
        comp_cv_.TimedWait(5'000'000);  // 5 ms.
      }
    }
    if (shutdown_.load()) break;
    if (has_bg_error_.load(std::memory_order_acquire)) {
      // Fail-closed: stop churning picks that can no longer install.
      env_->SleepNanos(1'000'000);
      continue;
    }

    CompactionPick pick = versions_->PickCompaction();
    if (!pick.valid()) {
      env_->SleepNanos(1'000'000);
      continue;
    }
    {
      MutexLock l(&comp_mu_);
      running_compactions_++;
    }
    Status s = RunCompaction(pick);
    for (int attempt = 0;
         !s.ok() && s.IsIOError() && attempt < options_.rdma_max_retries &&
         !shutdown_.load(std::memory_order_acquire);
         attempt++) {
      // Transient fault somewhere in the compaction wave (RPC timeout,
      // flushed READ/WRITE): recover this coordinator's QPs and re-run the
      // pick from scratch — nothing was installed, inputs are still live.
      RecoverAllVqs();
      env_->SleepNanos(options_.rdma_retry_backoff_ns
                       << (attempt < 6 ? attempt : 6));
      s = RunCompaction(pick);
    }
    if (!s.ok()) {
      // Retries exhausted or a non-transient failure: fail closed rather
      // than abort. The LSM shape stops improving but no version ever
      // references bytes that failed to land.
      SetBgError(s);
    }
    versions_->ReleaseCompaction(pick);
    {
      MutexLock l(&comp_mu_);
      running_compactions_--;
      comp_cv_.SignalAll();
    }
    {
      // L0 shrank: stalled writers may proceed.
      MutexLock l(&mem_mu_);
      backpressure_cv_.SignalAll();
    }
    DrainGc();
  }
}

Status DLsmDB::RunCompaction(const CompactionPick& pick) {
  trace::TraceSpan span("compaction", "compaction");
  span.arg("level", static_cast<uint64_t>(pick.level));
  span.arg("input_bytes", pick.InputBytes());
  telemetry::WatchdogScope wd(watchdog_.get(), "compaction");
  // Near-data compaction merges in one memory node's DRAM, so it applies
  // only when every input lives on the same node; a pick whose inputs
  // placement spread across nodes falls back to the compute-side merge
  // (which reads from and writes to any mix of nodes).
  bool one_node = true;
  uint32_t input_slot = 0;
  bool first_input = true;
  for (int which = 0; which < 2 && one_node; which++) {
    for (const FileRef& f : pick.inputs[which]) {
      if (first_input) {
        input_slot = f->memory_node;
        first_input = false;
      } else if (f->memory_node != input_slot) {
        one_node = false;
        break;
      }
    }
  }
  std::vector<CompactionOutput> outputs;
  Status s =
      options_.compaction_placement == CompactionPlacement::kNearData &&
              one_node
          ? RunNearDataCompaction(
                pick, input_slot < nodes_.size() ? input_slot : 0, &outputs)
          : RunComputeSideCompaction(pick, &outputs);
  if (!s.ok()) {
    // A failed compaction installs nothing: recycle whatever outputs did
    // complete (compute-side builds, successful near-data siblings) so a
    // retry of the same pick starts from clean chunks.
    for (const CompactionOutput& out : outputs) FileGone(out.chunk);
    return s;
  }

  VersionEdit edit;
  for (int which = 0; which < 2; which++) {
    for (const FileRef& f : pick.inputs[which]) {
      edit.DeleteFile(pick.level + which, f->number);
    }
  }
  for (const CompactionOutput& out : outputs) {
    edit.AddFile(pick.level + 1, InstallOutput(out, 0));
    stat_comp_out_.fetch_add(out.data_len, std::memory_order_relaxed);
  }
  versions_->Apply(edit);
  // Version-install invalidation: the inputs left the live set, so drop
  // their cached bytes now rather than waiting for the last reader to
  // release them (file numbers are never reused, so this is hygiene — a
  // stale entry could never alias a new table — but it frees budget and
  // keeps the cache honest about the installed version). Readers that
  // still pin the old version re-fetch over the fabric.
  if (block_cache_ != nullptr) {
    for (int which = 0; which < 2; which++) {
      for (const FileRef& f : pick.inputs[which]) {
        block_cache_->InvalidateTable(f->number);
      }
    }
  }
  stat_compactions_.fetch_add(1, std::memory_order_relaxed);
  stat_comp_in_.fetch_add(pick.InputBytes(), std::memory_order_relaxed);
  return Status::OK();
}

CompactionInput DLsmDB::MakeInput(const FileRef& f, const Slice* lo,
                                  const Slice* hi) const {
  CompactionInput in;
  in.addr = f->chunk.addr;
  if (options_.table_format == TableFormat::kBlock) {
    in.format = 2;
    in.start_off = 0;
    in.end_off = f->data_len;
    in.index_blob = f->index->blob();
    return in;
  }
  in.format = 1;
  auto offset_of = [&](const Slice& user_key) -> uint64_t {
    InternalKey ik(user_key, kMaxSequenceNumber, kValueTypeForSeek);
    size_t pos = f->index->Find(icmp_, ik.Encode());
    if (pos >= f->index->num_entries()) return f->data_len;
    return f->index->entry(pos).offset;
  };
  in.start_off = lo != nullptr ? offset_of(*lo) : 0;
  in.end_off = hi != nullptr ? offset_of(*hi) : f->data_len;
  return in;
}

Status DLsmDB::IssueCompactionRpc(remote::RpcClient* rpc,
                                  const CompactionTask& task,
                                  CompactionResult* result) {
  NoteCompactionRpcIssued();
  telemetry::WatchdogScope wd(watchdog_.get(), "compaction_rpc");
  std::string reply;
  Status s = rpc->CallWithWakeup(remote::RpcType::kCompaction,
                                 task.Serialize(), &reply);
  if (s.ok()) s = ParseCompactionReply(reply, result);
  stat_comp_rpc_inflight_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

void DLsmDB::NoteCompactionRpcIssued() {
  uint64_t cur =
      stat_comp_rpc_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t peak = stat_comp_rpc_peak_.load(std::memory_order_relaxed);
  while (cur > peak && !stat_comp_rpc_peak_.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
}

Status DLsmDB::RunNearDataCompaction(const CompactionPick& pick, size_t slot,
                                     std::vector<CompactionOutput>* outputs) {
  rdma::RdmaManager* mgr = nodes_[slot].mgr.get();
  remote::RpcClient* rpc = nodes_[slot].rpc;
  const uint64_t slab = slab_size_;
  auto make_task = [&](std::vector<CompactionInput> inputs) {
    CompactionTask task;
    task.inputs = std::move(inputs);
    task.smallest_snapshot = OldestSnapshot();
    task.drop_tombstones = pick.bottommost;
    task.target_file_size = options_.sstable_size;
    task.output_chunk_size = slab;
    task.output_format =
        options_.table_format == TableFormat::kByteAddressable ? 1 : 2;
    task.block_size = static_cast<uint32_t>(options_.block_size);
    task.bloom_bits_per_key =
        static_cast<uint32_t>(options_.bloom_bits_per_key);
    return task;
  };

  // Sub-compaction partitioning (Sec. V-A: "divide a large compaction task
  // into multiple parallel sub-compaction tasks"): only L0 compactions of
  // byte-addressable tables are split — the per-record index lets the
  // compute node hand each worker an exact byte slice of every L0 file.
  std::vector<std::string> bounds;
  if (pick.level == 0 && options_.max_subcompactions > 1 &&
      options_.table_format == TableFormat::kByteAddressable) {
    const auto& l1 = pick.inputs[1];
    if (l1.size() >= 2) {
      size_t k = std::min<size_t>(options_.max_subcompactions, l1.size());
      // Boundaries at (a subset of) L1 file smallest keys: every L1 file
      // then belongs to exactly one range.
      for (size_t i = 1; i < k; i++) {
        size_t idx = i * l1.size() / k;
        if (idx == 0) continue;
        bounds.push_back(
            ExtractUserKey(l1[idx]->smallest.Encode()).ToString());
      }
    } else if (l1.empty() && !pick.inputs[0].empty()) {
      // No L1 yet: carve boundaries from the largest L0 file's index.
      const FileRef* biggest = &pick.inputs[0][0];
      for (const FileRef& f : pick.inputs[0]) {
        if (f->num_entries > (*biggest)->num_entries) biggest = &f;
      }
      const TableIndex& index = *(*biggest)->index;
      size_t k = std::min<size_t>(options_.max_subcompactions, 4);
      for (size_t i = 1; i < k && index.num_entries() > k; i++) {
        size_t pos = i * index.num_entries() / k;
        bounds.push_back(
            ExtractUserKey(index.entry(pos).key).ToString());
      }
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  }

  std::vector<CompactionTask> tasks;
  if (bounds.empty()) {
    std::vector<CompactionInput> inputs;
    for (int which = 0; which < 2; which++) {
      for (const FileRef& f : pick.inputs[which]) {
        CompactionInput in = MakeInput(f, nullptr, nullptr);
        if (in.start_off < in.end_off) inputs.push_back(std::move(in));
      }
    }
    tasks.push_back(make_task(std::move(inputs)));
  } else {
    const Comparator* ucmp = icmp_.user_comparator();
    size_t ranges = bounds.size() + 1;
    for (size_t r = 0; r < ranges; r++) {
      const std::string* lo = r == 0 ? nullptr : &bounds[r - 1];
      const std::string* hi = r == ranges - 1 ? nullptr : &bounds[r];
      std::vector<CompactionInput> inputs;
      for (const FileRef& f : pick.inputs[0]) {
        Slice lo_s, hi_s;
        if (lo != nullptr) lo_s = Slice(*lo);
        if (hi != nullptr) hi_s = Slice(*hi);
        CompactionInput in = MakeInput(f, lo ? &lo_s : nullptr,
                                       hi ? &hi_s : nullptr);
        if (in.start_off < in.end_off) inputs.push_back(std::move(in));
      }
      for (const FileRef& f : pick.inputs[1]) {
        // An L1 file belongs to range r iff its smallest key is in it.
        Slice s = ExtractUserKey(f->smallest.Encode());
        bool ge_lo = lo == nullptr || ucmp->Compare(s, Slice(*lo)) >= 0;
        bool lt_hi = hi == nullptr || ucmp->Compare(s, Slice(*hi)) < 0;
        if (ge_lo && lt_hi) {
          inputs.push_back(MakeInput(f, nullptr, nullptr));
        }
      }
      if (!inputs.empty()) tasks.push_back(make_task(std::move(inputs)));
    }
  }
  if (tasks.empty()) return Status::OK();

  std::vector<CompactionResult> results(tasks.size());
  std::vector<Status> statuses(tasks.size());
  if (options_.async_write) {
    // Pipelined scheduler: this one thread keeps several memory-node
    // sub-compactions in flight through CallAsync instead of parking a
    // helper thread per RPC. The window widens only while
    //   window + outstanding one-sided verbs on this engine  <  budget
    // so compaction admission yields to foreground READ waves already on
    // the wire (budget 1 degenerates to strictly serial RPCs; 0 uncaps).
    struct InFlightRpc {
      size_t idx;
      remote::PendingCall call;
    };
    std::deque<InFlightRpc> window;
    const uint64_t budget = options_.compaction_verb_budget;
    auto wait_oldest = [&] {
      InFlightRpc f = std::move(window.front());
      window.pop_front();
      std::string reply;
      statuses[f.idx] = f.call.Wait(&reply);
      if (statuses[f.idx].ok()) {
        statuses[f.idx] = ParseCompactionReply(reply, &results[f.idx]);
      }
      stat_comp_rpc_inflight_.fetch_sub(1, std::memory_order_relaxed);
    };
    for (size_t i = 0; i < tasks.size(); i++) {
      while (!window.empty() && budget != 0 &&
             window.size() + mgr->outstanding_ops() >= budget) {
        wait_oldest();
      }
      NoteCompactionRpcIssued();
      window.push_back(InFlightRpc{
          i, rpc->CallAsync(remote::RpcType::kCompaction,
                            tasks[i].Serialize())});
    }
    while (!window.empty()) wait_oldest();
  } else {
    // Blocking scheduler (ablation): a helper thread per sub-compaction,
    // each parked in its own two-sided call; this thread takes the first.
    std::vector<ThreadHandle> helpers;
    for (size_t i = 1; i < tasks.size(); i++) {
      helpers.push_back(env_->StartThread(
          deps_.compute->env_node(), "subcompaction",
          [this, rpc, &tasks, &results, &statuses, i] {
            statuses[i] = IssueCompactionRpc(rpc, tasks[i], &results[i]);
          }));
    }
    statuses[0] = IssueCompactionRpc(rpc, tasks[0], &results[0]);
    for (ThreadHandle h : helpers) env_->Join(h);
  }

  // Surface the first failure but hand every completed sibling's outputs
  // to the caller anyway — RunCompaction recycles them on failure, so a
  // half-finished wave never leaks memory-node chunks.
  Status first;
  for (size_t i = 0; i < tasks.size(); i++) {
    if (first.ok() && !statuses[i].ok()) first = statuses[i];
    for (CompactionOutput& out : results[i].outputs) {
      outputs->push_back(std::move(out));
    }
  }
  return first;
}

Status DLsmDB::RunComputeSideCompaction(
    const CompactionPick& pick, std::vector<CompactionOutput>* outputs) {
  // The ablation path (Fig. 12 "compute"): inputs are pulled over the wire
  // and merged here; outputs are pushed back with the flush pipeline.
  std::vector<Iterator*> children;
  for (int which = 0; which < 2; which++) {
    for (const FileRef& f : pick.inputs[which]) {
      children.push_back(NewRemoteTableIterator(
          router_.route(*f), icmp_, f, options_.scan_prefetch_size));
    }
  }
  Iterator* merged = NewMergingIterator(&icmp_, children.data(),
                                        static_cast<int>(children.size()));

  // Outputs are placed per table, so each destination node gets its own
  // WRITE pipeline; all drain below before the caller installs.
  std::vector<std::unique_ptr<FlushPipeline>> pipelines(nodes_.size());
  const int out_level = pick.level + 1;
  auto new_output = [this, &pipelines, out_level](
                        const Slice& first_key, remote::RemoteChunk* chunk,
                        std::unique_ptr<TableSink>* sink) -> Status {
    const size_t slot = static_cast<size_t>(PlaceTable(out_level, first_key));
    MemoryNodeState& node = nodes_[slot];
    remote::RemoteChunk c = node.arena->Allocate();
    if (!c.valid()) {
      return Status::OutOfMemory("flush region exhausted (compaction)");
    }
    *chunk = c;
    std::unique_ptr<TableSink> base;
    if (options_.async_write) {
      if (pipelines[slot] == nullptr) {
        pipelines[slot] = std::make_unique<FlushPipeline>(node.mgr.get());
      }
      base = std::make_unique<AsyncRemoteSink>(
          node.mgr.get(), c, options_.flush_buffer_size,
          options_.flush_buffers_per_thread, pipelines[slot].get());
    } else {
      base = std::make_unique<SyncRemoteSink>(node.mgr.get(), c,
                                              options_.flush_buffer_size);
    }
    *sink = options_.extra_io_copy
                ? std::make_unique<CopySink>(std::move(base))
                : std::move(base);
    return Status::OK();
  };

  Status s = MergeAndBuild(env_, merged, icmp_, bloom_, OldestSnapshot(),
                           pick.bottommost, options_.sstable_size,
                           options_.table_format, options_.block_size,
                           new_output, outputs);
  // Drain before the caller installs the outputs: same durability barrier
  // as FlushJob.
  if (s.ok()) {
    for (auto& p : pipelines) {
      if (p == nullptr) continue;
      Status d = p->Drain();
      if (s.ok()) s = d;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Files & GC (Sec. V-B)
// ---------------------------------------------------------------------------

FileRef DLsmDB::InstallOutput(const CompactionOutput& out,
                              uint64_t l0_order) {
  auto file = std::make_shared<FileMetaData>();
  file->number = versions_->NewFileNumber();
  file->l0_order = l0_order;
  file->chunk = out.chunk;
  file->data_len = out.data_len;
  file->num_entries = out.num_entries;
  file->smallest = out.smallest;
  file->largest = out.largest;
  file->index = TableIndex::Parse(out.index_blob);
  DLSM_CHECK_MSG(file->index != nullptr, "unparseable table index");
  // Stamp the routing slot from where the bytes actually live, so reads
  // and near-data compactions follow the placement decision.
  file->memory_node =
      static_cast<uint32_t>(SlotForNode(out.chunk.home_node));
  uint64_t number = file->number;
  file->gc = [this, number](const remote::RemoteChunk& chunk) {
    // Last reference dropped: the table is gone for good, so its cached
    // bytes must go with it (cheap shard sweeps; never blocks).
    if (block_cache_ != nullptr) block_cache_->InvalidateTable(number);
    FileGone(chunk);
  };
  return file;
}

void DLsmDB::FileGone(const remote::RemoteChunk& chunk) {
  // Never blocks: may run while arbitrary locks are held by the releaser.
  const size_t slot = SlotForNode(chunk.home_node);
  if (chunk.owner_node == deps_.compute->id()) {
    // Compute-allocated (flush / compute-side compaction / migration):
    // recycle in the arena that controls that node's flush regions.
    nodes_[slot].arena->Free(chunk);
  } else {
    // Memory-node-allocated (near-data compaction): batch for a remote
    // free RPC to the owning node (paper: "grouped locally first and sent
    // in batch").
    std::lock_guard<std::mutex> lock(gc_mu_);
    gc_batches_[slot].push_back(chunk.addr);
  }
}

void DLsmDB::DrainGc() {
  for (size_t slot = 0; slot < nodes_.size(); slot++) {
    std::vector<uint64_t> batch;
    {
      std::lock_guard<std::mutex> lock(gc_mu_);
      if (gc_batches_[slot].size() < kGcBatchSize && !closed_) continue;
      batch.swap(gc_batches_[slot]);
    }
    if (batch.empty()) continue;
    std::string args, reply;
    remote::EncodeFreeBatch(batch, &args);
    Status s = nodes_[slot].rpc->Call(remote::RpcType::kFreeBatch, args,
                                      &reply);
    if (!s.ok()) {
      // Frees are idempotent bookkeeping: put the batch back and let a
      // later safe point retry once the fabric recovers. Never worth
      // aborting or fail-closing the DB over.
      std::lock_guard<std::mutex> lock(gc_mu_);
      gc_batches_[slot].insert(gc_batches_[slot].end(), batch.begin(),
                               batch.end());
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-memory-node placement & migration
// ---------------------------------------------------------------------------

int DLsmDB::PlaceTable(int level, const Slice& first_key) {
  const int n = static_cast<int>(nodes_.size());
  if (n <= 1) return 0;
  PlacementContext ctx;
  ctx.shard = options_.placement_shard;
  ctx.level = level;
  ctx.table_seq = table_counter_.fetch_add(1, std::memory_order_relaxed);
  ctx.first_key = first_key;
  int slot = placement_->Place(ctx, n);
  if (slot < 0 || slot >= n) slot = static_cast<int>(home_);
  // Placement decisions are rare (one per table) but load-bearing for the
  // fig15 balance story; record each one (PR 9 backfill).
  trace::Tracer::EmitInstant("place_table", "placement", "slot",
                             static_cast<uint64_t>(slot));
  return slot;
}

size_t DLsmDB::SlotForNode(uint32_t node_id) const {
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].service->node()->id() == node_id) return i;
  }
  return home_;
}

void DLsmDB::RecoverAllVqs() {
  for (MemoryNodeState& n : nodes_) n.mgr->ThreadVq()->Recover();
}

void DLsmDB::RebalanceLoop() {
  // Per-node READ-verb gauges from the fabric nodes themselves: the
  // deltas between passes are each memory node's GLOBAL inbound read
  // load, across every compute node and shard — not just this engine's
  // own traffic. That distinction matters under sharding: a shard whose
  // tables all sit on one node (the round-robin layout) always sees its
  // own traffic as maximally skewed, but must not migrate anything when
  // the cluster as a whole is balanced. The hottest node sheds its
  // hottest tables toward the coldest one whenever the max/mean
  // imbalance crosses the configured threshold.
  std::vector<uint64_t> last_reads(nodes_.size(), 0);
  bool primed = false;
  while (!shutdown_.load(std::memory_order_acquire)) {
    {
      MutexLock l(&mig_mu_);
      if (!shutdown_.load(std::memory_order_acquire)) {
        mig_cv_.TimedWait(options_.placement_rebalance_interval_ns);
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    if (has_bg_error_.load(std::memory_order_acquire)) continue;

    std::vector<uint64_t> reads(nodes_.size(), 0);
    for (size_t i = 0; i < nodes_.size(); i++) {
      reads[i] = nodes_[i].service->node()->remote_read_ops();
    }
    if (!primed) {
      last_reads = reads;
      primed = true;
      continue;
    }
    uint64_t total = 0;
    uint64_t max_delta = 0;
    size_t from = 0;
    size_t to = 0;
    uint64_t min_delta = ~0ull;
    for (size_t i = 0; i < nodes_.size(); i++) {
      uint64_t d = reads[i] - last_reads[i];
      total += d;
      if (d > max_delta) {
        max_delta = d;
        from = i;
      }
      if (d < min_delta) {
        min_delta = d;
        to = i;
      }
    }
    last_reads = reads;
    if (total == 0 || from == to) continue;
    double mean = static_cast<double>(total) / nodes_.size();
    if (static_cast<double>(max_delta) <
        mean * options_.placement_rebalance_threshold) {
      continue;
    }
    MigrateRound(from, to);
  }
}

void DLsmDB::MigrateRound(size_t from, size_t to) {
  VersionRef version = versions_->current();
  struct Candidate {
    int level;
    FileRef f;
    uint64_t heat;
  };
  std::vector<Candidate> cands;
  for (int level = 0; level < version->num_levels(); level++) {
    for (const FileRef& f : version->files(level)) {
      if (f->memory_node != from) continue;
      uint64_t h = f->heat.load(std::memory_order_relaxed);
      if (h == 0) continue;  // Never read since install: not worth moving.
      cands.push_back(Candidate{level, f, h});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.heat > b.heat;
            });
  int moved = 0;
  for (const Candidate& c : cands) {
    if (moved >= options_.placement_rebalance_max_tables) break;
    if (shutdown_.load(std::memory_order_acquire)) break;
    trace::TraceSpan span("migrate_table", "migration");
    span.arg("file", c.f->number);
    Status s = MigrateOne(c.level, c.f, to);
    if (s.ok()) {
      moved++;
    } else if (s.IsIOError() || s.IsOutOfMemory()) {
      // Fabric trouble or a full destination: nothing this round can fix.
      break;
    }
    // Busy/NotFound: the table is mid-compaction or already replaced —
    // skip it and consider the next candidate.
  }
}

Status DLsmDB::MigrateOne(int level, const FileRef& f, size_t dst_slot) {
  telemetry::WatchdogScope wd(watchdog_.get(), "migration");
  remote::RemoteChunk dst = nodes_[dst_slot].arena->Allocate();
  if (!dst.valid()) {
    return Status::OutOfMemory("migration destination arena exhausted");
  }
  Status s;
  {
    // Stage: the bulk node-to-node byte copy (PR 9 backfill: the two
    // phases were previously invisible inside the parent migrate_table
    // span).
    trace::TraceSpan stage("migrate_stage", "migration");
    stage.arg("bytes", f->data_len);
    stage.arg("dst", static_cast<uint64_t>(dst_slot));
    s = CopyChunk(*f, dst_slot, dst);
  }
  if (!s.ok()) {
    nodes_[dst_slot].arena->Free(dst);
    return s;
  }
  trace::TraceSpan swap("migrate_swap", "migration");
  swap.arg("file", f->number);

  // Same-number metadata swap: identical keys/index, new chunk + routing
  // slot. Install order matters — the copy is durable (pipeline drained in
  // CopyChunk) BEFORE the version swap makes it reachable, and the cache
  // is invalidated AFTER the swap so no pre-swap fill can outlive it.
  auto moved = std::make_shared<FileMetaData>();
  moved->number = f->number;
  moved->l0_order = f->l0_order;
  moved->chunk = dst;
  moved->data_len = f->data_len;
  moved->num_entries = f->num_entries;
  moved->smallest = f->smallest;
  moved->largest = f->largest;
  moved->index = f->index;
  moved->memory_node = static_cast<uint32_t>(dst_slot);
  moved->heat.store(f->heat.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  uint64_t number = moved->number;
  moved->gc = [this, number](const remote::RemoteChunk& chunk) {
    if (block_cache_ != nullptr) block_cache_->InvalidateTable(number);
    FileGone(chunk);
  };

  s = versions_->Replace(level, number, std::move(moved));
  if (!s.ok()) {
    // Busy (live compaction input) or NotFound (already left the tree):
    // the dropped replacement's gc frees the copied chunk.
    return s;
  }
  if (block_cache_ != nullptr) block_cache_->InvalidateTable(number);
  stat_tables_migrated_.fetch_add(1, std::memory_order_relaxed);
  stat_migration_bytes_.fetch_add(f->data_len, std::memory_order_relaxed);
  return Status::OK();
}

Status DLsmDB::CopyChunk(const FileMetaData& f, size_t dst_slot,
                         const remote::RemoteChunk& dst) {
  // Node-to-node copy staged through compute DRAM: retrying READs from
  // the source node, async WRITE waves to the destination. Any failure
  // (including a crashed node mid-copy) surfaces as a Status; the
  // destructors cancel whatever was still deferred.
  const RemoteReadPath& src = router_.route(f);
  rdma::RdmaManager* dst_mgr = nodes_[dst_slot].mgr.get();
  FlushPipeline pipeline(dst_mgr);
  AsyncRemoteSink sink(dst_mgr, dst, options_.flush_buffer_size,
                       options_.flush_buffers_per_thread, &pipeline);
  std::vector<char> buf(options_.flush_buffer_size);
  uint64_t off = 0;
  while (off < f.data_len) {
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::IOError("shutdown during migration copy");
    }
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(buf.size(), f.data_len - off));
    DLSM_RETURN_NOT_OK(
        src.MgrRead(buf.data(), f.chunk.addr + off, f.chunk.rkey, n));
    DLSM_RETURN_NOT_OK(sink.Append(buf.data(), n));
    off += n;
  }
  DLSM_RETURN_NOT_OK(sink.Finish());
  return pipeline.Drain();
}

// ---------------------------------------------------------------------------
// Fail-closed error state
// ---------------------------------------------------------------------------

void DLsmDB::SetBgError(const Status& s) {
  if (s.ok()) return;
  std::lock_guard<std::mutex> lock(bg_error_mu_);
  if (bg_error_.ok()) {  // First failure wins; later ones are symptoms.
    bg_error_ = s;
    has_bg_error_.store(true, std::memory_order_release);
  }
}

Status DLsmDB::BgError() const {
  if (!has_bg_error_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(bg_error_mu_);
  return bg_error_;
}

// ---------------------------------------------------------------------------
// Maintenance operations
// ---------------------------------------------------------------------------

Status DLsmDB::Flush() {
  DLSM_RETURN_NOT_OK(BgError());
  {
    MutexLock l(&mem_mu_);
    MemTable* cur = mem_.load(std::memory_order_acquire);
    if (cur->num_entries() > 0) {
      if (options_.switch_policy == MemTableSwitchPolicy::kSeqRange) {
        // Burn the rest of the table's sequence range so the "immutable
        // tables never receive new sequences" invariant holds.
        uint64_t target = cur->seq_limit() - 1;
        uint64_t v = sequence_.load(std::memory_order_acquire);
        while (v < target && !sequence_.compare_exchange_weak(v, target)) {
        }
      }
      SwitchMemTableLocked();
    }
    while (pending_flushes_ > 0 || !imms_.empty()) {
      backpressure_cv_.Wait();
    }
  }
  // A flush job that exhausted its retries "completes" without installing;
  // report that instead of pretending the data is durable.
  return BgError();
}

Status DLsmDB::WaitForBackgroundIdle() {
  for (;;) {
    // With a sticky background error the LSM shape stops converging;
    // report the failure instead of polling NeedsCompaction forever.
    DLSM_RETURN_NOT_OK(BgError());
    {
      MutexLock l(&mem_mu_);
      while (pending_flushes_ > 0 || !imms_.empty()) {
        backpressure_cv_.Wait();
      }
    }
    {
      MutexLock l(&comp_mu_);
      while (running_compactions_ > 0) {
        comp_cv_.Wait();
      }
    }
    bool flush_idle;
    {
      MutexLock l(&mem_mu_);
      flush_idle = pending_flushes_ == 0 && imms_.empty();
    }
    if (flush_idle && !versions_->NeedsCompaction()) {
      bool comp_idle;
      {
        MutexLock l(&comp_mu_);
        comp_idle = running_compactions_ == 0;
      }
      if (comp_idle) return Status::OK();
    }
    env_->SleepNanos(2'000'000);
  }
}

DbStats DLsmDB::GetStats() {
  DbStats s;
  s.writes = stat_writes_.load();
  s.reads = stat_reads_.load();
  s.flushes = stat_flushes_.load();
  s.compactions = stat_compactions_.load();
  s.compaction_input_bytes = stat_comp_in_.load();
  s.compaction_output_bytes = stat_comp_out_.load();
  s.stall_ns = stat_stall_ns_.load();
  s.bloom_useful = stat_bloom_useful_.load();
  s.compaction_rpc_inflight_peak = stat_comp_rpc_peak_.load();
  s.read_retries = stat_read_retries_.load();
  s.flush_retries = stat_flush_retries_.load();
  s.tables_migrated = stat_tables_migrated_.load();
  s.migration_bytes = stat_migration_bytes_.load();
  if (watchdog_ != nullptr) s.watchdog_stalls = watchdog_->stalls();
  for (const MemoryNodeState& n : nodes_) {
    if (n.owned_rpc != nullptr) {
      // A shared client's counters are added once by the sharded wrapper.
      s.rpc_retries += n.owned_rpc->rpc_retries();
      s.rpc_timeouts += n.owned_rpc->rpc_timeouts();
    }
  }
  if (block_cache_ != nullptr) {
    CacheStats cs = block_cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_inserts = cs.inserts;
    s.cache_evictions = cs.evictions;
    s.cache_admission_rejects = cs.admission_rejects;
  }
  // Whole-engine RDMA stats are the sum over per-node connections; the
  // per-node breakdown feeds the placement-imbalance instrumentation.
  // After Close() the managers are gone and the counters read as zero.
  for (const MemoryNodeState& n : nodes_) {
    if (n.mgr == nullptr) continue;
    rdma::RdmaVerbStats vs = n.mgr->StatsSnapshot();
    s.rdma.MergeFrom(vs);
    DbStats::NodeIoStats io;
    io.read_verbs = vs.read.ops;
    io.read_bytes = vs.read.bytes;
    io.write_verbs = vs.write.ops;
    io.write_bytes = vs.write.bytes;
    s.per_node.push_back(io);
  }
  return s;
}

int DLsmDB::NumFilesAtLevel(int level) {
  VersionRef v = versions_->current();
  if (level < 0 || level >= v->num_levels()) return 0;
  return v->NumFiles(level);
}

bool DLsmDB::GetProperty(const Slice& property, std::string* value) {
  if (property == Slice("dlsm.timeseries")) {
    if (series_ == nullptr) return false;  // Sampler off: name unavailable.
    *value = series_->ToJson();
    return true;
  }
  if (property == Slice("dlsm.levels")) {
    VersionRef v = versions_->current();
    std::string out;
    char buf[96];
    for (int level = 0; level < v->num_levels(); level++) {
      std::snprintf(buf, sizeof(buf), "L%d: %d files, %llu bytes\n", level,
                    v->NumFiles(level),
                    static_cast<unsigned long long>(v->LevelBytes(level)));
      out.append(buf);
    }
    *value = std::move(out);
    return true;
  }
  if (property == Slice("dlsm.cache") && block_cache_ != nullptr) {
    // Engine view adds capacity/usage/offline state to the base
    // counter-only report.
    *value = block_cache_->PropertyString();
    return true;
  }
  if (property == Slice("dlsm.placement")) {
    // Engine view: policy plus the live per-node table/byte distribution
    // (the base implementation only reports the migration counters).
    std::vector<uint64_t> files(nodes_.size(), 0);
    std::vector<uint64_t> bytes(nodes_.size(), 0);
    VersionRef v = versions_->current();
    for (int level = 0; level < v->num_levels(); level++) {
      for (const FileRef& f : v->files(level)) {
        size_t slot = f->memory_node < nodes_.size() ? f->memory_node : 0;
        files[slot]++;
        bytes[slot] += f->data_len;
      }
    }
    std::string out;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "policy: %s\nnodes: %zu\nrebalance: %s\n",
                  placement_->Name(), nodes_.size(),
                  has_migrator_ ? "on" : "off");
    out.append(buf);
    for (size_t i = 0; i < nodes_.size(); i++) {
      std::snprintf(buf, sizeof(buf),
                    "node%zu: %llu tables, %llu bytes%s\n", i,
                    static_cast<unsigned long long>(files[i]),
                    static_cast<unsigned long long>(bytes[i]),
                    i == home_ ? " (home)" : "");
      out.append(buf);
    }
    std::snprintf(buf, sizeof(buf),
                  "tables_migrated: %llu\nmigration_bytes: %llu\n",
                  static_cast<unsigned long long>(
                      stat_tables_migrated_.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(
                      stat_migration_bytes_.load(std::memory_order_relaxed)));
    out.append(buf);
    *value = std::move(out);
    return true;
  }
  return DB::GetProperty(property, value);
}

Status DLsmDB::Close() {
  if (closed_) return Status::OK();

  // Unhook from the fabric before any state is torn down: the listener
  // captures `this` and may fire from another thread's CrashNode call.
  if (crash_listener_id_ != 0) {
    deps_.fabric->RemoveCrashListener(crash_listener_id_);
    crash_listener_id_ = 0;
  }

  // Stop coordinators first: no new compactions (or migrations).
  shutdown_.store(true, std::memory_order_release);
  {
    MutexLock l(&comp_mu_);
    comp_cv_.SignalAll();
  }
  {
    MutexLock l(&mem_mu_);
    backpressure_cv_.SignalAll();
  }
  {
    MutexLock l(&mig_mu_);
    mig_cv_.SignalAll();
  }
  // The telemetry thread snapshots the per-node managers; it must be gone
  // before node teardown below.
  StopTelemetry();
  if (has_migrator_) {
    env_->Join(migrator_);
    has_migrator_ = false;
  }
  for (ThreadHandle h : coordinators_) env_->Join(h);
  coordinators_.clear();

  // Drain flushes.
  {
    MutexLock l(&mem_mu_);
    while (pending_flushes_ > 0) {
      backpressure_cv_.Wait();
    }
  }
  owned_flush_pool_.reset();
  flush_pool_ = nullptr;

  closed_ = true;

  // Release in-memory state; dropping the VersionSet releases every file,
  // which enqueues their chunks for GC.
  {
    MutexLock l(&mem_mu_);
    MemTable* cur = mem_.load();
    if (cur != nullptr) cur->Unref();
    mem_.store(nullptr);
    for (MemTable* m : imms_) m->Unref();
    imms_.clear();
  }
  versions_.reset();
  DrainGc();  // Before the RPC clients die: remote frees need them.
  for (MemoryNodeState& n : nodes_) {
    n.arena.reset();
    n.owned_rpc.reset();
    n.rpc = nullptr;
    n.mgr.reset();
  }
  router_ = ReadRouter{};
  read_paths_.clear();
  mgr_ = nullptr;
  rpc_ = nullptr;
  return Status::OK();
}

}  // namespace dlsm
