// Lock-free concurrent skip list (paper Sec. IV: "dLSM follows existing
// systems in using a lock-free skip list to minimize lock use").
//
// Concurrency model, as in RocksDB's InlineSkipList:
//  * Inserts may run concurrently with each other and with readers; each
//    level link is spliced with a compare-and-swap and retried on conflict.
//  * Readers never block and see a consistent list: a node's next pointers
//    are published with release stores, read with acquire loads.
//  * Removal is not supported (LSM MemTables are insert-only; deletions are
//    tombstone inserts).
//
// Keys are const char* with an externally supplied comparator; allocation
// comes from an Arena whose lifetime must cover the list.

#ifndef DLSM_CORE_SKIPLIST_H_
#define DLSM_CORE_SKIPLIST_H_

#include <atomic>
#include <cstdlib>

#include "src/util/arena.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace dlsm {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  /// Creates a list that uses cmp for ordering and arena for node storage.
  explicit SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key. Safe to call concurrently with other inserts and with
  /// readers. Duplicate keys must not be inserted (internal keys carry a
  /// unique sequence number, so LSM usage never does).
  void Insert(const Key& key);

  /// Returns true iff a key comparing equal is in the list.
  bool Contains(const Key& key) const;

  /// Bidirectional iteration over the list.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list);

    bool Valid() const;
    const Key& key() const;
    void Next();
    void Prev();
    void Seek(const Key& target);
    void SeekToFirst();
    void SeekToLast();

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const {
    return (compare_(a, b) == 0);
  }
  bool KeyIsAfterNode(const Key& key, Node* n) const;
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;
  Node* FindLessThan(const Key& key) const;
  Node* FindLast() const;
  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
};

template <typename Key, class Comparator>
struct SkipList<Key, Comparator>::Node {
  explicit Node(const Key& k) : key(k) {}

  Key const key;

  Node* Next(int n) {
    DLSM_CHECK(n >= 0);
    return next_[n].load(std::memory_order_acquire);
  }
  void SetNext(int n, Node* x) {
    DLSM_CHECK(n >= 0);
    next_[n].store(x, std::memory_order_release);
  }
  bool CasNext(int n, Node* expected, Node* x) {
    DLSM_CHECK(n >= 0);
    return next_[n].compare_exchange_strong(expected, x,
                                            std::memory_order_acq_rel);
  }
  Node* NoBarrier_Next(int n) {
    return next_[n].load(std::memory_order_relaxed);
  }
  void NoBarrier_SetNext(int n, Node* x) {
    next_[n].store(x, std::memory_order_relaxed);
  }

 private:
  // Array of length equal to the node height; next_[0] is the lowest level.
  std::atomic<Node*> next_[1];
};

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::NewNode(const Key& key, int height) {
  char* const node_memory = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (node_memory) Node(key);
}

template <typename Key, class Comparator>
inline SkipList<Key, Comparator>::Iterator::Iterator(const SkipList* list) {
  list_ = list;
  node_ = nullptr;
}

template <typename Key, class Comparator>
inline bool SkipList<Key, Comparator>::Iterator::Valid() const {
  return node_ != nullptr;
}

template <typename Key, class Comparator>
inline const Key& SkipList<Key, Comparator>::Iterator::key() const {
  DLSM_CHECK(Valid());
  return node_->key;
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Next() {
  DLSM_CHECK(Valid());
  node_ = node_->Next(0);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Prev() {
  // No back links; search for the last node before node_.
  DLSM_CHECK(Valid());
  node_ = list_->FindLessThan(node_->key);
  if (node_ == list_->head_) {
    node_ = nullptr;
  }
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Seek(const Key& target) {
  node_ = list_->FindGreaterOrEqual(target, nullptr);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::SeekToFirst() {
  node_ = list_->head_->Next(0);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::SeekToLast() {
  node_ = list_->FindLast();
  if (node_ == list_->head_) {
    node_ = nullptr;
  }
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  // Thread-local generator: height choice needs no cross-thread agreement.
  static thread_local Random rnd(
      0xdecafbad ^ reinterpret_cast<uintptr_t>(&rnd));
  static const unsigned int kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd.OneIn(kBranching)) {
    height++;
  }
  DLSM_CHECK(height > 0);
  DLSM_CHECK(height <= kMaxHeight);
  return height;
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::KeyIsAfterNode(const Key& key,
                                               Node* n) const {
  return (n != nullptr) && (compare_(n->key, key) < 0);
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key,
                                              Node** prev) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        return next;
      }
      level--;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLessThan(const Key& key) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLast() const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key() /* any key will do */, kMaxHeight)),
      max_height_(1) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  int height = RandomHeight();

  // Raise the list height with a CAS race; losing is harmless (another
  // thread raised it, possibly further).
  int max_height = GetMaxHeight();
  while (height > max_height) {
    if (max_height_.compare_exchange_weak(max_height, height,
                                          std::memory_order_relaxed)) {
      break;
    }
  }

  Node* x = NewNode(key, height);
  for (int level = 0; level < height; level++) {
    for (;;) {
      Node* next = FindGreaterOrEqual(key, prev);
      // Splice at this level: link x between prev[level] and its successor.
      Node* succ = level == 0 ? next : prev[level]->Next(level);
      DLSM_CHECK_MSG(level != 0 || succ == nullptr ||
                         !Equal(key, succ->key),
                     "duplicate insert into skiplist");
      x->NoBarrier_SetNext(level, succ);
      if (prev[level]->CasNext(level, succ, x)) {
        break;
      }
      // Lost the race at this level; recompute predecessors and retry.
    }
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace dlsm

#endif  // DLSM_CORE_SKIPLIST_H_
