#include "src/core/compaction.h"

#include "src/core/merger.h"
#include "src/core/table_reader.h"
#include "src/util/coding.h"
#include "src/util/logging.h"

namespace dlsm {

// ---------------------------------------------------------------------------
// Wire formats
// ---------------------------------------------------------------------------

std::string CompactionTask::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(inputs.size()));
  for (const CompactionInput& in : inputs) {
    out.push_back(static_cast<char>(in.format));
    PutFixed64(&out, in.addr);
    PutVarint64(&out, in.start_off);
    PutVarint64(&out, in.end_off);
    PutLengthPrefixedSlice(&out, in.index_blob);
  }
  PutVarint64(&out, smallest_snapshot);
  out.push_back(drop_tombstones ? 1 : 0);
  PutVarint64(&out, target_file_size);
  PutVarint64(&out, output_chunk_size);
  out.push_back(static_cast<char>(output_format));
  PutVarint32(&out, block_size);
  PutVarint32(&out, bloom_bits_per_key);
  return out;
}

bool CompactionTask::Deserialize(const Slice& in, CompactionTask* task) {
  Slice input = in;
  uint32_t n;
  if (!GetVarint32(&input, &n)) return false;
  task->inputs.clear();
  task->inputs.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    CompactionInput ci;
    if (input.empty()) return false;
    ci.format = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    if (input.size() < 8) return false;
    ci.addr = DecodeFixed64(input.data());
    input.remove_prefix(8);
    Slice blob;
    if (!GetVarint64(&input, &ci.start_off) ||
        !GetVarint64(&input, &ci.end_off) ||
        !GetLengthPrefixedSlice(&input, &blob)) {
      return false;
    }
    ci.index_blob = blob.ToString();
    task->inputs.push_back(std::move(ci));
  }
  if (!GetVarint64(&input, &task->smallest_snapshot)) return false;
  if (input.size() < 1) return false;
  task->drop_tombstones = input[0] != 0;
  input.remove_prefix(1);
  if (!GetVarint64(&input, &task->target_file_size) ||
      !GetVarint64(&input, &task->output_chunk_size)) {
    return false;
  }
  if (input.size() < 1) return false;
  task->output_format = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  if (!GetVarint32(&input, &task->block_size) ||
      !GetVarint32(&input, &task->bloom_bits_per_key)) {
    return false;
  }
  return true;
}

std::string CompactionResult::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(outputs.size()));
  for (const CompactionOutput& o : outputs) {
    PutFixed64(&out, o.chunk.addr);
    PutFixed64(&out, o.chunk.size);
    PutFixed32(&out, o.chunk.rkey);
    PutFixed32(&out, o.chunk.owner_node);
    PutFixed32(&out, o.chunk.home_node);
    PutVarint64(&out, o.data_len);
    PutVarint64(&out, o.num_entries);
    PutLengthPrefixedSlice(&out, o.smallest.Encode());
    PutLengthPrefixedSlice(&out, o.largest.Encode());
    PutLengthPrefixedSlice(&out, o.index_blob);
  }
  return out;
}

bool CompactionResult::Deserialize(const Slice& in, CompactionResult* result) {
  Slice input = in;
  uint32_t n;
  if (!GetVarint32(&input, &n)) return false;
  result->outputs.clear();
  result->outputs.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    CompactionOutput o;
    if (input.size() < 28) return false;
    o.chunk.addr = DecodeFixed64(input.data());
    o.chunk.size = DecodeFixed64(input.data() + 8);
    o.chunk.rkey = DecodeFixed32(input.data() + 16);
    o.chunk.owner_node = DecodeFixed32(input.data() + 20);
    o.chunk.home_node = DecodeFixed32(input.data() + 24);
    input.remove_prefix(28);
    Slice smallest, largest, blob;
    if (!GetVarint64(&input, &o.data_len) ||
        !GetVarint64(&input, &o.num_entries) ||
        !GetLengthPrefixedSlice(&input, &smallest) ||
        !GetLengthPrefixedSlice(&input, &largest) ||
        !GetLengthPrefixedSlice(&input, &blob)) {
      return false;
    }
    o.smallest.DecodeFrom(smallest);
    o.largest.DecodeFrom(largest);
    o.index_blob = blob.ToString();
    result->outputs.push_back(std::move(o));
  }
  return true;
}

Status ParseCompactionReply(const std::string& reply,
                            CompactionResult* result) {
  if (reply.empty()) return Status::Corruption("empty compaction reply");
  if (reply[0] != 1) {
    return Status::IOError("near-data compaction failed",
                           Slice(reply.data() + 1, reply.size() - 1));
  }
  if (!CompactionResult::Deserialize(
          Slice(reply.data() + 1, reply.size() - 1), result)) {
    return Status::Corruption("bad compaction reply");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MergeAndBuild
// ---------------------------------------------------------------------------

Status MergeAndBuild(
    Env* env, Iterator* merged, const InternalKeyComparator& icmp,
    const BloomFilterPolicy& bloom, uint64_t smallest_snapshot,
    bool drop_tombstones, uint64_t target_file_size, TableFormat format,
    size_t block_size,
    const std::function<Status(const Slice& first_key,
                               remote::RemoteChunk* chunk,
                               std::unique_ptr<TableSink>* sink)>& new_output,
    std::vector<CompactionOutput>* outputs) {
  std::unique_ptr<Iterator> input(merged);
  uint64_t processed = 0;

  std::unique_ptr<TableSink> sink;
  std::unique_ptr<TableBuilder> builder;
  remote::RemoteChunk chunk;

  auto open_builder = [&](const Slice& first_key) -> Status {
    DLSM_RETURN_NOT_OK(new_output(first_key, &chunk, &sink));
    builder = format == TableFormat::kByteAddressable
                  ? NewByteTableBuilder(&bloom, sink.get())
                  : NewBlockTableBuilder(&bloom, sink.get(), block_size);
    return Status::OK();
  };

  auto close_builder = [&]() -> Status {
    TableBuildResult res;
    DLSM_RETURN_NOT_OK(builder->Finish(&res));
    CompactionOutput out;
    out.chunk = chunk;
    out.data_len = res.data_len;
    out.num_entries = res.num_entries;
    out.smallest = res.smallest;
    out.largest = res.largest;
    out.index_blob = std::move(res.index_blob);
    outputs->push_back(std::move(out));
    builder.reset();
    sink.reset();
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  const Comparator* ucmp = icmp.user_comparator();

  for (input->SeekToFirst(); input->Valid(); input->Next()) {
    // Scheduling point: keeps the virtual-time processor-sharing model
    // accurate through long merges.
    if (env != nullptr && (++processed & 511) == 0) {
      env->MaybeYield();
    }
    Slice key = input->key();
    ParsedInternalKey ikey;
    if (!ParseInternalKey(key, &ikey)) {
      return Status::Corruption("bad internal key during compaction");
    }

    bool user_key_changed =
        !has_current_user_key ||
        ucmp->Compare(ikey.user_key, Slice(current_user_key)) != 0;
    if (user_key_changed) {
      current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
      has_current_user_key = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }

    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      // A newer version of this user key is visible to every snapshot;
      // this one is shadowed (RocksDB rule #1).
      drop = true;
    } else if (ikey.type == kTypeDeletion &&
               ikey.sequence <= smallest_snapshot && drop_tombstones) {
      // Tombstone at the bottommost level: nothing underneath to hide.
      drop = true;
    }
    last_sequence_for_key = ikey.sequence;
    if (drop) continue;

    // Cut the output at the size target, but only between user keys so a
    // key's version chain never spans two files.
    if (builder != nullptr && user_key_changed &&
        builder->EstimatedSize() >= target_file_size) {
      DLSM_RETURN_NOT_OK(close_builder());
    }
    if (builder == nullptr) {
      DLSM_RETURN_NOT_OK(open_builder(ikey.user_key));
    }
    DLSM_RETURN_NOT_OK(builder->Add(key, input->value()));
  }
  DLSM_RETURN_NOT_OK(input->status());
  if (builder != nullptr && builder->NumEntries() > 0) {
    DLSM_RETURN_NOT_OK(close_builder());
  } else if (builder != nullptr) {
    builder.reset();
    sink.reset();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Near-data executor (memory node)
// ---------------------------------------------------------------------------

Status ExecuteCompactionTask(
    Env* env, const CompactionTask& task, const InternalKeyComparator& icmp,
    const std::function<remote::RemoteChunk()>& alloc_chunk,
    const std::function<void(const remote::RemoteChunk&)>& free_chunk,
    uint32_t self_node_id, CompactionResult* result) {
  // Local iterators over this node's own DRAM: near-data compaction reads
  // and writes without touching the network.
  std::vector<Iterator*> children;
  children.reserve(task.inputs.size());
  for (const CompactionInput& in : task.inputs) {
    const char* base = reinterpret_cast<const char*>(in.addr);
    uint64_t len = in.end_off - in.start_off;
    if (in.format == 1) {
      children.push_back(
          NewLocalByteTableIterator(base + in.start_off, len, icmp));
    } else {
      // Block tables are always compacted whole: sub-compaction slicing is
      // a byte-addressable capability (record-aligned offsets).
      if (in.start_off != 0) {
        for (Iterator* c : children) delete c;
        return Status::InvalidArgument("block input must start at offset 0");
      }
      auto index = TableIndex::Parse(in.index_blob);
      if (index == nullptr) {
        for (Iterator* c : children) delete c;
        return Status::Corruption("bad index blob in compaction task");
      }
      children.push_back(NewLocalBlockTableIterator(
          base, in.end_off, std::move(index), icmp));
    }
  }
  Iterator* merged = NewMergingIterator(
      &icmp, children.data(), static_cast<int>(children.size()));

  BloomFilterPolicy bloom(task.bloom_bits_per_key);
  std::vector<remote::RemoteChunk> allocated;
  auto new_output = [&](const Slice&, remote::RemoteChunk* chunk,
                        std::unique_ptr<TableSink>* sink) -> Status {
    remote::RemoteChunk c = alloc_chunk();
    if (!c.valid()) {
      return Status::OutOfMemory("memory-node compaction region exhausted");
    }
    c.owner_node = self_node_id;
    c.home_node = self_node_id;
    allocated.push_back(c);
    *chunk = c;
    *sink = std::make_unique<LocalMemorySink>(
        reinterpret_cast<char*>(c.addr), c.size);
    return Status::OK();
  };

  Status s = MergeAndBuild(
      env, merged, icmp, bloom, task.smallest_snapshot, task.drop_tombstones,
      task.target_file_size,
      task.output_format == 1 ? TableFormat::kByteAddressable
                              : TableFormat::kBlock,
      task.block_size, new_output, &result->outputs);
  if (!s.ok()) {
    for (const remote::RemoteChunk& c : allocated) free_chunk(c);
    result->outputs.clear();
  }
  return s;
}

}  // namespace dlsm
