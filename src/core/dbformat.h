// Internal key format: user_key + 8-byte trailer packing (sequence << 8 |
// value type), ordered by (user key ascending, sequence descending) so the
// newest version of a key sorts first, as in LevelDB/RocksDB.

#ifndef DLSM_CORE_DBFORMAT_H_
#define DLSM_CORE_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "src/core/comparator.h"
#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/slice.h"

namespace dlsm {

using SequenceNumber = uint64_t;

/// Largest representable sequence number (56 bits, as the trailer packs the
/// type into the low byte).
constexpr SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

/// Passed to seeks so that deletions at the same (key, seq) sort after
/// values would — kValueTypeForSeek must be the highest-numbered type.
constexpr ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

/// A parsed internal key.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;

  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, SequenceNumber seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

/// Appends the serialization of key to *result.
void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

/// Parses an internal key; returns false on malformed input.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

/// Returns the user key portion of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  DLSM_CHECK(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTrailer(const Slice& internal_key) {
  DLSM_CHECK(internal_key.size() >= 8);
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTrailer(internal_key) >> 8;
}

/// Orders internal keys by (user key asc, sequence desc, type desc).
class InternalKeyComparator {
 public:
  explicit InternalKeyComparator(const Comparator* user_comparator)
      : user_comparator_(user_comparator) {}

  int Compare(const Slice& a, const Slice& b) const {
    int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
    if (r == 0) {
      const uint64_t anum = ExtractTrailer(a);
      const uint64_t bnum = ExtractTrailer(b);
      if (anum > bnum) {
        r = -1;
      } else if (anum < bnum) {
        r = +1;
      }
    }
    return r;
  }

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

/// An owned internal key.
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return rep_; }
  Slice user_key() const { return ExtractUserKey(rep_); }
  bool empty() const { return rep_.empty(); }
  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

/// The key layout a MemTable lookup uses: length-prefixed internal key.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;
  ~LookupKey();

  /// Key formatted for MemTable seeks (varint length + internal key).
  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  /// The internal key.
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  /// The user key.
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoids allocation for short keys.
};

}  // namespace dlsm

#endif  // DLSM_CORE_DBFORMAT_H_
