// Compute-side hot-data cache: the typed view over ShardedClockCache
// used by the read paths. Entries are keyed by (table id, byte offset)
// and hold the exact bytes a one-sided READ of that (offset, length)
// would return — a hit elides the fabric round trip entirely.
//
// Correctness model: SSTable chunks are immutable and file numbers from
// VersionSet::NewFileNumber() are never reused, so a (table, offset, len)
// key can never alias different bytes. Invalidation (on table deletion
// after compaction, and on memory-node crash) is therefore hygiene plus
// fail-closed crash semantics rather than a coherence requirement.
//
// Fail-closed: while the memory node is crashed the cache refuses to
// serve (offline flag, contents dropped), so a cached read can never
// succeed where the equivalent fabric read would have failed — keeping
// the fault-sweep "byte-identical or fail-closed" contract intact.

#ifndef DLSM_CORE_BLOCK_CACHE_H_
#define DLSM_CORE_BLOCK_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/cache.h"

namespace dlsm {

class BlockCache {
 public:
  /// capacity_bytes: payload budget (Options::block_cache_size).
  /// num_shards: rounded up to a power of two (Options::cache_shards).
  /// admission: enable the TinyLFU sketch (Options::cache_admission).
  BlockCache(size_t capacity_bytes, int num_shards, bool admission)
      : cache_(capacity_bytes, num_shards, admission) {}

  /// Returns true and fills dst[0..len) on hit. Always a miss while
  /// offline (memory node crashed).
  bool Lookup(uint64_t table, uint64_t offset, char* dst, size_t len) {
    if (offline_.load(std::memory_order_acquire)) return false;
    return cache_.Lookup(table, offset, dst, len);
  }

  /// Inserts bytes just read from the fabric. Dropped while offline.
  /// bypass_admission: skip the TinyLFU contest (point-read harvest
  /// inserts when the caller wants unconditional caching).
  void Insert(uint64_t table, uint64_t offset, const char* src, size_t len,
              bool bypass_admission = false) {
    if (offline_.load(std::memory_order_acquire)) return;
    cache_.Insert(table, offset, src, len, bypass_admission);
  }

  /// Drops all entries of one table (called when the table's remote
  /// chunk is freed after a compaction install).
  size_t InvalidateTable(uint64_t table) { return cache_.EraseKey1(table); }

  void Clear() { cache_.Clear(); }

  /// Crash/restart hook: going offline also drops the contents, so a
  /// restart never serves bytes cached before the fault.
  void set_offline(bool offline) {
    offline_.store(offline, std::memory_order_release);
    if (offline) cache_.Clear();
  }
  bool offline() const { return offline_.load(std::memory_order_acquire); }

  CacheStats stats() const { return cache_.stats(); }
  size_t usage() const { return cache_.usage(); }
  size_t capacity() const { return cache_.capacity(); }

  /// Human-readable summary backing the "dlsm.cache" property.
  std::string PropertyString() const;

 private:
  ShardedClockCache cache_;
  std::atomic<bool> offline_{false};
};

}  // namespace dlsm

#endif  // DLSM_CORE_BLOCK_CACHE_H_
