// Multi-compute / multi-memory deployment (paper Sec. IX, Fig. 5).
//
// c compute nodes each own lambda range shards; the c*lambda shards are
// assigned round-robin to the m memory nodes. Every shard is a complete
// dLSM instance whose MemTables live on its compute node and whose
// SSTables live on its memory node; single-shard accesses need no
// cross-node synchronization.

#ifndef DLSM_CORE_CLUSTER_H_
#define DLSM_CORE_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/db.h"
#include "src/core/db_impl.h"
#include "src/core/memory_node_service.h"
#include "src/rdma/fabric.h"

namespace dlsm {

struct ClusterTopology {
  ClusterTopology() {}
  int compute_nodes = 1;
  int memory_nodes = 1;
  /// Shards per compute node (lambda in the paper).
  int shards_per_compute = 1;
  int compute_cores = 24;
  int memory_cores = 4;
  int compaction_workers_per_memory = 12;
  size_t compute_dram = 4ull << 30;
  size_t memory_dram = 16ull << 30;
};

/// Owns the whole deployment: fabric, nodes, memory-node services and the
/// per-shard DBs, plus key routing.
class Cluster {
 public:
  /// Builds the deployment. boundaries partition the global key space into
  /// compute_nodes * shards_per_compute ranges (size = #shards - 1).
  static Status Create(Env* env, const Options& options,
                       const ClusterTopology& topology,
                       std::vector<std::string> boundaries,
                       std::unique_ptr<Cluster>* out);

  ~Cluster();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardForKey(const Slice& key) const;
  DB* shard_db(int shard) { return shards_[shard].get(); }
  /// The compute node that owns a shard's MemTables.
  int ComputeOfShard(int shard) const {
    return shard / topology_.shards_per_compute;
  }
  rdma::Node* compute_node(int i) { return computes_[i]; }
  rdma::Fabric* fabric() { return fabric_.get(); }
  MemoryNodeService* memory_service(int i) { return memories_[i].get(); }
  int num_memory_nodes() const { return static_cast<int>(memories_.size()); }

  /// Convenience: routes a Put/Get to the owning shard.
  Status Put(const Slice& key, const Slice& value) {
    return shards_[ShardForKey(key)]->Put(WriteOptions(), key, value);
  }
  Status Get(const Slice& key, std::string* value) {
    return shards_[ShardForKey(key)]->Get(ReadOptions(), key, value);
  }
  /// Batched point lookup across the whole deployment: keys fan out to
  /// their owning shards and each shard batches its doorbell waves on its
  /// own compute-to-memory link.
  void MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses);

  Status Flush();
  Status WaitForBackgroundIdle();
  Status Close();

 private:
  Cluster() = default;

  ClusterTopology topology_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::vector<rdma::Node*> computes_;
  std::vector<std::unique_ptr<MemoryNodeService>> memories_;
  std::vector<std::unique_ptr<ThreadPool>> flush_pools_;  // Per compute.
  // One RPC client per (compute, memory) pair in use.
  std::map<std::pair<int, int>, std::unique_ptr<remote::RpcClient>> rpcs_;
  std::vector<std::string> boundaries_;
  std::vector<std::unique_ptr<DB>> shards_;
  bool closed_ = false;
};

}  // namespace dlsm

#endif  // DLSM_CORE_CLUSTER_H_
