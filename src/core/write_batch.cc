#include "src/core/write_batch.h"

#include "src/core/memtable.h"
#include "src/util/coding.h"

namespace dlsm {

namespace {
// rep_ layout:
//   fixed32 count
//   records: kTypeValue varstring varstring | kTypeDeletion varstring
constexpr size_t kHeader = 4;
}  // namespace

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader, 0);
}

uint32_t WriteBatch::Count() const { return DecodeFixed32(rep_.data()); }

namespace {
void SetCount(std::string* rep, uint32_t n) { EncodeFixed32(rep->data(), n); }
}  // namespace

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(&rep_, Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(&rep_, Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  Slice key, value;
  uint32_t found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.remove_prefix(1);
    switch (static_cast<ValueType>(tag)) {
      case kTypeValue:
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->Put(key, value);
        } else {
          return Status::Corruption("bad WriteBatch Put");
        }
        break;
      case kTypeDeletion:
        if (GetLengthPrefixedSlice(&input, &key)) {
          handler->Delete(key);
        } else {
          return Status::Corruption("bad WriteBatch Delete");
        }
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

uint32_t WriteBatchInternal::Count(const WriteBatch* batch) {
  return batch->Count();
}

namespace {

class MemTableInserter : public WriteBatch::Handler {
 public:
  SequenceNumber sequence;
  MemTable* mem;

  void Put(const Slice& key, const Slice& value) override {
    mem->Add(sequence, kTypeValue, key, value);
    sequence++;
  }
  void Delete(const Slice& key) override {
    mem->Add(sequence, kTypeDeletion, key, Slice());
    sequence++;
  }
};

}  // namespace

Status WriteBatchInternal::InsertInto(const WriteBatch* batch,
                                      SequenceNumber base_seq,
                                      MemTable* mem) {
  MemTableInserter inserter;
  inserter.sequence = base_seq;
  inserter.mem = mem;
  return batch->Iterate(&inserter);
}

}  // namespace dlsm
