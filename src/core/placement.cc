#include "src/core/placement.h"

#include <algorithm>

namespace dlsm {

namespace {

// Today's wiring: the whole shard pins to one node. Keeping the shard
// offset means a lambda-sharded compute spreads its shards exactly as the
// old `s % memory_nodes` line did, so round-robin is the bit-identical
// baseline the other policies are tested against.
class RoundRobinPolicy : public PlacementPolicy {
 public:
  int Place(const PlacementContext& ctx, int nodes) const override {
    return ctx.shard % nodes;
  }
  const char* Name() const override { return "round_robin"; }
};

// Stripes a shard's tables across all nodes in allocation order.
class TablePolicy : public PlacementPolicy {
 public:
  int Place(const PlacementContext& ctx, int nodes) const override {
    return static_cast<int>((ctx.shard + ctx.table_seq) % nodes);
  }
  const char* Name() const override { return "table"; }
};

// One node per level: compaction inputs for level n+1 outputs share a
// node with the outputs, keeping near-data compaction node-local per
// level transition's lower half.
class LevelPolicy : public PlacementPolicy {
 public:
  int Place(const PlacementContext& ctx, int nodes) const override {
    return (ctx.shard + ctx.level) % nodes;
  }
  const char* Name() const override { return "level"; }
};

// Key-range partitioning: explicit split points when provided, else a
// uniform hash of the key's first 8 bytes (big-endian fraction of the key
// space). An empty first key (unknown at allocation time) falls back to
// the shard's round-robin slot.
class RangePolicy : public PlacementPolicy {
 public:
  explicit RangePolicy(std::vector<std::string> split_points)
      : split_points_(std::move(split_points)) {}

  int Place(const PlacementContext& ctx, int nodes) const override {
    if (ctx.first_key.empty()) return ctx.shard % nodes;
    if (!split_points_.empty()) {
      std::string key = ctx.first_key.ToString();
      size_t bucket = std::upper_bound(split_points_.begin(),
                                       split_points_.end(), key) -
                      split_points_.begin();
      return static_cast<int>(bucket % nodes);
    }
    uint64_t prefix = 0;
    for (size_t i = 0; i < 8; i++) {
      prefix <<= 8;
      if (i < ctx.first_key.size()) {
        prefix |= static_cast<uint8_t>(ctx.first_key[i]);
      }
    }
    // Map the 64-bit prefix fraction onto the node count.
    return static_cast<int>(
        (static_cast<unsigned __int128>(prefix) * nodes) >> 64);
  }
  const char* Name() const override { return "range"; }

 private:
  std::vector<std::string> split_points_;
};

}  // namespace

std::unique_ptr<PlacementPolicy> NewPlacementPolicy(const Options& options) {
  switch (options.placement_policy) {
    case PlacementPolicyKind::kTable:
      return std::make_unique<TablePolicy>();
    case PlacementPolicyKind::kLevel:
      return std::make_unique<LevelPolicy>();
    case PlacementPolicyKind::kRange:
      return std::make_unique<RangePolicy>(options.placement_split_points);
    case PlacementPolicyKind::kRoundRobin:
      break;
  }
  return std::make_unique<RoundRobinPolicy>();
}

const char* PlacementPolicyKindName(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kRoundRobin:
      return "round_robin";
    case PlacementPolicyKind::kTable:
      return "table";
    case PlacementPolicyKind::kLevel:
      return "level";
    case PlacementPolicyKind::kRange:
      return "range";
  }
  return "unknown";
}

}  // namespace dlsm
