// SSTable builders for the two on-remote-memory layouts (paper Sec. VI).
//
// Byte-addressable (dLSM): key-value records are serialized back to back —
// no blocks, no wrapping copy — with a per-record index. Building is a pure
// streaming serialization into the sink ("the key-value pairs are directly
// serialized to the target buffer without waiting to form a block").
//
// Block (RocksDB-style, used by dLSM-Block and the ported baselines):
// records are packed into prefix-compressed blocks with restart points; a
// per-block index maps each block's last key to its extent.

#ifndef DLSM_CORE_TABLE_BUILDER_H_
#define DLSM_CORE_TABLE_BUILDER_H_

#include <memory>
#include <string>

#include "src/core/bloom.h"
#include "src/core/dbformat.h"
#include "src/core/table_index.h"
#include "src/core/table_sink.h"

namespace dlsm {

/// Output of a finished table build; becomes FileMetaData fields.
struct TableBuildResult {
  uint64_t num_entries = 0;
  uint64_t data_len = 0;
  InternalKey smallest;
  InternalKey largest;
  std::string index_blob;  ///< Serialized TableIndex (index + bloom).
};

/// Streaming SSTable builder. Add() keys must arrive in increasing
/// internal-key order.
class TableBuilder {
 public:
  virtual ~TableBuilder() = default;
  virtual Status Add(const Slice& internal_key, const Slice& value) = 0;
  virtual Status Finish(TableBuildResult* result) = 0;
  /// Data-region bytes emitted so far (for file-size cutting).
  virtual uint64_t EstimatedSize() const = 0;
  virtual uint64_t NumEntries() const = 0;
};

/// Byte-addressable builder.
std::unique_ptr<TableBuilder> NewByteTableBuilder(
    const BloomFilterPolicy* bloom, TableSink* sink);

/// Block-format builder with the given block size.
std::unique_ptr<TableBuilder> NewBlockTableBuilder(
    const BloomFilterPolicy* bloom, TableSink* sink, size_t block_size);

}  // namespace dlsm

#endif  // DLSM_CORE_TABLE_BUILDER_H_
