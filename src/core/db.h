// Public dLSM database interface.

#ifndef DLSM_CORE_DB_H_
#define DLSM_CORE_DB_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/iterator.h"
#include "src/core/options.h"
#include "src/core/write_batch.h"
#include "src/rdma/verb_stats.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dlsm {

/// An immutable view of the database as of some sequence number.
class Snapshot {
 public:
  virtual ~Snapshot() = default;
  virtual uint64_t sequence() const = 0;
};

/// Aggregate engine statistics (all monotonic counters).
struct DbStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t compaction_input_bytes = 0;
  uint64_t compaction_output_bytes = 0;
  uint64_t stall_ns = 0;          ///< Total write-stall virtual time.
  uint64_t bloom_useful = 0;      ///< Remote reads skipped by bloom filters.
  /// Peak concurrent near-data compaction RPCs (async scheduler window);
  /// 1 when the verb budget serializes them or async_write is off.
  uint64_t compaction_rpc_inflight_peak = 0;

  // Fault/recovery telemetry (all zero when injection is off).
  uint64_t read_retries = 0;   ///< Point/scan reads re-issued after a fault.
  uint64_t flush_retries = 0;  ///< Flush jobs re-run before install.
  uint64_t rpc_retries = 0;    ///< RPC attempts re-issued after a failure.
  uint64_t rpc_timeouts = 0;   ///< RPC attempts that hit the reply deadline.
  /// Operations the stall watchdog found outstanding beyond their deadline
  /// (Options::watchdog_deadline_ms); 0 when the watchdog is off.
  uint64_t watchdog_stalls = 0;

  // Multi-memory-node placement (zero / empty on single-node engines).
  uint64_t tables_migrated = 0;  ///< Heat-rebalancer version-install swaps.
  uint64_t migration_bytes = 0;  ///< Table bytes copied node-to-node.
  /// Per-memory-node verb/byte distribution of this engine's traffic,
  /// indexed by memory-node slot; the imbalance input for the heat
  /// rebalancer and the fig15 per-node report. Sharded wrappers merge
  /// slot-wise across shards.
  struct NodeIoStats {
    uint64_t read_verbs = 0;
    uint64_t read_bytes = 0;
    uint64_t write_verbs = 0;
    uint64_t write_bytes = 0;
  };
  std::vector<NodeIoStats> per_node;

  // Compute-side block cache (all zero when block_cache_size == 0).
  uint64_t cache_hits = 0;              ///< Reads served without the fabric.
  uint64_t cache_misses = 0;            ///< Cache probes that went remote.
  uint64_t cache_inserts = 0;           ///< Fills admitted into the cache.
  uint64_t cache_evictions = 0;         ///< Entries displaced by CLOCK.
  uint64_t cache_admission_rejects = 0; ///< Fills the TinyLFU sketch refused.

  /// Verb-layer telemetry of this engine's compute->memory connection:
  /// per-verb-class ops/bytes and wire-latency histograms, plus
  /// outstanding-op gauges and error/reconnect counts. Merged exactly
  /// across shards.
  rdma::RdmaVerbStats rdma;

  /// Multi-line human-readable dump of every counter (no histograms).
  std::string ToString() const;
};

/// Machine-readable serialization of a DbStats snapshot: every counter
/// plus the full verb-class telemetry (RdmaVerbStats::ToJson, including
/// latency histogram percentiles). One JSON object, no trailing newline.
std::string StatsJson(const DbStats& stats);

/// A key-value store. Thread-safe: any number of concurrent readers and
/// writers. Iterators and snapshots must be released before Close().
class DB {
 public:
  virtual ~DB() = default;

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* batch) = 0;
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Batched point lookup: values and statuses are resized to keys.size()
  /// and (*statuses)[i] answers keys[i] exactly as Get would. Every key is
  /// read at one snapshot — options.snapshot_sequence when given, else the
  /// latest sequence at call time. The base implementation loops Get;
  /// engines override it to post one doorbell batch of remote READs per
  /// level wave and resolve per-key newest-wins locally.
  virtual void MultiGet(const ReadOptions& options,
                        std::span<const Slice> keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses);

  /// Iterator over user keys/values at the read snapshot. Caller deletes.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// Forces the current MemTable out and waits until every immutable
  /// MemTable has been flushed.
  virtual Status Flush() = 0;

  /// Blocks until no flush or compaction work remains (bench warm-down;
  /// the paper's read benchmarks "start after all the background
  /// compaction tasks finish").
  virtual Status WaitForBackgroundIdle() = 0;

  virtual DbStats GetStats() = 0;

  /// Number of SSTables at the given level (diagnostics).
  virtual int NumFilesAtLevel(int level) = 0;

  /// Introspection by property name; fills *value and returns true for:
  ///   "dlsm.stats"  — human-readable counter dump
  ///   "dlsm.levels" — per-level file counts (engines that track remote
  ///                   placement also report per-level byte counts)
  ///   "dlsm.rdma"   — verb-class wire telemetry summary
  ///   "dlsm.cache"  — compute-side block cache summary (capacity, usage,
  ///                   hit rate; all-zero counters when the cache is off)
  ///   "dlsm.placement" — table placement / migration summary (policy,
  ///                   per-node distribution, migration counters; engines
  ///                   with one memory node report the degenerate layout)
  ///   "dlsm.timeseries" — continuous-telemetry sample ring as JSON
  ///                   (engines only, and only when
  ///                   Options::stats_sample_period_ms > 0; the base
  ///                   implementation returns false)
  /// Returns false (leaving *value untouched) for unknown names. The base
  /// implementation derives everything from GetStats/NumFilesAtLevel, so
  /// every engine (baselines, sharded wrappers) supports these names.
  virtual bool GetProperty(const Slice& property, std::string* value);

  /// Stops background work and releases resources. Called by the
  /// destructor if needed.
  virtual Status Close() = 0;
};

inline void DB::MultiGet(const ReadOptions& options,
                         std::span<const Slice> keys,
                         std::vector<std::string>* values,
                         std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  ReadOptions ro = options;
  const Snapshot* snap = nullptr;
  if (ro.snapshot_sequence == ~0ull) {
    snap = GetSnapshot();
    ro.snapshot_sequence = snap->sequence();
  }
  for (size_t i = 0; i < keys.size(); i++) {
    (*statuses)[i] = Get(ro, keys[i], &(*values)[i]);
  }
  if (snap != nullptr) ReleaseSnapshot(snap);
}

}  // namespace dlsm

#endif  // DLSM_CORE_DB_H_
