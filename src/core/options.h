// Configuration for dLSM databases. Defaults follow the paper's setup
// (Sec. XI-B) scaled by the bench harness where noted.

#ifndef DLSM_CORE_OPTIONS_H_
#define DLSM_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/comparator.h"
#include "src/sim/env.h"

namespace dlsm {

/// SSTable layout (paper Sec. VI / Fig. 13 ablation).
enum class TableFormat {
  /// Byte-addressable: contiguous sorted kv records + kv-granular index;
  /// point reads fetch exactly one record.
  kByteAddressable,
  /// Block-based (RocksDB-style): reads fetch whole blocks.
  kBlock,
};

/// Where compaction executes (paper Sec. V / Fig. 12 ablation).
enum class CompactionPlacement {
  /// Offloaded to the memory node via the customized RPC (near-data).
  kNearData,
  /// On the compute node: inputs pulled and outputs pushed over the wire.
  kComputeSide,
};

/// Which memory node receives each new SSTable when the deployment has
/// more than one (see src/core/placement.h). With a single memory node
/// every policy degenerates to node 0.
enum class PlacementPolicyKind {
  /// Static: every table of a shard lands on shard % nodes — exactly the
  /// pre-placement `s % memory_nodes` cluster wiring, and the equivalence
  /// baseline for the other policies.
  kRoundRobin,
  /// Per-table rotation: the shard's tables stripe across all nodes in
  /// allocation order.
  kTable,
  /// Per-level: each LSM level of a shard maps to one node, so compaction
  /// I/O for a level stays node-local.
  kLevel,
  /// Key-range: the table's first user key picks the node, either through
  /// explicit split points or a uniform prefix hash.
  kRange,
};

/// How writes reach the MemTable.
enum class WritePath {
  /// dLSM: lock-free — atomic sequence allocation + lock-free skiplist.
  kLockFree,
  /// RocksDB-style: writers queue on a mutex and a leader commits a group
  /// at a time (the software overhead of the ported baselines).
  kWriterQueue,
};

/// How a full MemTable is made immutable (paper Sec. IV ablation).
enum class MemTableSwitchPolicy {
  /// dLSM: each MemTable owns a predefined sequence-number range; the
  /// switch lock is touched once per range.
  kSeqRange,
  /// Naive double-checked locking on the size limit (the paper explains
  /// why this mis-orders racing writers; kept for the ablation bench).
  kDoubleCheckedSize,
};

struct Options {
  Options() {}

  /// Execution environment (never null when a DB is opened).
  Env* env = nullptr;

  const Comparator* comparator = BytewiseComparator();

  // -- Write path -----------------------------------------------------------

  /// MemTable byte budget. Paper default 64 MB; benches scale to 4 MB.
  size_t memtable_size = 4 << 20;

  /// Sequence numbers per MemTable under kSeqRange. 0 derives it from
  /// memtable_size / estimated_entry_size.
  uint64_t memtable_seq_range = 0;

  /// Rough per-entry footprint used to derive the sequence range.
  size_t estimated_entry_size = 448;

  MemTableSwitchPolicy switch_policy = MemTableSwitchPolicy::kSeqRange;

  WritePath write_path = WritePath::kLockFree;

  /// Asynchronous write path (mirrors ReadOptions::async_reads): flush
  /// buffers leave as handle waves drained once per job instead of per
  /// output, writer-queue groups take one sequence allocation for the
  /// whole group, and near-data compaction RPCs are pipelined through
  /// RpcClient::CallAsync. When false every flush buffer is a blocking
  /// WRITE and each compaction RPC parks its scheduler thread — the
  /// fig7/fig12 --async_write=false ablation leg.
  bool async_write = true;

  /// Verb-budget cap for the pipelined compaction scheduler: before
  /// widening its in-flight RPC window it requires (window size +
  /// outstanding verbs on this engine's connection) <= budget, so
  /// compaction waves yield to foreground read/flush traffic instead of
  /// relying on link fairness. 1 serializes sub-compaction RPCs; 0 means
  /// no cap. Only consulted when async_write is set.
  uint64_t compaction_verb_budget = 64;

  /// Maximum immutable MemTables awaiting flush (paper: 16).
  int max_immutables = 16;

  /// Background flush threads on the compute node (paper: 4).
  int flush_threads = 4;

  // -- SSTables --------------------------------------------------------------

  /// Target SSTable data size. Paper default 64 MB; benches scale to 4 MB.
  size_t sstable_size = 4 << 20;

  /// Remote slab chunk size; 0 derives sstable_size plus headroom for the
  /// serialized index and bloom filter.
  size_t sstable_slab_size = 0;

  int bloom_bits_per_key = 10;

  TableFormat table_format = TableFormat::kByteAddressable;

  /// Block size when table_format == kBlock (8 KB RocksDB default).
  size_t block_size = 8192;

  // -- Compaction ------------------------------------------------------------

  CompactionPlacement compaction_placement = CompactionPlacement::kNearData;

  /// L0 file count that triggers compaction (RocksDB default 4).
  int l0_compaction_trigger = 4;

  /// L0 file count at which writers stall (paper normal mode: 36;
  /// bulkload mode: effectively infinity).
  int l0_stop_writes_trigger = 36;

  /// Compute-side compaction coordinator threads; each drives one
  /// (sub-)compaction RPC at a time.
  int compaction_scheduler_threads = 4;

  /// Maximum parallel sub-compactions an L0 compaction splits into
  /// (paper: 12 subcompaction workers).
  int max_subcompactions = 12;

  /// Bytes allowed at L1 before compaction pressure; deeper levels grow by
  /// level_size_multiplier. 0 derives 4 * sstable_size.
  uint64_t max_bytes_for_level_base = 0;
  double level_size_multiplier = 10.0;

  int num_levels = 7;

  // -- Remote memory ----------------------------------------------------------

  /// Compute-controlled region for flushed SSTables.
  size_t flush_region_size = 1ull << 31;

  /// Memory-node-controlled region for near-data compaction outputs.
  size_t compaction_region_size = 1ull << 31;

  /// Registered flush staging buffer size (Sec. X-C pipeline).
  size_t flush_buffer_size = 256 << 10;

  /// Buffers per flush pipeline before the writer must recycle.
  int flush_buffers_per_thread = 4;

  /// Sequential-read prefetch granularity for scans (Sec. VI: "prefetches
  /// large chunks of key-value pairs by sequential I/O").
  size_t scan_prefetch_size = 2 << 20;

  // -- Fault handling ---------------------------------------------------------
  //
  // Recovery policy for injected fabric faults (rdma::FaultParams). The
  // defaults keep the fault-free fast paths bit-identical: no deadline
  // arithmetic on RPCs, and the one-sided retry loops only engage when a
  // verb actually fails.

  /// Per-attempt RPC reply deadline; 0 waits forever. Forwarded to the
  /// shared RpcClient at Open (remote::RpcPolicy::timeout_ns).
  uint64_t rpc_timeout_ns = 0;

  /// Additional RPC attempts after a transient failure (timeout, flushed
  /// send, QP error). Only honored when rpc_timeout_ns > 0.
  int rpc_max_retries = 0;

  /// Base backoff between RPC attempts; doubles per attempt.
  uint64_t rpc_retry_backoff_ns = 100 * 1000;

  /// Additional attempts for one-sided verbs on the read and flush paths
  /// (table reads, L0 probe waves, scan prefetch, flush waves). Each
  /// retry first recovers the failed QP (drain + reset + reconnect).
  int rdma_max_retries = 3;

  /// Base backoff between one-sided retries; doubles per attempt.
  uint64_t rdma_retry_backoff_ns = 50 * 1000;

  /// Times a failed flush job is re-queued before the DB fail-closes with
  /// a background error (no version is ever installed over missing bytes).
  int flush_max_retries = 3;

  // -- Baseline modeling ------------------------------------------------------

  /// Adds one staging-buffer copy on every remote table read and write,
  /// modeling the file-system layer the ported baselines go through
  /// (RDMA-FS for RocksDB-RDMA, tmpfs for Nova-LSM).
  bool extra_io_copy = false;

  /// Routes point reads through a two-sided RPC served by the memory node
  /// (Nova-LSM's longer read path) instead of a one-sided READ.
  bool reads_via_rpc = false;

  /// When false, every table probe first fetches the table's index block
  /// from remote memory (RocksDB-RDMA without compute-side index caching;
  /// the paper caches indexes only for Memory-RocksDB-RDMA and dLSM).
  bool cache_index_blocks = true;

  // -- Compute-side cache -----------------------------------------------------
  //
  // A sharded CLOCK+TinyLFU cache of remote bytes keyed by (table id,
  // offset). Hits elide the one-sided READ (or read RPC) entirely. Off by
  // default: the paper's dLSM keeps no compute-side data cache, so the
  // measured baselines stay faithful unless explicitly enabled.

  /// Total cache budget in payload bytes; 0 disables the cache.
  size_t block_cache_size = 0;

  /// Cache shard count (rounded up to a power of two).
  int cache_shards = 16;

  /// TinyLFU admission: a newcomer must beat the CLOCK victim's estimated
  /// access frequency to displace it. Disable for pure-LRU-like behavior.
  bool cache_admission = true;

  /// Let scan prefetch fills enter the cache. Off by default so one-shot
  /// sequential traffic cannot pollute the point-read hot set.
  bool cache_scans = false;

  // -- Multi-memory-node placement -------------------------------------------
  //
  // Only consulted when DbDeps supplies more than one memory service;
  // single-node deployments ignore the whole block.

  /// Which node each new SSTable is installed on.
  PlacementPolicyKind placement_policy = PlacementPolicyKind::kRoundRobin;

  /// This engine's shard ordinal, used to offset static policies so sibling
  /// shards spread instead of piling on node 0. Cluster/ShardedDB set it.
  int placement_shard = 0;

  /// Explicit user-key split points for kRange (sorted; nodes = points+1
  /// buckets truncated to the node count). Empty = uniform prefix hash.
  std::vector<std::string> placement_split_points;

  /// Heat-based rebalancer: a background pass that moves hot tables off
  /// the most READ-loaded node when the max/mean per-node READ-verb ratio
  /// exceeds the threshold. Off by default (static placement).
  bool placement_rebalance = false;

  /// Interval between rebalance passes.
  uint64_t placement_rebalance_interval_ns = 50ull * 1000 * 1000;

  /// Max/mean READ-verb imbalance (over the last interval) that triggers a
  /// migration round.
  double placement_rebalance_threshold = 1.5;

  /// Tables moved per round (bounds migration WRITE traffic).
  int placement_rebalance_max_tables = 2;

  /// Region bytes requested per arena growth RPC when a node's flush arena
  /// is exhausted; 0 grows by flush_region_size.
  size_t flush_region_growth = 0;

  // -- Continuous telemetry ---------------------------------------------------
  //
  // A background sampler snapshots the engine's counters, per-node verb
  // distribution, and windowed wire-latency percentiles into a fixed-size
  // ring of time series rows, exported via GetProperty("dlsm.timeseries").
  // Off by default so determinism/equivalence runs are unperturbed; when
  // enabled the sampler thread runs on the compute node's virtual CPU and
  // two same-seed runs at cpu_scale=0 produce byte-identical series.

  /// Sampling period; 0 disables the sampler (and the series property).
  uint64_t stats_sample_period_ms = 0;

  /// Ring capacity in samples; the oldest rows fall off (counted in the
  /// exported "dropped" field).
  size_t stats_ring_capacity = 512;

  // -- Stall watchdog ---------------------------------------------------------
  //
  // Detects work outstanding beyond a deadline — verbs stuck on the wire,
  // flushes / compactions / migrations / compaction RPCs that stopped
  // making progress — and emits ONE diagnostic dump (series tail,
  // outstanding-verb table, per-QP state) to the sink. Deadlines are
  // virtual time, so sanitizer slowdown and cpu_scale=0 cannot trip it.

  /// Deadline after which in-flight work counts as stalled; 0 disables
  /// the watchdog.
  uint64_t watchdog_deadline_ms = 0;

  /// Watchdog evaluation period; 0 derives deadline/4 (min 1 ms).
  uint64_t watchdog_poll_ms = 0;

  /// Where the one-shot diagnostic dump goes; null writes to stderr.
  std::function<void(const std::string&)> watchdog_sink;

  // -- Sharding (Sec. VII) ----------------------------------------------------

  /// Number of range shards (lambda); each shard is an independent LSM.
  int shards = 1;
};

struct ReadOptions {
  ReadOptions() {}
  /// Read at this snapshot sequence; kMaxSequenceNumber-like default means
  /// "latest". Filled by DB::GetSnapshot users.
  uint64_t snapshot_sequence = ~0ull;

  /// Allow doorbell-batched asynchronous READs on the point-lookup path
  /// (concurrent L0 probes, MultiGet waves). Only honored on read paths
  /// that go through plain one-sided READs; baselines with RPC reads or
  /// staging copies always probe synchronously (a transport detail, not a
  /// semantic one). Combining async_reads with an uncached-index config
  /// (Options::cache_index_blocks == false) is rejected with
  /// Status::InvalidArgument — the per-probe index fetch cannot be folded
  /// into a doorbell wave, and silently degrading to synchronous probes
  /// used to hide real misconfiguration (see table_reader.h). Exposed
  /// mainly for the read-batching ablation bench.
  bool async_reads = true;
};

struct WriteOptions {
  WriteOptions() {}
};

}  // namespace dlsm

#endif  // DLSM_CORE_OPTIONS_H_
