#include "src/core/version.h"

#include <algorithm>

#include "src/core/table_reader.h"
#include "src/util/logging.h"

namespace dlsm {

namespace {

/// Two-level iterator over one sorted, non-overlapping level: opens one
/// table iterator at a time, advancing through the level's files.
class LevelConcatIterator : public Iterator {
 public:
  LevelConcatIterator(const ReadRouter& router,
                      const InternalKeyComparator& icmp,
                      std::vector<FileRef> files, size_t prefetch)
      : router_(router), icmp_(icmp), files_(std::move(files)),
        prefetch_(prefetch) {}

  bool Valid() const override { return table_ != nullptr && table_->Valid(); }
  Slice key() const override { return table_->key(); }
  Slice value() const override { return table_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return table_ != nullptr ? table_->status() : Status::OK();
  }

  void SeekToFirst() override {
    index_ = 0;
    OpenCurrent();
    if (table_ != nullptr) table_->SeekToFirst();
    SkipEmptyForward();
  }

  void SeekToLast() override {
    index_ = files_.empty() ? 0 : files_.size() - 1;
    OpenCurrent();
    if (table_ != nullptr) table_->SeekToLast();
    SkipEmptyBackward();
  }

  void Seek(const Slice& target) override {
    // Binary search for the first file whose largest key is >= target.
    size_t lo = 0, hi = files_.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (icmp_.Compare(files_[mid]->largest.Encode(), target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    index_ = lo;
    OpenCurrent();
    if (table_ != nullptr) table_->Seek(target);
    SkipEmptyForward();
  }

  void Next() override {
    DLSM_CHECK(Valid());
    table_->Next();
    SkipEmptyForward();
  }

  void Prev() override {
    DLSM_CHECK(Valid());
    table_->Prev();
    SkipEmptyBackward();
  }

 private:
  void OpenCurrent() {
    if (index_ >= files_.size()) {
      table_.reset();
      return;
    }
    table_.reset(NewRemoteTableIterator(router_.route(*files_[index_]), icmp_,
                                        files_[index_], prefetch_));
  }

  void SkipEmptyForward() {
    while (table_ != nullptr && !table_->Valid() &&
           index_ + 1 < files_.size()) {
      index_++;
      OpenCurrent();
      if (table_ != nullptr) table_->SeekToFirst();
    }
  }

  void SkipEmptyBackward() {
    while (table_ != nullptr && !table_->Valid() && index_ > 0) {
      index_--;
      OpenCurrent();
      if (table_ != nullptr) table_->SeekToLast();
    }
  }

  ReadRouter router_;
  InternalKeyComparator icmp_;
  std::vector<FileRef> files_;
  size_t prefetch_;
  size_t index_ = 0;
  std::unique_ptr<Iterator> table_;
  Status status_;
};

bool AfterFile(const Comparator* ucmp, const Slice& user_key,
               const FileMetaData& f) {
  return ucmp->Compare(user_key, ExtractUserKey(f.largest.Encode())) > 0;
}

bool BeforeFile(const Comparator* ucmp, const Slice& user_key,
                const FileMetaData& f) {
  return ucmp->Compare(user_key, ExtractUserKey(f.smallest.Encode())) < 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Version
// ---------------------------------------------------------------------------

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const FileRef& f : levels_[level]) total += f->data_len;
  return total;
}

int Version::TotalFiles() const {
  int total = 0;
  for (const auto& level : levels_) total += static_cast<int>(level.size());
  return total;
}

void Version::CollectSearchOrder(const InternalKeyComparator& icmp,
                                 const Slice& user_key,
                                 std::vector<const FileMetaData*>* result,
                                 size_t* num_l0) const {
  const Comparator* ucmp = icmp.user_comparator();
  result->clear();
  // L0 is kept newest-first; all overlapping files must be probed in order.
  for (const FileRef& f : levels_[0]) {
    if (!AfterFile(ucmp, user_key, *f) && !BeforeFile(ucmp, user_key, *f)) {
      result->push_back(f.get());
    }
  }
  if (num_l0 != nullptr) *num_l0 = result->size();
  // Deeper levels are sorted and disjoint: at most one candidate each.
  for (int level = 1; level < num_levels(); level++) {
    const auto& files = levels_[level];
    if (files.empty()) continue;
    // First file whose largest user key is >= user_key.
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (ucmp->Compare(ExtractUserKey(files[mid]->largest.Encode()),
                        user_key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < files.size() && !BeforeFile(ucmp, user_key, *files[lo])) {
      result->push_back(files[lo].get());
    }
  }
}

std::vector<FileRef> Version::GetOverlappingInputs(
    const InternalKeyComparator& icmp, int level, const Slice& smallest,
    const Slice& largest) const {
  const Comparator* ucmp = icmp.user_comparator();
  std::vector<FileRef> result;
  for (const FileRef& f : levels_[level]) {
    if (ucmp->Compare(ExtractUserKey(f->largest.Encode()), smallest) < 0 ||
        ucmp->Compare(ExtractUserKey(f->smallest.Encode()), largest) > 0) {
      continue;
    }
    result.push_back(f);
  }
  return result;
}

void Version::AddIterators(const ReadRouter& router,
                           const InternalKeyComparator& icmp, size_t prefetch,
                           std::vector<Iterator*>* iters) const {
  for (const FileRef& f : levels_[0]) {
    iters->push_back(NewRemoteTableIterator(router.route(*f), icmp, f,
                                            prefetch));
  }
  for (int level = 1; level < num_levels(); level++) {
    if (!levels_[level].empty()) {
      iters->push_back(new LevelConcatIterator(router, icmp,
                                               levels_[level], prefetch));
    }
  }
}

// ---------------------------------------------------------------------------
// VersionSet
// ---------------------------------------------------------------------------

VersionSet::VersionSet(const InternalKeyComparator* icmp,
                       const Options* options)
    : icmp_(icmp), options_(options),
      compact_pointer_(options->num_levels) {
  current_ = std::make_shared<Version>(options->num_levels);
}

VersionRef VersionSet::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t VersionSet::MaxBytesForLevel(int level) const {
  uint64_t base = options_->max_bytes_for_level_base != 0
                      ? options_->max_bytes_for_level_base
                      : 4 * options_->sstable_size;
  double result = static_cast<double>(base);
  for (int l = 1; l < level; l++) {
    result *= options_->level_size_multiplier;
  }
  return static_cast<uint64_t>(result);
}

void VersionSet::Apply(const VersionEdit& edit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<Version>(options_->num_levels);
  // Copy-on-write: carry forward all files except the deleted ones.
  for (int level = 0; level < options_->num_levels; level++) {
    for (const FileRef& f : current_->levels_[level]) {
      bool deleted = false;
      for (const auto& [dl, dn] : edit.deleted) {
        if (dl == level && dn == f->number) {
          deleted = true;
          break;
        }
      }
      if (!deleted) next->levels_[level].push_back(f);
    }
  }
  for (const auto& [level, f] : edit.added) {
    next->levels_[level].push_back(f);
  }
  // L0: newest first, so readers probe in time order. Flushes can finish
  // out of order, so age is the source MemTable's sequence base.
  std::sort(next->levels_[0].begin(), next->levels_[0].end(),
            [](const FileRef& a, const FileRef& b) {
              if (a->l0_order != b->l0_order) return a->l0_order > b->l0_order;
              return a->number > b->number;
            });
  // Deeper levels: by smallest key; files are disjoint.
  for (int level = 1; level < options_->num_levels; level++) {
    std::sort(next->levels_[level].begin(), next->levels_[level].end(),
              [this](const FileRef& a, const FileRef& b) {
                return icmp_->Compare(a->smallest.Encode(),
                                      b->smallest.Encode()) < 0;
              });
  }
  current_ = std::move(next);
}

Status VersionSet::Replace(int level, uint64_t number, FileRef replacement) {
  std::lock_guard<std::mutex> lock(mu_);
  // A busy file is a compaction input in flight: its bytes are being read
  // at the old address, so swapping the metadata now would tear the
  // compaction. The migrator just retries a different victim later.
  if (busy_files_.count(number) != 0) {
    return Status::Busy("file is a compaction input");
  }
  const auto& files = current_->levels_[level];
  size_t pos = files.size();
  for (size_t i = 0; i < files.size(); i++) {
    if (files[i]->number == number) {
      pos = i;
      break;
    }
  }
  if (pos == files.size()) {
    return Status::NotFound("file left the version");
  }
  // Copy-on-write swap: in-flight readers keep their pinned version (and
  // the old chunk, which the old FileMetaData's gc only frees once the
  // last reader drops it); new readers route to the new node immediately.
  auto next = std::make_shared<Version>(options_->num_levels);
  next->levels_ = current_->levels_;
  next->levels_[level][pos] = std::move(replacement);
  current_ = std::move(next);
  return Status::OK();
}

bool VersionSet::NeedsStall() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->NumFiles(0) >= options_->l0_stop_writes_trigger;
}

bool VersionSet::NeedsCompaction() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Version& v = *current_;
  if (v.NumFiles(0) >= options_->l0_compaction_trigger &&
      !l0_compaction_running_) {
    return true;
  }
  for (int level = 1; level < options_->num_levels - 1; level++) {
    if (v.LevelBytes(level) > MaxBytesForLevel(level)) return true;
  }
  return false;
}

CompactionPick VersionSet::PickCompaction() {
  std::lock_guard<std::mutex> lock(mu_);
  return PickCompactionLocked();
}

CompactionPick VersionSet::PickCompactionLocked() {
  const Version& v = *current_;
  CompactionPick pick;

  // Scores, L0 by file count, deeper levels by bytes.
  double best_score = 1.0;
  int best_level = -1;
  if (!l0_compaction_running_) {
    double l0_score = static_cast<double>(v.NumFiles(0)) /
                      options_->l0_compaction_trigger;
    if (l0_score >= best_score) {
      best_score = l0_score;
      best_level = 0;
    }
  }
  for (int level = 1; level < options_->num_levels - 1; level++) {
    double score = static_cast<double>(v.LevelBytes(level)) /
                   static_cast<double>(MaxBytesForLevel(level));
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  if (best_level < 0) return pick;

  auto is_busy = [this](const FileRef& f) {
    return busy_files_.count(f->number) != 0;
  };

  if (best_level == 0) {
    // All of L0 (they overlap mutually, and taking the full set preserves
    // the oldest-prefix invariant) plus the overlapping span of L1.
    std::vector<FileRef> l0 = v.files(0);
    if (l0.empty()) return pick;
    for (const FileRef& f : l0) {
      if (is_busy(f)) return pick;
    }
    std::string smallest = ExtractUserKey(l0[0]->smallest.Encode()).ToString();
    std::string largest = ExtractUserKey(l0[0]->largest.Encode()).ToString();
    const Comparator* ucmp = icmp_->user_comparator();
    for (const FileRef& f : l0) {
      Slice s = ExtractUserKey(f->smallest.Encode());
      Slice l = ExtractUserKey(f->largest.Encode());
      if (ucmp->Compare(s, smallest) < 0) smallest = s.ToString();
      if (ucmp->Compare(l, largest) > 0) largest = l.ToString();
    }
    std::vector<FileRef> l1 =
        v.GetOverlappingInputs(*icmp_, 1, smallest, largest);
    for (const FileRef& f : l1) {
      if (is_busy(f)) return pick;
    }
    pick.level = 0;
    pick.inputs[0] = std::move(l0);
    pick.inputs[1] = std::move(l1);
    l0_compaction_running_ = true;
  } else {
    // Round-robin cursor over the level.
    const auto& files = v.files(best_level);
    FileRef chosen;
    for (const FileRef& f : files) {
      if (is_busy(f)) continue;
      if (compact_pointer_[best_level].empty() ||
          icmp_->Compare(f->largest.Encode(),
                         compact_pointer_[best_level]) > 0) {
        chosen = f;
        break;
      }
    }
    if (chosen == nullptr && !files.empty()) {
      for (const FileRef& f : files) {
        if (!is_busy(f)) {
          chosen = f;
          break;
        }
      }
    }
    if (chosen == nullptr) return pick;
    std::vector<FileRef> next_level = v.GetOverlappingInputs(
        *icmp_, best_level + 1, ExtractUserKey(chosen->smallest.Encode()),
        ExtractUserKey(chosen->largest.Encode()));
    for (const FileRef& f : next_level) {
      if (is_busy(f)) return pick;
    }
    compact_pointer_[best_level] = chosen->largest.Encode().ToString();
    pick.level = best_level;
    pick.inputs[0].push_back(std::move(chosen));
    pick.inputs[1] = std::move(next_level);
  }

  // Bottommost if no level below the output holds any files.
  pick.bottommost = true;
  for (int level = pick.level + 2; level < options_->num_levels; level++) {
    if (v.NumFiles(level) > 0) {
      pick.bottommost = false;
      break;
    }
  }

  for (const auto& in : pick.inputs) {
    for (const FileRef& f : in) busy_files_.insert(f->number);
  }
  return pick;
}

void VersionSet::ReleaseCompaction(const CompactionPick& pick) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& in : pick.inputs) {
    for (const FileRef& f : in) busy_files_.erase(f->number);
  }
  if (pick.level == 0) {
    l0_compaction_running_ = false;
  }
}

}  // namespace dlsm
