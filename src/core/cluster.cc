#include "src/core/cluster.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dlsm {

Status Cluster::Create(Env* env, const Options& options,
                       const ClusterTopology& topology,
                       std::vector<std::string> boundaries,
                       std::unique_ptr<Cluster>* out) {
  int total_shards = topology.compute_nodes * topology.shards_per_compute;
  if (static_cast<int>(boundaries.size()) != total_shards - 1) {
    return Status::InvalidArgument("boundaries must have #shards-1 entries");
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    return Status::InvalidArgument("boundaries must be sorted");
  }

  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->topology_ = topology;
  cluster->boundaries_ = std::move(boundaries);
  cluster->fabric_ = std::make_unique<rdma::Fabric>(env);

  for (int i = 0; i < topology.compute_nodes; i++) {
    cluster->computes_.push_back(cluster->fabric_->AddNode(
        "compute-" + std::to_string(i), topology.compute_cores,
        topology.compute_dram));
    cluster->flush_pools_.push_back(std::make_unique<ThreadPool>(
        env, cluster->computes_.back()->env_node(), options.flush_threads,
        "flush-c" + std::to_string(i)));
  }
  for (int i = 0; i < topology.memory_nodes; i++) {
    rdma::Node* node = cluster->fabric_->AddNode(
        "memory-" + std::to_string(i), topology.memory_cores,
        topology.memory_dram);
    cluster->memories_.push_back(std::make_unique<MemoryNodeService>(
        cluster->fabric_.get(), node,
        topology.compaction_workers_per_memory));
    cluster->memories_.back()->Start();
  }

  Options shard_options = options;
  shard_options.shards = 1;
  shard_options.env = env;

  // Tables, not shards, are the unit of memory-node placement: every
  // shard sees every memory node and routes each new SSTable by
  // Options::placement_policy, seeded with the global shard index. The
  // default round-robin policy degenerates to the fixed shard->memory
  // assignment of Fig. 5 (shard s's tables all land on memory s%m).
  // Wiring is all-pairs: one RPC client per (compute, memory) pair,
  // shared by that compute node's shards.
  for (int s = 0; s < total_shards; s++) {
    int c = s / topology.shards_per_compute;
    DbDeps deps;
    deps.fabric = cluster->fabric_.get();
    deps.compute = cluster->computes_[c];
    deps.shared_flush_pool = cluster->flush_pools_[c].get();
    for (int m = 0; m < topology.memory_nodes; m++) {
      auto key = std::make_pair(c, m);
      if (cluster->rpcs_.find(key) == cluster->rpcs_.end()) {
        cluster->rpcs_[key] = std::make_unique<remote::RpcClient>(
            cluster->fabric_.get(), cluster->computes_[c],
            cluster->memories_[m]->rpc_server());
      }
      deps.memories.push_back(cluster->memories_[m].get());
      deps.shared_rpcs.push_back(cluster->rpcs_[key].get());
    }
    shard_options.placement_shard = s;
    DB* db = nullptr;
    DLSM_RETURN_NOT_OK(DLsmDB::Open(shard_options, deps, &db));
    cluster->shards_.emplace_back(db);
  }

  *out = std::move(cluster);
  return Status::OK();
}

Cluster::~Cluster() { Close(); }

int Cluster::ShardForKey(const Slice& key) const {
  auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), key,
      [](const Slice& k, const std::string& b) { return k.compare(b) < 0; });
  return static_cast<int>(it - boundaries_.begin());
}

void Cluster::MultiGet(const ReadOptions& options,
                       std::span<const Slice> keys,
                       std::vector<std::string>* values,
                       std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  std::vector<std::vector<Slice>> shard_keys(shards_.size());
  std::vector<std::vector<size_t>> shard_idx(shards_.size());
  for (size_t i = 0; i < keys.size(); i++) {
    int s = ShardForKey(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_idx[s].push_back(i);
  }
  std::vector<std::string> vals;
  std::vector<Status> stats;
  for (size_t s = 0; s < shards_.size(); s++) {
    if (shard_keys[s].empty()) continue;
    shards_[s]->MultiGet(options, shard_keys[s], &vals, &stats);
    for (size_t j = 0; j < shard_idx[s].size(); j++) {
      (*values)[shard_idx[s][j]] = std::move(vals[j]);
      (*statuses)[shard_idx[s][j]] = std::move(stats[j]);
    }
  }
}

Status Cluster::Flush() {
  for (auto& shard : shards_) {
    DLSM_RETURN_NOT_OK(shard->Flush());
  }
  return Status::OK();
}

Status Cluster::WaitForBackgroundIdle() {
  for (auto& shard : shards_) {
    DLSM_RETURN_NOT_OK(shard->WaitForBackgroundIdle());
  }
  return Status::OK();
}

Status Cluster::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  // Best-effort teardown: an early return on the first failing shard used
  // to leave the remaining shards' coordinator threads and every memory
  // service running with closed_ already set — a second Close() was then
  // a silent no-op and the deployment leaked live threads. Remember the
  // first error, still stop every shard and service.
  Status first;
  for (auto& shard : shards_) {
    Status s = shard->Close();
    if (first.ok() && !s.ok()) first = s;
  }
  shards_.clear();
  flush_pools_.clear();
  rpcs_.clear();
  for (auto& m : memories_) m->Stop();
  memories_.clear();
  return first;
}

}  // namespace dlsm
