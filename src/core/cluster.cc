#include "src/core/cluster.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dlsm {

Status Cluster::Create(Env* env, const Options& options,
                       const ClusterTopology& topology,
                       std::vector<std::string> boundaries,
                       std::unique_ptr<Cluster>* out) {
  int total_shards = topology.compute_nodes * topology.shards_per_compute;
  if (static_cast<int>(boundaries.size()) != total_shards - 1) {
    return Status::InvalidArgument("boundaries must have #shards-1 entries");
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    return Status::InvalidArgument("boundaries must be sorted");
  }

  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->topology_ = topology;
  cluster->boundaries_ = std::move(boundaries);
  cluster->fabric_ = std::make_unique<rdma::Fabric>(env);

  for (int i = 0; i < topology.compute_nodes; i++) {
    cluster->computes_.push_back(cluster->fabric_->AddNode(
        "compute-" + std::to_string(i), topology.compute_cores,
        topology.compute_dram));
    cluster->flush_pools_.push_back(std::make_unique<ThreadPool>(
        env, cluster->computes_.back()->env_node(), options.flush_threads,
        "flush-c" + std::to_string(i)));
  }
  for (int i = 0; i < topology.memory_nodes; i++) {
    rdma::Node* node = cluster->fabric_->AddNode(
        "memory-" + std::to_string(i), topology.memory_cores,
        topology.memory_dram);
    cluster->memories_.push_back(std::make_unique<MemoryNodeService>(
        cluster->fabric_.get(), node,
        topology.compaction_workers_per_memory));
    cluster->memories_.back()->Start();
  }

  Options shard_options = options;
  shard_options.shards = 1;
  shard_options.env = env;

  // Shard s lives on compute s/lambda; its SSTables on memory s%m
  // (round-robin, Fig. 5).
  for (int s = 0; s < total_shards; s++) {
    int c = s / topology.shards_per_compute;
    int m = s % topology.memory_nodes;
    auto key = std::make_pair(c, m);
    if (cluster->rpcs_.find(key) == cluster->rpcs_.end()) {
      cluster->rpcs_[key] = std::make_unique<remote::RpcClient>(
          cluster->fabric_.get(), cluster->computes_[c],
          cluster->memories_[m]->rpc_server());
    }
    DbDeps deps;
    deps.fabric = cluster->fabric_.get();
    deps.compute = cluster->computes_[c];
    deps.memory = cluster->memories_[m].get();
    deps.shared_flush_pool = cluster->flush_pools_[c].get();
    deps.shared_rpc = cluster->rpcs_[key].get();
    DB* db = nullptr;
    DLSM_RETURN_NOT_OK(DLsmDB::Open(shard_options, deps, &db));
    cluster->shards_.emplace_back(db);
  }

  *out = std::move(cluster);
  return Status::OK();
}

Cluster::~Cluster() { Close(); }

int Cluster::ShardForKey(const Slice& key) const {
  auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), key,
      [](const Slice& k, const std::string& b) { return k.compare(b) < 0; });
  return static_cast<int>(it - boundaries_.begin());
}

void Cluster::MultiGet(const ReadOptions& options,
                       std::span<const Slice> keys,
                       std::vector<std::string>* values,
                       std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  std::vector<std::vector<Slice>> shard_keys(shards_.size());
  std::vector<std::vector<size_t>> shard_idx(shards_.size());
  for (size_t i = 0; i < keys.size(); i++) {
    int s = ShardForKey(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_idx[s].push_back(i);
  }
  std::vector<std::string> vals;
  std::vector<Status> stats;
  for (size_t s = 0; s < shards_.size(); s++) {
    if (shard_keys[s].empty()) continue;
    shards_[s]->MultiGet(options, shard_keys[s], &vals, &stats);
    for (size_t j = 0; j < shard_idx[s].size(); j++) {
      (*values)[shard_idx[s][j]] = std::move(vals[j]);
      (*statuses)[shard_idx[s][j]] = std::move(stats[j]);
    }
  }
}

Status Cluster::Flush() {
  for (auto& shard : shards_) {
    DLSM_RETURN_NOT_OK(shard->Flush());
  }
  return Status::OK();
}

Status Cluster::WaitForBackgroundIdle() {
  for (auto& shard : shards_) {
    DLSM_RETURN_NOT_OK(shard->WaitForBackgroundIdle());
  }
  return Status::OK();
}

Status Cluster::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  for (auto& shard : shards_) {
    DLSM_RETURN_NOT_OK(shard->Close());
  }
  shards_.clear();
  flush_pools_.clear();
  rpcs_.clear();
  for (auto& m : memories_) m->Stop();
  memories_.clear();
  return Status::OK();
}

}  // namespace dlsm
