// DLsmDB: the compute-node engine (paper Secs. III–VII).

#ifndef DLSM_CORE_DB_IMPL_H_
#define DLSM_CORE_DB_IMPL_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/core/block_cache.h"
#include "src/core/compaction.h"
#include "src/core/db.h"
#include "src/core/dbformat.h"
#include "src/core/memory_node_service.h"
#include "src/core/memtable.h"
#include "src/core/placement.h"
#include "src/core/table_reader.h"
#include "src/core/version.h"
#include "src/rdma/rdma_manager.h"
#include "src/remote/remote_alloc.h"
#include "src/remote/rpc.h"
#include "src/sim/thread_pool.h"
#include "src/util/timeseries.h"
#include "src/util/watchdog.h"

namespace dlsm {

/// Wiring: which machines this DB runs across and what it may share with
/// sibling shards.
struct DbDeps {
  rdma::Fabric* fabric = nullptr;
  rdma::Node* compute = nullptr;
  /// Single-memory-node form; ignored when `memories` is non-empty.
  MemoryNodeService* memory = nullptr;
  /// Multi-node form: slot i of the engine's memory-node vector. Tables
  /// are placed across these by Options::placement_policy.
  std::vector<MemoryNodeService*> memories;
  /// Optional shared flush pool (sharded deployments); DB creates its own
  /// when null.
  ThreadPool* shared_flush_pool = nullptr;
  /// Optional shared RPC client to the (single) memory node; DB creates
  /// its own when null.
  remote::RpcClient* shared_rpc = nullptr;
  /// Multi-node form of shared_rpc, parallel to `memories`; null entries
  /// get an owned per-node client.
  std::vector<remote::RpcClient*> shared_rpcs;
};

class DLsmDB : public DB {
 public:
  /// Opens a dLSM instance; on success *dbptr owns the database.
  static Status Open(const Options& options, const DbDeps& deps, DB** dbptr);

  ~DLsmDB() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  void MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status Flush() override;
  Status WaitForBackgroundIdle() override;
  DbStats GetStats() override;
  int NumFilesAtLevel(int level) override;
  /// Adds per-level byte counts to "dlsm.levels" (the base implementation
  /// only sees file counts); other properties defer to DB::GetProperty.
  bool GetProperty(const Slice& property, std::string* value) override;
  Status Close() override;

 private:
  DLsmDB(const Options& options, const DbDeps& deps);

  Status Init();

  // -- Write path (Sec. IV) --------------------------------------------------
  Status WriteInternal(WriteBatch* batch);
  /// Inserts a batch of n entries at a pre-allocated sequence base (group
  /// sequence batching: the queue leader draws one window for the whole
  /// group). Routes exactly like WriteInternal: switches forward when the
  /// base is past the current table's range, reallocates a fresh base
  /// when it landed behind (stale window after a switch burst or Flush
  /// range burn) so "newer version in newer table" stays absolute.
  /// *reallocated (may be null) reports whether the pre-allocated base was
  /// abandoned — the group leader must then stop using the rest of its
  /// window, or later group members would commit below this batch.
  Status WriteAtSequence(WriteBatch* batch, SequenceNumber seq_base,
                         uint32_t n, bool* reallocated = nullptr);
  /// RocksDB-style writer queue (baseline write path): writers serialize
  /// through a mutex; the queue head commits a group at a time. Under
  /// async_write the leader batches the group's sequence allocations into
  /// one fetch-add instead of one per batch.
  Status WriteQueued(WriteBatch* batch);
  /// Installs MemTables until seq routes into the current one. Also the
  /// stall point (L0 stop trigger / immutable backlog).
  Status HandleSwitch(SequenceNumber seq);
  void SwitchMemTableLocked();  // Requires mem_mu_.

  // -- Flush (Sec. X-C) --------------------------------------------------------
  void ScheduleFlushLocked(MemTable* mem);
  void FlushJob(MemTable* mem, uint64_t l0_order);

  // -- Compaction (Sec. V) -----------------------------------------------------
  void CompactionCoordinatorLoop();
  Status RunCompaction(const CompactionPick& pick);
  /// Merges on memory node `slot` (every input of the pick lives there).
  Status RunNearDataCompaction(const CompactionPick& pick, size_t slot,
                               std::vector<CompactionOutput>* outputs);
  Status RunComputeSideCompaction(const CompactionPick& pick,
                                  std::vector<CompactionOutput>* outputs);
  Status IssueCompactionRpc(remote::RpcClient* rpc, const CompactionTask& task,
                            CompactionResult* result);
  /// Bumps the in-flight compaction-RPC gauge and folds it into the peak.
  void NoteCompactionRpcIssued();
  CompactionInput MakeInput(const FileRef& f, const Slice* lo,
                            const Slice* hi) const;

  // -- Files & GC (Sec. V-B) ---------------------------------------------------
  FileRef InstallOutput(const CompactionOutput& out, uint64_t l0_order);
  void FileGone(const remote::RemoteChunk& chunk);  // gc enqueue; non-blocking
  void DrainGc();  // Issues batched remote frees; blocking-safe points only.

  // -- Multi-memory-node placement & migration ---------------------------------
  /// Placement decision for a new table: a slot into nodes_.
  int PlaceTable(int level, const Slice& first_key);
  /// Slot whose memory node has this fabric node id (home_ if unknown).
  size_t SlotForNode(uint32_t node_id) const;
  /// Recovers every per-node connection's thread verb queue (transient
  /// fault handling on paths that may have touched several nodes).
  void RecoverAllVqs();
  /// Heat-based rebalancer (Options::placement_rebalance): periodically
  /// moves the hottest tables off the most READ-loaded node.
  void RebalanceLoop();
  void MigrateRound(size_t from, size_t to);
  Status MigrateOne(int level, const FileRef& f, size_t dst_slot);
  /// Stages the table's data region through compute DRAM onto dst via the
  /// completion-handle WRITE wave layer (durability: drained before the
  /// version swap).
  Status CopyChunk(const FileMetaData& f, size_t dst_slot,
                   const remote::RemoteChunk& dst);

  SequenceNumber OldestSnapshot();
  uint64_t SeqRange() const;

  // -- Continuous telemetry (db_telemetry.cc) ----------------------------------
  /// Builds the sample ring / watchdog per Options and starts the
  /// telemetry thread when either is enabled. Called at the end of Init().
  void SetupTelemetry();
  /// Sampler + watchdog tick loop (one background thread).
  void TelemetryLoop();
  /// Appends one row of counters/gauges to series_.
  void SampleOnce();
  /// Stops and joins the telemetry thread (idempotent; Close()).
  void StopTelemetry();

  // -- Fail-closed error state -------------------------------------------------
  /// Records the first unrecoverable background failure (flush retries
  /// exhausted, compaction aborted). The error is sticky: every subsequent
  /// user operation returns it instead of serving a view that may be
  /// missing bytes. A version is never installed over a failed wave.
  void SetBgError(const Status& s);
  /// The sticky background error, or OK. Cheap when healthy (one relaxed
  /// atomic load).
  Status BgError() const;

  // Immutable after Init().
  Options options_;
  DbDeps deps_;
  Env* env_;
  InternalKeyComparator icmp_;
  BloomFilterPolicy bloom_;

  /// Per-memory-node connection state. The vector (and the parallel
  /// read_paths_) never changes size after Init(), so borrowed pointers
  /// into it (ReadRouter, arena grow closures) stay valid for the DB's
  /// lifetime.
  struct MemoryNodeState {
    MemoryNodeService* service = nullptr;
    std::unique_ptr<rdma::RdmaManager> mgr;
    std::unique_ptr<remote::RpcClient> owned_rpc;
    remote::RpcClient* rpc = nullptr;
    /// Growable flush arena on this node (home slot seeded at Open; other
    /// slots provision lazily through the grow RPC).
    std::unique_ptr<remote::RemoteArena> arena;
  };
  std::vector<MemoryNodeState> nodes_;
  std::vector<RemoteReadPath> read_paths_;  // Parallel to nodes_.
  ReadRouter router_;
  size_t home_ = 0;  ///< placement_shard % nodes: the round-robin slot.
  // Home-slot aliases for the single-connection paths (write wiring,
  // legacy call sites); nodes_[home_] owns both.
  rdma::RdmaManager* mgr_ = nullptr;
  remote::RpcClient* rpc_ = nullptr;
  size_t slab_size_ = 0;  ///< Per-table chunk size (all arenas).

  std::unique_ptr<PlacementPolicy> placement_;
  std::atomic<uint64_t> table_counter_{0};

  // Compute-side hot-data cache (null when block_cache_size == 0).
  // Declared before read_paths_ users run; read_paths_[i].cache points
  // here.
  std::unique_ptr<BlockCache> block_cache_;
  uint64_t crash_listener_id_ = 0;  // Fabric crash-listener registration.
  std::atomic<int> crashed_memory_nodes_{0};
  std::unique_ptr<ThreadPool> owned_flush_pool_;
  ThreadPool* flush_pool_ = nullptr;
  std::unique_ptr<VersionSet> versions_;

  // Heat-based rebalancer (placement_rebalance && nodes_ > 1).
  bool has_migrator_ = false;
  ThreadHandle migrator_{};
  Mutex mig_mu_;
  CondVar mig_cv_;

  // Continuous telemetry: background sampler ring + stall watchdog, both
  // null when their Options knobs are 0. One shared thread ticks them.
  std::unique_ptr<telemetry::Series> series_;
  std::unique_ptr<telemetry::Watchdog> watchdog_;
  bool has_telemetry_thread_ = false;
  ThreadHandle telemetry_thread_{};
  Mutex telem_mu_;
  CondVar telem_cv_;
  /// Previous verb-stats snapshot, for windowed (per-sample-interval)
  /// latency percentiles via Histogram::DeltaSince. Telemetry thread only.
  rdma::RdmaVerbStats prev_verbs_;

  // Write state.
  std::atomic<uint64_t> sequence_{0};  // Last allocated sequence number.
  std::atomic<MemTable*> mem_{nullptr};
  Mutex mem_mu_;             // Guards the switch & immutable queue.
  CondVar backpressure_cv_;  // Signalled when flush/compaction frees room.
  std::deque<MemTable*> imms_;  // Oldest first; referenced.
  int pending_flushes_ = 0;     // Guarded by mem_mu_.
  // Stall-interval union (guarded by mem_mu_): concurrent stalled writers
  // share one open interval so stat_stall_ns_ measures stalled wall time,
  // not the sum over writers (which could exceed elapsed time).
  int stalled_writers_ = 0;
  uint64_t stall_since_ = 0;

  // Compaction coordination.
  std::vector<ThreadHandle> coordinators_;
  Mutex comp_mu_;
  CondVar comp_cv_;
  int running_compactions_ = 0;  // Guarded by comp_mu_.
  std::atomic<bool> shutdown_{false};

  // Writer queue (WritePath::kWriterQueue only).
  struct QueuedWriter;
  std::unique_ptr<Mutex> write_mu_;
  std::deque<QueuedWriter*> write_queue_;  // Guarded by write_mu_.

  // Snapshots.
  Mutex snap_mu_;
  std::multiset<uint64_t> snapshots_;  // Guarded by snap_mu_.

  // GC batching (remote-origin chunks), one pending batch per memory
  // node so each address is freed at the node that holds it.
  std::mutex gc_mu_;
  std::vector<std::vector<uint64_t>> gc_batches_;

  // Fail-closed state (SetBgError / BgError).
  mutable std::mutex bg_error_mu_;
  Status bg_error_;  // Guarded by bg_error_mu_.
  std::atomic<bool> has_bg_error_{false};

  // Stats.
  std::atomic<uint64_t> stat_writes_{0};
  std::atomic<uint64_t> stat_reads_{0};
  std::atomic<uint64_t> stat_flushes_{0};
  std::atomic<uint64_t> stat_compactions_{0};
  std::atomic<uint64_t> stat_comp_in_{0};
  std::atomic<uint64_t> stat_comp_out_{0};
  std::atomic<uint64_t> stat_stall_ns_{0};
  std::atomic<uint64_t> stat_bloom_useful_{0};
  std::atomic<uint64_t> stat_comp_rpc_inflight_{0};
  std::atomic<uint64_t> stat_comp_rpc_peak_{0};
  std::atomic<uint64_t> stat_read_retries_{0};
  std::atomic<uint64_t> stat_flush_retries_{0};
  std::atomic<uint64_t> stat_tables_migrated_{0};
  std::atomic<uint64_t> stat_migration_bytes_{0};

  bool closed_ = false;
};

}  // namespace dlsm

#endif  // DLSM_CORE_DB_IMPL_H_
