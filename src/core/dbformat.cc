#include "src/core/dbformat.h"

namespace dlsm {

void AppendInternalKey(std::string* result, const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  const size_t n = internal_key.size();
  if (n < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + n - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), n - 8);
  return c <= static_cast<uint8_t>(kTypeValue);
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber s) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // Conservative.
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
  kstart_ = dst;
  memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(s, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

LookupKey::~LookupKey() {
  if (start_ != space_) delete[] start_;
}

}  // namespace dlsm
