#include "src/core/db_iter.h"

#include <memory>
#include <string>

#include "src/util/logging.h"

namespace dlsm {

namespace {

/// See LevelDB's DBIter: maintains a direction and collapses the internal
/// (user_key, seq, type) stream into the newest visible value per user key.
class DBIter : public Iterator {
 public:
  DBIter(const InternalKeyComparator* icmp, Iterator* iter,
         SequenceNumber sequence, std::function<void()> cleanup)
      : icmp_(icmp),
        ucmp_(icmp->user_comparator()),
        iter_(iter),
        sequence_(sequence),
        cleanup_(std::move(cleanup)),
        direction_(kForward),
        valid_(false) {}

  ~DBIter() override {
    iter_.reset();
    if (cleanup_) cleanup_();
  }

  bool Valid() const override { return valid_; }

  Slice key() const override {
    DLSM_CHECK(valid_);
    return direction_ == kForward ? ExtractUserKey(iter_->key())
                                  : Slice(saved_key_);
  }

  Slice value() const override {
    DLSM_CHECK(valid_);
    return direction_ == kForward ? iter_->value() : Slice(saved_value_);
  }

  Status status() const override {
    if (status_.ok()) return iter_->status();
    return status_;
  }

  void Next() override {
    DLSM_CHECK(valid_);
    if (direction_ == kReverse) {
      direction_ = kForward;
      if (!iter_->Valid()) {
        iter_->SeekToFirst();
      } else {
        iter_->Next();
      }
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
    } else {
      // Skip remaining versions of the current user key.
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      iter_->Next();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
    }
    FindNextUserEntry(true, &saved_key_);
  }

  void Prev() override {
    DLSM_CHECK(valid_);
    if (direction_ == kForward) {
      DLSM_CHECK(iter_->Valid());
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      // Back up until before all entries of the current user key.
      for (;;) {
        iter_->Prev();
        if (!iter_->Valid()) {
          valid_ = false;
          saved_key_.clear();
          ClearSavedValue();
          return;
        }
        if (ucmp_->Compare(ExtractUserKey(iter_->key()),
                           Slice(saved_key_)) < 0) {
          break;
        }
      }
      direction_ = kReverse;
    }
    FindPrevUserEntry();
  }

  void Seek(const Slice& target) override {
    direction_ = kForward;
    ClearSavedValue();
    saved_key_.clear();
    AppendInternalKey(&saved_key_, ParsedInternalKey(target, sequence_,
                                                     kValueTypeForSeek));
    iter_->Seek(saved_key_);
    if (iter_->Valid()) {
      FindNextUserEntry(false, &saved_key_);
    } else {
      valid_ = false;
    }
  }

  void SeekToFirst() override {
    direction_ = kForward;
    ClearSavedValue();
    iter_->SeekToFirst();
    if (iter_->Valid()) {
      FindNextUserEntry(false, &saved_key_);
    } else {
      valid_ = false;
    }
  }

  void SeekToLast() override {
    direction_ = kReverse;
    ClearSavedValue();
    iter_->SeekToLast();
    FindPrevUserEntry();
  }

 private:
  enum Direction { kForward, kReverse };

  bool ParseKey(ParsedInternalKey* ikey) {
    if (!ParseInternalKey(iter_->key(), ikey)) {
      status_ = Status::Corruption("corrupted internal key in DBIter");
      return false;
    }
    return true;
  }

  static void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  void ClearSavedValue() { saved_value_.clear(); }

  void FindNextUserEntry(bool skipping, std::string* skip) {
    DLSM_CHECK(direction_ == kForward);
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        switch (ikey.type) {
          case kTypeDeletion:
            // This user key is deleted; skip all its older versions.
            SaveKey(ikey.user_key, skip);
            skipping = true;
            break;
          case kTypeValue:
            if (skipping &&
                ucmp_->Compare(ikey.user_key, Slice(*skip)) <= 0) {
              // Hidden by a newer deletion or an already-emitted key.
            } else {
              valid_ = true;
              saved_key_.clear();
              return;
            }
            break;
        }
      }
      iter_->Next();
    } while (iter_->Valid());
    saved_key_.clear();
    valid_ = false;
  }

  void FindPrevUserEntry() {
    DLSM_CHECK(direction_ == kReverse);
    ValueType value_type = kTypeDeletion;
    if (iter_->Valid()) {
      do {
        ParsedInternalKey ikey;
        if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
          if ((value_type != kTypeDeletion) &&
              ucmp_->Compare(ikey.user_key, Slice(saved_key_)) < 0) {
            break;  // We encountered a previous user key; emit the saved.
          }
          value_type = ikey.type;
          if (value_type == kTypeDeletion) {
            saved_key_.clear();
            ClearSavedValue();
          } else {
            Slice raw_value = iter_->value();
            SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
            saved_value_.assign(raw_value.data(), raw_value.size());
          }
        }
        iter_->Prev();
      } while (iter_->Valid());
    }
    if (value_type == kTypeDeletion) {
      valid_ = false;
      saved_key_.clear();
      ClearSavedValue();
      direction_ = kForward;
    } else {
      valid_ = true;
    }
  }

  const InternalKeyComparator* icmp_;
  const Comparator* ucmp_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber sequence_;
  std::function<void()> cleanup_;

  Status status_;
  std::string saved_key_;
  std::string saved_value_;
  Direction direction_;
  bool valid_;
};

}  // namespace

Iterator* NewDBIterator(const InternalKeyComparator* icmp,
                        Iterator* internal_iter, SequenceNumber snapshot,
                        std::function<void()> cleanup) {
  return new DBIter(icmp, internal_iter, snapshot, std::move(cleanup));
}

}  // namespace dlsm
