// Compaction machinery (paper Sec. V).
//
// The compute node picks what to compact (VersionSet::PickCompaction) and
// describes the work as a CompactionTask: for every input table, the DRAM
// address of its data region plus a record-aligned [start, end) byte slice
// (computed from the locally cached index — this is how one L0 compaction
// splits into parallel sub-compactions without shipping any index data).
//
// The task executes either
//   * on the memory node (near-data): local iterators over its own DRAM,
//     outputs allocated from the memory-side region, zero wire traffic; or
//   * on the compute node (ablation): remote iterators pull inputs over
//     the wire and the async flush pipeline pushes outputs back.
//
// Both paths share MergeAndBuild: an N-way merge with RocksDB drop rules
// (shadowed versions below the oldest snapshot; tombstones at the
// bottommost level) cutting outputs at the target file size, never
// splitting a user key across outputs.

#ifndef DLSM_CORE_COMPACTION_H_
#define DLSM_CORE_COMPACTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bloom.h"
#include "src/core/dbformat.h"
#include "src/core/iterator.h"
#include "src/core/options.h"
#include "src/core/table_builder.h"
#include "src/core/table_sink.h"
#include "src/remote/remote_alloc.h"

namespace dlsm {

/// One input table slice for a compaction task.
struct CompactionInput {
  uint8_t format = 1;       ///< 1 = byte-addressable, 2 = block.
  uint64_t addr = 0;        ///< Data-region address in memory-node DRAM.
  uint64_t start_off = 0;   ///< Record-aligned slice start.
  uint64_t end_off = 0;     ///< Record-aligned slice end.
  std::string index_blob;   ///< Needed for block format only.
};

/// A serializable compaction work order.
struct CompactionTask {
  std::vector<CompactionInput> inputs;
  uint64_t smallest_snapshot = 0;
  bool drop_tombstones = false;
  uint64_t target_file_size = 0;
  /// Slab chunk size outputs are allocated in (>= target_file_size).
  uint64_t output_chunk_size = 0;
  uint8_t output_format = 1;
  uint32_t block_size = 8192;
  uint32_t bloom_bits_per_key = 10;

  std::string Serialize() const;
  static bool Deserialize(const Slice& in, CompactionTask* task);
};

/// One output table produced by a compaction (or flush).
struct CompactionOutput {
  remote::RemoteChunk chunk;
  uint64_t data_len = 0;
  uint64_t num_entries = 0;
  InternalKey smallest;
  InternalKey largest;
  std::string index_blob;
};

/// Serializable set of outputs (the near-data RPC reply).
struct CompactionResult {
  std::vector<CompactionOutput> outputs;

  std::string Serialize() const;
  static bool Deserialize(const Slice& in, CompactionResult* result);
};

/// Decodes a near-data compaction RPC reply ([u8 ok][result|error text])
/// into *result; shared by the blocking and pipelined schedulers.
Status ParseCompactionReply(const std::string& reply,
                            CompactionResult* result);

/// Shared merge/drop/build loop. Consumes `merged` (takes ownership).
/// new_output is called to provision each output chunk + sink; it must fill
/// both out-params. first_key is the user key the output will open with
/// (the merge iterator is positioned on it) so range-based placement can
/// pick the output's memory node. Outputs are appended to *outputs.
Status MergeAndBuild(
    Env* env, Iterator* merged, const InternalKeyComparator& icmp,
    const BloomFilterPolicy& bloom, uint64_t smallest_snapshot,
    bool drop_tombstones, uint64_t target_file_size, TableFormat format,
    size_t block_size,
    const std::function<Status(const Slice& first_key,
                               remote::RemoteChunk* chunk,
                               std::unique_ptr<TableSink>* sink)>& new_output,
    std::vector<CompactionOutput>* outputs);

/// Near-data execution on the memory node: merges the task's input slices
/// straight out of local DRAM into chunks obtained from alloc_chunk
/// (invalid chunk = out of memory); free_chunk reclaims on failure.
Status ExecuteCompactionTask(
    Env* env, const CompactionTask& task, const InternalKeyComparator& icmp,
    const std::function<remote::RemoteChunk()>& alloc_chunk,
    const std::function<void(const remote::RemoteChunk&)>& free_chunk,
    uint32_t self_node_id, CompactionResult* result);

}  // namespace dlsm

#endif  // DLSM_CORE_COMPACTION_H_
