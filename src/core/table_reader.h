// SSTable readers (paper Sec. VI).
//
// Point lookups consult the locally cached bloom filter and index; on a
// may-match, the byte-addressable layout issues one RDMA READ of exactly
// the record, while the block layout fetches the whole enclosing block and
// unwraps it locally (the read-amplification dLSM eliminates).
//
// Range scans prefetch large contiguous chunks of the data region with
// sequential RDMA READs ("the sub-iterators prefetch the data chunks").
//
// Local iterators walk a table resident in the caller's own DRAM and are
// what near-data compaction uses on the memory node — no wire traffic.

#ifndef DLSM_CORE_TABLE_READER_H_
#define DLSM_CORE_TABLE_READER_H_

#include <atomic>
#include <memory>

#include "src/core/block_cache.h"
#include "src/core/bloom.h"
#include "src/core/dbformat.h"
#include "src/core/file_meta.h"
#include "src/core/iterator.h"
#include "src/rdma/rdma_manager.h"
#include "src/remote/rpc.h"

namespace dlsm {

/// How remote table bytes reach the compute node. dLSM uses one-sided
/// READs; the baseline models add a file-system staging copy (RDMA-FS /
/// tmpfs ports) and, for Nova-LSM, a server-mediated two-sided read path.
struct RemoteReadPath {
  rdma::RdmaManager* mgr = nullptr;
  /// When set, point-sized reads (<= rpc_limit) go through the memory
  /// node's kReadBlock RPC: dispatcher + server memcpy + one-sided reply.
  remote::RpcClient* rpc = nullptr;
  size_t rpc_limit = 64 << 10;
  /// Adds one staging-buffer copy per read (the FS layer of the ports).
  bool extra_copy = false;
  /// When set, table probes pay an extra remote fetch of the table's
  /// index block before touching data (no compute-side index cache).
  ///
  /// Interaction with ReadOptions::async_reads: an uncached-index path
  /// cannot probe asynchronously — the index fetch must complete before
  /// the data read can even be sized, so it can never join a doorbell
  /// wave. Earlier revisions silently fell back to synchronous probing,
  /// which masked misconfigured baselines; DLsmDB::Get/MultiGet now
  /// reject the combination with Status::InvalidArgument. Callers must
  /// pass async_reads = false (see Options::cache_index_blocks).
  bool uncached_index = false;

  /// Optional compute-side cache of remote bytes (may be null). Read()
  /// and MgrRead() stay cache-oblivious; consult/insert decisions live
  /// with the callers (TableGet, probe harvest, scan prefetch) keyed by
  /// cache_table, the owning table's file number.
  BlockCache* cache = nullptr;
  /// Scan prefetch fills may enter the cache (Options::cache_scans).
  bool cache_scans = false;
  /// File number of the table this path instance is currently reading;
  /// threaded through by the per-table helpers. 0 = caching disabled for
  /// this read.
  uint64_t cache_table = 0;

  /// Transient-fault policy (Options::rdma_max_retries): additional
  /// attempts after an IOError, each preceded by a QP recovery (drain +
  /// reset + reconnect) and backoff. 0 fails on the first error.
  int max_retries = 0;
  uint64_t retry_backoff_ns = 50 * 1000;
  /// When set, incremented once per retry attempt (DbStats::read_retries).
  std::atomic<uint64_t>* retry_counter = nullptr;

  /// Reads [addr, addr+len) of the remote table into dst.
  Status Read(void* dst, uint64_t addr, uint32_t rkey, size_t len) const;

  /// One-sided READ with the transient-fault retry policy applied; the
  /// building block of Read and of index-block fetches.
  Status MgrRead(void* dst, uint64_t addr, uint32_t rkey, size_t len) const;
};

/// Routes reads to the right memory node's RemoteReadPath by the table's
/// FileMetaData::memory_node slot. The engine owns one RemoteReadPath per
/// node in a vector that never reallocates after Open, so the borrowed
/// pointer stays valid for the router's lifetime. A single-node engine is
/// the degenerate count == 1 router, making every route(f) the old single
/// read path.
struct ReadRouter {
  const RemoteReadPath* paths = nullptr;
  size_t count = 0;

  const RemoteReadPath& route(uint32_t memory_node) const {
    return paths[memory_node < count ? memory_node : 0];
  }
  const RemoteReadPath& route(const FileMetaData& f) const {
    return route(f.memory_node);
  }
};

/// Outcome of a single-table point lookup.
enum class TableLookupResult {
  kNotPresent,  ///< The table holds no visible version of the key.
  kFound,       ///< *value holds the newest visible value.
  kDeleted,     ///< The newest visible version is a tombstone.
};

/// Point lookup in one SSTable at the snapshot encoded in lkey.
Status TableGet(const RemoteReadPath& read_path,
                const InternalKeyComparator& icmp,
                const BloomFilterPolicy& bloom, const FileMetaData& file,
                const LookupKey& lkey, TableLookupResult* result,
                std::string* value, bool* skipped_by_bloom = nullptr);

/// True when the read path is a plain one-sided READ (no RPC detour, no
/// staging copy, no per-probe index fetch) and so its data reads may be
/// posted asynchronously in a doorbell batch. The baseline read paths
/// must keep their modeled per-read costs and stay synchronous.
bool SupportsAsyncProbe(const RemoteReadPath& read_path);

/// One table's share of a doorbell-batched point lookup. Prepare()
/// consults the locally cached bloom filter and index; when the table
/// needs bytes it sizes buf and records the read's table-relative offset
/// so the caller can post [file.chunk.addr + read_off, +buf.size()) into
/// buf. After the batch drains, Finish() resolves the fetched bytes.
/// The probed file must outlive the probe (callers pin it via FileRef).
struct TableProbe {
  bool need_read = false;
  /// The per-record index matched the user key, so the posted read alone
  /// decides this lookup (found or tombstone); older tables need not be
  /// probed. Block-format probes are never definitive before the read.
  bool definitive = false;
  uint64_t read_off = 0;
  std::string buf;
  // Resolution context for Finish(). index_key points into the cached
  // index blob, stable while `file` stays pinned.
  const FileMetaData* file = nullptr;
  Slice index_key;
};

/// Phase 1: local filtering; fills *probe. Callers that model uncached
/// indexes must fetch the index block themselves before posting data
/// reads (see TableGet) — async batching requires cached indexes.
Status TableProbePrepare(const InternalKeyComparator& icmp,
                         const BloomFilterPolicy& bloom,
                         const FileMetaData& file, const LookupKey& lkey,
                         TableProbe* probe,
                         bool* skipped_by_bloom = nullptr);

/// Phase 2: resolves a probe whose read (if any) has completed into buf.
Status TableProbeFinish(const InternalKeyComparator& icmp,
                        const LookupKey& lkey, TableProbe* probe,
                        TableLookupResult* result, std::string* value);

/// Remote iterator over one SSTable; file is pinned for the iterator's
/// lifetime. prefetch_bytes governs sequential chunk fetches.
Iterator* NewRemoteTableIterator(const RemoteReadPath& read_path,
                                 const InternalKeyComparator& icmp,
                                 FileRef file, size_t prefetch_bytes);

/// Iterator over a byte-addressable data region in local memory
/// (self-delimiting records; no index required). Forward-only; Seek is a
/// linear scan ordered by the internal-key comparator.
Iterator* NewLocalByteTableIterator(const char* data, uint64_t data_len,
                                    const InternalKeyComparator& icmp);

/// Iterator over a block-format data region in local memory; needs the
/// table's index to find block extents.
Iterator* NewLocalBlockTableIterator(const char* data, uint64_t data_len,
                                     std::shared_ptr<TableIndex> index,
                                     const InternalKeyComparator& icmp);

}  // namespace dlsm

#endif  // DLSM_CORE_TABLE_READER_H_
