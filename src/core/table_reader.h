// SSTable readers (paper Sec. VI).
//
// Point lookups consult the locally cached bloom filter and index; on a
// may-match, the byte-addressable layout issues one RDMA READ of exactly
// the record, while the block layout fetches the whole enclosing block and
// unwraps it locally (the read-amplification dLSM eliminates).
//
// Range scans prefetch large contiguous chunks of the data region with
// sequential RDMA READs ("the sub-iterators prefetch the data chunks").
//
// Local iterators walk a table resident in the caller's own DRAM and are
// what near-data compaction uses on the memory node — no wire traffic.

#ifndef DLSM_CORE_TABLE_READER_H_
#define DLSM_CORE_TABLE_READER_H_

#include <memory>

#include "src/core/bloom.h"
#include "src/core/dbformat.h"
#include "src/core/file_meta.h"
#include "src/core/iterator.h"
#include "src/rdma/rdma_manager.h"
#include "src/remote/rpc.h"

namespace dlsm {

/// How remote table bytes reach the compute node. dLSM uses one-sided
/// READs; the baseline models add a file-system staging copy (RDMA-FS /
/// tmpfs ports) and, for Nova-LSM, a server-mediated two-sided read path.
struct RemoteReadPath {
  rdma::RdmaManager* mgr = nullptr;
  /// When set, point-sized reads (<= rpc_limit) go through the memory
  /// node's kReadBlock RPC: dispatcher + server memcpy + one-sided reply.
  remote::RpcClient* rpc = nullptr;
  size_t rpc_limit = 64 << 10;
  /// Adds one staging-buffer copy per read (the FS layer of the ports).
  bool extra_copy = false;
  /// When set, table probes pay an extra remote fetch of the table's
  /// index block before touching data (no compute-side index cache).
  bool uncached_index = false;

  /// Reads [addr, addr+len) of the remote table into dst.
  Status Read(void* dst, uint64_t addr, uint32_t rkey, size_t len) const;
};

/// Outcome of a single-table point lookup.
enum class TableLookupResult {
  kNotPresent,  ///< The table holds no visible version of the key.
  kFound,       ///< *value holds the newest visible value.
  kDeleted,     ///< The newest visible version is a tombstone.
};

/// Point lookup in one SSTable at the snapshot encoded in lkey.
Status TableGet(const RemoteReadPath& read_path,
                const InternalKeyComparator& icmp,
                const BloomFilterPolicy& bloom, const FileMetaData& file,
                const LookupKey& lkey, TableLookupResult* result,
                std::string* value, bool* skipped_by_bloom = nullptr);

/// Remote iterator over one SSTable; file is pinned for the iterator's
/// lifetime. prefetch_bytes governs sequential chunk fetches.
Iterator* NewRemoteTableIterator(const RemoteReadPath& read_path,
                                 const InternalKeyComparator& icmp,
                                 FileRef file, size_t prefetch_bytes);

/// Iterator over a byte-addressable data region in local memory
/// (self-delimiting records; no index required).
Iterator* NewLocalByteTableIterator(const char* data, uint64_t data_len);

/// Iterator over a block-format data region in local memory; needs the
/// table's index to find block extents.
Iterator* NewLocalBlockTableIterator(const char* data, uint64_t data_len,
                                     std::shared_ptr<TableIndex> index,
                                     const InternalKeyComparator& icmp);

}  // namespace dlsm

#endif  // DLSM_CORE_TABLE_READER_H_
