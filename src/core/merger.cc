#include "src/core/merger.h"

#include <memory>
#include <vector>

#include "src/util/logging.h"

namespace dlsm {

namespace {

/// N-way merge by linear scan over children. For the child counts an LSM
/// read path produces (one per level plus MemTables), linear beats a heap.
class MergingIterator : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* comparator,
                  Iterator** children, int n)
      : comparator_(comparator), current_(nullptr),
        direction_(kForward) {
    children_.reserve(n);
    for (int i = 0; i < n; i++) {
      children_.emplace_back(children[i]);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) {
      child->SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    DLSM_CHECK(Valid());
    if (direction_ != kForward) {
      // All non-current children must be repositioned after key().
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_->Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    DLSM_CHECK(Valid());
    if (direction_ != kReverse) {
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid()) {
            child->Prev();
          } else {
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    DLSM_CHECK(Valid());
    return current_->key();
  }

  Slice value() const override {
    DLSM_CHECK(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (largest == nullptr ||
            comparator_->Compare(child->key(), largest->key()) > 0) {
          largest = child.get();
        }
      }
    }
    current_ = largest;
  }

  enum Direction { kForward, kReverse };

  const InternalKeyComparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_;
};

}  // namespace

Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             Iterator** children, int n) {
  DLSM_CHECK(n >= 0);
  if (n == 0) {
    return NewEmptyIterator();
  } else if (n == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, children, n);
}

}  // namespace dlsm
