#include "src/core/comparator.h"

namespace dlsm {

namespace {

class BytewiseComparatorImpl : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override {
    return a.compare(b);
  }
  const char* Name() const override { return "dlsm.BytewiseComparator"; }
};

}  // namespace

const Comparator* BytewiseComparator() {
  static BytewiseComparatorImpl comparator;
  return &comparator;
}

}  // namespace dlsm
