// DLsmDB continuous telemetry: the background sampler that feeds the
// "dlsm.timeseries" ring and the stall-watchdog tick loop (DESIGN
// Sec. 4.9). Split out of db_impl.cc: everything here is off the hot path
// and inactive unless Options::stats_sample_period_ms or
// Options::watchdog_deadline_ms is set.

#include <cstdio>

#include "src/core/db_impl.h"

namespace dlsm {

namespace {

// Watchdog kind literals per verb class (StuckOp stores the pointer).
const char* VerbStuckKind(rdma::VerbClass c) {
  switch (c) {
    case rdma::VerbClass::kRead:
      return "verb:READ";
    case rdma::VerbClass::kWrite:
      return "verb:WRITE";
    case rdma::VerbClass::kSend:
      return "verb:SEND";
    case rdma::VerbClass::kAtomic:
      return "verb:ATOMIC";
  }
  return "verb:?";
}

}  // namespace

void DLsmDB::SetupTelemetry() {
  const bool sampler_on = options_.stats_sample_period_ms > 0;
  const bool watchdog_on = options_.watchdog_deadline_ms > 0;
  if (!sampler_on && !watchdog_on) return;

  if (sampler_on) {
    using Kind = telemetry::Series::Kind;
    std::vector<telemetry::Series::Column> cols;
    auto counter = [&cols](std::string name) {
      cols.push_back({std::move(name), Kind::kCounter});
    };
    auto gauge = [&cols](std::string name) {
      cols.push_back({std::move(name), Kind::kGauge});
    };
    // Engine counters (per-interval deltas of the DbStats monotones).
    counter("writes");
    counter("reads");
    counter("flushes");
    counter("compactions");
    counter("comp_in_bytes");
    counter("comp_out_bytes");
    counter("stall_ns");
    counter("cache_hits");
    counter("cache_misses");
    counter("tables_migrated");
    counter("migration_bytes");
    counter("watchdog_stalls");
    // Verb-layer counters and gauges, engine-wide.
    counter("rdma_posted");
    counter("rdma_completed");
    gauge("rdma_outstanding");
    // Windowed wire-latency percentiles (this interval's completions
    // only, via Histogram::DeltaSince), microseconds.
    gauge("read_p50_us");
    gauge("read_p99_us");
    gauge("write_p99_us");
    // Per-memory-node READ/WRITE distribution: the balance signal the
    // heat rebalancer acts on, now observable over time.
    for (size_t i = 0; i < nodes_.size(); i++) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "node%zu_read_verbs", i);
      counter(buf);
      std::snprintf(buf, sizeof(buf), "node%zu_write_verbs", i);
      counter(buf);
    }
    size_t cap = options_.stats_ring_capacity > 0
                     ? options_.stats_ring_capacity
                     : 1;
    series_ = std::make_unique<telemetry::Series>(std::move(cols), cap);
  }

  if (watchdog_on) {
    telemetry::Watchdog::Options wo;
    wo.clock = [this] { return env_->NowNanos(); };
    wo.deadline_ns = options_.watchdog_deadline_ms * 1'000'000ull;
    if (options_.watchdog_sink) wo.sink = options_.watchdog_sink;
    watchdog_ = std::make_unique<telemetry::Watchdog>(wo);

    // Probe: verbs in flight longer than the deadline, across every
    // per-node connection. These are too hot to Arm() individually; the
    // verb layer's outstanding mirror is enumerated instead.
    watchdog_->AddProbe(
        "outstanding_verbs",
        [this](uint64_t now, uint64_t deadline_ns,
               std::vector<telemetry::Watchdog::StuckOp>* out) {
          std::vector<rdma::OutstandingVerb> verbs;
          for (const MemoryNodeState& n : nodes_) {
            if (n.mgr == nullptr) continue;
            verbs.clear();
            n.mgr->ListOutstanding(&verbs);
            for (const rdma::OutstandingVerb& v : verbs) {
              if (now > v.post_ns && now - v.post_ns > deadline_ns) {
                out->push_back(telemetry::Watchdog::StuckOp{
                    VerbStuckKind(v.cls), v.wr_id, now - v.post_ns});
              }
            }
          }
        });

    // Dump sections: recent samples, the raw outstanding-handle table,
    // and per-QP state — what a postmortem needs to name the wedge.
    watchdog_->AddDiagnostic("timeseries_tail", [this] {
      return series_ != nullptr ? series_->TailJson(8)
                                : std::string("(sampler off)");
    });
    watchdog_->AddDiagnostic("outstanding_verbs", [this] {
      std::string out;
      char line[128];
      std::vector<rdma::OutstandingVerb> verbs;
      for (size_t i = 0; i < nodes_.size(); i++) {
        if (nodes_[i].mgr == nullptr) continue;
        verbs.clear();
        nodes_[i].mgr->ListOutstanding(&verbs);
        for (const rdma::OutstandingVerb& v : verbs) {
          std::snprintf(line, sizeof(line),
                        "node%zu wr_id=%llu class=%s post_ns=%llu\n", i,
                        static_cast<unsigned long long>(v.wr_id),
                        rdma::VerbClassName(v.cls),
                        static_cast<unsigned long long>(v.post_ns));
          out += line;
        }
      }
      if (out.empty()) out = "(none)\n";
      return out;
    });
    watchdog_->AddDiagnostic("qp_state", [this] {
      std::string out;
      for (const MemoryNodeState& n : nodes_) {
        if (n.mgr != nullptr) out += n.mgr->QpStateSummary();
      }
      return out;
    });
  }

  has_telemetry_thread_ = true;
  telemetry_thread_ = env_->StartThread(deps_.compute->env_node(),
                                        "telemetry", [this] {
                                          TelemetryLoop();
                                        });
}

void DLsmDB::TelemetryLoop() {
  const uint64_t sample_ns = options_.stats_sample_period_ms * 1'000'000ull;
  uint64_t poll_ns = options_.watchdog_poll_ms * 1'000'000ull;
  if (watchdog_ != nullptr && poll_ns == 0) {
    poll_ns = options_.watchdog_deadline_ms * 1'000'000ull / 4;
    if (poll_ns < 1'000'000ull) poll_ns = 1'000'000ull;
  }
  uint64_t tick_ns;
  if (sample_ns > 0 && poll_ns > 0) {
    tick_ns = sample_ns < poll_ns ? sample_ns : poll_ns;
  } else {
    tick_ns = sample_ns > 0 ? sample_ns : poll_ns;
  }
  uint64_t next_sample = env_->NowNanos() + sample_ns;
  while (!shutdown_.load(std::memory_order_acquire)) {
    {
      MutexLock l(&telem_mu_);
      if (!shutdown_.load(std::memory_order_acquire)) {
        telem_cv_.TimedWait(tick_ns);
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    if (series_ != nullptr && env_->NowNanos() >= next_sample) {
      SampleOnce();
      next_sample += sample_ns;
      // A long stall can put next_sample several periods behind; realign
      // rather than emitting a burst of make-up rows.
      uint64_t now = env_->NowNanos();
      if (next_sample <= now) next_sample = now + sample_ns;
    }
    if (watchdog_ != nullptr) watchdog_->Poll();
  }
}

void DLsmDB::SampleOnce() {
  // Aggregate once; both the engine-wide and per-node columns come from
  // the same snapshots so a row is internally consistent.
  std::vector<rdma::RdmaVerbStats> per_node(nodes_.size());
  rdma::RdmaVerbStats total;
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].mgr == nullptr) continue;
    per_node[i] = nodes_[i].mgr->StatsSnapshot();
    total.MergeFrom(per_node[i]);
  }
  // This interval's completions only: percentile of the histogram delta.
  Histogram read_delta = total.read.latency_us.DeltaSince(
      prev_verbs_.read.latency_us);
  Histogram write_delta = total.write.latency_us.DeltaSince(
      prev_verbs_.write.latency_us);

  std::vector<double> row;
  row.reserve(series_->num_columns());
  auto push = [&row](uint64_t v) { row.push_back(static_cast<double>(v)); };
  push(stat_writes_.load(std::memory_order_relaxed));
  push(stat_reads_.load(std::memory_order_relaxed));
  push(stat_flushes_.load(std::memory_order_relaxed));
  push(stat_compactions_.load(std::memory_order_relaxed));
  push(stat_comp_in_.load(std::memory_order_relaxed));
  push(stat_comp_out_.load(std::memory_order_relaxed));
  push(stat_stall_ns_.load(std::memory_order_relaxed));
  if (block_cache_ != nullptr) {
    CacheStats cs = block_cache_->stats();
    push(cs.hits);
    push(cs.misses);
  } else {
    push(0);
    push(0);
  }
  push(stat_tables_migrated_.load(std::memory_order_relaxed));
  push(stat_migration_bytes_.load(std::memory_order_relaxed));
  push(watchdog_ != nullptr ? watchdog_->stalls() : 0);
  push(total.posted);
  push(total.completed);
  push(total.outstanding);
  row.push_back(read_delta.Percentile(50.0));
  row.push_back(read_delta.Percentile(99.0));
  row.push_back(write_delta.Percentile(99.0));
  for (size_t i = 0; i < nodes_.size(); i++) {
    push(per_node[i].read.ops);
    push(per_node[i].write.ops);
  }
  series_->Append(env_->NowNanos(), row);
  prev_verbs_ = total;
}

void DLsmDB::StopTelemetry() {
  if (!has_telemetry_thread_) return;
  {
    MutexLock l(&telem_mu_);
    telem_cv_.SignalAll();
  }
  env_->Join(telemetry_thread_);
  has_telemetry_thread_ = false;
}

}  // namespace dlsm
