#include "src/core/memtable.h"

#include "src/util/coding.h"

namespace dlsm {

namespace {

// Entry layout in the skiplist (as in LevelDB):
//   varint32 internal_key_len
//   char     internal_key[internal_key_len]   (user key + 8-byte trailer)
//   varint32 value_len
//   char     value[value_len]
Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);
  return Slice(p, len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

MemTable::MemTable(const InternalKeyComparator& comparator,
                   SequenceNumber seq_base, SequenceNumber seq_limit)
    : comparator_(comparator),
      seq_base_(seq_base),
      seq_limit_(seq_limit),
      table_(comparator_, &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  const size_t key_size = key.size();
  const size_t val_size = value.size();
  const size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  memcpy(p, value.data(), val_size);
  DLSM_CHECK(p + val_size == buf + encoded_len);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (iter.Valid()) {
    // Check that the entry belongs to the same user key; the trailer in the
    // lookup key makes Seek land at the newest visible version.
    const char* entry = iter.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    if (comparator_.comparator.user_comparator()->Compare(
            Slice(key_ptr, key_length - 8), key.user_key()) == 0) {
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      switch (static_cast<ValueType>(tag & 0xff)) {
        case kTypeValue: {
          Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
          value->assign(v.data(), v.size());
          *s = Status::OK();
          return true;
        }
        case kTypeDeletion:
          *s = Status::NotFound(Slice());
          return true;
      }
    }
  }
  return false;
}

/// Iterator over a MemTable's skiplist. Keeps no reference itself; the
/// creator is responsible for pinning the MemTable.
class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override {
    tmp_.clear();
    PutVarint32(&tmp_, static_cast<uint32_t>(k.size()));
    tmp_.append(k.data(), k.size());
    iter_.Seek(tmp_.data());
  }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override {
    return GetLengthPrefixedSliceAt(iter_.key());
  }
  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  static Slice GetLengthPrefixedSliceAt(const char* data) {
    uint32_t len;
    const char* p = data;
    p = GetVarint32Ptr(p, p + 5, &len);
    return Slice(p, len);
  }

  MemTable::Table::Iterator iter_;
  std::string tmp_;  // For passing to Seek.
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

}  // namespace dlsm
