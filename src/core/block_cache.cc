#include "src/core/block_cache.h"

#include <cstdio>

namespace dlsm {

std::string BlockCache::PropertyString() const {
  CacheStats s = stats();
  uint64_t accesses = s.hits + s.misses;
  double hit_rate =
      accesses == 0 ? 0.0 : 100.0 * static_cast<double>(s.hits) / accesses;
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "block-cache: capacity=%llu usage=%llu%s\n"
      "hits=%llu misses=%llu hit-rate=%.2f%%\n"
      "inserts=%llu evictions=%llu admission-rejects=%llu\n",
      static_cast<unsigned long long>(capacity()),
      static_cast<unsigned long long>(usage()),
      offline() ? " (offline)" : "",
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses), hit_rate,
      static_cast<unsigned long long>(s.inserts),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.admission_rejects));
  return std::string(buf);
}

}  // namespace dlsm
