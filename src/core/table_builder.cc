#include "src/core/table_builder.h"

#include <algorithm>
#include <vector>

#include "src/util/coding.h"
#include "src/util/logging.h"

namespace dlsm {

namespace {

// ---------------------------------------------------------------------------
// Byte-addressable builder
// ---------------------------------------------------------------------------

// Record layout in the data region:
//   varint32 internal_key_len | internal key | varint32 value_len | value

class ByteTableBuilder : public TableBuilder {
 public:
  ByteTableBuilder(const BloomFilterPolicy* bloom, TableSink* sink)
      : bloom_(bloom), sink_(sink), index_(TableIndex::kPerRecord) {}

  Status Add(const Slice& internal_key, const Slice& value) override {
    uint64_t offset = sink_->bytes_written();
    char hdr[10];
    char* p = EncodeVarint32(hdr, static_cast<uint32_t>(internal_key.size()));
    DLSM_RETURN_NOT_OK(sink_->Append(hdr, p - hdr));
    DLSM_RETURN_NOT_OK(sink_->Append(internal_key.data(),
                                     internal_key.size()));
    p = EncodeVarint32(hdr, static_cast<uint32_t>(value.size()));
    DLSM_RETURN_NOT_OK(sink_->Append(hdr, p - hdr));
    DLSM_RETURN_NOT_OK(sink_->Append(value.data(), value.size()));

    uint32_t record_len =
        static_cast<uint32_t>(sink_->bytes_written() - offset);
    index_.Add(internal_key, offset, record_len);
    user_keys_.push_back(ExtractUserKey(internal_key).ToString());

    if (num_entries_ == 0) {
      smallest_.DecodeFrom(internal_key);
    }
    largest_.DecodeFrom(internal_key);
    num_entries_++;
    return Status::OK();
  }

  Status Finish(TableBuildResult* result) override {
    DLSM_RETURN_NOT_OK(sink_->Finish());
    std::string filter;
    std::vector<Slice> key_slices;
    key_slices.reserve(user_keys_.size());
    for (const std::string& k : user_keys_) key_slices.emplace_back(k);
    bloom_->CreateFilter(key_slices.data(),
                         static_cast<int>(key_slices.size()), &filter);
    index_.SetFilter(filter);

    result->num_entries = num_entries_;
    result->data_len = sink_->bytes_written();
    result->smallest = smallest_;
    result->largest = largest_;
    result->index_blob = index_.Finish();
    return Status::OK();
  }

  uint64_t EstimatedSize() const override { return sink_->bytes_written(); }
  uint64_t NumEntries() const override { return num_entries_; }

 private:
  const BloomFilterPolicy* bloom_;
  TableSink* sink_;
  TableIndex::Builder index_;
  std::vector<std::string> user_keys_;
  uint64_t num_entries_ = 0;
  InternalKey smallest_, largest_;
};

// ---------------------------------------------------------------------------
// Block builder (LevelDB-style prefix compression with restart points)
// ---------------------------------------------------------------------------

constexpr int kRestartInterval = 16;

/// Packs entries into one block:
///   entries: varint32 shared | varint32 non_shared | varint32 value_len |
///            key_delta | value
///   trailer: u32 restarts[] | u32 num_restarts
class BlockBuilder {
 public:
  BlockBuilder() { Reset(); }

  void Reset() {
    buffer_.clear();
    restarts_.clear();
    restarts_.push_back(0);
    counter_ = 0;
    last_key_.clear();
  }

  void Add(const Slice& key, const Slice& value) {
    size_t shared = 0;
    if (counter_ < kRestartInterval) {
      const size_t min_length = std::min(last_key_.size(), key.size());
      while (shared < min_length && last_key_[shared] == key[shared]) {
        shared++;
      }
    } else {
      restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
      counter_ = 0;
    }
    const size_t non_shared = key.size() - shared;
    PutVarint32(&buffer_, static_cast<uint32_t>(shared));
    PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
    PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
    buffer_.append(key.data() + shared, non_shared);
    buffer_.append(value.data(), value.size());
    last_key_.resize(shared);
    last_key_.append(key.data() + shared, non_shared);
    counter_++;
  }

  /// Appends the restart trailer and returns the block contents.
  Slice Finish() {
    for (uint32_t r : restarts_) {
      PutFixed32(&buffer_, r);
    }
    PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
    return Slice(buffer_);
  }

  size_t CurrentSizeEstimate() const {
    return buffer_.size() + restarts_.size() * 4 + 4;
  }

  bool empty() const { return buffer_.empty(); }
  const std::string& last_key() const { return last_key_; }

 private:
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;
  std::string last_key_;
};

class BlockTableBuilder : public TableBuilder {
 public:
  BlockTableBuilder(const BloomFilterPolicy* bloom, TableSink* sink,
                    size_t block_size)
      : bloom_(bloom),
        sink_(sink),
        block_size_(block_size),
        index_(TableIndex::kPerBlock) {}

  Status Add(const Slice& internal_key, const Slice& value) override {
    block_.Add(internal_key, value);
    user_keys_.push_back(ExtractUserKey(internal_key).ToString());
    if (num_entries_ == 0) {
      smallest_.DecodeFrom(internal_key);
    }
    largest_.DecodeFrom(internal_key);
    num_entries_++;
    if (block_.CurrentSizeEstimate() >= block_size_) {
      DLSM_RETURN_NOT_OK(EmitBlock());
    }
    return Status::OK();
  }

  Status Finish(TableBuildResult* result) override {
    if (!block_.empty()) {
      DLSM_RETURN_NOT_OK(EmitBlock());
    }
    DLSM_RETURN_NOT_OK(sink_->Finish());
    std::string filter;
    std::vector<Slice> key_slices;
    key_slices.reserve(user_keys_.size());
    for (const std::string& k : user_keys_) key_slices.emplace_back(k);
    bloom_->CreateFilter(key_slices.data(),
                         static_cast<int>(key_slices.size()), &filter);
    index_.SetFilter(filter);

    result->num_entries = num_entries_;
    result->data_len = sink_->bytes_written();
    result->smallest = smallest_;
    result->largest = largest_;
    result->index_blob = index_.Finish();
    return Status::OK();
  }

  uint64_t EstimatedSize() const override {
    return sink_->bytes_written() + block_.CurrentSizeEstimate();
  }
  uint64_t NumEntries() const override { return num_entries_; }

 private:
  Status EmitBlock() {
    std::string last_key = block_.last_key();  // Copy before Finish.
    Slice contents = block_.Finish();
    uint64_t offset = sink_->bytes_written();
    // The block-wrapping copy the byte-addressable layout avoids: block
    // contents accumulate in a local buffer and are copied out whole.
    DLSM_RETURN_NOT_OK(sink_->Append(contents.data(), contents.size()));
    index_.Add(Slice(last_key), offset,
               static_cast<uint32_t>(contents.size()));
    block_.Reset();
    return Status::OK();
  }

  const BloomFilterPolicy* bloom_;
  TableSink* sink_;
  size_t block_size_;
  TableIndex::Builder index_;
  BlockBuilder block_;
  std::vector<std::string> user_keys_;
  uint64_t num_entries_ = 0;
  InternalKey smallest_, largest_;
};

}  // namespace

std::unique_ptr<TableBuilder> NewByteTableBuilder(
    const BloomFilterPolicy* bloom, TableSink* sink) {
  return std::make_unique<ByteTableBuilder>(bloom, sink);
}

std::unique_ptr<TableBuilder> NewBlockTableBuilder(
    const BloomFilterPolicy* bloom, TableSink* sink, size_t block_size) {
  return std::make_unique<BlockTableBuilder>(bloom, sink, block_size);
}

}  // namespace dlsm
