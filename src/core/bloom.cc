#include "src/core/bloom.h"

#include "src/util/hash.h"

namespace dlsm {

namespace {
uint32_t BloomHash(const Slice& key) {
  return Hash(key.data(), key.size(), 0xbc9f1d34);
}
}  // namespace

BloomFilterPolicy::BloomFilterPolicy(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = bits_per_key * ln(2), rounded; clamp to a sane range.
  k_ = static_cast<int>(bits_per_key * 0.69);
  if (k_ < 1) k_ = 1;
  if (k_ > 30) k_ = 30;
}

void BloomFilterPolicy::CreateFilter(const Slice* keys, int n,
                                     std::string* dst) const {
  size_t bits = static_cast<size_t>(n) * bits_per_key_;
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const size_t init_size = dst->size();
  dst->resize(init_size + bytes, 0);
  dst->push_back(static_cast<char>(k_));  // Probe count in the last byte.
  char* array = &(*dst)[init_size];
  for (int i = 0; i < n; i++) {
    // Double hashing: h, h+delta, h+2*delta, ...
    uint32_t h = BloomHash(keys[i]);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < k_; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
}

bool BloomFilterPolicy::KeyMayMatch(const Slice& key,
                                    const Slice& filter) const {
  const size_t len = filter.size();
  if (len < 2) return false;

  const char* array = filter.data();
  const size_t bits = (len - 1) * 8;

  const int k = array[len - 1];
  if (k > 30) {
    // Reserved for future encodings; treat as a match.
    return true;
  }

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace dlsm
