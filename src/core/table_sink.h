// Table sinks: where serialized SSTable bytes go.
//
//  * AsyncRemoteSink — the paper's Fig. 6 flush pipeline: bytes are
//    serialized straight into registered staging buffers; a full buffer is
//    posted as an asynchronous RDMA WRITE through the unified verb layer
//    and serialization continues in the next buffer. Each in-flight buffer
//    holds its WRITE's WrHandle; buffers recycle as their handles become
//    ready (oldest first — one QP completes FIFO, but the handle layer
//    would tolerate any order).
//  * SyncRemoteSink — ablation: one blocking RDMA WRITE per buffer.
//  * LocalMemorySink — near-data compaction output: the memory node
//    serializes directly into its own DRAM; no wire traffic at all.
//
// A FlushPipeline extends the async pipeline across the outputs of one
// flush/compaction job: sinks attached to a pipeline share its verb queue
// and hand their tail WRITE handles over on Finish() instead of draining,
// so serialization of the next output overlaps the previous output's wire
// tail. The job drains the pipeline once, before installing any output.

#ifndef DLSM_CORE_TABLE_SINK_H_
#define DLSM_CORE_TABLE_SINK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/rdma/rdma_manager.h"
#include "src/remote/remote_alloc.h"
#include "src/util/status.h"

namespace dlsm {

/// Receives the sequential byte stream of an SSTable under construction.
class TableSink {
 public:
  virtual ~TableSink() = default;

  /// Appends n bytes; the stream offset advances by n.
  virtual Status Append(const char* data, size_t n) = 0;

  /// Completes the stream (waits out in-flight I/O).
  virtual Status Finish() = 0;

  /// Bytes appended so far (== current stream offset).
  virtual uint64_t bytes_written() const = 0;
};

/// Serializes into the memory node's own DRAM (near-data compaction).
class LocalMemorySink : public TableSink {
 public:
  /// Writes into [dst, dst+capacity).
  LocalMemorySink(char* dst, size_t capacity);

  Status Append(const char* data, size_t n) override;
  Status Finish() override { return Status::OK(); }
  uint64_t bytes_written() const override { return written_; }

 private:
  char* dst_;
  size_t capacity_;
  uint64_t written_ = 0;
};

/// Job-scoped wave state shared by every output sink of one flush or
/// compute-side compaction: one exclusive verb queue plus the WRITE
/// handles deferred by finished sinks. Single-owner, like the verb queue
/// it wraps: one job thread creates it, attaches its sinks to it, and
/// drains it before installing any output. Destruction without Drain()
/// (error unwind, DB teardown) cancels the deferred handles without
/// blocking; the verb queue folds their completions into the abandoned
/// counter so the outstanding gauge is never pinned.
class FlushPipeline {
 public:
  explicit FlushPipeline(rdma::RdmaManager* mgr);
  ~FlushPipeline() = default;  // Handles cancel, then the queue unwinds.

  FlushPipeline(const FlushPipeline&) = delete;
  FlushPipeline& operator=(const FlushPipeline&) = delete;

  rdma::VerbQueue* vq() { return vq_.get(); }

  /// Takes ownership of a finished sink's in-flight WRITE handle.
  void Adopt(rdma::WrHandle wr) { deferred_.push_back(std::move(wr)); }

  /// Waits out every deferred WRITE; returns the first failure. The
  /// durability barrier before outputs are installed in the version.
  Status Drain();

  /// Deferred handles not yet drained (exposed for tests).
  size_t deferred_writes() const { return deferred_.size(); }

 private:
  // Declared before the handles so they die first on unwind.
  std::unique_ptr<rdma::VerbQueue> vq_;
  std::vector<rdma::WrHandle> deferred_;
};

/// The asynchronous flush pipeline of paper Sec. X-C.
class AsyncRemoteSink : public TableSink {
 public:
  /// Streams into the remote chunk through buffer_count staging buffers of
  /// buffer_size bytes each, allocated from the compute node's DRAM. With
  /// a pipeline, the sink posts on the pipeline's shared verb queue and
  /// Finish() defers its in-flight WRITEs to the pipeline instead of
  /// draining them (the async write path); without one it owns an
  /// exclusive queue and Finish() blocks until the last byte lands.
  AsyncRemoteSink(rdma::RdmaManager* mgr, const remote::RemoteChunk& chunk,
                  size_t buffer_size, int buffer_count,
                  FlushPipeline* pipeline = nullptr);
  ~AsyncRemoteSink() override;

  Status Append(const char* data, size_t n) override;
  Status Finish() override;
  uint64_t bytes_written() const override { return written_; }

  /// Buffer-reuse statistic (how often a finished buffer was recycled
  /// rather than a fresh one allocated); exposed for tests.
  uint64_t recycled_buffers() const { return recycled_; }

 private:
  struct Buffer {
    char* data;
    size_t fill = 0;
    rdma::WrHandle wr;  // Live while its WRITE is in flight.
  };

  /// Posts the current buffer's contents as an async WRITE and rotates to
  /// a recycled (or fresh) buffer.
  Status FlushCurrent();
  /// Reaps ready completions; if block_for_one, waits for the queue head.
  Status ReapCompletions(bool block_for_one);

  rdma::RdmaManager* mgr_;
  // Declared before the buffers so their handles die first on unwind.
  std::unique_ptr<rdma::VerbQueue> owned_vq_;  // Null when pipelined.
  rdma::VerbQueue* vq_ = nullptr;  // owned_vq_ or the pipeline's queue.
  FlushPipeline* pipeline_ = nullptr;
  remote::RemoteChunk chunk_;
  size_t buffer_size_;
  int max_buffers_;
  uint64_t written_ = 0;   // Stream offset (== remote offset of next byte).
  uint64_t recycled_ = 0;
  Buffer* current_ = nullptr;
  // FIFO of buffers whose WRITE is in flight, oldest first — mirrors the
  // RDMA send queue order, so the head always completes first.
  std::deque<Buffer*> in_flight_;
  std::vector<Buffer*> free_buffers_;
  std::vector<std::unique_ptr<Buffer>> all_buffers_;
  Status status_;
};

/// Decorator adding one staging copy per append, modeling the extra
/// buffer hop of the ported baselines' file-system layer.
class CopySink : public TableSink {
 public:
  explicit CopySink(std::unique_ptr<TableSink> inner)
      : inner_(std::move(inner)) {}

  Status Append(const char* data, size_t n) override {
    staging_.assign(data, n);  // The FS-layer copy.
    return inner_->Append(staging_.data(), n);
  }
  Status Finish() override { return inner_->Finish(); }
  uint64_t bytes_written() const override { return inner_->bytes_written(); }

 private:
  std::unique_ptr<TableSink> inner_;
  std::string staging_;
};

/// Ablation: same staging buffers, but each WRITE blocks until completion.
class SyncRemoteSink : public TableSink {
 public:
  SyncRemoteSink(rdma::RdmaManager* mgr, const remote::RemoteChunk& chunk,
                 size_t buffer_size);

  Status Append(const char* data, size_t n) override;
  Status Finish() override;
  uint64_t bytes_written() const override { return written_; }

 private:
  Status FlushCurrent();

  rdma::RdmaManager* mgr_;
  remote::RemoteChunk chunk_;
  size_t buffer_size_;
  std::vector<char> buffer_;
  size_t fill_ = 0;
  uint64_t written_ = 0;
};

}  // namespace dlsm

#endif  // DLSM_CORE_TABLE_SINK_H_
