// The memory node's resident service (paper Secs. V, X-D).
//
// A weak-CPU memory node runs one of these: an RPC server whose worker
// pool executes near-data compactions out of the node's own DRAM, plus the
// memory-side allocator for compaction outputs, flush-region provisioning
// for compute nodes, and the free-batch garbage collection endpoint.

#ifndef DLSM_CORE_MEMORY_NODE_SERVICE_H_
#define DLSM_CORE_MEMORY_NODE_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/dbformat.h"
#include "src/remote/remote_alloc.h"
#include "src/remote/rpc.h"

namespace dlsm {

/// Hosts the memory node's side of dLSM. One per memory node; shared by
/// all shards/DBs whose data lives there.
class MemoryNodeService {
 public:
  /// compaction_workers bounds parallel near-data compactions; it should
  /// not exceed the node's core budget (Fig. 12 sweeps this).
  MemoryNodeService(rdma::Fabric* fabric, rdma::Node* node,
                    int compaction_workers);
  ~MemoryNodeService();

  MemoryNodeService(const MemoryNodeService&) = delete;
  MemoryNodeService& operator=(const MemoryNodeService&) = delete;

  void Start();
  void Stop();

  rdma::Node* node() const { return node_; }
  remote::RpcServer* rpc_server() { return server_.get(); }

  /// Virtual ns of worker busy time (compactions executed), for Fig. 12's
  /// CPU-utilization annotations.
  uint64_t worker_busy_ns() const { return server_->worker_busy_ns(); }
  int compaction_workers() const { return workers_; }

  /// Verb-layer telemetry of the server's reply path (the WRITEs and
  /// wakeups it posts back to clients), aggregated across channels.
  rdma::RdmaVerbStats reply_verb_stats() const {
    return server_->reply_verb_stats();
  }

  /// Local (same-process) access for tests: the allocator serving
  /// compaction outputs of the given chunk size.
  remote::SlabAllocator* compaction_allocator(size_t chunk_size);

 private:
  void Handle(uint8_t type, const Slice& args, std::string* reply);
  void HandleAllocFlushRegion(const Slice& args, std::string* reply);
  void HandleFreeBatch(const Slice& args, std::string* reply);
  void HandleCompaction(const Slice& args, std::string* reply);
  void HandleReadBlock(const Slice& args, std::string* reply);
  void HandleStats(std::string* reply);

  rdma::Fabric* fabric_;
  rdma::Node* node_;
  int workers_;
  std::unique_ptr<remote::RpcServer> server_;
  InternalKeyComparator icmp_;

  std::mutex alloc_mu_;
  // Compaction-output slabs, one list per chunk size; grown on demand.
  std::map<size_t, std::vector<std::unique_ptr<remote::SlabAllocator>>>
      compaction_allocs_;
};

}  // namespace dlsm

#endif  // DLSM_CORE_MEMORY_NODE_SERVICE_H_
