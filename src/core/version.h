// Copy-on-write LSM-tree metadata (paper Secs. III, V-A, V-B).
//
// A Version is an immutable snapshot of the tree shape: per-level lists of
// FileMetaData references. Readers pin the current Version (a shared_ptr
// copy); flush and compaction install new Versions copy-on-write. Pinned
// files are garbage-collected automatically when the last Version (or
// iterator) referencing them dies — see file_meta.h.

#ifndef DLSM_CORE_VERSION_H_
#define DLSM_CORE_VERSION_H_

#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/core/dbformat.h"
#include "src/core/file_meta.h"
#include "src/core/iterator.h"
#include "src/core/options.h"
#include "src/core/table_reader.h"
#include "src/rdma/rdma_manager.h"

namespace dlsm {

/// An immutable snapshot of the LSM-tree's file layout.
class Version {
 public:
  explicit Version(int num_levels) : levels_(num_levels) {}

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const std::vector<FileRef>& files(int level) const { return levels_[level]; }
  int NumFiles(int level) const {
    return static_cast<int>(levels_[level].size());
  }
  uint64_t LevelBytes(int level) const;
  int TotalFiles() const;

  /// Files that might contain user_key, in the order a reader must probe
  /// them: L0 newest-to-oldest, then one candidate per deeper level. When
  /// num_l0 is non-null it receives how many leading entries are L0 files
  /// (the set a batched reader may probe concurrently, newest-wins).
  /// `result` is cleared and filled with borrowed pointers that stay valid
  /// for as long as the caller holds its VersionRef; passing the same
  /// vector across lookups avoids reallocating on the read hot path.
  void CollectSearchOrder(const InternalKeyComparator& icmp,
                          const Slice& user_key,
                          std::vector<const FileMetaData*>* result,
                          size_t* num_l0 = nullptr) const;

  /// Files in `level` overlapping [smallest, largest] (user-key range).
  std::vector<FileRef> GetOverlappingInputs(
      const InternalKeyComparator& icmp, int level, const Slice& smallest,
      const Slice& largest) const;

  /// Appends the iterators needed for a full scan of this version:
  /// per-file iterators for L0, one concatenating iterator per deeper
  /// level. Pins files via the iterators. Each table's reads route to its
  /// own memory node through the router.
  void AddIterators(const ReadRouter& router,
                    const InternalKeyComparator& icmp, size_t prefetch,
                    std::vector<Iterator*>* iters) const;

 private:
  friend class VersionSet;
  std::vector<std::vector<FileRef>> levels_;
};

using VersionRef = std::shared_ptr<const Version>;

/// A batch of metadata changes applied atomically.
struct VersionEdit {
  std::vector<std::pair<int, FileRef>> added;            // (level, file)
  std::vector<std::pair<int, uint64_t>> deleted;         // (level, number)

  void AddFile(int level, FileRef f) { added.emplace_back(level, std::move(f)); }
  void DeleteFile(int level, uint64_t number) {
    deleted.emplace_back(level, number);
  }
};

/// A picked compaction: inputs from `level` and `level + 1`.
struct CompactionPick {
  int level = -1;
  std::vector<FileRef> inputs[2];
  bool bottommost = false;  ///< No live data below the output level.

  bool valid() const { return level >= 0; }
  uint64_t InputBytes() const {
    uint64_t total = 0;
    for (const auto& in : inputs)
      for (const FileRef& f : in) total += f->data_len;
    return total;
  }
};

/// Owns the current Version and the compaction-picking state. Thread-safe.
class VersionSet {
 public:
  VersionSet(const InternalKeyComparator* icmp, const Options* options);

  /// The current tree snapshot (pin by holding the returned reference).
  VersionRef current() const;

  /// Applies edit copy-on-write, making the result current.
  void Apply(const VersionEdit& edit);

  /// Atomically swaps one file's metadata for a same-number replacement
  /// (the migration install: same keys/index, new chunk + memory_node).
  /// Fails with Busy when the file is a live compaction input and
  /// NotFound when it already left the version; the caller drops the
  /// replacement, whose gc callback then frees the copied chunk.
  Status Replace(int level, uint64_t number, FileRef replacement);

  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Picks a compaction if one is warranted, marking its inputs busy so
  /// concurrent coordinators never pick overlapping work. Returns an
  /// invalid pick when nothing needs compacting.
  CompactionPick PickCompaction();

  /// Releases the busy marks of a finished (or failed) compaction.
  void ReleaseCompaction(const CompactionPick& pick);

  /// True when L0 holds at least the stop-writes trigger of files.
  bool NeedsStall() const;
  /// True when some level's score is >= 1 (a compaction is warranted).
  bool NeedsCompaction() const;

  uint64_t MaxBytesForLevel(int level) const;

 private:
  CompactionPick PickCompactionLocked();

  const InternalKeyComparator* icmp_;
  const Options* options_;
  mutable std::mutex mu_;  // Guards current_ & picking state; never held
                           // across Env waits.
  VersionRef current_;
  std::atomic<uint64_t> next_file_number_{1};
  std::set<uint64_t> busy_files_;
  bool l0_compaction_running_ = false;
  std::vector<std::string> compact_pointer_;  // Round-robin cursors (L1+).
};

}  // namespace dlsm

#endif  // DLSM_CORE_VERSION_H_
