// SSTable metadata kept on the compute node (paper Sec. V-A: "dLSM
// maintains the LSM-tree metadata in the compute node").
//
// A FileMetaData pins its remote chunk: versions hold shared_ptrs to files,
// snapshots hold shared_ptrs to versions, so when the last reference to a
// file drops, its garbage-collection callback fires and the chunk is
// recycled — by the compute-side allocator if the compute node allocated
// it (flush), or batched into a remote-free RPC if the memory node did
// (near-data compaction). This is exactly the pin/unpin scheme of Sec. V-B.

#ifndef DLSM_CORE_FILE_META_H_
#define DLSM_CORE_FILE_META_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/core/dbformat.h"
#include "src/core/table_index.h"
#include "src/remote/remote_alloc.h"

namespace dlsm {

/// Per-SSTable metadata; see file header for the pinning discipline.
struct FileMetaData {
  uint64_t number = 0;           ///< Unique file id.
  /// Age rank for L0 ordering: flushes may complete out of order, so L0 is
  /// sorted by the source MemTable's sequence base, not by file number.
  uint64_t l0_order = 0;
  remote::RemoteChunk chunk;     ///< Where the data region lives.
  uint64_t data_len = 0;         ///< Bytes of key-value records.
  uint64_t num_entries = 0;
  InternalKey smallest;          ///< Smallest internal key.
  InternalKey largest;           ///< Largest internal key.
  std::shared_ptr<TableIndex> index;  ///< Cached locally (index + bloom).

  /// Slot into the engine's memory-node vector holding this table's bytes.
  /// Routing state lives compute-side (Outback-style), so re-placement is
  /// one metadata swap: readers route by this id, never by shard wiring.
  uint32_t memory_node = 0;

  /// READ-path touch counter for the heat-based rebalancer. Relaxed: an
  /// approximate rank is all migration victim selection needs.
  mutable std::atomic<uint64_t> heat{0};

  /// Invoked once when the last reference drops; recycles chunk.
  std::function<void(const remote::RemoteChunk&)> gc;

  ~FileMetaData() {
    if (gc) gc(chunk);
  }
};

using FileRef = std::shared_ptr<FileMetaData>;

}  // namespace dlsm

#endif  // DLSM_CORE_FILE_META_H_
