#include "src/core/table_sink.h"

#include <cstring>

#include "src/util/logging.h"
#include "src/util/trace.h"

namespace dlsm {

// ---------------------------------------------------------------------------
// LocalMemorySink
// ---------------------------------------------------------------------------

LocalMemorySink::LocalMemorySink(char* dst, size_t capacity)
    : dst_(dst), capacity_(capacity) {}

Status LocalMemorySink::Append(const char* data, size_t n) {
  if (written_ + n > capacity_) {
    return Status::OutOfMemory("table exceeds output chunk");
  }
  memcpy(dst_ + written_, data, n);
  written_ += n;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FlushPipeline
// ---------------------------------------------------------------------------

FlushPipeline::FlushPipeline(rdma::RdmaManager* mgr)
    : vq_(mgr->CreateExclusiveVq()) {}

Status FlushPipeline::Drain() {
  // The flush wave's durability barrier: the span is the stall a flush job
  // pays waiting for its deferred WRITE handles before install.
  trace::TraceSpan span("flush_drain", "flush");
  span.arg("deferred", deferred_.size());
  Status first;
  for (rdma::WrHandle& wr : deferred_) {
    Status s = wr.Wait();
    if (first.ok() && !s.ok()) first = s;
  }
  deferred_.clear();
  return first;
}

// ---------------------------------------------------------------------------
// AsyncRemoteSink
// ---------------------------------------------------------------------------

AsyncRemoteSink::AsyncRemoteSink(rdma::RdmaManager* mgr,
                                 const remote::RemoteChunk& chunk,
                                 size_t buffer_size, int buffer_count,
                                 FlushPipeline* pipeline)
    : mgr_(mgr),
      pipeline_(pipeline),
      chunk_(chunk),
      buffer_size_(buffer_size),
      max_buffers_(buffer_count) {
  if (pipeline_ != nullptr) {
    vq_ = pipeline_->vq();
  } else {
    owned_vq_ = mgr_->CreateExclusiveVq();
    vq_ = owned_vq_.get();
  }
  // First buffer up front; the rest are allocated on demand, and reused
  // once their transfers complete (Fig. 6 step 4).
  auto b = std::make_unique<Buffer>();
  b->data = mgr_->local()->AllocDram(buffer_size_);
  DLSM_CHECK_MSG(b->data != nullptr, "compute DRAM exhausted (flush buffer)");
  current_ = b.get();
  all_buffers_.push_back(std::move(b));
}

AsyncRemoteSink::~AsyncRemoteSink() {
  // Buffers are DRAM-arena allocations; nothing to unmap. Destruction
  // before Finish() (error unwind) is safe: each in-flight buffer's
  // WrHandle cancels itself without blocking.
}

Status AsyncRemoteSink::ReapCompletions(bool block_for_one) {
  auto recycle = [this](Buffer* head) {
    if (!head->wr.status().ok()) status_ = head->wr.status();
    head->wr = rdma::WrHandle();
    head->fill = 0;
    free_buffers_.push_back(head);
  };
  if (block_for_one && !in_flight_.empty()) {
    Buffer* head = in_flight_.front();
    head->wr.Wait();
    in_flight_.pop_front();
    recycle(head);
  }
  // Opportunistically reap whatever is already ready (Fig. 6: "the writer
  // thread checks for work request completions every time it submits").
  while (!in_flight_.empty() && in_flight_.front()->wr.Ready()) {
    Buffer* head = in_flight_.front();
    in_flight_.pop_front();
    recycle(head);
  }
  return status_;
}

Status AsyncRemoteSink::FlushCurrent() {
  if (current_->fill == 0) return status_;
  uint64_t remote_off = written_ - current_->fill;
  current_->wr = vq_->Write(current_->data, chunk_.addr + remote_off,
                            chunk_.rkey, current_->fill);
  in_flight_.push_back(current_);
  current_ = nullptr;

  DLSM_RETURN_NOT_OK(ReapCompletions(false));
  if (!free_buffers_.empty()) {
    current_ = free_buffers_.back();
    free_buffers_.pop_back();
    recycled_++;
  } else if (static_cast<int>(all_buffers_.size()) < max_buffers_) {
    auto b = std::make_unique<Buffer>();
    b->data = mgr_->local()->AllocDram(buffer_size_);
    DLSM_CHECK_MSG(b->data != nullptr,
                   "compute DRAM exhausted (flush buffer)");
    current_ = b.get();
    all_buffers_.push_back(std::move(b));
  } else {
    // All buffers in flight: wait for the queue head (backpressure).
    DLSM_RETURN_NOT_OK(ReapCompletions(true));
    DLSM_CHECK(!free_buffers_.empty());
    current_ = free_buffers_.back();
    free_buffers_.pop_back();
    recycled_++;
  }
  return status_;
}

Status AsyncRemoteSink::Append(const char* data, size_t n) {
  if (written_ + n > chunk_.size) {
    return Status::OutOfMemory("table exceeds remote chunk");
  }
  while (n > 0) {
    size_t space = buffer_size_ - current_->fill;
    size_t take = n < space ? n : space;
    // Serialization writes directly into the registered staging buffer —
    // no intermediate copy (Fig. 6 step 1).
    memcpy(current_->data + current_->fill, data, take);
    current_->fill += take;
    written_ += take;
    data += take;
    n -= take;
    if (current_->fill == buffer_size_) {
      DLSM_RETURN_NOT_OK(FlushCurrent());
    }
  }
  return status_;
}

Status AsyncRemoteSink::Finish() {
  if (pipeline_ != nullptr) {
    // Defer the tail: the pipeline owns the in-flight WRITEs from here and
    // the job drains them once, before installing any output. The buffer
    // memory is arena DRAM and the fabric captures payloads at post time,
    // so the Buffer structs may die ahead of their completions. The tail
    // buffer's WRITE is posted directly — not via FlushCurrent, whose
    // opportunistic reap could harvest it before adoption — so at least
    // one handle per sink always reaches the pipeline and its outcome is
    // checked by Drain(), never dropped.
    DLSM_RETURN_NOT_OK(status_);
    if (current_ != nullptr && current_->fill > 0) {
      uint64_t remote_off = written_ - current_->fill;
      current_->wr = vq_->Write(current_->data, chunk_.addr + remote_off,
                                chunk_.rkey, current_->fill);
      in_flight_.push_back(current_);
      current_ = nullptr;
    }
    while (!in_flight_.empty()) {
      pipeline_->Adopt(std::move(in_flight_.front()->wr));
      in_flight_.pop_front();
    }
    return status_;
  }
  DLSM_RETURN_NOT_OK(FlushCurrent());
  while (!in_flight_.empty()) {
    DLSM_RETURN_NOT_OK(ReapCompletions(true));
  }
  return status_;
}

// ---------------------------------------------------------------------------
// SyncRemoteSink
// ---------------------------------------------------------------------------

SyncRemoteSink::SyncRemoteSink(rdma::RdmaManager* mgr,
                               const remote::RemoteChunk& chunk,
                               size_t buffer_size)
    : mgr_(mgr), chunk_(chunk), buffer_size_(buffer_size) {
  buffer_.resize(buffer_size);
}

Status SyncRemoteSink::FlushCurrent() {
  if (fill_ == 0) return Status::OK();
  uint64_t remote_off = written_ - fill_;
  Status s = mgr_->Write(buffer_.data(), chunk_.addr + remote_off,
                         chunk_.rkey, fill_);
  fill_ = 0;
  return s;
}

Status SyncRemoteSink::Append(const char* data, size_t n) {
  if (written_ + n > chunk_.size) {
    return Status::OutOfMemory("table exceeds remote chunk");
  }
  while (n > 0) {
    size_t space = buffer_size_ - fill_;
    size_t take = n < space ? n : space;
    memcpy(buffer_.data() + fill_, data, take);
    fill_ += take;
    written_ += take;
    data += take;
    n -= take;
    if (fill_ == buffer_size_) {
      DLSM_RETURN_NOT_OK(FlushCurrent());
    }
  }
  return Status::OK();
}

Status SyncRemoteSink::Finish() { return FlushCurrent(); }

}  // namespace dlsm
