#include "src/core/iterator.h"

#include "src/util/logging.h"

namespace dlsm {

namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(const Status& s) : status_(s) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override { DLSM_CHECK(false); }
  void Prev() override { DLSM_CHECK(false); }
  Slice key() const override {
    DLSM_CHECK(false);
    return Slice();
  }
  Slice value() const override {
    DLSM_CHECK(false);
    return Slice();
  }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator() { return new EmptyIterator(Status::OK()); }

Iterator* NewErrorIterator(const Status& status) {
  return new EmptyIterator(status);
}

}  // namespace dlsm
