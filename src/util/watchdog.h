// Stall watchdog: detects operations outstanding beyond a deadline and
// emits one diagnostic dump instead of hanging silently.
//
// Two detection sources feed one registry:
//
//  * Armed operations — long-running jobs (flush, compaction, migration,
//    RPC) register an Arm()/Disarm() interval (usually via WatchdogScope).
//    Jobs with legitimate long lifetimes call Progress() at checkpoints to
//    reset their clock, so only a job that stops advancing trips the
//    deadline.
//  * Probes — callbacks that enumerate outstanding work the hot path
//    cannot afford to register per-op (the verb layer's in-flight WR
//    table). A probe reports ops older than the deadline.
//
// The clock is injected, never read from the host: under SimEnv it is
// virtual time, so a sanitizer-slowed or cpu_scale=0 run cannot
// false-positive — virtual time only advances when simulated work does.
//
// The dump is one-shot: the first Poll() that finds stuck ops composes a
// report (stuck-op table plus every registered diagnostic section: series
// ring tail, outstanding-handle table, per-QP state) and hands it to the
// sink exactly once. Later polls are no-ops, so a wedged system produces
// one actionable report, not a log flood.
//
// Dependency-light (util sits below sim): the owner supplies the clock
// and drives Poll() from its own thread.

#ifndef DLSM_UTIL_WATCHDOG_H_
#define DLSM_UTIL_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace dlsm {
namespace telemetry {

class Watchdog {
 public:
  struct Options {
    /// Timestamp source in nanoseconds (required; virtual time under
    /// SimEnv).
    std::function<uint64_t()> clock;
    /// Default per-op deadline; Arm() may override per op.
    uint64_t deadline_ns = 1000ull * 1000 * 1000;
    /// Receives the dump; defaults to stderr when null.
    std::function<void(const std::string&)> sink;
  };

  /// One outstanding operation past its deadline, as reported by a probe
  /// or the armed-op table.
  struct StuckOp {
    const char* kind = "";  ///< e.g. "flush", "verb:READ". Literal string.
    uint64_t id = 0;        ///< wr_id / armed-op token.
    uint64_t age_ns = 0;    ///< now - last progress.
  };

  /// Enumerates outstanding ops older than `deadline_ns` at `now`.
  using Probe =
      std::function<void(uint64_t now, uint64_t deadline_ns,
                         std::vector<StuckOp>* out)>;

  explicit Watchdog(Options opts);

  /// Registers an outstanding operation; returns its token (never 0).
  /// deadline_ns == 0 uses the default. kind must be a string literal.
  uint64_t Arm(const char* kind, uint64_t deadline_ns = 0);
  /// Resets the operation's clock (a checkpoint: the job is alive).
  void Progress(uint64_t token);
  void Disarm(uint64_t token);

  /// Probes and diagnostics are registered at setup, before Poll() runs.
  void AddProbe(std::string name, Probe probe);
  /// Appends a named section to the dump (e.g. the series ring tail).
  void AddDiagnostic(std::string name, std::function<std::string()> fn);

  /// Checks every source against the clock. Fires the one-shot dump on
  /// the first poll that finds stuck ops; returns true exactly then.
  /// Called from the owner's telemetry thread.
  bool Poll();

  /// True once the dump has fired.
  bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Stuck ops counted by the firing poll (0 until fired).
  uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

  /// The dump text (empty until fired). Test/diagnostic access; the sink
  /// got the same bytes.
  std::string last_dump() const;

  /// Armed ops right now (gauge; test helper).
  size_t armed() const;

 private:
  struct Armed {
    uint64_t token;
    const char* kind;
    uint64_t since_ns;
    uint64_t deadline_ns;
  };

  Options opts_;

  mutable std::mutex mu_;
  std::vector<Armed> armed_;  // Flat; stall-path only scans, hot path O(1) amortized.
  std::vector<std::pair<std::string, Probe>> probes_;
  std::vector<std::pair<std::string, std::function<std::string()>>> diags_;
  uint64_t next_token_ = 1;
  std::string dump_;  // Guarded by mu_; written once.

  std::atomic<bool> fired_{false};
  std::atomic<uint64_t> stalls_{0};
};

/// RAII Arm/Disarm. Inert when wd is null (telemetry disabled), so call
/// sites need no branching.
class WatchdogScope {
 public:
  WatchdogScope(Watchdog* wd, const char* kind, uint64_t deadline_ns = 0)
      : wd_(wd) {
    if (wd_ != nullptr) token_ = wd_->Arm(kind, deadline_ns);
  }
  ~WatchdogScope() {
    if (wd_ != nullptr) wd_->Disarm(token_);
  }

  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

  /// Checkpoint: the enclosed job made progress.
  void Progress() {
    if (wd_ != nullptr) wd_->Progress(token_);
  }

 private:
  Watchdog* wd_;
  uint64_t token_ = 0;
};

}  // namespace telemetry
}  // namespace dlsm

#endif  // DLSM_UTIL_WATCHDOG_H_
