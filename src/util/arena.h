// Arena: block-based bump allocator used by MemTables. Allocations live
// until the Arena is destroyed.

#ifndef DLSM_UTIL_ARENA_H_
#define DLSM_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlsm {

/// A bump allocator whose memory is released all at once on destruction.
/// Thread-safe: concurrent MemTable writers allocate skiplist nodes from
/// the same arena, so allocation takes a short spinlock (the critical
/// section never blocks or yields).
class Arena {
 public:
  Arena();
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to a newly allocated memory block of "bytes" bytes.
  char* Allocate(size_t bytes);

  /// Allocates memory with the normal alignment guarantees of malloc.
  char* AllocateAligned(size_t bytes);

  /// Returns an estimate of the total memory footprint of the arena.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateLocked(size_t bytes);
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  void SpinLock() {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void SpinUnlock() { lock_.clear(std::memory_order_release); }

  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<char*> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::AllocateLocked(size_t bytes) {
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

inline char* Arena::Allocate(size_t bytes) {
  SpinLock();
  char* result = AllocateLocked(bytes);
  SpinUnlock();
  return result;
}

}  // namespace dlsm

#endif  // DLSM_UTIL_ARENA_H_
