// Histogram: fixed-bucket latency histogram used by the benchmark harness
// to report percentiles, in the style of LevelDB's db_bench histogram.

#ifndef DLSM_UTIL_HISTOGRAM_H_
#define DLSM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dlsm {

/// Accumulates scalar samples (typically microseconds) into exponentially
/// sized buckets and reports summary statistics. Not thread-safe; merge
/// per-thread histograms with Merge().
class Histogram {
 public:
  Histogram() { Clear(); }

  /// Resets all accumulated state.
  void Clear();

  /// Records one sample.
  void Add(double value);

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  /// The samples recorded in *this but not in `prev`, where `prev` is an
  /// earlier snapshot of the same histogram (bucket-wise subtraction) —
  /// the windowed view the telemetry sampler reports p50/p99 over.
  /// min/max are approximated by the delta's occupied bucket bounds (the
  /// exact extremes of an interval are not recoverable from two
  /// cumulative snapshots), which only tightens the percentile clamp.
  Histogram DeltaSince(const Histogram& prev) const;

  double Median() const { return Percentile(50.0); }

  /// Returns the approximate p-th percentile (p in [0, 100]). Exact for
  /// empty (0) and single-sample (the sample) histograms; otherwise
  /// linearly interpolated within the bucket and clamped to [Min, Max].
  double Percentile(double p) const;

  double Average() const;
  double StandardDeviation() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  uint64_t Count() const { return static_cast<uint64_t>(num_); }

  /// Multi-line summary with count/avg/stddev/percentiles.
  std::string ToString() const;

  /// JSON object: count/min/max/avg/stddev, p50/p90/p99/p999, and the
  /// non-empty buckets as [{"le": upper_bound, "n": count}, ...].
  std::string ToJson() const;

 private:
  static constexpr int kNumBuckets = 154;
  static const double kBucketLimit[kNumBuckets];

  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;
  double buckets_[kNumBuckets];
};

}  // namespace dlsm

#endif  // DLSM_UTIL_HISTOGRAM_H_
