// CRC32C (Castagnoli) checksums, used to guard SSTable payloads and RPC
// messages against corruption in transit.

#ifndef DLSM_UTIL_CRC32C_H_
#define DLSM_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dlsm {
namespace crc32c {

/// Returns the CRC32C of concat(A, data[0, n-1]) where init_crc is the
/// CRC32C of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// Returns the CRC32C of data[0, n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Returns a masked representation of crc, for storing CRCs of strings that
/// themselves contain embedded CRCs.
inline uint32_t Mask(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8ul;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8ul;
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace dlsm

#endif  // DLSM_UTIL_CRC32C_H_
