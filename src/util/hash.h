// Simple non-cryptographic hashing (Murmur-style), used by bloom filters
// and shard routing.

#ifndef DLSM_UTIL_HASH_H_
#define DLSM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dlsm {

/// Hashes data[0, n-1] with the given seed.
uint32_t Hash(const char* data, size_t n, uint32_t seed);

/// 64-bit mix hash of an integer (splitmix64 finalizer).
inline uint64_t Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace dlsm

#endif  // DLSM_UTIL_HASH_H_
