#include "src/util/crc32c.h"

#include <array>

namespace dlsm {
namespace crc32c {

namespace {

// Table-driven CRC32C, slice-by-one. Table generated at startup from the
// Castagnoli polynomial (reflected form 0x82f63b78).
struct Table {
  std::array<uint32_t, 256> entries;
  Table() {
    constexpr uint32_t kPoly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Table& GetTable() {
  static const Table table;
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Table& t = GetTable();
  uint32_t crc = init_crc ^ 0xffffffffu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = t.entries[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace dlsm
