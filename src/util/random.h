// Pseudo-random generators for tests and benchmarks: a fast xorshift
// uniform generator and a Zipfian generator for skewed key popularity.

#ifndef DLSM_UTIL_RANDOM_H_
#define DLSM_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace dlsm {

/// Fast uniform pseudo-random generator (xorshift128+ variant).
class Random {
 public:
  explicit Random(uint64_t seed) {
    s_[0] = seed * 0x9e3779b97f4a7c15ull + 1;
    s_[1] = (seed ^ 0xdeadbeefcafebabeull) * 0xbf58476d1ce4e5b9ull + 1;
    for (int i = 0; i < 8; i++) Next64();
  }

  /// Returns the next 64-bit pseudo-random value.
  uint64_t Next64() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Returns the next 32-bit pseudo-random value.
  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Returns a uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next64() % n;
  }

  /// Returns true with probability 1/n.
  bool OneIn(uint32_t n) { return Uniform(n) == 0; }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / (1ull << 53));
  }

  /// Skewed: picks a value in [0, 2^max_log) with exponentially decreasing
  /// probability of larger values.
  uint64_t Skewed(int max_log) { return Uniform(1ull << Uniform(max_log + 1)); }

 private:
  uint64_t s_[2];
};

/// Zipfian-distributed generator over [0, n), using the Gray et al.
/// rejection-free formula as popularized by YCSB.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Returns the next Zipfian-distributed value in [0, n).
  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace dlsm

#endif  // DLSM_UTIL_RANDOM_H_
