// Assertion and logging helpers.

#ifndef DLSM_UTIL_LOGGING_H_
#define DLSM_UTIL_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/util/slice.h"

namespace dlsm {

/// Appends a human-readable printout of num to *str.
void AppendNumberTo(std::string* str, uint64_t num);

/// Appends an escaped (printable) version of value to *str.
void AppendEscapedStringTo(std::string* str, const Slice& value);

/// Returns a human-readable printout of num.
std::string NumberToString(uint64_t num);

/// Returns an escaped (printable) version of value.
std::string EscapeString(const Slice& value);

/// Parses a decimal number from *in, advancing past consumed characters.
bool ConsumeDecimalNumber(Slice* in, uint64_t* val);

}  // namespace dlsm

/// Always-on invariant check; aborts with a message on failure. Used for
/// conditions whose violation indicates a bug rather than a bad input.
#define DLSM_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DLSM_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define DLSM_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DLSM_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // DLSM_UTIL_LOGGING_H_
