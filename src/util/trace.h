// Dependency-light span/event tracing with Chrome trace-event JSON export.
//
// The recorder is process-global and disabled by default: every emit path
// starts with one relaxed atomic load and returns immediately when tracing
// is off, so instrumented hot paths cost a branch and allocate nothing.
// When enabled, each thread appends fixed-size POD events to its own
// preallocated buffer (registered once, on first emit), so recording never
// takes a lock or allocates on the steady-state path either.
//
// Timestamps come from an injected clock callback rather than a direct Env
// dependency (util sits below sim in the layering): under SimEnv the clock
// is virtual time and two same-seed runs produce byte-identical trace
// files; under StdEnv it is wall clock. Thread/node identity is likewise
// injected and captured at registration, mapping onto the Chrome trace
// model as pid = node, tid = sim thread.
//
// Event names and categories must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies.
//
// Export is Chrome trace-event JSON ("traceEvents" array) loadable in
// Perfetto / chrome://tracing. Supported phases:
//   "X"       complete spans (ts + dur)
//   "i"       instants
//   "s"/"f"   flow start/finish, used to stitch a compute-side RPC call
//             span to the memory-node handler span across nodes
//   "M"       process_name / thread_name metadata (emitted automatically)

#ifndef DLSM_UTIL_TRACE_H_
#define DLSM_UTIL_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dlsm {
namespace trace {

/// Who the calling thread is, in Chrome trace coordinates. Captured once
/// per thread when it first emits an event while tracing is enabled.
struct ThreadIdentity {
  uint32_t pid = 0;            // Node id.
  uint64_t tid = 0;            // Env thread id (deterministic under SimEnv).
  std::string thread_name;     // e.g. "worker", "flush", "rpc_dispatch".
  std::string process_name;    // e.g. "compute", "memory".
};

/// One recorded event. POD with literal-string names so appending never
/// allocates; 'X' events are recorded retroactively at span end.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;   // 'X' only.
  uint64_t id = 0;       // Flow id ('s'/'f') or span id (exported as arg).
  const char* arg1_name = nullptr;
  uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  uint64_t arg2 = 0;
  char phase = 'X';      // 'X', 'i', 's', or 'f'.
};

/// Tail-based exemplar sampling policy. When active, events emitted
/// inside a TraceOp are retained only if the op ranks among the k slowest
/// of its time window (window = op start / window_ns); everything else is
/// rolled back from the thread buffer at op end. The admission threshold
/// is adaptive by construction — it is the current window's k-th slowest
/// duration — so --trace_out at production rates keeps the p99+ span
/// trees instead of everything (buffer exhaustion) or nothing.
/// Background spans (flush, compaction, migration) and events emitted
/// outside any TraceOp are unaffected.
struct ExemplarPolicy {
  size_t k = 0;           ///< Exemplars retained per window; 0 disables.
  uint64_t window_ns = 0; ///< Window width; 0 disables.
  bool active() const { return k > 0 && window_ns > 0; }
};

class Tracer {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1 << 16;

  /// Turns tracing on. `clock` supplies timestamps in nanoseconds and
  /// `identity` names the calling thread; both are invoked only from
  /// threads that emit events. Any events from a previous enable period
  /// are discarded. Must not race with in-flight emitters (enable before
  /// starting the workload).
  static void Enable(std::function<uint64_t()> clock,
                     std::function<ThreadIdentity()> identity,
                     size_t events_per_thread = kDefaultEventsPerThread);

  /// Turns tracing off. Buffers stay readable (ChromeTraceJson) until the
  /// next Enable. Call only after emitting threads have quiesced.
  static void Disable();

  /// The once-per-span runtime flag. Relaxed load; when false every emit
  /// is a no-op that touches nothing else.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Current trace clock, in ns. 0 when no clock is installed.
  static uint64_t Now();

  /// Allocates a process-unique id for spans/flows. Deterministic under
  /// SimEnv (threads interleave deterministically).
  static uint64_t NextId();

  static void EmitComplete(const char* name, const char* cat, uint64_t ts_ns,
                           uint64_t dur_ns, uint64_t id = 0,
                           const char* arg1_name = nullptr, uint64_t arg1 = 0,
                           const char* arg2_name = nullptr, uint64_t arg2 = 0);
  static void EmitInstant(const char* name, const char* cat,
                          const char* arg1_name = nullptr, uint64_t arg1 = 0);
  /// phase must be 's' (flow start) or 'f' (flow finish, bound to the
  /// enclosing slice). The same id on both sides draws the cross-node arrow.
  static void EmitFlow(char phase, const char* name, const char* cat,
                       uint64_t id);

  /// Serializes everything recorded since Enable as Chrome trace JSON.
  /// Deterministic: threads appear in registration order with events in
  /// emission order. Safe to call after Disable.
  static std::string ChromeTraceJson();

  /// ChromeTraceJson() to a file. Returns false on IO failure.
  static bool WriteChromeTrace(const std::string& path);

  /// Events discarded because a thread buffer filled up (buffers drop at
  /// capacity instead of wrapping, so prefixes stay deterministic).
  static uint64_t dropped_events();

  /// Installs the exemplar policy for the current enable period (call
  /// after Enable; Enable resets the policy to inactive). An inactive
  /// policy makes TraceOp behave exactly like TraceSpan.
  static void SetExemplarPolicy(const ExemplarPolicy& policy);

  /// The once-per-op exemplar flag (relaxed load).
  static bool exemplars_active() {
    return exemplars_on_.load(std::memory_order_relaxed);
  }

  /// One retained exemplar, in export order (windows ascending, then
  /// duration descending). Test / CI introspection.
  struct ExemplarInfo {
    uint64_t window = 0;   ///< start_ns / window_ns.
    uint64_t dur_ns = 0;
    const char* name = nullptr;  ///< The op span's name.
  };
  static std::vector<ExemplarInfo> ExemplarIndex();

  /// Implementation detail, public only so the .cc-internal state can name
  /// it; defined in trace.cc.
  struct ThreadLog;

 private:
  friend class TraceSpan;
  friend class TraceOp;
  static ThreadLog* Log();
  /// Top-k admission for one finished op: copies the op's events
  /// [mark, end) into the window's candidate store if it beats the
  /// current k-th slowest, then rolls the thread buffer back to mark.
  static void ExemplarFinish(ThreadLog* log, size_t mark, const char* name,
                             uint64_t start_ns, uint64_t dur_ns);
  static std::atomic<bool> enabled_;
  static std::atomic<bool> exemplars_on_;
};

/// RAII complete-span. Construction checks the runtime flag once; when
/// tracing is off the object is inert. End() closes the span early (the
/// destructor then does nothing), letting a span cover a phase that does
/// not align with a C++ scope.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) {
    if (Tracer::enabled()) Begin(name, cat);
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches up to two integer args, exported in the event's "args" map.
  void arg(const char* name, uint64_t value) {
    if (!active_) return;
    if (arg1_name_ == nullptr) {
      arg1_name_ = name;
      arg1_ = value;
    } else {
      arg2_name_ = name;
      arg2_ = value;
    }
  }

  void End() {
    if (!active_) return;
    active_ = false;
    Tracer::EmitComplete(name_, cat_, start_ns_, Tracer::Now() - start_ns_,
                         id_, arg1_name_, arg1_, arg2_name_, arg2_);
  }

  /// Span id usable as a flow/parent reference; 0 when tracing is off.
  uint64_t id() const { return id_; }
  bool active() const { return active_; }

 private:
  void Begin(const char* name, const char* cat);

  bool active_ = false;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  const char* arg1_name_ = nullptr;
  uint64_t arg1_ = 0;
  const char* arg2_name_ = nullptr;
  uint64_t arg2_ = 0;
};

/// RAII span for a top-level user operation (Get, Write, MultiGet): the
/// unit the exemplar policy samples at. Behaves exactly like TraceSpan
/// when the exemplar policy is inactive. When active, every event this
/// thread emits during the op — the op span itself, nested probe spans,
/// harvested verb spans — is treated as the op's span tree: retained only
/// if the op ranks in its window's top-k by duration, rolled back
/// otherwise. Only the outermost TraceOp on a thread samples; nested ones
/// degrade to plain spans.
class TraceOp {
 public:
  TraceOp(const char* name, const char* cat) {
    if (Tracer::enabled()) Begin(name, cat);
  }
  ~TraceOp() { End(); }

  TraceOp(const TraceOp&) = delete;
  TraceOp& operator=(const TraceOp&) = delete;

  /// Attaches up to two integer args (as TraceSpan::arg).
  void arg(const char* name, uint64_t value) {
    if (!active_) return;
    if (arg1_name_ == nullptr) {
      arg1_name_ = name;
      arg1_ = value;
    } else {
      arg2_name_ = name;
      arg2_ = value;
    }
  }

  void End();

  uint64_t id() const { return id_; }
  bool active() const { return active_; }

 private:
  void Begin(const char* name, const char* cat);

  bool active_ = false;
  bool exemplar_ = false;
  Tracer::ThreadLog* log_ = nullptr;
  size_t mark_ = 0;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  const char* arg1_name_ = nullptr;
  uint64_t arg1_ = 0;
  const char* arg2_name_ = nullptr;
  uint64_t arg2_ = 0;
};

/// Wires the tracer to an Env-shaped object (duck-typed so util does not
/// depend on sim): NowNanos() as the clock, CurrentNodeId/CurrentThreadId/
/// CurrentThreadName/NodeName as the identity.
template <typename EnvT>
inline void EnableWithEnv(EnvT* env, size_t events_per_thread =
                                         Tracer::kDefaultEventsPerThread) {
  Tracer::Enable(
      [env] { return env->NowNanos(); },
      [env] {
        ThreadIdentity id;
        id.pid = static_cast<uint32_t>(env->CurrentNodeId());
        id.tid = env->CurrentThreadId();
        id.thread_name = env->CurrentThreadName();
        id.process_name = env->NodeName(env->CurrentNodeId());
        return id;
      },
      events_per_thread);
}

}  // namespace trace
}  // namespace dlsm

#endif  // DLSM_UTIL_TRACE_H_
