#include "src/util/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace dlsm {
namespace trace {

std::atomic<bool> Tracer::enabled_{false};
std::atomic<bool> Tracer::exemplars_on_{false};

/// Per-thread event buffer. Preallocated at registration; appends drop at
/// capacity (never reallocate, never wrap) so a buffer overflow shortens
/// the trace deterministically instead of perturbing timing.
struct Tracer::ThreadLog {
  ThreadIdentity who;
  uint64_t seq = 0;  // Registration order; export order.
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

namespace {

/// One op retained (so far) by the exemplar policy: its duration, the
/// identity of the emitting thread, and a copy of its event range. A
/// candidate may still be displaced by a slower op in the same window.
struct ExemplarCandidate {
  uint64_t dur_ns = 0;
  uint64_t seq = 0;  // Admission order; export tiebreak.
  const char* name = nullptr;
  ThreadIdentity who;
  std::vector<TraceEvent> events;
};

struct TracerState {
  std::mutex mu;
  std::function<uint64_t()> clock;
  std::function<ThreadIdentity()> identity;
  size_t events_per_thread = Tracer::kDefaultEventsPerThread;
  // Bumped on every Enable; thread-local caches from an older epoch
  // re-register instead of appending to a stale buffer.
  std::atomic<uint64_t> epoch{0};
  std::vector<std::unique_ptr<Tracer::ThreadLog>> logs;
  std::atomic<uint64_t> next_id{1};
  std::atomic<uint64_t> dropped{0};
  // Exemplar mode (guarded by mu except the hot-path flag mirror).
  ExemplarPolicy exemplar_policy;
  std::map<uint64_t, std::vector<ExemplarCandidate>> exemplar_windows;
  uint64_t exemplar_seq = 0;
};

TracerState& State() {
  static TracerState* s = new TracerState();  // Leaked: outlive all threads.
  return *s;
}

struct LogCache {
  uint64_t epoch = 0;
  Tracer::ThreadLog* log = nullptr;
};
thread_local LogCache tls_log;

// Only the outermost TraceOp on a thread does exemplar accounting.
thread_local bool tls_in_op = false;

/// Candidates of one window in export order: slowest first, admission
/// order breaking ties (both deterministic under SimEnv).
std::vector<const ExemplarCandidate*> SortedWindow(
    const std::vector<ExemplarCandidate>& cands) {
  std::vector<const ExemplarCandidate*> sorted;
  sorted.reserve(cands.size());
  for (const ExemplarCandidate& c : cands) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const ExemplarCandidate* a, const ExemplarCandidate* b) {
              if (a->dur_ns != b->dur_ns) return a->dur_ns > b->dur_ns;
              return a->seq < b->seq;
            });
  return sorted;
}

void AppendJsonEvent(std::string* out, const ThreadIdentity& who,
                     const TraceEvent& e) {
  char buf[320];
  double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
  switch (e.phase) {
    case 'X': {
      double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%llu",
                    e.name, e.cat, ts_us, dur_us, who.pid,
                    static_cast<unsigned long long>(who.tid));
      out->append(buf);
      if (e.arg1_name != nullptr || e.id != 0) {
        out->append(",\"args\":{");
        bool first = true;
        if (e.id != 0) {
          std::snprintf(buf, sizeof(buf), "\"span\":%llu",
                        static_cast<unsigned long long>(e.id));
          out->append(buf);
          first = false;
        }
        if (e.arg1_name != nullptr) {
          std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                        e.arg1_name, static_cast<unsigned long long>(e.arg1));
          out->append(buf);
          first = false;
        }
        if (e.arg2_name != nullptr) {
          std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                        e.arg2_name, static_cast<unsigned long long>(e.arg2));
          out->append(buf);
        }
        out->append("}");
      }
      out->append("}");
      break;
    }
    case 'i': {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                    "\"ts\":%.3f,\"pid\":%u,\"tid\":%llu",
                    e.name, e.cat, ts_us, who.pid,
                    static_cast<unsigned long long>(who.tid));
      out->append(buf);
      if (e.arg1_name != nullptr) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"%s\":%llu}", e.arg1_name,
                      static_cast<unsigned long long>(e.arg1));
        out->append(buf);
      }
      out->append("}");
      break;
    }
    case 's':
    case 'f': {
      // Flow finish binds to the enclosing slice ("bp":"e") so the arrow
      // lands on the handler span whose interval covers this timestamp.
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",%s"
                    "\"id\":%llu,\"ts\":%.3f,\"pid\":%u,\"tid\":%llu}",
                    e.name, e.cat, e.phase,
                    e.phase == 'f' ? "\"bp\":\"e\"," : "",
                    static_cast<unsigned long long>(e.id), ts_us, who.pid,
                    static_cast<unsigned long long>(who.tid));
      out->append(buf);
      break;
    }
    default:
      break;
  }
}

void AppendMetadata(std::string* out, const char* kind, uint32_t pid,
                    uint64_t tid, bool with_tid, const std::string& value) {
  char buf[256];
  if (with_tid) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%llu,"
                  "\"args\":{\"name\":\"%s\"}}",
                  kind, pid, static_cast<unsigned long long>(tid),
                  value.c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"%s\"}}",
                  kind, pid, value.c_str());
  }
  out->append(buf);
}

}  // namespace

void Tracer::Enable(std::function<uint64_t()> clock,
                    std::function<ThreadIdentity()> identity,
                    size_t events_per_thread) {
  TracerState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  s.clock = std::move(clock);
  s.identity = std::move(identity);
  s.events_per_thread = events_per_thread > 0 ? events_per_thread : 1;
  s.logs.clear();
  s.next_id.store(1, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);
  s.exemplar_policy = ExemplarPolicy();
  s.exemplar_windows.clear();
  s.exemplar_seq = 0;
  exemplars_on_.store(false, std::memory_order_release);
  s.epoch.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::SetExemplarPolicy(const ExemplarPolicy& policy) {
  TracerState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  s.exemplar_policy = policy;
  s.exemplar_windows.clear();
  exemplars_on_.store(policy.active(), std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

uint64_t Tracer::Now() {
  TracerState& s = State();
  return s.clock ? s.clock() : 0;
}

uint64_t Tracer::NextId() {
  return State().next_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer::ThreadLog* Tracer::Log() {
  TracerState& s = State();
  uint64_t epoch = s.epoch.load(std::memory_order_acquire);
  if (tls_log.epoch == epoch && tls_log.log != nullptr) return tls_log.log;
  std::lock_guard<std::mutex> lk(s.mu);
  if (!enabled()) return nullptr;
  auto log = std::make_unique<ThreadLog>();
  log->who = s.identity ? s.identity() : ThreadIdentity();
  log->seq = s.logs.size();
  log->events.reserve(s.events_per_thread);
  ThreadLog* raw = log.get();
  s.logs.push_back(std::move(log));
  tls_log.epoch = epoch;
  tls_log.log = raw;
  return raw;
}

void Tracer::EmitComplete(const char* name, const char* cat, uint64_t ts_ns,
                          uint64_t dur_ns, uint64_t id, const char* arg1_name,
                          uint64_t arg1, const char* arg2_name,
                          uint64_t arg2) {
  if (!enabled()) return;
  ThreadLog* log = Log();
  if (log == nullptr) return;
  if (log->events.size() == log->events.capacity()) {
    log->dropped++;
    State().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.id = id;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  e.phase = 'X';
  log->events.push_back(e);
}

void Tracer::EmitInstant(const char* name, const char* cat,
                         const char* arg1_name, uint64_t arg1) {
  if (!enabled()) return;
  ThreadLog* log = Log();
  if (log == nullptr) return;
  if (log->events.size() == log->events.capacity()) {
    log->dropped++;
    State().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = Now();
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.phase = 'i';
  log->events.push_back(e);
}

void Tracer::EmitFlow(char phase, const char* name, const char* cat,
                      uint64_t id) {
  if (!enabled()) return;
  ThreadLog* log = Log();
  if (log == nullptr) return;
  if (log->events.size() == log->events.capacity()) {
    log->dropped++;
    State().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = Now();
  e.id = id;
  e.phase = phase;
  log->events.push_back(e);
}

std::string Tracer::ChromeTraceJson() {
  TracerState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  std::string out;
  out.reserve(1 << 16);
  out.append("{\"traceEvents\":[");
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out.append(",\n");
    first = false;
  };
  // Metadata first: one process_name per node, one thread_name per thread,
  // in registration order (deterministic under SimEnv).
  std::set<uint32_t> named_pids;
  for (const auto& log : s.logs) {
    if (named_pids.insert(log->who.pid).second &&
        !log->who.process_name.empty()) {
      sep();
      AppendMetadata(&out, "process_name", log->who.pid, 0, false,
                     log->who.process_name);
    }
    if (!log->who.thread_name.empty()) {
      sep();
      AppendMetadata(&out, "thread_name", log->who.pid, log->who.tid, true,
                     log->who.thread_name);
    }
  }
  for (const auto& log : s.logs) {
    for (const TraceEvent& e : log->events) {
      sep();
      AppendJsonEvent(&out, log->who, e);
    }
  }
  // Exemplar span trees, grouped by window ascending, slowest op first.
  // Events keep their original thread identity, so they land on the
  // emitting thread's track next to that thread's background spans.
  for (const auto& [window, cands] : s.exemplar_windows) {
    (void)window;
    for (const ExemplarCandidate* c : SortedWindow(cands)) {
      for (const TraceEvent& e : c->events) {
        sep();
        AppendJsonEvent(&out, c->who, e);
      }
    }
  }
  out.append("]}\n");
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = (n == json.size());
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

uint64_t Tracer::dropped_events() {
  return State().dropped.load(std::memory_order_relaxed);
}

void Tracer::ExemplarFinish(ThreadLog* log, size_t mark, const char* name,
                            uint64_t start_ns, uint64_t dur_ns) {
  TracerState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.exemplar_policy.active()) return;  // Raced off; keep the events.
  size_t end = log->events.size();
  if (mark > end) return;  // Buffer re-registered mid-op; nothing to claim.
  std::vector<ExemplarCandidate>& w =
      s.exemplar_windows[start_ns / s.exemplar_policy.window_ns];
  bool admit;
  if (w.size() < s.exemplar_policy.k) {
    admit = true;
  } else {
    // Displace the window's fastest retained op if this one is slower
    // (the adaptive threshold: the current k-th slowest duration).
    size_t min_i = 0;
    for (size_t i = 1; i < w.size(); i++) {
      if (w[i].dur_ns < w[min_i].dur_ns) min_i = i;
    }
    admit = dur_ns > w[min_i].dur_ns;
    if (admit) {
      w[min_i] = std::move(w.back());
      w.pop_back();
    }
  }
  if (admit) {
    ExemplarCandidate c;
    c.dur_ns = dur_ns;
    c.seq = s.exemplar_seq++;
    c.name = name;
    c.who = log->who;
    c.events.assign(log->events.begin() + mark, log->events.begin() + end);
    w.push_back(std::move(c));
  }
  // Rolled back either way: retained ops live in the candidate store, so
  // the thread buffer only holds background (non-op) events.
  log->events.resize(mark);
}

std::vector<Tracer::ExemplarInfo> Tracer::ExemplarIndex() {
  TracerState& s = State();
  std::lock_guard<std::mutex> lk(s.mu);
  std::vector<ExemplarInfo> out;
  for (const auto& [window, cands] : s.exemplar_windows) {
    for (const ExemplarCandidate* c : SortedWindow(cands)) {
      out.push_back(ExemplarInfo{window, c->dur_ns, c->name});
    }
  }
  return out;
}

void TraceSpan::Begin(const char* name, const char* cat) {
  active_ = true;
  name_ = name;
  cat_ = cat;
  start_ns_ = Tracer::Now();
  id_ = Tracer::NextId();
}

void TraceOp::Begin(const char* name, const char* cat) {
  active_ = true;
  name_ = name;
  cat_ = cat;
  start_ns_ = Tracer::Now();
  id_ = Tracer::NextId();
  if (Tracer::exemplars_active() && !tls_in_op) {
    log_ = Tracer::Log();
    if (log_ != nullptr) {
      mark_ = log_->events.size();
      exemplar_ = true;
      tls_in_op = true;
    }
  }
}

void TraceOp::End() {
  if (!active_) return;
  active_ = false;
  uint64_t dur_ns = Tracer::Now() - start_ns_;
  // The op's own span is emitted first so it is part of the copied range.
  Tracer::EmitComplete(name_, cat_, start_ns_, dur_ns, id_, arg1_name_,
                       arg1_, arg2_name_, arg2_);
  if (exemplar_) {
    exemplar_ = false;
    tls_in_op = false;
    Tracer::ExemplarFinish(log_, mark_, name_, start_ns_, dur_ns);
  }
}

}  // namespace trace
}  // namespace dlsm
