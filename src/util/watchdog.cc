#include "src/util/watchdog.h"

#include <cstdio>
#include <utility>

namespace dlsm {
namespace telemetry {

Watchdog::Watchdog(Options opts) : opts_(std::move(opts)) {
  if (!opts_.sink) {
    opts_.sink = [](const std::string& dump) {
      std::fwrite(dump.data(), 1, dump.size(), stderr);
      std::fflush(stderr);
    };
  }
}

uint64_t Watchdog::Arm(const char* kind, uint64_t deadline_ns) {
  uint64_t now = opts_.clock();
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t token = next_token_++;
  armed_.push_back(
      Armed{token, kind, now,
            deadline_ns != 0 ? deadline_ns : opts_.deadline_ns});
  return token;
}

void Watchdog::Progress(uint64_t token) {
  uint64_t now = opts_.clock();
  std::lock_guard<std::mutex> lk(mu_);
  for (Armed& a : armed_) {
    if (a.token == token) {
      a.since_ns = now;
      return;
    }
  }
}

void Watchdog::Disarm(uint64_t token) {
  std::lock_guard<std::mutex> lk(mu_);
  for (size_t i = 0; i < armed_.size(); i++) {
    if (armed_[i].token == token) {
      armed_[i] = armed_.back();
      armed_.pop_back();
      return;
    }
  }
}

void Watchdog::AddProbe(std::string name, Probe probe) {
  std::lock_guard<std::mutex> lk(mu_);
  probes_.emplace_back(std::move(name), std::move(probe));
}

void Watchdog::AddDiagnostic(std::string name,
                             std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  diags_.emplace_back(std::move(name), std::move(fn));
}

std::string Watchdog::last_dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dump_;
}

size_t Watchdog::armed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return armed_.size();
}

bool Watchdog::Poll() {
  if (fired()) return false;
  uint64_t now = opts_.clock();

  // Snapshot the armed table and the probe/diag lists, then release the
  // lock: probes and diagnostics call into other subsystems (verb-queue
  // stats mutexes, series rings) and must not nest inside mu_.
  std::vector<Armed> armed;
  std::vector<std::pair<std::string, Probe>> probes;
  {
    std::lock_guard<std::mutex> lk(mu_);
    armed = armed_;
    probes = probes_;
  }

  std::vector<StuckOp> stuck;
  std::vector<const char*> probe_of;  // Parallel: which source reported it.
  for (const Armed& a : armed) {
    if (now > a.since_ns && now - a.since_ns > a.deadline_ns) {
      stuck.push_back(StuckOp{a.kind, a.token, now - a.since_ns});
      probe_of.push_back("armed");
    }
  }
  for (const auto& [name, probe] : probes) {
    size_t before = stuck.size();
    probe(now, opts_.deadline_ns, &stuck);
    probe_of.resize(stuck.size(), name.c_str());
    (void)before;
  }
  if (stuck.empty()) return false;

  bool expected = false;
  if (!fired_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    return false;  // Another poller won the race.
  }
  stalls_.store(stuck.size(), std::memory_order_relaxed);

  std::string dump;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "=== dLSM watchdog: %zu stalled operation(s) at t=%llu ns "
                "(deadline %llu ns) ===\n",
                stuck.size(), static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(opts_.deadline_ns));
  dump.append(buf);
  for (size_t i = 0; i < stuck.size(); i++) {
    std::snprintf(buf, sizeof(buf),
                  "stuck: kind=%s id=%llu age_ns=%llu source=%s\n",
                  stuck[i].kind,
                  static_cast<unsigned long long>(stuck[i].id),
                  static_cast<unsigned long long>(stuck[i].age_ns),
                  probe_of[i]);
    dump.append(buf);
  }
  std::vector<std::pair<std::string, std::function<std::string()>>> diags;
  {
    std::lock_guard<std::mutex> lk(mu_);
    diags = diags_;
  }
  for (const auto& [name, fn] : diags) {
    dump.append("--- diagnostic: ");
    dump.append(name);
    dump.append(" ---\n");
    dump.append(fn());
    if (!dump.empty() && dump.back() != '\n') dump.append("\n");
  }
  dump.append("=== end watchdog dump ===\n");

  {
    std::lock_guard<std::mutex> lk(mu_);
    dump_ = dump;
  }
  opts_.sink(dump);
  return true;
}

}  // namespace telemetry
}  // namespace dlsm
