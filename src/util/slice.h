// Slice: a pointer + length view over external bytes, in the style used by
// LevelDB/RocksDB. The Slice does not own the data; the caller must ensure
// the underlying storage outlives the Slice.

#ifndef DLSM_UTIL_SLICE_H_
#define DLSM_UTIL_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace dlsm {

/// A non-owning view of a byte range.
class Slice {
 public:
  /// Creates an empty slice.
  Slice() : data_(""), size_(0) {}

  /// Creates a slice referring to data[0, n-1].
  Slice(const char* data, size_t n) : data_(data), size_(n) {}

  /// Creates a slice referring to the contents of s.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT

  /// Creates a slice referring to the NUL-terminated string s.
  Slice(const char* s) : data_(s), size_(strlen(s)) {}  // NOLINT

  /// Returns a pointer to the beginning of the referenced data.
  const char* data() const { return data_; }

  /// Returns the length of the referenced data, in bytes.
  size_t size() const { return size_; }

  /// Returns true iff the slice has length zero.
  bool empty() const { return size_ == 0; }

  /// Returns the i-th byte of the referenced data. Requires i < size().
  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Resets the slice to be empty.
  void clear() {
    data_ = "";
    size_ = 0;
  }

  /// Drops the first n bytes from this slice. Requires n <= size().
  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// Returns a std::string containing a copy of the referenced data.
  std::string ToString() const { return std::string(data_, size_); }

  /// Returns a std::string_view over the referenced data.
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  /// Three-way comparison: <0, ==0, or >0 if this is <, ==, or > b.
  int compare(const Slice& b) const {
    const size_t min_len = (size_ < b.size_) ? size_ : b.size_;
    int r = memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) {
        r = -1;
      } else if (size_ > b.size_) {
        r = +1;
      }
    }
    return r;
  }

  /// Returns true iff x is a prefix of this slice.
  bool starts_with(const Slice& x) const {
    return (size_ >= x.size_) && (memcmp(data_, x.data_, x.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& x, const Slice& y) {
  return (x.size() == y.size()) &&
         (memcmp(x.data(), y.data(), x.size()) == 0);
}

inline bool operator!=(const Slice& x, const Slice& y) { return !(x == y); }

inline bool operator<(const Slice& x, const Slice& y) {
  return x.compare(y) < 0;
}

}  // namespace dlsm

#endif  // DLSM_UTIL_SLICE_H_
