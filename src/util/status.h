// Status: lightweight success/error result type, following the
// LevelDB/Arrow convention of returning Status instead of throwing.

#ifndef DLSM_UTIL_STATUS_H_
#define DLSM_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "src/util/slice.h"

namespace dlsm {

/// Outcome of an operation: OK or an error code plus message.
class Status {
 public:
  /// Creates an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg,
                                const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kBusy, msg, msg2);
  }
  static Status OutOfMemory(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kOutOfMemory, msg, msg2);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsOutOfMemory() const { return code_ == Code::kOutOfMemory; }

  /// Returns a human-readable description of this status.
  std::string ToString() const;

 private:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kBusy,
    kOutOfMemory,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

/// Propagates a non-OK Status to the caller.
#define DLSM_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::dlsm::Status _s = (expr);             \
    if (!_s.ok()) return _s;                \
  } while (false)

}  // namespace dlsm

#endif  // DLSM_UTIL_STATUS_H_
