// Fixed-capacity time-series ring for continuous telemetry.
//
// A Series holds one row per sampling tick: a timestamp plus a fixed set
// of double-valued columns declared up front. Columns are either gauges
// (stored as sampled) or counters (the caller feeds the raw cumulative
// value and the series stores the per-interval delta, so a windowed view
// of a monotone counter needs no post-processing). Storage is a
// preallocated ring: appends never allocate, and once capacity is reached
// the oldest rows are overwritten — the series is always "the last N
// sampling intervals".
//
// Like the tracer (see trace.h), this sits in util below sim: timestamps
// are supplied by the caller, so under SimEnv the series is in virtual
// time and two same-seed runs produce byte-identical JSON.
//
// Thread-safety: one internal mutex; the background sampler appends while
// readers (DB::GetProperty("dlsm.timeseries"), watchdog dumps) serialize.

#ifndef DLSM_UTIL_TIMESERIES_H_
#define DLSM_UTIL_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dlsm {
namespace telemetry {

class Series {
 public:
  enum class Kind {
    kGauge,    ///< Stored as sampled.
    kCounter,  ///< Caller passes the cumulative value; the delta is stored.
  };

  struct Column {
    std::string name;
    Kind kind = Kind::kGauge;
  };

  /// capacity is the number of retained rows (>= 1).
  Series(std::vector<Column> columns, size_t capacity);

  size_t num_columns() const { return columns_.size(); }
  size_t capacity() const { return capacity_; }

  /// Appends one row. `raw` must have num_columns() entries, in column
  /// declaration order. ts_ns must be monotonically non-decreasing (rows
  /// are exported in append order). Counter columns difference against
  /// the previous raw value; the first row records 0 for them (there is
  /// no prior interval).
  void Append(uint64_t ts_ns, const double* raw, size_t n);
  void Append(uint64_t ts_ns, const std::vector<double>& raw) {
    Append(ts_ns, raw.data(), raw.size());
  }

  /// Rows currently retained (<= capacity).
  size_t size() const;

  /// Rows ever appended (>= size(); the difference is what the ring
  /// overwrote).
  uint64_t total_appended() const;

  /// {"columns":["ts_ns",...],"kinds":["ts","gauge","counter",...],
  ///  "dropped":N,"samples":[[ts,...],...]} — oldest row first. Values are
  /// printed with %.4f trimmed of trailing zeros so integral counters
  /// round-trip exactly.
  std::string ToJson() const;

  /// The newest `n` rows as JSON (same schema); the watchdog dump's
  /// ring-buffer tail.
  std::string TailJson(size_t n) const;

  /// Copy of the retained rows, oldest first; row = [ts_ns, col0, ...].
  /// Test/diagnostic helper.
  std::vector<std::vector<double>> Snapshot() const;

 private:
  // Requires mu_. Rows [size_-n, size_) in logical (oldest-first) order.
  std::string RowsJsonLocked(size_t n) const;

  const std::vector<Column> columns_;
  const size_t capacity_;
  const size_t stride_;  // 1 (timestamp) + columns.

  mutable std::mutex mu_;
  std::vector<double> ring_;      // capacity_ * stride_, flat.
  std::vector<double> prev_raw_;  // Last raw value per column (deltas).
  size_t head_ = 0;               // Next write slot.
  size_t size_ = 0;               // Retained rows.
  uint64_t appended_ = 0;         // Rows ever appended.
};

}  // namespace telemetry
}  // namespace dlsm

#endif  // DLSM_UTIL_TIMESERIES_H_
