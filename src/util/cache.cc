#include "src/util/cache.h"

#include <cstring>
#include <mutex>

#include "src/util/hash.h"

namespace dlsm {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// One hash drives everything: shard choice (top bits), the 8-bit slot
/// tag (next byte down), and the home slot (low bits). Mixing both key
/// words through splitmix64 keeps sequential (table, offset) pairs from
/// clustering in one shard.
uint64_t KeyHash(uint64_t k1, uint64_t k2) {
  return Hash64(k1 * 0x9E3779B97F4A7C15ull ^ Hash64(k2));
}

}  // namespace

// ---------------------------------------------------------------------------
// FrequencySketch

FrequencySketch::FrequencySketch(size_t num_counters) {
  size_t n = RoundUpPow2(num_counters < 1024 ? 1024 : num_counters);
  mask_ = n - 1;
  // Two counters per byte; value-initialized atomics start at zero.
  table_ = std::vector<std::atomic<uint8_t>>(n / 2);
  sample_period_ = kSamplePeriodFactor * n;
}

size_t FrequencySketch::RowIndex(uint64_t hash, int row) const {
  // Derive kRows independent indexes from one 64-bit hash by remixing
  // with a per-row odd constant.
  uint64_t h = Hash64(hash + 0x9E3779B97F4A7C15ull * (row + 1));
  return static_cast<size_t>(h) & mask_;
}

void FrequencySketch::Increment(uint64_t hash) {
  for (int row = 0; row < kRows; ++row) {
    size_t idx = RowIndex(hash, row);
    std::atomic<uint8_t>& cell = table_[idx >> 1];
    uint8_t shift = (idx & 1) ? 4 : 0;
    uint8_t cur = cell.load(std::memory_order_relaxed);
    while (true) {
      uint8_t nibble = (cur >> shift) & 0x0F;
      if (nibble == 0x0F) break;  // Saturated.
      uint8_t next = static_cast<uint8_t>(
          (cur & ~(0x0F << shift)) | ((nibble + 1) << shift));
      if (cell.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
        break;
      }
    }
  }
  if ((ops_.fetch_add(1, std::memory_order_relaxed) + 1) % sample_period_ ==
      0) {
    Age();
  }
}

uint32_t FrequencySketch::Estimate(uint64_t hash) const {
  uint32_t est = 0x0F;
  for (int row = 0; row < kRows; ++row) {
    size_t idx = RowIndex(hash, row);
    uint8_t cell = table_[idx >> 1].load(std::memory_order_relaxed);
    uint8_t nibble = (idx & 1) ? (cell >> 4) : (cell & 0x0F);
    if (nibble < est) est = nibble;
  }
  return est;
}

void FrequencySketch::Age() {
  // Halve both nibbles of every byte. (b >> 1) & 0x77 clears the bit
  // that would otherwise leak from the high nibble into the low one.
  for (auto& cell : table_) {
    uint8_t cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(
        cur, static_cast<uint8_t>((cur >> 1) & 0x77),
        std::memory_order_relaxed)) {
    }
  }
  halvings_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ShardedClockCache

namespace {

// Slot state word layout. Readers only touch `state`, `k1/k2/len` (after
// acquiring a reference) and the payload; all other mutation happens
// under the shard mutex with refs held at zero.
constexpr uint64_t kReady = 1ull << 63;    // Slot holds a valid entry.
constexpr uint64_t kClaimed = 1ull << 62;  // Writer is mutating the slot.
constexpr uint64_t kClock = 1ull << 61;    // CLOCK reference bit.
constexpr uint64_t kTagShift = 48;         // 8-bit key-hash tag.
constexpr uint64_t kTagMask = 0xFFull << kTagShift;
constexpr uint64_t kRefMask = 0xFFFFFFFFull;  // Reader refcount.

constexpr size_t kAvgEntryBytes = 128;  // Sizing heuristic for slot count.
constexpr int kProbeWindow = 16;        // Open-addressing probe length.

}  // namespace

struct ShardedClockCache::Shard {
  struct Slot {
    std::atomic<uint64_t> state{0};
    uint64_t k1 = 0;
    uint64_t k2 = 0;
    std::unique_ptr<char[]> data;
    size_t len = 0;
  };

  explicit Shard(size_t capacity_bytes)
      : capacity(capacity_bytes),
        slots(RoundUpPow2(capacity_bytes / kAvgEntryBytes < 64
                              ? 64
                              : capacity_bytes / kAvgEntryBytes)) {}

  size_t SlotMask() const { return slots.size() - 1; }

  const size_t capacity;
  std::mutex mu;             // Serializes writers (insert/evict/erase).
  size_t usage = 0;          // Payload bytes resident (under mu).
  size_t clock_hand = 0;     // CLOCK sweep position (under mu).
  std::vector<Slot> slots;

  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> admission_rejects{0};

  // Frees a slot the caller has already claimed (refs == 0, kClaimed
  // set). Must hold mu.
  void FreeClaimed(Slot& slot) {
    usage -= slot.len;
    slot.data.reset();
    slot.len = 0;
    slot.k1 = slot.k2 = 0;
    slot.state.store(0, std::memory_order_release);
  }

  // Tries to transition a ready, unreferenced slot to kClaimed so the
  // writer may mutate it. Fails if readers hold references or the slot
  // changed. Must hold mu.
  bool TryClaim(Slot& slot) {
    uint64_t cur = slot.state.load(std::memory_order_acquire);
    for (int spin = 0; spin < 1024; ++spin) {
      if (!(cur & kReady) || (cur & kClaimed)) return false;
      if ((cur & kRefMask) != 0) {
        // A reader holds the slot; re-read — reads are short (memcpy).
        cur = slot.state.load(std::memory_order_acquire);
        continue;
      }
      if (slot.state.compare_exchange_weak(cur, cur | kClaimed,
                                           std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }
};

ShardedClockCache::ShardedClockCache(size_t capacity_bytes, int num_shards,
                                     bool admission)
    : capacity_(capacity_bytes),
      admission_(admission),
      sketch_(capacity_bytes / kAvgEntryBytes) {
  size_t n = RoundUpPow2(num_shards < 1 ? 1 : num_shards);
  size_t per_shard = capacity_bytes / n;
  if (per_shard < 4096) per_shard = 4096;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

ShardedClockCache::~ShardedClockCache() = default;

bool ShardedClockCache::Lookup(uint64_t k1, uint64_t k2, char* dst,
                               size_t len) {
  uint64_t hash = KeyHash(k1, k2);
  if (admission_) sketch_.Increment(hash);
  Shard& shard = *shards_[(hash >> 56) & (shards_.size() - 1)];
  uint64_t tag = (hash >> kTagShift) & 0xFF;
  size_t home = static_cast<size_t>(hash) & shard.SlotMask();

  for (int probe = 0; probe < kProbeWindow; ++probe) {
    Shard::Slot& slot = shard.slots[(home + probe) & shard.SlotMask()];
    uint64_t cur = slot.state.load(std::memory_order_acquire);
    if (!(cur & kReady) || (cur & kClaimed) ||
        ((cur >> kTagShift) & 0xFF) != tag) {
      continue;
    }
    // Tag matches: pin the slot with a reference so writers cannot
    // reclaim it mid-copy, then verify the full key.
    if (!slot.state.compare_exchange_strong(cur, cur + 1,
                                            std::memory_order_acquire)) {
      continue;  // Slot changed under us; treat as miss for this probe.
    }
    bool hit = slot.k1 == k1 && slot.k2 == k2 && slot.len == len;
    if (hit) {
      std::memcpy(dst, slot.data.get(), len);
      slot.state.fetch_or(kClock, std::memory_order_relaxed);
    }
    slot.state.fetch_sub(1, std::memory_order_release);
    if (hit) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ShardedClockCache::Insert(uint64_t k1, uint64_t k2, const char* src,
                               size_t len, bool bypass_admission) {
  uint64_t hash = KeyHash(k1, k2);
  Shard& shard = *shards_[(hash >> 56) & (shards_.size() - 1)];
  if (len == 0 || len > shard.capacity / 4) return;  // Oversize guard.
  uint64_t tag = (hash >> kTagShift) & 0xFF;
  size_t home = static_cast<size_t>(hash) & shard.SlotMask();

  std::lock_guard<std::mutex> lock(shard.mu);

  // Duplicate check. Ready-slot keys are stable under the shard mutex
  // (only writers, which we exclude, mutate them), so plain reads are
  // safe here.
  int empty_probe = -1;
  for (int probe = 0; probe < kProbeWindow; ++probe) {
    Shard::Slot& slot = shard.slots[(home + probe) & shard.SlotMask()];
    uint64_t cur = slot.state.load(std::memory_order_acquire);
    if (!(cur & kReady)) {
      if (empty_probe < 0 && !(cur & kClaimed)) empty_probe = probe;
      continue;
    }
    if (slot.k1 == k1 && slot.k2 == k2) {
      slot.state.fetch_or(kClock, std::memory_order_relaxed);
      return;  // Present: refresh recency, keep existing payload.
    }
  }

  // Admission: the newcomer must beat a CLOCK victim's estimated
  // frequency to displace it. Bypass for freshly-read entries the caller
  // knows are hot (e.g. harvest inserts with admission disabled) and
  // when there is spare capacity anyway.
  auto admit_over = [&](uint64_t victim_hash) {
    if (!admission_ || bypass_admission) return true;
    return sketch_.Estimate(hash) > sketch_.Estimate(victim_hash);
  };

  // Make byte room via CLOCK sweep.
  size_t swept = 0;
  const size_t max_sweep = shard.slots.size() * 2;
  while (shard.usage + len > shard.capacity && swept < max_sweep) {
    Shard::Slot& victim = shard.slots[shard.clock_hand];
    shard.clock_hand = (shard.clock_hand + 1) & shard.SlotMask();
    ++swept;
    uint64_t cur = victim.state.load(std::memory_order_acquire);
    if (!(cur & kReady) || (cur & kClaimed)) continue;
    if (cur & kClock) {
      victim.state.fetch_and(~kClock, std::memory_order_relaxed);
      continue;
    }
    if (!admit_over(KeyHash(victim.k1, victim.k2))) {
      shard.admission_rejects.fetch_add(1, std::memory_order_relaxed);
      return;  // Victim is hotter than the newcomer; drop the insert.
    }
    if (shard.TryClaim(victim)) {
      shard.FreeClaimed(victim);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (shard.usage + len > shard.capacity) return;  // Everything pinned.

  // Find a slot in the probe window: prefer an empty one, else evict the
  // window entry (subject to the same admission contest).
  Shard::Slot* target = nullptr;
  if (empty_probe >= 0) {
    Shard::Slot& slot =
        shard.slots[(home + empty_probe) & shard.SlotMask()];
    if (!(slot.state.load(std::memory_order_acquire) & (kReady | kClaimed))) {
      target = &slot;
    }
  }
  if (target == nullptr) {
    for (int probe = 0; probe < kProbeWindow && target == nullptr; ++probe) {
      Shard::Slot& slot = shard.slots[(home + probe) & shard.SlotMask()];
      uint64_t cur = slot.state.load(std::memory_order_acquire);
      if (!(cur & kReady)) {
        if (!(cur & kClaimed)) target = &slot;
        continue;
      }
      if (!admit_over(KeyHash(slot.k1, slot.k2))) continue;
      if (shard.TryClaim(slot)) {
        shard.FreeClaimed(slot);
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
        target = &slot;
      }
    }
  }
  if (target == nullptr) {
    shard.admission_rejects.fetch_add(1, std::memory_order_relaxed);
    return;  // Whole window hotter or pinned.
  }

  target->state.store(kClaimed, std::memory_order_release);
  target->k1 = k1;
  target->k2 = k2;
  target->data = std::make_unique<char[]>(len);
  std::memcpy(target->data.get(), src, len);
  target->len = len;
  shard.usage += len;
  target->state.store(kReady | kClock | (tag << kTagShift),
                      std::memory_order_release);
  shard.inserts.fetch_add(1, std::memory_order_relaxed);
}

size_t ShardedClockCache::EraseKey1(uint64_t k1) {
  size_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& slot : shard.slots) {
      uint64_t cur = slot.state.load(std::memory_order_acquire);
      if (!(cur & kReady)) continue;
      if (slot.k1 != k1) continue;
      if (shard.TryClaim(slot)) {
        shard.FreeClaimed(slot);
        ++dropped;
      }
    }
  }
  return dropped;
}

void ShardedClockCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& slot : shard.slots) {
      uint64_t cur = slot.state.load(std::memory_order_acquire);
      if (!(cur & kReady)) continue;
      if (shard.TryClaim(slot)) shard.FreeClaimed(slot);
    }
  }
}

CacheStats ShardedClockCache::stats() const {
  CacheStats s;
  for (const auto& shard : shards_) {
    s.hits += shard->hits.load(std::memory_order_relaxed);
    s.misses += shard->misses.load(std::memory_order_relaxed);
    s.inserts += shard->inserts.load(std::memory_order_relaxed);
    s.evictions += shard->evictions.load(std::memory_order_relaxed);
    s.admission_rejects +=
        shard->admission_rejects.load(std::memory_order_relaxed);
  }
  return s;
}

size_t ShardedClockCache::usage() const {
  size_t u = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    u += shard->usage;
  }
  return u;
}

}  // namespace dlsm
