// Sharded CLOCK cache with TinyLFU admission.
//
// The cache maps a 128-bit key to an immutable byte payload. It is built
// for a read-mostly hot set: lookups are lock-free (slot states carry a
// ready bit, an 8-bit key-hash tag and a reader refcount in one atomic
// word), while inserts, evictions and invalidation serialize on a
// per-shard mutex. Each shard is an open-addressed slot array doubling as
// the CLOCK ring; admission is guarded by a 4-bit count-min frequency
// sketch with periodic halving, so a flood of one-shot keys (scan
// traffic) cannot displace entries that are actually hot.
//
// This layer is generic bytes-in/bytes-out; the typed block/chunk view
// keyed by (table id, block offset) lives in src/core/block_cache.h.

#ifndef DLSM_UTIL_CACHE_H_
#define DLSM_UTIL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dlsm {

/// Monotonic cache counters (snapshot; aggregated across shards).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;          ///< Entries displaced by CLOCK.
  uint64_t admission_rejects = 0;  ///< Inserts the TinyLFU sketch refused.
};

/// TinyLFU frequency sketch: a count-min sketch of 4-bit saturating
/// counters (two per byte, CAS-updated), estimating how often a key hash
/// has been accessed recently. Every kSamplePeriodFactor * num_counters
/// recorded accesses, all counters are halved ("aging"), so the estimate
/// tracks recent popularity rather than all-time counts.
class FrequencySketch {
 public:
  /// Rounds num_counters up to a power of two (min 1024).
  explicit FrequencySketch(size_t num_counters);

  /// Records one access; triggers aging at the sample period.
  void Increment(uint64_t hash);

  /// Estimated access count in [0, 15] (min over the hash rows).
  uint32_t Estimate(uint64_t hash) const;

  /// Number of halvings performed so far (test observability).
  uint64_t halvings() const {
    return halvings_.load(std::memory_order_relaxed);
  }

  static constexpr int kRows = 4;
  static constexpr uint64_t kSamplePeriodFactor = 8;

 private:
  void Age();
  size_t RowIndex(uint64_t hash, int row) const;

  // Two 4-bit counters per byte; counter i lives in nibble (i & 1) of
  // byte (i >> 1). CAS loops keep concurrent increments and the halving
  // sweep torn-write free (sketch estimates tolerate counting races).
  std::vector<std::atomic<uint8_t>> table_;
  size_t mask_;             // num_counters - 1 (per row, shared array).
  uint64_t sample_period_;  // Accesses between halvings.
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> halvings_{0};
};

/// The sharded cache. Capacity is accounted in payload bytes and split
/// evenly across shards (shard count rounded up to a power of two). An
/// entry larger than a quarter of one shard's budget is never admitted.
class ShardedClockCache {
 public:
  ShardedClockCache(size_t capacity_bytes, int num_shards, bool admission);
  ~ShardedClockCache();

  ShardedClockCache(const ShardedClockCache&) = delete;
  ShardedClockCache& operator=(const ShardedClockCache&) = delete;

  /// On hit copies exactly len bytes into dst and returns true. A stored
  /// entry with the same key but a different length counts as a miss (the
  /// caller's geometry changed; the stale entry ages out via CLOCK).
  /// Records the access in the admission sketch either way.
  bool Lookup(uint64_t k1, uint64_t k2, char* dst, size_t len);

  /// Copies src into the cache. May be dropped by the admission sketch
  /// (unless bypass_admission), by the oversize guard, or when every
  /// candidate slot is pinned by concurrent readers. Re-inserting a
  /// present key refreshes its CLOCK bit and keeps the existing payload.
  void Insert(uint64_t k1, uint64_t k2, const char* src, size_t len,
              bool bypass_admission = false);

  /// Drops every entry whose first key word equals k1 (table
  /// invalidation). Returns the number of entries dropped.
  size_t EraseKey1(uint64_t k1);

  /// Drops everything.
  void Clear();

  CacheStats stats() const;
  size_t usage() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard;

  size_t capacity_;
  bool admission_;
  std::vector<std::unique_ptr<Shard>> shards_;
  FrequencySketch sketch_;
};

}  // namespace dlsm

#endif  // DLSM_UTIL_CACHE_H_
