#include "src/util/timeseries.h"

#include <cstdio>
#include <cstring>

#include "src/util/logging.h"

namespace dlsm {
namespace telemetry {

namespace {

// %.4f with trailing zeros (and a bare trailing dot) trimmed, so counter
// deltas print as integers and the JSON stays byte-stable across runs.
void AppendNumber(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  size_t len = std::strlen(buf);
  if (std::memchr(buf, '.', len) != nullptr) {
    while (len > 0 && buf[len - 1] == '0') len--;
    if (len > 0 && buf[len - 1] == '.') len--;
  }
  out->append(buf, len);
}

}  // namespace

Series::Series(std::vector<Column> columns, size_t capacity)
    : columns_(std::move(columns)),
      capacity_(capacity > 0 ? capacity : 1),
      stride_(1 + columns_.size()) {
  ring_.resize(capacity_ * stride_, 0.0);
  prev_raw_.resize(columns_.size(), 0.0);
}

void Series::Append(uint64_t ts_ns, const double* raw, size_t n) {
  DLSM_CHECK_MSG(n == columns_.size(), "Series::Append arity mismatch");
  std::lock_guard<std::mutex> lk(mu_);
  double* row = &ring_[head_ * stride_];
  row[0] = static_cast<double>(ts_ns);
  for (size_t c = 0; c < n; c++) {
    if (columns_[c].kind == Kind::kCounter) {
      // First row has no prior interval; record 0 rather than the whole
      // cumulative history as one giant delta.
      double delta = appended_ == 0 ? 0.0 : raw[c] - prev_raw_[c];
      row[1 + c] = delta >= 0 ? delta : 0.0;  // Counter resets clamp to 0.
      prev_raw_[c] = raw[c];
    } else {
      row[1 + c] = raw[c];
    }
  }
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) size_++;
  appended_++;
}

size_t Series::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return size_;
}

uint64_t Series::total_appended() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

std::string Series::RowsJsonLocked(size_t n) const {
  if (n > size_) n = size_;
  std::string out = "[";
  // Oldest retained row lives at head_ when the ring has wrapped, else 0.
  size_t oldest = size_ == capacity_ ? head_ : 0;
  for (size_t i = size_ - n; i < size_; i++) {
    if (i != size_ - n) out.append(",");
    const double* row = &ring_[((oldest + i) % capacity_) * stride_];
    out.append("[");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", row[0]);
    out.append(buf);
    for (size_t c = 1; c < stride_; c++) {
      out.append(",");
      AppendNumber(&out, row[c]);
    }
    out.append("]");
  }
  out.append("]");
  return out;
}

std::string Series::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"columns\":[\"ts_ns\"";
  for (const Column& c : columns_) {
    out.append(",\"");
    out.append(c.name);
    out.append("\"");
  }
  out.append("],\"kinds\":[\"ts\"");
  for (const Column& c : columns_) {
    out.append(c.kind == Kind::kCounter ? ",\"counter\"" : ",\"gauge\"");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "],\"dropped\":%llu,\"samples\":",
                static_cast<unsigned long long>(appended_ - size_));
  out.append(buf);
  out.append(RowsJsonLocked(size_));
  out.append("}");
  return out;
}

std::string Series::TailJson(size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  return RowsJsonLocked(n);
}

std::vector<std::vector<double>> Series::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::vector<double>> out;
  out.reserve(size_);
  size_t oldest = size_ == capacity_ ? head_ : 0;
  for (size_t i = 0; i < size_; i++) {
    const double* row = &ring_[((oldest + i) % capacity_) * stride_];
    out.emplace_back(row, row + stride_);
  }
  return out;
}

}  // namespace telemetry
}  // namespace dlsm
