// Endian-neutral integer encoding: fixed-width little-endian and
// varint encodings, plus length-prefixed slices.

#ifndef DLSM_UTIL_CODING_H_
#define DLSM_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/slice.h"

namespace dlsm {

// -- Fixed-width encoding (little endian) ----------------------------------

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // Little-endian hosts only.
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// -- Varint encoding --------------------------------------------------------

/// Encodes v as a varint at dst; returns a pointer past the last byte
/// written. dst must have at least 5 bytes available.
char* EncodeVarint32(char* dst, uint32_t v);

/// Encodes v as a varint at dst; returns a pointer past the last byte
/// written. dst must have at least 10 bytes available.
char* EncodeVarint64(char* dst, uint64_t v);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Parses a varint32 from [p, limit); returns a pointer past the parsed
/// bytes and stores the result in *value, or returns nullptr on failure.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Parses a varint from the front of *input, advancing it. Returns false if
/// the input is malformed or exhausted.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Returns the number of bytes the varint encoding of v occupies.
int VarintLength(uint64_t v);

// -- Length-prefixed slices --------------------------------------------------

void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

}  // namespace dlsm

#endif  // DLSM_UTIL_CODING_H_
