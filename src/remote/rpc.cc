#include "src/remote/rpc.h"

#include <cstring>

#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/util/trace.h"

namespace dlsm {
namespace remote {

namespace {

// Request wire format (fits the 256-byte channel receive buffers):
//   u8  type
//   u8  wake
//   u32 id
//   u64 reply_addr
//   u32 reply_rkey
//   u32 reply_cap
//   u64 args_addr   (0 => args are inline)
//   u32 args_rkey
//   u32 args_len
//   u64 trace_flow  (0 => caller not tracing; flow id stitching the
//   u64 trace_span   server handler span to the compute-side call span)
//   u32 inline_len
//   [inline bytes]
constexpr size_t kRequestBufSize = 256;
constexpr size_t kRequestHeader = 1 + 1 + 4 + 8 + 4 + 4 + 8 + 4 + 4 + 8 + 8 + 4;
constexpr size_t kMaxInlineArgs = kRequestBufSize - kRequestHeader;
// Generous receive depth: many shards share one channel, and the
// dispatcher may be in its idle backoff when a burst of requests lands.
constexpr int kRecvSlots = 4096;
// Reply buffers hold near-data compaction results (per-output index +
// bloom blobs), which can run to megabytes for wide L0 merges. The pages
// are MAP_NORESERVE-backed, so unused capacity costs nothing.
constexpr size_t kReplyBufSize = 8 * 1024 * 1024;
constexpr size_t kArgsBufSize = 1024 * 1024;

// Server-side bounded retry for argument pulls and reply writes. These
// verbs are the only way the client's per-call buffers get released, so
// the server works through transient faults instead of dropping.
constexpr int kServerRetries = 3;
constexpr uint64_t kServerRetryBackoffNs = 50 * 1000;

struct Request {
  uint8_t type = 0;
  bool wake = false;
  uint32_t id = 0;
  uint64_t reply_addr = 0;
  uint32_t reply_rkey = 0;
  uint32_t reply_cap = 0;
  uint64_t args_addr = 0;
  uint32_t args_rkey = 0;
  uint32_t args_len = 0;
  // Trace context (0 when the caller is not tracing): the flow id joining
  // the client call span to the server handler span, and the client span
  // id recorded as the handler's parent.
  uint64_t trace_flow = 0;
  uint64_t trace_span = 0;
  std::string inline_args;
};

size_t EncodeRequest(const Request& r, char* dst) {
  char* p = dst;
  *p++ = static_cast<char>(r.type);
  *p++ = r.wake ? 1 : 0;
  EncodeFixed32(p, r.id);
  p += 4;
  EncodeFixed64(p, r.reply_addr);
  p += 8;
  EncodeFixed32(p, r.reply_rkey);
  p += 4;
  EncodeFixed32(p, r.reply_cap);
  p += 4;
  EncodeFixed64(p, r.args_addr);
  p += 8;
  EncodeFixed32(p, r.args_rkey);
  p += 4;
  EncodeFixed32(p, r.args_len);
  p += 4;
  EncodeFixed64(p, r.trace_flow);
  p += 8;
  EncodeFixed64(p, r.trace_span);
  p += 8;
  EncodeFixed32(p, static_cast<uint32_t>(r.inline_args.size()));
  p += 4;
  memcpy(p, r.inline_args.data(), r.inline_args.size());
  p += r.inline_args.size();
  return p - dst;
}

bool DecodeRequest(const char* src, size_t len, Request* r) {
  if (len < kRequestHeader) return false;
  const char* p = src;
  r->type = static_cast<uint8_t>(*p++);
  r->wake = (*p++ != 0);
  r->id = DecodeFixed32(p);
  p += 4;
  r->reply_addr = DecodeFixed64(p);
  p += 8;
  r->reply_rkey = DecodeFixed32(p);
  p += 4;
  r->reply_cap = DecodeFixed32(p);
  p += 4;
  r->args_addr = DecodeFixed64(p);
  p += 8;
  r->args_rkey = DecodeFixed32(p);
  p += 4;
  r->args_len = DecodeFixed32(p);
  p += 4;
  r->trace_flow = DecodeFixed64(p);
  p += 8;
  r->trace_span = DecodeFixed64(p);
  p += 8;
  uint32_t inline_len = DecodeFixed32(p);
  p += 4;
  if (kRequestHeader + inline_len > len) return false;
  r->inline_args.assign(p, inline_len);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

std::atomic<uint64_t> RpcClient::next_instance_id_{1};

/// Per-thread registered reply and argument staging buffers.
struct RpcClient::ThreadBuffers {
  char* reply = nullptr;
  rdma::MemoryRegion reply_mr;
  char* args = nullptr;
  rdma::MemoryRegion args_mr;

  uint64_t stamp_addr() const {
    return reply_mr.addr + kReplyBufSize - sizeof(uint64_t);
  }
};

namespace {
thread_local std::unordered_map<uint64_t, RpcClient::ThreadBuffers*>
    tls_client_bufs;
}  // namespace

RpcClient::RpcClient(rdma::Fabric* fabric, rdma::Node* client_node,
                     RpcServer* server)
    : fabric_(fabric),
      client_node_(client_node),
      server_(server),
      instance_id_(next_instance_id_.fetch_add(1)),
      wait_mu_(fabric->env()) {
  RpcServer::Channel* ch = server_->RegisterClient(client_node_);
  channel_ep_ = ch->client_ep;
  send_vq_ = std::make_unique<rdma::VerbQueue>(channel_ep_);
  // Pre-post receive slots for WRITE_WITH_IMM wakeups (notification only,
  // no payload, but each consumes a posted receive).
  for (int i = 0; i < kRecvSlots; i++) {
    notify_bufs_.emplace_back(new char[8]);
    channel_ep_->PostRecv(notify_bufs_.back().get(), 8, i + 1);
  }
  notifier_ = fabric_->env()->StartThread(
      client_node_->env_node(), "rpc-notifier", [this] { NotifierLoop(); });
}

RpcClient::~RpcClient() {
  stop_.store(true);
  fabric_->env()->Join(notifier_);
}

namespace {

std::unique_ptr<RpcClient::ThreadBuffers> NewRegisteredBuffers(
    rdma::Fabric* fabric, rdma::Node* node) {
  auto bufs = std::make_unique<RpcClient::ThreadBuffers>();
  bufs->reply = node->AllocDram(kReplyBufSize);
  bufs->args = node->AllocDram(kArgsBufSize);
  if (bufs->reply == nullptr || bufs->args == nullptr) {
    // DRAM exhausted (e.g. a long fault sweep stranding zombie contexts):
    // the RPC fails with OutOfMemory instead of aborting the process.
    return nullptr;
  }
  bufs->reply_mr = fabric->RegisterMemory(node, bufs->reply, kReplyBufSize);
  bufs->args_mr = fabric->RegisterMemory(node, bufs->args, kArgsBufSize);
  return bufs;
}

}  // namespace

RpcClient::ThreadBuffers* RpcClient::GetThreadBuffers() {
  auto it = tls_client_bufs.find(instance_id_);
  if (it != tls_client_bufs.end()) return it->second;
  ThreadBuffers* bufs = AcquireContext();
  if (bufs != nullptr) tls_client_bufs[instance_id_] = bufs;
  return bufs;
}

void RpcClient::InvalidateThreadBuffers() {
  auto it = tls_client_bufs.find(instance_id_);
  if (it == tls_client_bufs.end()) return;
  ReleaseContext(it->second, /*completed=*/false);
  tls_client_bufs.erase(it);
}

RpcClient::ThreadBuffers* RpcClient::AcquireContext() {
  {
    std::lock_guard<std::mutex> lock(ctx_mu_);
    // Zombies become reusable once their abandoned call's reply stamp has
    // fired — only then is the server provably done writing the buffers.
    for (size_t i = 0; i < zombie_ctx_.size();) {
      auto* stamp = reinterpret_cast<const void*>(zombie_ctx_[i]->stamp_addr());
      if (rdma::QueuePair::ReadReadyStamp(stamp) != 0) {
        free_ctx_.push_back(zombie_ctx_[i]);
        zombie_ctx_[i] = zombie_ctx_.back();
        zombie_ctx_.pop_back();
      } else {
        i++;
      }
    }
    if (!free_ctx_.empty()) {
      ThreadBuffers* ctx = free_ctx_.back();
      free_ctx_.pop_back();
      return ctx;
    }
  }
  auto bufs = NewRegisteredBuffers(fabric_, client_node_);
  if (bufs == nullptr) return nullptr;
  ThreadBuffers* raw = bufs.get();
  std::lock_guard<std::mutex> lock(ctx_mu_);
  all_ctx_.push_back(std::move(bufs));
  return raw;
}

void RpcClient::ReleaseContext(ThreadBuffers* ctx, bool completed) {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  if (completed) {
    free_ctx_.push_back(ctx);
  } else {
    zombie_ctx_.push_back(ctx);
  }
}

Status RpcClient::SendRequest(uint8_t type, const Slice& args, bool wake,
                              uint32_t id, ThreadBuffers* bufs,
                              uint64_t trace_flow, uint64_t trace_span) {
  Request r;
  r.type = type;
  r.wake = wake;
  r.id = id;
  r.trace_flow = trace_flow;
  r.trace_span = trace_span;
  r.reply_addr = bufs->reply_mr.addr;
  r.reply_rkey = bufs->reply_mr.rkey;
  r.reply_cap = kReplyBufSize;
  if (args.size() <= kMaxInlineArgs && !wake) {
    r.inline_args = args.ToString();
  } else {
    if (args.size() > kArgsBufSize) {
      return Status::InvalidArgument("RPC args exceed staging buffer");
    }
    memcpy(bufs->args, args.data(), args.size());
    r.args_addr = bufs->args_mr.addr;
    r.args_rkey = bufs->args_mr.rkey;
    r.args_len = static_cast<uint32_t>(args.size());
  }

  // Zero the ready stamp before the responder can write it.
  uint64_t zero = 0;
  __atomic_store(reinterpret_cast<uint64_t*>(bufs->stamp_addr()), &zero,
                 __ATOMIC_RELEASE);

  char req[kRequestBufSize];
  size_t n = EncodeRequest(r, req);
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    if (channel_ep_->InError()) {
      // The channel QP faulted (injected error or server-node crash).
      // Reconnect before posting; while the server is down this fails and
      // the caller sees the error instead of posting into a dead QP.
      DLSM_RETURN_NOT_OK(send_vq_->Recover());
    }
    // Fire-and-forget: the cancelled handle's completion is swept (and the
    // CQ kept bounded) by the verb queue on subsequent posts. A fault at
    // post time (injected error, errored QP) is pollable immediately —
    // report it now, while the request provably never reached the server,
    // so the caller can retry on these same buffers instead of timing out
    // and stranding them on the zombie list.
    rdma::WrHandle h = send_vq_->Send(req, n);
    if (h.Ready()) {
      Status hs = h.status();
      h.Cancel();
      DLSM_RETURN_NOT_OK(hs);
    } else {
      h.Cancel();
    }
  }
  return Status::OK();
}

Status RpcClient::ParseReply(ThreadBuffers* bufs, std::string* reply) {
  uint32_t len = DecodeFixed32(bufs->reply);
  if (len + 4 > kReplyBufSize - sizeof(uint64_t)) {
    return Status::Corruption("oversized RPC reply");
  }
  reply->assign(bufs->reply + 4, len);
  return Status::OK();
}

uint64_t RpcClient::BackoffNs(int attempt) const {
  int shift = attempt < 6 ? attempt : 6;
  return policy_.retry_backoff_ns << shift;
}

Status RpcClient::Call(uint8_t type, const Slice& args, std::string* reply) {
  Status s = CallOnce(type, args, reply);
  for (int attempt = 0;
       !s.ok() && s.IsIOError() && attempt < policy_.max_retries; attempt++) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    fabric_->env()->SleepNanos(BackoffNs(attempt));
    s = CallOnce(type, args, reply);
  }
  return s;
}

Status RpcClient::CallOnce(uint8_t type, const Slice& args,
                           std::string* reply) {
  trace::TraceSpan span("rpc_call", "rpc");
  span.arg("type", type);
  uint64_t flow = span.active() ? trace::Tracer::NextId() : 0;
  ThreadBuffers* bufs = GetThreadBuffers();
  if (bufs == nullptr) {
    return Status::OutOfMemory("client DRAM exhausted for RPC buffers");
  }
  DLSM_RETURN_NOT_OK(
      SendRequest(type, args, /*wake=*/false, 0, bufs, flow, span.id()));
  if (flow != 0) trace::Tracer::EmitFlow('s', "rpc", "rpc", flow);
  // The reply arrives as a one-sided WRITE; its completion handle is a
  // stamp future over the ready word at the end of the reply buffer.
  rdma::StampFuture reply_ready(
      fabric_->env(), reinterpret_cast<const void*>(bufs->stamp_addr()));
  if (policy_.timeout_ns == 0) {
    DLSM_RETURN_NOT_OK(reply_ready.Wait());
  } else {
    Status s =
        reply_ready.WaitUntil(fabric_->env()->NowNanos() + policy_.timeout_ns);
    if (!s.ok()) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      InvalidateThreadBuffers();
      return s;
    }
  }
  return ParseReply(bufs, reply);
}

Status RpcClient::CallWithWakeup(uint8_t type, const Slice& args,
                                 std::string* reply) {
  Status s = CallWithWakeupOnce(type, args, reply);
  for (int attempt = 0;
       !s.ok() && s.IsIOError() && attempt < policy_.max_retries; attempt++) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    fabric_->env()->SleepNanos(BackoffNs(attempt));
    s = CallWithWakeupOnce(type, args, reply);
  }
  return s;
}

Status RpcClient::CallWithWakeupOnce(uint8_t type, const Slice& args,
                                     std::string* reply) {
  trace::TraceSpan span("rpc_call_wake", "rpc");
  span.arg("type", type);
  uint64_t flow = span.active() ? trace::Tracer::NextId() : 0;
  Env* env = fabric_->env();
  ThreadBuffers* bufs = GetThreadBuffers();
  if (bufs == nullptr) {
    return Status::OutOfMemory("client DRAM exhausted for RPC buffers");
  }
  uint32_t id = next_id_.fetch_add(1);

  CondVar cv(env, &wait_mu_);
  Waiter waiter;
  waiter.cv = &cv;
  {
    MutexLock l(&wait_mu_);
    waiters_[id] = &waiter;
  }
  Status send =
      SendRequest(type, args, /*wake=*/true, id, bufs, flow, span.id());
  if (!send.ok()) {
    MutexLock l(&wait_mu_);
    waiters_.erase(id);
    return send;
  }
  if (flow != 0) trace::Tracer::EmitFlow('s', "rpc", "rpc", flow);
  uint64_t deadline =
      policy_.timeout_ns == 0 ? 0 : env->NowNanos() + policy_.timeout_ns;
  bool timed_out = false;
  {
    // Sleep until the notifier sees our WRITE_WITH_IMM (paper: "attaches a
    // 4-byte number as the unique ID ... and goes to sleep").
    MutexLock l(&wait_mu_);
    while (!waiter.fired) {
      if (deadline == 0) {
        cv.Wait();
        continue;
      }
      uint64_t now = env->NowNanos();
      if (now >= deadline || cv.TimedWait(deadline - now)) {
        timed_out = !waiter.fired;
        break;
      }
    }
    waiters_.erase(id);
  }
  if (timed_out) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    InvalidateThreadBuffers();
    return Status::IOError("RPC timed out");
  }
  // The payload write carries the ready stamp; its future must already be
  // ready (the wakeup is posted after the stamped write completes).
  rdma::StampFuture reply_ready(
      env, reinterpret_cast<const void*>(bufs->stamp_addr()));
  if (!reply_ready.Ready()) {
    return Status::Corruption("wakeup before reply payload");
  }
  reply_ready.Wait();  // Adopts the writer's completion time.
  return ParseReply(bufs, reply);
}

PendingCall RpcClient::CallAsync(uint8_t type, const Slice& args) {
  PendingCall call;
  call.client_ = this;
  ThreadBuffers* ctx = AcquireContext();
  if (ctx == nullptr) {
    call.send_status_ =
        Status::OutOfMemory("client DRAM exhausted for RPC buffers");
    return call;
  }
  call.ctx_ = ctx;
  trace::TraceSpan span("rpc_send", "rpc");
  span.arg("type", type);
  uint64_t flow = span.active() ? trace::Tracer::NextId() : 0;
  // wake=true routes execution to the server's worker pool (long-running
  // requests must not run inline on the dispatcher) and stages the args
  // for the server's RDMA READ — but no waiter is registered, so the
  // wakeup immediate is dropped by the notifier and completion is the
  // reply stamp alone.
  call.send_status_ = SendRequest(type, args, /*wake=*/true,
                                  next_id_.fetch_add(1), ctx, flow, span.id());
  if (flow != 0 && call.send_status_.ok()) {
    trace::Tracer::EmitFlow('s', "rpc", "rpc", flow);
  }
  return call;
}

// ---------------------------------------------------------------------------
// PendingCall
// ---------------------------------------------------------------------------

PendingCall::PendingCall(PendingCall&& o) noexcept
    : client_(o.client_), ctx_(o.ctx_), send_status_(o.send_status_) {
  o.client_ = nullptr;
  o.ctx_ = nullptr;
}

PendingCall& PendingCall::operator=(PendingCall&& o) noexcept {
  if (this != &o) {
    Release();
    client_ = o.client_;
    ctx_ = o.ctx_;
    send_status_ = o.send_status_;
    o.client_ = nullptr;
    o.ctx_ = nullptr;
  }
  return *this;
}

PendingCall::~PendingCall() { Release(); }

void PendingCall::Release() {
  if (client_ == nullptr) return;
  auto* ctx = static_cast<RpcClient::ThreadBuffers*>(ctx_);
  if (ctx != nullptr) {
    // Abandoned without Wait: the context can be reused immediately only if
    // the request never left or the reply already landed; otherwise it
    // waits on the zombie list for its stamp.
    client_->ReleaseContext(ctx, !send_status_.ok() || Ready());
  }
  client_ = nullptr;
  ctx_ = nullptr;
}

bool PendingCall::Ready() const {
  if (client_ == nullptr || ctx_ == nullptr || !send_status_.ok()) {
    return false;
  }
  auto* ctx = static_cast<RpcClient::ThreadBuffers*>(ctx_);
  return rdma::QueuePair::ReadReadyStamp(
             reinterpret_cast<const void*>(ctx->stamp_addr())) != 0;
}

Status PendingCall::Wait(std::string* reply) {
  if (client_ == nullptr) return send_status_;
  RpcClient* client = client_;
  auto* ctx = static_cast<RpcClient::ThreadBuffers*>(ctx_);
  client_ = nullptr;
  ctx_ = nullptr;
  if (!send_status_.ok()) {
    if (ctx != nullptr) client->ReleaseContext(ctx, /*completed=*/true);
    return send_status_;
  }
  Env* env = client->fabric_->env();
  trace::TraceSpan span("rpc_wait", "rpc");
  rdma::StampFuture reply_ready(
      env, reinterpret_cast<const void*>(ctx->stamp_addr()));
  uint64_t timeout_ns = client->policy_.timeout_ns;
  Status s = timeout_ns == 0
                 ? reply_ready.Wait()
                 : reply_ready.WaitUntil(env->NowNanos() + timeout_ns);
  if (s.ok()) {
    s = client->ParseReply(ctx, reply);
    client->ReleaseContext(ctx, /*completed=*/true);
  } else {
    // Timed out: the reply WRITE may still be inbound, so the context goes
    // to the zombie list. The caller re-issues the whole CallAsync.
    client->timeouts_.fetch_add(1, std::memory_order_relaxed);
    client->ReleaseContext(ctx, /*completed=*/false);
  }
  return s;
}

void RpcClient::NotifierLoop() {
  Env* env = fabric_->env();
  rdma::Completion c;
  uint64_t idle_backoff_ns = 1000;
  while (!stop_.load(std::memory_order_relaxed)) {
    bool any = false;
    while (channel_ep_->PollRecvCq(&c, 1) == 1) {
      any = true;
      // Re-post the consumed receive slot.
      if (c.wr_id >= 1 && c.wr_id <= notify_bufs_.size()) {
        channel_ep_->PostRecv(notify_bufs_[c.wr_id - 1].get(), 8, c.wr_id);
      }
      if (!c.has_imm) continue;
      MutexLock l(&wait_mu_);
      auto it = waiters_.find(c.imm);
      if (it != waiters_.end()) {
        it->second->fired = true;
        it->second->cv->Signal();
      }
    }
    if (!any) {
      // Adaptive poll backoff: stays hot under load, cheap when idle.
      env->SleepNanos(idle_backoff_ns);
      if (idle_backoff_ns < 100000) idle_backoff_ns *= 2;
    } else {
      idle_backoff_ns = 1000;
    }
  }
}

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

RpcServer::RpcServer(rdma::Fabric* fabric, rdma::Node* server_node,
                     int worker_threads)
    : fabric_(fabric),
      server_node_(server_node),
      worker_threads_(worker_threads) {}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Start() {
  DLSM_CHECK(!started_);
  started_ = true;
  pool_ = std::make_unique<ThreadPool>(fabric_->env(),
                                       server_node_->env_node(),
                                       worker_threads_, "compaction-worker");
  dispatcher_ = fabric_->env()->StartThread(
      server_node_->env_node(), "rpc-dispatcher", [this] { DispatcherLoop(); });
}

void RpcServer::Stop() {
  if (!started_ || stop_.load()) return;
  stop_.store(true);
  fabric_->env()->Join(dispatcher_);
  pool_.reset();  // Drains and joins workers.
}

RpcServer::Channel* RpcServer::RegisterClient(rdma::Node* client_node) {
  auto ch = std::make_unique<Channel>();
  ch->client_node = client_node;
  auto [client_ep, server_ep] = fabric_->CreateQpPair(client_node,
                                                      server_node_);
  ch->client_ep = client_ep;
  ch->server_ep = server_ep;
  ch->to_client = std::make_unique<rdma::RdmaManager>(fabric_, server_node_,
                                                      client_node);
  ch->wake_vq = std::make_unique<rdma::VerbQueue>(ch->server_ep);
  for (int i = 0; i < kRecvSlots; i++) {
    ch->recv_bufs.emplace_back(new char[kRequestBufSize]);
    ch->server_ep->PostRecv(ch->recv_bufs.back().get(), kRequestBufSize,
                            i + 1);
  }
  Channel* raw = ch.get();
  std::lock_guard<std::mutex> lock(channels_mu_);
  channels_.push_back(std::move(ch));
  return raw;
}

void RpcServer::DispatcherLoop() {
  Env* env = fabric_->env();
  rdma::Completion c;
  uint64_t idle_backoff_ns = 500;
  while (!stop_.load(std::memory_order_relaxed)) {
    bool any = false;
    size_t nchannels;
    {
      std::lock_guard<std::mutex> lock(channels_mu_);
      nchannels = channels_.size();
    }
    for (size_t i = 0; i < nchannels; i++) {
      Channel* ch;
      {
        std::lock_guard<std::mutex> lock(channels_mu_);
        ch = channels_[i].get();
      }
      while (ch->server_ep->PollRecvCq(&c, 1) == 1) {
        any = true;
        size_t slot = c.wr_id;
        bool valid_slot = slot >= 1 && slot <= ch->recv_bufs.size();
        if (c.status.ok() && valid_slot) {
          ProcessRequest(ch, ch->recv_bufs[slot - 1].get(), c.byte_len);
        }
        // A faulted delivery is dropped — the requester fails by timeout
        // and retries. Either way, re-arm the consumed receive slot.
        if (valid_slot) {
          ch->server_ep->PostRecv(ch->recv_bufs[slot - 1].get(),
                                  kRequestBufSize, slot);
        }
      }
    }
    if (!any) {
      env->SleepNanos(idle_backoff_ns);
      if (idle_backoff_ns < 20000) idle_backoff_ns *= 2;
    } else {
      idle_backoff_ns = 500;
    }
  }
}

void RpcServer::ProcessRequest(Channel* ch, const char* req, size_t len) {
  Request r;
  if (!DecodeRequest(req, len, &r)) {
    return;  // Malformed request: drop; the requester fails by timeout.
  }

  // Fetch the arguments: inline, or pulled from the requester's registered
  // buffer with an RDMA READ (paper: "the remote memory node gets the
  // required compaction metadata from the compute node via an RDMA read").
  std::string args;
  if (r.args_addr != 0) {
    args.resize(r.args_len);
    Status s = ch->to_client->Read(args.data(), r.args_addr, r.args_rkey,
                                   r.args_len);
    // Retry transient faults: a dropped request strands the requester's
    // reply context until its timeout, so give the pull a few chances
    // before falling back to drop-and-let-the-client-retry.
    for (int attempt = 0; !s.ok() && attempt < kServerRetries; attempt++) {
      ch->to_client->ThreadVq()->Recover();
      fabric_->env()->SleepNanos(kServerRetryBackoffNs << attempt);
      s = ch->to_client->Read(args.data(), r.args_addr, r.args_rkey,
                              r.args_len);
    }
    if (!s.ok()) {
      // The argument pull faulted and errored this thread's QP; reconnect
      // it so later requests can be served, then drop this one — the
      // requester times out and retries.
      ch->to_client->ThreadVq()->Recover();
      return;
    }
  } else {
    args = std::move(r.inline_args);
  }

  if (r.wake) {
    // Long-running request: hand off to the worker pool.
    pool_->Submit([this, ch, type = r.type, args = std::move(args),
                   reply_addr = r.reply_addr, reply_rkey = r.reply_rkey,
                   reply_cap = r.reply_cap, id = r.id,
                   trace_flow = r.trace_flow,
                   trace_span = r.trace_span]() mutable {
      ExecuteAndReply(ch, type, std::move(args), reply_addr, reply_rkey,
                      reply_cap, /*wake=*/true, id, trace_flow, trace_span);
    });
  } else {
    ExecuteAndReply(ch, r.type, std::move(args), r.reply_addr, r.reply_rkey,
                    r.reply_cap, /*wake=*/false, r.id, r.trace_flow,
                    r.trace_span);
  }
}

void RpcServer::ExecuteAndReply(Channel* ch, uint8_t type, std::string args,
                                uint64_t reply_addr, uint32_t reply_rkey,
                                uint32_t reply_cap, bool wake, uint32_t id,
                                uint64_t trace_flow, uint64_t trace_span) {
  Env* env = fabric_->env();
  uint64_t start = env->NowNanos();
  // Close the cross-node flow started by the requester: the finish event
  // binds to the enclosing handler span ("bp":"e"), drawing the arrow from
  // the compute-side call span onto this memory-node track.
  if (trace_flow != 0 && trace::Tracer::enabled()) {
    trace::Tracer::EmitFlow('f', "rpc", "rpc", trace_flow);
  }
  std::string reply;
  if (type == RpcType::kPing) {
    reply = args;  // Echo.
  } else {
    DLSM_CHECK_MSG(handler_ != nullptr, "no RPC handler installed");
    handler_(type, Slice(args), &reply);
  }
  uint64_t end = env->NowNanos();
  if (trace::Tracer::enabled()) {
    trace::Tracer::EmitComplete("rpc_handle", "rpc", start, end - start, 0,
                                "type", type, "parent", trace_span);
  }
  worker_busy_ns_.fetch_add(end - start, std::memory_order_relaxed);

  // Reply: [u32 len][payload], then the ready stamp at reply_cap-8, all via
  // one-sided writes on this thread's own QP (bypassing dispatchers).
  if (reply.size() + 4 + sizeof(uint64_t) > reply_cap) {
    return;  // Oversized reply: drop; the requester fails by timeout.
  }
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(reply.size()));
  framed.append(reply);
  rdma::VerbQueue* vq = ch->to_client->ThreadVq();
  rdma::WrHandle payload =
      vq->Write(framed.data(), reply_addr, reply_rkey, framed.size());
  // Zero-length stamped write: releases only the 8-byte ready stamp. The
  // stamp must be posted after the payload (same QP => FIFO on the wire),
  // but the handles may be waited in either order.
  rdma::WrHandle stamp = vq->WriteStamped(
      nullptr, reply_addr + reply_cap - sizeof(uint64_t), reply_rkey, 0);
  Status s = payload.Wait();
  Status st = stamp.Wait();
  // The reply must eventually land if at all possible: the client reclaims
  // its per-call buffers only when the ready stamp fires, so a silently
  // dropped reply strands them on its zombie list for good. Retry through
  // transient faults; only a dead peer defeats this.
  for (int attempt = 0; (!s.ok() || !st.ok()) && attempt < kServerRetries;
       attempt++) {
    if (!vq->Recover().ok()) break;
    env->SleepNanos(kServerRetryBackoffNs << attempt);
    payload = vq->Write(framed.data(), reply_addr, reply_rkey, framed.size());
    stamp = vq->WriteStamped(
        nullptr, reply_addr + reply_cap - sizeof(uint64_t), reply_rkey, 0);
    s = payload.Wait();
    st = stamp.Wait();
  }
  if (!s.ok() || !st.ok()) {
    // The reply writes faulted (QP now in error): reconnect this thread's
    // QP for later replies and drop — the requester times out and retries.
    vq->Recover();
    return;
  }

  if (wake) {
    // Wake the sleeping requester through the channel QP so the client's
    // notifier sees the immediate. Fire-and-forget through the channel's
    // verb queue; sweeps on later posts keep the CQ bounded.
    std::lock_guard<std::mutex> lock(ch->wake_mu_);
    if (ch->server_ep->InError()) ch->wake_vq->Recover();
    ch->wake_vq->WriteWithImm(nullptr, 0, 0, 0, id).Cancel();
  }
}

rdma::RdmaVerbStats RpcServer::reply_verb_stats() {
  rdma::RdmaVerbStats total;
  std::lock_guard<std::mutex> lock(channels_mu_);
  for (const auto& ch : channels_) {
    total.MergeFrom(ch->to_client->StatsSnapshot());
  }
  return total;
}

}  // namespace remote
}  // namespace dlsm
