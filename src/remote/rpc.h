// RPC over the RDMA fabric (paper Sec. X-D).
//
// Two flavours, as in the paper:
//
//  * General-purpose RPC: the requester attaches the address/rkey of a
//    registered reply buffer to a small SEND; the responder executes the
//    handler and returns the result with a one-sided WRITE, bypassing any
//    dispatcher on the requester side. The requester waits on a
//    rdma::StampFuture over the ready stamp at the end of the reply
//    buffer (the one-sided analogue of a completion handle).
//
//  * Customized near-data-compaction RPC: compaction runs long and carries
//    large arguments, so (a) the requester sleeps on a condition variable
//    and is woken by a WRITE_WITH_IMM carrying its request id (a thread
//    notifier polls the channel and wakes the right thread), and (b) the
//    argument blob is not inlined: the responder pulls it from the
//    requester's registered argument buffer with an RDMA READ.
//
// Requests travel over a per-client-node channel queue pair; replies,
// argument reads and wakeups use the worker threads' own thread-local
// queue pairs so the dispatcher never becomes a reply bottleneck. All
// send-side verbs go through the unified handle layer (rdma::VerbQueue):
// fire-and-forget posts (requests, wakeups) are cancelled handles whose
// completions the queue sweeps on later posts, and replies are explicit
// handle waits — no hand-rolled CQ scrubbing.

#ifndef DLSM_REMOTE_RPC_H_
#define DLSM_REMOTE_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/rdma_manager.h"
#include "src/sim/env.h"
#include "src/sim/thread_pool.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dlsm {
namespace remote {

/// Well-known RPC types. The server routes kPing internally; all other
/// types go to the installed handler (the dLSM memory-node logic).
struct RpcType {
  static constexpr uint8_t kPing = 1;
  static constexpr uint8_t kAllocFlushRegion = 2;
  static constexpr uint8_t kFreeBatch = 3;
  static constexpr uint8_t kCompaction = 4;
  static constexpr uint8_t kStats = 5;
  /// Server-mediated block read (Nova-LSM-style read path).
  static constexpr uint8_t kReadBlock = 6;
};

class RpcServer;
class RpcClient;

/// Client-side failure policy. The default (timeout_ns == 0) preserves the
/// wait-forever fast path: no deadline arithmetic, no buffer invalidation,
/// identical behavior to a fault-free fabric. With a timeout set, every
/// call arms a deadline and transient failures (timeouts, flushed sends,
/// QP errors) are retried up to max_retries times with exponential backoff
/// before the last error is returned to the caller.
struct RpcPolicy {
  /// Per-attempt reply deadline; 0 waits forever (no retries either).
  uint64_t timeout_ns = 0;
  /// Additional attempts after the first failed one.
  int max_retries = 0;
  /// Base backoff between attempts; doubles per attempt (capped at 64x).
  uint64_t retry_backoff_ns = 100 * 1000;
};

/// An issued CallAsync awaiting its reply; move-only, like a WrHandle for
/// a whole RPC. Wait() parks on the reply buffer's ready stamp (a
/// rdma::StampFuture) and recycles the call's buffers. Dropping a live
/// PendingCall never blocks: its context is parked on a zombie list and
/// reclaimed only after the server's reply WRITE has landed, so a late
/// reply can never scribble over a recycled buffer.
class PendingCall {
 public:
  PendingCall() = default;
  PendingCall(PendingCall&& o) noexcept;
  PendingCall& operator=(PendingCall&& o) noexcept;
  ~PendingCall();

  PendingCall(const PendingCall&) = delete;
  PendingCall& operator=(const PendingCall&) = delete;

  /// False for default-constructed, moved-from, or waited calls.
  bool valid() const { return client_ != nullptr; }

  /// Nonblocking: true once the reply payload has landed.
  bool Ready() const;

  /// Blocks until the reply lands, fills *reply, releases the call's
  /// buffers. Idempotent calls after the first return the send status.
  Status Wait(std::string* reply);

 private:
  friend class RpcClient;

  /// Returns the context to the pool (zombie if the reply is still
  /// inbound) and invalidates this handle. Never blocks.
  void Release();

  RpcClient* client_ = nullptr;
  void* ctx_ = nullptr;   // RpcClient::ThreadBuffers, opaque here.
  Status send_status_;
};

/// Client side of the RPC layer; one per (compute node, server) pair.
/// Thread-safe: every calling thread gets its own registered reply and
/// argument buffers.
class RpcClient {
 public:
  /// Connects client_node to the server, starting the wakeup notifier
  /// thread on the client node.
  RpcClient(rdma::Fabric* fabric, rdma::Node* client_node, RpcServer* server);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// General-purpose RPC: inline args, poll-based completion.
  Status Call(uint8_t type, const Slice& args, std::string* reply);

  /// Compaction-style RPC: args staged in a registered buffer the server
  /// pulls with RDMA READ; the caller sleeps until the WRITE_WITH_IMM
  /// wakeup arrives.
  Status CallWithWakeup(uint8_t type, const Slice& args, std::string* reply);

  /// Pipelined RPC: sends now, returns a handle to wait later, so one
  /// thread can keep several long-running server-side requests (near-data
  /// compactions) in flight. The request is dispatched to the server's
  /// worker pool like CallWithWakeup — args travel via the staging buffer
  /// the server pulls with RDMA READ — but completion is detected through
  /// the reply stamp (rdma::StampFuture), not a sleeping waiter; the
  /// wakeup immediate finds no registered waiter and is dropped. Each call
  /// draws its own registered buffers from a pool, so any number may be in
  /// flight per thread.
  PendingCall CallAsync(uint8_t type, const Slice& args);

  /// Installs the failure policy. Not thread-safe against in-flight calls;
  /// set it right after construction (DbImpl does, from Options).
  void set_policy(const RpcPolicy& p) { policy_ = p; }
  const RpcPolicy& policy() const { return policy_; }

  /// Attempts that hit the reply deadline (each counts once, including the
  /// final attempt of an exhausted call).
  uint64_t rpc_timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  /// Re-attempts made after a transient failure.
  uint64_t rpc_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  rdma::Node* client_node() const { return client_node_; }

  struct ThreadBuffers;  // Internal; public only for thread-local storage.

 private:
  friend class PendingCall;

  /// Returns this thread's cached buffers, drawing from the context pool
  /// on first use (or after a timeout invalidated them). nullptr when
  /// client DRAM is exhausted — callers fail the RPC, never abort.
  ThreadBuffers* GetThreadBuffers();
  /// Retires this thread's cached buffers to the zombie list. Called when
  /// an attempt times out: the server's late reply WRITE may still land in
  /// them, so they are reused only after their stamp fires. (If the
  /// request itself was lost the stamp never fires and the context is
  /// stranded — a leak bounded by the retry budget.)
  void InvalidateThreadBuffers();
  /// Call-context pool: reclaims zombies whose reply has since landed,
  /// reuses a free context, or registers fresh buffers. nullptr when
  /// client DRAM is exhausted.
  ThreadBuffers* AcquireContext();
  /// completed: the reply landed (or the request was never sent) and the
  /// buffers may be reused immediately; otherwise the context goes to the
  /// zombie list until its stamp fires.
  void ReleaseContext(ThreadBuffers* ctx, bool completed);
  /// trace_flow/trace_span carry the caller's trace context in the wire
  /// header (0 = not tracing) so the server handler span stitches to the
  /// compute-side call span.
  Status SendRequest(uint8_t type, const Slice& args, bool wake, uint32_t id,
                     ThreadBuffers* bufs, uint64_t trace_flow = 0,
                     uint64_t trace_span = 0);
  Status ParseReply(ThreadBuffers* bufs, std::string* reply);
  /// One attempt of Call / CallWithWakeup; the public wrappers add the
  /// policy's retry-with-backoff loop around these.
  Status CallOnce(uint8_t type, const Slice& args, std::string* reply);
  Status CallWithWakeupOnce(uint8_t type, const Slice& args,
                            std::string* reply);
  uint64_t BackoffNs(int attempt) const;
  void NotifierLoop();

  rdma::Fabric* fabric_;
  rdma::Node* client_node_;
  RpcServer* server_;
  uint64_t instance_id_;
  rdma::QueuePair* channel_ep_ = nullptr;  // Client end of the channel.

  std::mutex send_mu_;  // Guards send_vq_ posts (quick, non-blocking).
  std::unique_ptr<rdma::VerbQueue> send_vq_;  // Channel sends, under send_mu_.

  // Wakeup registry: request id -> waiter.
  struct Waiter {
    CondVar* cv;
    bool fired = false;
  };
  Mutex wait_mu_;
  std::unordered_map<uint32_t, Waiter*> waiters_;
  std::atomic<uint32_t> next_id_{1};

  std::atomic<bool> stop_{false};
  ThreadHandle notifier_;
  std::vector<std::unique_ptr<char[]>> notify_bufs_;

  RpcPolicy policy_;
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> retries_{0};

  // Registered-buffer pool (guarded by ctx_mu_), shared by the per-thread
  // cached buffers and CallAsync contexts; zombies are abandoned or
  // timed-out calls whose reply WRITE may still be inbound.
  std::mutex ctx_mu_;
  std::vector<std::unique_ptr<ThreadBuffers>> all_ctx_;
  std::vector<ThreadBuffers*> free_ctx_;
  std::vector<ThreadBuffers*> zombie_ctx_;

  static std::atomic<uint64_t> next_instance_id_;
};

/// Server side: a dispatcher thread polls the per-client channels; short
/// requests are handled inline, wake-style requests are dispatched to the
/// worker pool (the memory node's weak CPU budget).
class RpcServer {
 public:
  /// The handler implements all non-kPing request types. It runs on the
  /// server node's threads and may take arbitrarily long (compaction).
  using Handler =
      std::function<void(uint8_t type, const Slice& args, std::string* reply)>;

  RpcServer(rdma::Fabric* fabric, rdma::Node* server_node, int worker_threads);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Starts the dispatcher and the worker pool.
  void Start();

  /// Stops and joins all server threads. Idempotent.
  void Stop();

  rdma::Node* node() const { return server_node_; }

  /// Virtual nanoseconds of handler execution on the worker pool,
  /// for the paper's Fig. 12 CPU-utilization annotations.
  uint64_t worker_busy_ns() const {
    return worker_busy_ns_.load(std::memory_order_relaxed);
  }
  int worker_threads() const { return worker_threads_; }

  /// Verb-layer telemetry of the reply path, merged across all client
  /// channels (argument READs, reply WRITEs, wakeups).
  rdma::RdmaVerbStats reply_verb_stats();

 private:
  friend class RpcClient;

  struct Channel {
    rdma::Node* client_node = nullptr;
    rdma::QueuePair* server_ep = nullptr;
    rdma::QueuePair* client_ep = nullptr;
    std::unique_ptr<rdma::RdmaManager> to_client;  // Server -> client verbs.
    std::mutex wake_mu_;  // Guards wake_vq posts on server_ep.
    std::unique_ptr<rdma::VerbQueue> wake_vq;  // WRITE_WITH_IMM wakeups.
    std::vector<std::unique_ptr<char[]>> recv_bufs;
  };

  /// Called by RpcClient's constructor; wires up a channel and returns it.
  Channel* RegisterClient(rdma::Node* client_node);

  void DispatcherLoop();
  void ProcessRequest(Channel* ch, const char* req, size_t len);
  /// trace_flow/trace_span: the requester's wire-header trace context; when
  /// nonzero the handler emits a span stitched to the client call span via
  /// a flow-finish event.
  void ExecuteAndReply(Channel* ch, uint8_t type, std::string args,
                       uint64_t reply_addr, uint32_t reply_rkey,
                       uint32_t reply_cap, bool wake, uint32_t id,
                       uint64_t trace_flow = 0, uint64_t trace_span = 0);

  rdma::Fabric* fabric_;
  rdma::Node* server_node_;
  int worker_threads_;
  Handler handler_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  ThreadHandle dispatcher_;
  std::mutex channels_mu_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::atomic<uint64_t> worker_busy_ns_{0};
};

}  // namespace remote
}  // namespace dlsm

#endif  // DLSM_REMOTE_RPC_H_
