// Remote memory management (paper Sec. V-A/V-B).
//
// The memory node's DRAM is split into two disjoint regions:
//   * the *flush region*, controlled (allocated/freed) by the compute node
//     so MemTable flushes need no allocation round trips, and
//   * the *compaction region*, controlled by the memory node itself so
//     near-data compaction can allocate output tables locally.
//
// Both sides use the same slab allocator over their region. Allocations
// are tagged with the allocating node's id; the garbage collector frees
// local-origin chunks directly and batches remote-origin chunks into a
// free-batch RPC (see rpc.h).

#ifndef DLSM_REMOTE_REMOTE_ALLOC_H_
#define DLSM_REMOTE_REMOTE_ALLOC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace dlsm {
namespace remote {

/// Wire format of the free-batch RPC payload (varint32 count, then count
/// fixed64 addresses). One codec shared by the compute-side GC batcher and
/// the memory node's handler, so the two sides cannot drift.
void EncodeFreeBatch(const std::vector<uint64_t>& addrs, std::string* out);

/// Decodes a free-batch payload; returns Corruption on a malformed one.
Status DecodeFreeBatch(const Slice& payload, std::vector<uint64_t>* addrs);

/// A chunk of remote memory handed out by a SlabAllocator.
struct RemoteChunk {
  uint64_t addr = 0;   ///< Address in the owning node's DRAM.
  size_t size = 0;     ///< Usable bytes.
  uint32_t rkey = 0;   ///< Remote key of the enclosing region.
  uint32_t owner_node = 0;  ///< Node id that performed the allocation.
  uint32_t home_node = 0;   ///< Node id whose DRAM holds the bytes.

  bool valid() const { return addr != 0; }
};

/// Fixed-size slab allocator over one registered memory region.
///
/// Thread-safe. The region is divided into size-class slabs; Allocate
/// rounds the request up to the nearest class. Fixed classes keep
/// fragmentation bounded and make free-batching trivial, which matches the
/// fixed SSTable file sizes of the LSM design.
class SlabAllocator {
 public:
  /// Manages [region.addr, region.addr+region.length) of the region's
  /// node. chunk_size is the single size class served.
  SlabAllocator(const rdma::MemoryRegion& region, size_t chunk_size,
                uint32_t owner_node);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  /// Allocates one chunk; returns an invalid chunk when exhausted.
  RemoteChunk Allocate();

  /// Returns a chunk to the free list. The chunk must originate here.
  void Free(const RemoteChunk& chunk);

  /// Frees by address (used by the free-batch RPC handler).
  Status FreeByAddr(uint64_t addr);

  size_t chunk_size() const { return chunk_size_; }
  size_t capacity_chunks() const { return capacity_chunks_; }
  size_t allocated_chunks() const;
  uint32_t rkey() const { return region_.rkey; }
  uint64_t base() const { return region_.addr; }
  size_t region_size() const { return region_.length; }

 private:
  rdma::MemoryRegion region_;
  size_t chunk_size_;
  uint32_t owner_node_;
  size_t capacity_chunks_;
  mutable std::mutex mu_;
  std::vector<uint64_t> free_list_;
  size_t bump_next_ = 0;  // Next never-allocated chunk index.
  size_t allocated_ = 0;
};

/// Growable arena over one memory node: a chain of SlabAllocators, one per
/// registered region. When every region is exhausted, Allocate asks the
/// memory node for another slab region through the supplied grow callback
/// (the kAllocFlushRegion RPC in production) instead of failing — the
/// flush region is no longer a fixed-at-open budget.
///
/// Thread-safe. Growth is serialized on its own mutex so concurrent
/// exhausted allocators trigger one RPC, not a stampede; Free never blocks
/// behind a growth round trip.
class RemoteArena {
 public:
  /// Called (off the arena lock) to obtain a fresh region of at least
  /// `bytes` from the memory node. A non-OK status or a zero-addr region
  /// means the node is out of memory.
  using GrowFn = std::function<Status(size_t bytes, rdma::MemoryRegion*)>;

  /// chunk_size is the single size class; growth_bytes the region size
  /// requested per grow (rounded up to one chunk if smaller). grow may be
  /// null, making the arena fixed like a bare SlabAllocator.
  RemoteArena(size_t chunk_size, uint32_t owner_node, size_t growth_bytes,
              GrowFn grow);

  RemoteArena(const RemoteArena&) = delete;
  RemoteArena& operator=(const RemoteArena&) = delete;

  /// Seeds the arena with an already-registered region (the Open-time
  /// flush region).
  void AddRegion(const rdma::MemoryRegion& region);

  /// Allocates one chunk, growing the arena if every region is full.
  /// Returns an invalid chunk only when growth fails (or is disabled).
  RemoteChunk Allocate();

  /// Returns a chunk to the region it came from.
  void Free(const RemoteChunk& chunk);

  /// Frees by address; InvalidArgument if no region covers it.
  Status FreeByAddr(uint64_t addr);

  size_t chunk_size() const { return chunk_size_; }
  size_t regions() const;
  size_t capacity_chunks() const;
  size_t allocated_chunks() const;
  uint64_t grow_calls() const;

 private:
  SlabAllocator* SlabFor(uint64_t addr) const;

  const size_t chunk_size_;
  const uint32_t owner_node_;
  const size_t growth_bytes_;
  const GrowFn grow_;
  mutable std::mutex mu_;       // Guards slabs_.
  std::mutex grow_mu_;          // Serializes grow RPCs.
  std::vector<std::unique_ptr<SlabAllocator>> slabs_;
  uint64_t grow_calls_ = 0;
};

}  // namespace remote
}  // namespace dlsm

#endif  // DLSM_REMOTE_REMOTE_ALLOC_H_
