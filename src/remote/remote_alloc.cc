#include "src/remote/remote_alloc.h"

#include "src/util/coding.h"
#include "src/util/logging.h"

namespace dlsm {
namespace remote {

void EncodeFreeBatch(const std::vector<uint64_t>& addrs, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(addrs.size()));
  for (uint64_t addr : addrs) PutFixed64(out, addr);
}

Status DecodeFreeBatch(const Slice& payload, std::vector<uint64_t>* addrs) {
  Slice input = payload;
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("free batch: bad count");
  }
  if (input.size() < static_cast<size_t>(count) * 8) {
    return Status::Corruption("free batch: truncated addresses");
  }
  addrs->reserve(addrs->size() + count);
  for (uint32_t i = 0; i < count; i++) {
    addrs->push_back(DecodeFixed64(input.data()));
    input.remove_prefix(8);
  }
  return Status::OK();
}

SlabAllocator::SlabAllocator(const rdma::MemoryRegion& region,
                             size_t chunk_size, uint32_t owner_node)
    : region_(region), chunk_size_(chunk_size), owner_node_(owner_node) {
  DLSM_CHECK(chunk_size > 0);
  capacity_chunks_ = region.length / chunk_size;
}

RemoteChunk SlabAllocator::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t addr = 0;
  if (!free_list_.empty()) {
    addr = free_list_.back();
    free_list_.pop_back();
  } else if (bump_next_ < capacity_chunks_) {
    addr = region_.addr + bump_next_ * chunk_size_;
    bump_next_++;
  } else {
    return RemoteChunk{};
  }
  allocated_++;
  RemoteChunk chunk;
  chunk.addr = addr;
  chunk.size = chunk_size_;
  chunk.rkey = region_.rkey;
  chunk.owner_node = owner_node_;
  return chunk;
}

void SlabAllocator::Free(const RemoteChunk& chunk) {
  Status s = FreeByAddr(chunk.addr);
  DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
}

Status SlabAllocator::FreeByAddr(uint64_t addr) {
  if (addr < region_.addr || addr >= region_.addr + region_.length ||
      (addr - region_.addr) % chunk_size_ != 0) {
    return Status::InvalidArgument("free of address not from this slab");
  }
  std::lock_guard<std::mutex> lock(mu_);
  allocated_--;
  free_list_.push_back(addr);
  return Status::OK();
}

size_t SlabAllocator::allocated_chunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_;
}

}  // namespace remote
}  // namespace dlsm
