#include "src/remote/remote_alloc.h"

#include "src/util/coding.h"
#include "src/util/logging.h"

namespace dlsm {
namespace remote {

void EncodeFreeBatch(const std::vector<uint64_t>& addrs, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(addrs.size()));
  for (uint64_t addr : addrs) PutFixed64(out, addr);
}

Status DecodeFreeBatch(const Slice& payload, std::vector<uint64_t>* addrs) {
  Slice input = payload;
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("free batch: bad count");
  }
  if (input.size() < static_cast<size_t>(count) * 8) {
    return Status::Corruption("free batch: truncated addresses");
  }
  addrs->reserve(addrs->size() + count);
  for (uint32_t i = 0; i < count; i++) {
    addrs->push_back(DecodeFixed64(input.data()));
    input.remove_prefix(8);
  }
  return Status::OK();
}

SlabAllocator::SlabAllocator(const rdma::MemoryRegion& region,
                             size_t chunk_size, uint32_t owner_node)
    : region_(region), chunk_size_(chunk_size), owner_node_(owner_node) {
  DLSM_CHECK(chunk_size > 0);
  capacity_chunks_ = region.length / chunk_size;
}

RemoteChunk SlabAllocator::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t addr = 0;
  if (!free_list_.empty()) {
    addr = free_list_.back();
    free_list_.pop_back();
  } else if (bump_next_ < capacity_chunks_) {
    addr = region_.addr + bump_next_ * chunk_size_;
    bump_next_++;
  } else {
    return RemoteChunk{};
  }
  allocated_++;
  RemoteChunk chunk;
  chunk.addr = addr;
  chunk.size = chunk_size_;
  chunk.rkey = region_.rkey;
  chunk.owner_node = owner_node_;
  chunk.home_node = region_.node_id;
  return chunk;
}

void SlabAllocator::Free(const RemoteChunk& chunk) {
  Status s = FreeByAddr(chunk.addr);
  DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
}

Status SlabAllocator::FreeByAddr(uint64_t addr) {
  if (addr < region_.addr || addr >= region_.addr + region_.length ||
      (addr - region_.addr) % chunk_size_ != 0) {
    return Status::InvalidArgument("free of address not from this slab");
  }
  std::lock_guard<std::mutex> lock(mu_);
  allocated_--;
  free_list_.push_back(addr);
  return Status::OK();
}

size_t SlabAllocator::allocated_chunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_;
}

RemoteArena::RemoteArena(size_t chunk_size, uint32_t owner_node,
                         size_t growth_bytes, GrowFn grow)
    : chunk_size_(chunk_size),
      owner_node_(owner_node),
      growth_bytes_(growth_bytes < chunk_size ? chunk_size : growth_bytes),
      grow_(std::move(grow)) {
  DLSM_CHECK(chunk_size > 0);
}

void RemoteArena::AddRegion(const rdma::MemoryRegion& region) {
  auto slab = std::make_unique<SlabAllocator>(region, chunk_size_,
                                              owner_node_);
  std::lock_guard<std::mutex> lock(mu_);
  slabs_.push_back(std::move(slab));
}

RemoteChunk RemoteArena::Allocate() {
  for (;;) {
    size_t tried;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& slab : slabs_) {
        RemoteChunk c = slab->Allocate();
        if (c.valid()) return c;
      }
      tried = slabs_.size();
    }
    if (grow_ == nullptr) return RemoteChunk{};
    // Grow outside the arena lock: Free stays non-blocking while the RPC
    // is in flight. The grow lock collapses a stampede of exhausted
    // allocators into one RPC — whoever wins re-checks for regions added
    // while it waited.
    std::lock_guard<std::mutex> grow_lock(grow_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (slabs_.size() > tried) continue;  // Someone else grew already.
    }
    rdma::MemoryRegion region;
    Status s = grow_(growth_bytes_, &region);
    if (!s.ok() || region.addr == 0) return RemoteChunk{};
    {
      std::lock_guard<std::mutex> lock(mu_);
      grow_calls_++;
    }
    AddRegion(region);
  }
}

void RemoteArena::Free(const RemoteChunk& chunk) {
  Status s = FreeByAddr(chunk.addr);
  DLSM_CHECK_MSG(s.ok(), s.ToString().c_str());
}

Status RemoteArena::FreeByAddr(uint64_t addr) {
  SlabAllocator* slab = SlabFor(addr);
  if (slab == nullptr) {
    return Status::InvalidArgument("free of address not from this arena");
  }
  return slab->FreeByAddr(addr);
}

SlabAllocator* RemoteArena::SlabFor(uint64_t addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slab : slabs_) {
    if (addr >= slab->base() && addr < slab->base() + slab->region_size()) {
      return slab.get();
    }
  }
  return nullptr;
}

size_t RemoteArena::regions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slabs_.size();
}

size_t RemoteArena::capacity_chunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (auto& slab : slabs_) total += slab->capacity_chunks();
  return total;
}

size_t RemoteArena::allocated_chunks() const {
  std::vector<SlabAllocator*> slabs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& slab : slabs_) slabs.push_back(slab.get());
  }
  size_t total = 0;
  for (SlabAllocator* slab : slabs) total += slab->allocated_chunks();
  return total;
}

uint64_t RemoteArena::grow_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grow_calls_;
}

}  // namespace remote
}  // namespace dlsm
