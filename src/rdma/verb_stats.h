// Per-verb telemetry for the unified completion-handle layer (DESIGN
// Sec. 4.3): operation and byte counters plus wire-latency histograms per
// verb class, and outstanding-op gauges. Collected by RdmaManager as
// completions are harvested, snapshotted into DbStats, and merged exactly
// across shards (Histogram::Merge). Header is dependency-light so db.h
// can embed a snapshot without pulling in the fabric.

#ifndef DLSM_RDMA_VERB_STATS_H_
#define DLSM_RDMA_VERB_STATS_H_

#include <cstdint>
#include <string>

#include "src/util/histogram.h"

namespace dlsm {
namespace rdma {

/// Stats bucket a verb falls into. SEND covers the two-sided channel
/// (SEND and WRITE_WITH_IMM wakeups); ATOMIC covers FETCH_ADD / CMP_SWAP.
enum class VerbClass : uint8_t { kRead = 0, kWrite = 1, kSend = 2, kAtomic = 3 };

inline constexpr int kNumVerbClasses = 4;

inline const char* VerbClassName(VerbClass c) {
  switch (c) {
    case VerbClass::kRead:
      return "READ";
    case VerbClass::kWrite:
      return "WRITE";
    case VerbClass::kSend:
      return "SEND";
    case VerbClass::kAtomic:
      return "ATOMIC";
  }
  return "?";
}

/// One verb class's aggregate telemetry.
struct VerbClassStats {
  uint64_t ops = 0;
  uint64_t bytes = 0;
  /// Completions harvested with a non-OK status (injected errors, flushed
  /// WRs, remote access faults). Included in ops.
  uint64_t errors = 0;
  /// Wire latency (post to completion), microseconds.
  Histogram latency_us;

  void MergeFrom(const VerbClassStats& o) {
    ops += o.ops;
    bytes += o.bytes;
    errors += o.errors;
    latency_us.Merge(o.latency_us);
  }
};

/// Snapshot of one manager's verb-layer telemetry. Copyable; shards merge
/// their snapshots with MergeFrom (exact, including histograms).
struct RdmaVerbStats {
  VerbClassStats read;
  VerbClassStats write;
  VerbClassStats send;
  VerbClassStats atomic;
  uint64_t posted = 0;     ///< Verbs posted through the handle layer.
  uint64_t completed = 0;  ///< Completions harvested.
  uint64_t abandoned = 0;  ///< Completions discarded by handle cancel.
  uint64_t outstanding = 0;      ///< In flight at snapshot time.
  uint64_t max_outstanding = 0;  ///< High-water mark of in-flight verbs.
  uint64_t reconnects = 0;       ///< Successful QP error-state recoveries.

  VerbClassStats& cls(VerbClass c) {
    switch (c) {
      case VerbClass::kRead:
        return read;
      case VerbClass::kWrite:
        return write;
      case VerbClass::kSend:
        return send;
      case VerbClass::kAtomic:
        return atomic;
    }
    return read;
  }
  const VerbClassStats& cls(VerbClass c) const {
    return const_cast<RdmaVerbStats*>(this)->cls(c);
  }

  void MergeFrom(const RdmaVerbStats& o);

  /// Compact per-class summary ("READ 120 ops 4.2 MB p50 2.1us p99 8.0us")
  /// for bench dumps; empty classes are omitted.
  std::string ToString() const;

  /// JSON object: per-class {ops, bytes, errors, latency_us histogram}
  /// plus the layer-wide gauges. All classes are present, even empty ones,
  /// so consumers can index unconditionally.
  std::string ToJson() const;
};

}  // namespace rdma
}  // namespace dlsm

#endif  // DLSM_RDMA_VERB_STATS_H_
