// A software RDMA fabric.
//
// This is the stand-in for the ibverbs stack + Mellanox EDR ConnectX-4 NIC
// used by the paper (100 Gb/s InfiniBand, ~1.6 us one-sided latency). It
// implements the verbs surface dLSM's RDMA manager needs:
//
//  * Memory registration with rkeys; remote access is validated against the
//    registered regions (an invalid rkey/range completes with an error, as
//    a real RNIC would).
//  * Queue pairs with FIFO send queues and completion queues. Completions
//    become visible when the polling thread's (virtual) clock passes the
//    modeled completion time.
//  * One-sided READ / WRITE / WRITE_WITH_IMM, two-sided SEND / RECV, and
//    ATOMIC FETCH_ADD / CMP_SWAP.
//  * A link model: each node's NIC has a transmit and a receive channel;
//    a transfer of n payload bytes from A to B occupies both channels for
//    n/bandwidth and completes base_latency later:
//        start      = max(now, A.tx_free, B.rx_free)
//        completion = start + n/bandwidth + latency(op)
//        tx_free = rx_free = start + n/bandwidth
//    Small transfers are therefore latency-bound and large transfers
//    bandwidth-bound, reproducing the ~100x 64 B-vs-1 MB throughput gap the
//    paper cites for the RDMA perf-test suite.
//  * A deterministic fault model (FaultParams): seeded per-QP injected
//    error completions, the RC error state machine (a failed WR errors the
//    QP; outstanding and later WRs complete with a WC_WR_FLUSH_ERR analog
//    until Reset()), transient RNR-style delays, and fail-stop
//    crash/restart of whole nodes (CrashNode / RestartNode).
//
// Payload bytes are physically copied between the nodes' DRAM arenas at
// post time; the RDMA contract (do not touch buffers until completion; do
// not read remote data before being told it is there) makes this
// indistinguishable from delayed delivery, and completion timestamps gate
// all signalling paths.

#ifndef DLSM_RDMA_FABRIC_H_
#define DLSM_RDMA_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/env.h"
#include "src/util/status.h"

namespace dlsm {
namespace rdma {

class Fabric;
class QueuePair;

/// Deterministic fault-injection knobs; everything is off by default. All
/// rates are per posted send-side WR. Draws come from a per-QP RNG seeded
/// from `seed` and the QP's creation index, so a given (seed, QP, post
/// sequence) faults identically regardless of thread interleaving — the
/// fault sweep relies on this to replay a schedule across environments.
struct FaultParams {
  uint64_t seed = 1;
  /// Probability a posted WR completes with an injected error. The erroring
  /// WR's payload never moves and its queue pair transitions to the error
  /// state (recoverable via QueuePair::Reset()).
  double wr_error_rate = 0.0;
  /// Probability a WR incurs a transient RNR-style retransmission delay
  /// (completes successfully, rnr_delay_ns late).
  double rnr_delay_rate = 0.0;
  uint64_t rnr_delay_ns = 200 * 1000;

  /// When nonzero, the Nth admitted send-side WR fabric-wide (1-based,
  /// counted across all QPs) never completes: its completion time is
  /// parked unreachably far in the future, modeling a lost packet with
  /// retransmission exhausted but no error surfaced — the silent-stall
  /// scenario the watchdog exists for. Per-QP FIFO completion order means
  /// later WRs on the same QP stall behind it, exactly as on an RC queue
  /// pair. Waiting on a stuck WR would block forever (virtual time jumps
  /// to the parked timestamp); detection is the watchdog's job.
  uint64_t stuck_wr_nth = 0;

  bool any() const {
    return wr_error_rate > 0.0 || rnr_delay_rate > 0.0 || stuck_wr_nth > 0;
  }
};

/// Link timing parameters, defaults calibrated to the paper's EDR setup.
struct LinkParams {
  /// Payload bandwidth in gigabits per second.
  double bandwidth_gbps = 100.0;
  /// Per-verb NIC processing occupancy (caps small-message rate at
  /// ~1/overhead ops/s even with deep pipelines, as real RNICs do).
  uint64_t per_op_overhead_ns = 60;
  /// Base latency per verb, nanoseconds.
  uint64_t read_latency_ns = 1600;
  uint64_t write_latency_ns = 1000;
  uint64_t send_latency_ns = 2200;
  uint64_t atomic_latency_ns = 1800;

  double BytesPerNano() const { return bandwidth_gbps / 8.0; }
};

/// A machine in the cluster: a CPU core budget (enforced by SimEnv
/// processor sharing) plus a DRAM arena that memory regions are carved
/// from. The arena is reserved lazily (MAP_NORESERVE) so a "384 GB memory
/// node" does not need physical RAM up front.
class Node {
 public:
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }
  /// The SimEnv node id; threads of this machine are started on it.
  int env_node() const { return env_node_; }
  Env* env() const { return env_; }
  Fabric* fabric() const { return fabric_; }

  /// Bump-allocates n bytes (64-byte aligned) of this node's DRAM.
  /// Returns nullptr when the arena is exhausted.
  char* AllocDram(size_t n);

  char* dram_base() const { return dram_; }
  size_t dram_size() const { return dram_size_; }
  size_t dram_used() const { return dram_used_.load(std::memory_order_relaxed); }

  /// True between Fabric::CrashNode and Fabric::RestartNode.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// One-sided RDMA traffic targeting this node's DRAM, summed across
  /// every queue pair on the fabric — the global per-node load gauges the
  /// heat rebalancer reads (a NIC counter on real hardware).
  uint64_t remote_read_ops() const {
    return remote_read_ops_.load(std::memory_order_relaxed);
  }
  uint64_t remote_read_bytes() const {
    return remote_read_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t remote_write_ops() const {
    return remote_write_ops_.load(std::memory_order_relaxed);
  }
  uint64_t remote_write_bytes() const {
    return remote_write_bytes_.load(std::memory_order_relaxed);
  }
  void RecordRemoteRead(size_t len) {
    remote_read_ops_.fetch_add(1, std::memory_order_relaxed);
    remote_read_bytes_.fetch_add(len, std::memory_order_relaxed);
  }
  void RecordRemoteWrite(size_t len) {
    remote_write_ops_.fetch_add(1, std::memory_order_relaxed);
    remote_write_bytes_.fetch_add(len, std::memory_order_relaxed);
  }

 private:
  friend class Fabric;
  Node(Fabric* fabric, Env* env, std::string name, uint32_t id, int env_node,
       size_t dram_bytes);

  Fabric* fabric_;
  Env* env_;
  std::string name_;
  uint32_t id_;
  int env_node_;
  char* dram_;
  size_t dram_size_;
  std::atomic<size_t> dram_used_;
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> remote_read_ops_{0};
  std::atomic<uint64_t> remote_read_bytes_{0};
  std::atomic<uint64_t> remote_write_ops_{0};
  std::atomic<uint64_t> remote_write_bytes_{0};

  // NIC channel occupancy frontiers (virtual ns), guarded by Fabric::mu_.
  uint64_t tx_free_ = 0;
  uint64_t rx_free_ = 0;
};

/// A registered memory region. Remote access requires the matching rkey
/// and must fall inside [addr, addr+length).
struct MemoryRegion {
  uint64_t addr = 0;
  size_t length = 0;
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  uint32_t node_id = 0;
};

/// Verb opcodes.
enum class Opcode : uint8_t {
  kRead,
  kWrite,
  kWriteWithImm,
  kSend,
  kRecv,
  kFetchAdd,
  kCmpSwap,
};

/// A completion queue entry.
struct Completion {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kRead;
  Status status;
  uint32_t byte_len = 0;
  uint32_t imm = 0;
  bool has_imm = false;
  /// Virtual time at which the verb was posted (for wire-latency stats).
  uint64_t post_ns = 0;
  /// Virtual time at which the operation completed on the wire.
  uint64_t completion_ns = 0;
};

/// One endpoint of a connected queue pair. Post* calls are safe from the
/// owning thread; the peer endpoint delivers receive-side completions
/// through an internal lock. By convention (paper Sec. X-B) each thread
/// owns its own QueuePair so completion polling never mixes threads.
class QueuePair {
 public:
  Node* local() const { return local_; }
  Node* peer_node() const;

  /// One-sided read: remote [raddr, raddr+len) -> local dst.
  uint64_t PostRead(void* dst, uint64_t raddr, uint32_t rkey, size_t len,
                    uint64_t wr_id = 0);

  /// One-sided write: local src -> remote [raddr, raddr+len).
  uint64_t PostWrite(const void* src, uint64_t raddr, uint32_t rkey,
                     size_t len, uint64_t wr_id = 0);

  /// One-sided write that also delivers a 4-byte immediate to the peer's
  /// receive completion queue (consuming a posted receive).
  uint64_t PostWriteWithImm(const void* src, uint64_t raddr, uint32_t rkey,
                            size_t len, uint32_t imm, uint64_t wr_id = 0);

  /// One-sided write whose last 8 bytes, at remote raddr+len, are a
  /// nonzero "ready stamp" holding the completion time. Pollers use
  /// ReadReadyStamp() to both detect delivery and preserve virtual-time
  /// causality; this models the RNIC's last-byte-written-last guarantee
  /// that one-sided polling protocols rely on.
  uint64_t PostWriteStamped(const void* src, uint64_t raddr, uint32_t rkey,
                            size_t len, uint64_t wr_id = 0);

  /// Two-sided send to the peer's next posted receive buffer.
  uint64_t PostSend(const void* src, size_t len, uint64_t wr_id = 0);

  /// Posts a receive buffer for incoming SEND (or WRITE_WITH_IMM
  /// notifications, which consume a receive but carry no payload here).
  void PostRecv(void* buf, size_t len, uint64_t wr_id = 0);

  /// 64-bit remote fetch-and-add; the previous value lands in *result.
  uint64_t PostFetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                        uint64_t* result, uint64_t wr_id = 0);

  /// 64-bit remote compare-and-swap; the previous value lands in *result.
  uint64_t PostCmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                       uint64_t desired, uint64_t* result, uint64_t wr_id = 0);

  /// Nonblocking poll of the send/read/write/atomic completion queue.
  /// Returns the number of completions whose time has been reached.
  int PollCq(Completion* out, int max_entries);

  /// Blocking poll: parks the thread (advancing virtual time) until at
  /// least one completion is ready, then returns it.
  Completion WaitCompletion();

  /// Nonblocking poll of the receive completion queue (SEND arrivals and
  /// WRITE_WITH_IMM notifications).
  int PollRecvCq(Completion* out, int max_entries);

  /// Blocking receive-side poll.
  Completion WaitRecvCompletion();

  /// True once this queue pair is in the error state: posts complete
  /// immediately with the flush status and nothing reaches the wire.
  bool InError() const { return error_.load(std::memory_order_acquire); }

  /// The first error that pushed this QP into the error state (OK when the
  /// QP is healthy).
  Status ErrorCause() const;

  /// Transitions to the error state, as an RNIC does on any WR failure:
  /// every outstanding (not yet wire-complete) send completion is rewritten
  /// to the WC_WR_FLUSH_ERR analog, made immediately pollable in post
  /// order, and every WR posted afterwards completes the same way without
  /// touching the wire or any payload.
  void SetError(const Status& cause);

  /// Leaves the error state (ibverbs ERR -> RESET -> RTS cycle on the same
  /// wiring, i.e. a reconnect). Fails and stays errored while either end's
  /// node is crashed. Completions still queued survive; callers normally
  /// drain them first.
  Status Reset();

  /// The status carried by WRs flushed from an errored QP.
  static Status FlushErr() {
    return Status::IOError("WR flushed: QP in error state");
  }

  /// True if any send-side completion is pending (ready or not).
  bool HasPendingSends() const;

  /// Number of send-side completions pending (ready or not); the fabric's
  /// view of this QP's in-flight depth.
  size_t send_cq_depth() const;

  /// Post timestamp of the most recent Post* call on this QP (virtual
  /// ns). Owner-thread only — the verb layer reads it immediately after a
  /// post to stamp its outstanding-WR table without a second clock read.
  uint64_t last_post_ns() const { return last_post_ns_; }

  /// Reads a ready stamp written by PostWriteStamped: 0 means not yet
  /// delivered, otherwise the completion time to AdvanceTo().
  static uint64_t ReadReadyStamp(const void* stamp_addr) {
    uint64_t v;
    __atomic_load(reinterpret_cast<const uint64_t*>(stamp_addr), &v,
                  __ATOMIC_ACQUIRE);
    return v;
  }

 private:
  friend class Fabric;
  QueuePair(Fabric* fabric, Node* local) : fabric_(fabric), local_(local) {}

  struct PendingRecv {
    void* buf;
    size_t len;
    uint64_t wr_id;
  };

  void PushSendCompletion(const Completion& c);
  void DeliverToPeer(Opcode op, const void* payload, size_t len, uint32_t imm,
                     bool has_imm, uint64_t completion_ns);

  /// Post prologue: flush-fails *c if the QP is errored, draws the fault
  /// lottery otherwise (an injected error fills *c and errors the QP; a
  /// transient delay adds to *extra_latency_ns). Returns true when the
  /// post should proceed onto the wire.
  bool AdmitPost(Completion* c, uint64_t* extra_latency_ns);
  /// Rewrites every not-yet-complete send CQ entry to the flush status,
  /// pollable at `now`, preserving post order. Requires mu_.
  void FlushSendCqLocked(uint64_t now);
  /// Per-QP deterministic uniform draw in [0,1); owner-thread only.
  double NextUniform();

  Fabric* fabric_;
  Node* local_;
  QueuePair* peer_ = nullptr;
  uint32_t qp_id_ = 0;  // Creation index; seeds the fault RNG.

  mutable std::mutex mu_;  // Guards the queues; never held across Env calls.
  std::deque<Completion> send_cq_;
  std::deque<Completion> recv_cq_;
  std::deque<PendingRecv> recv_queue_;
  uint64_t last_completion_ns_ = 0;  // Enforces per-QP FIFO completion order.
  uint64_t last_post_ns_ = 0;        // Owner-thread only; see last_post_ns().
  uint64_t auto_wr_id_ = 1;

  std::atomic<bool> error_{false};
  Status error_cause_;     // Guarded by mu_.
  uint64_t rng_ = 0;       // Owner-thread only; seeded lazily from fabric.
  bool rng_seeded_ = false;
};

/// The fabric: owns nodes, registrations, link timing and QP wiring.
class Fabric {
 public:
  explicit Fabric(Env* env, LinkParams params = LinkParams());
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Env* env() const { return env_; }
  const LinkParams& params() const { return params_; }

  /// Adds a machine with the given core budget and DRAM arena size.
  Node* AddNode(const std::string& name, int cores, size_t dram_bytes);

  Node* node(uint32_t id) const { return nodes_[id].get(); }
  size_t num_nodes() const { return nodes_.size(); }

  /// Registers [addr, addr+len) of node's DRAM for remote access,
  /// modeling ibv_reg_mr. The region must lie inside the node's arena.
  MemoryRegion RegisterMemory(Node* node, void* addr, size_t len);

  /// Creates a connected queue pair between two nodes; returns the two
  /// endpoints. Endpoints are owned by the fabric.
  std::pair<QueuePair*, QueuePair*> CreateQpPair(Node* a, Node* b);

  /// Validates a remote access against the registration table.
  Status CheckRemoteAccess(uint32_t rkey, uint64_t addr, size_t len,
                           uint32_t target_node) const;

  /// Installs fault-injection parameters. Not synchronized against posts
  /// in flight: set before traffic starts or from a quiesced state.
  void set_fault_params(const FaultParams& fp);
  const FaultParams& fault_params() const { return fault_params_; }
  bool faults_enabled() const {
    return faults_enabled_.load(std::memory_order_relaxed);
  }

  /// Fail-stops a node's NIC: every queue pair touching it (either end)
  /// enters the error state and cannot Reset() until RestartNode. The DRAM
  /// arena survives — crash/restart models a fabric-visible outage of the
  /// machine, not loss of its (assumed durable) memory contents.
  void CrashNode(Node* node);
  void RestartNode(Node* node);

  /// Registers a callback fired by CrashNode (crashed = true) and
  /// RestartNode (crashed = false), outside fabric locks, on the
  /// crashing/restarting caller's thread. Compute-side state that must
  /// fail closed across a fault (e.g. the block cache) hooks in here.
  /// Returns an id for RemoveCrashListener.
  uint64_t AddCrashListener(std::function<void(Node*, bool)> listener);
  void RemoveCrashListener(uint64_t id);

  /// Total bytes moved over the wire so far (for data-movement reports).
  uint64_t wire_bytes() const {
    return wire_bytes_.load(std::memory_order_relaxed);
  }
  /// Total verbs executed so far.
  uint64_t wire_ops() const {
    return wire_ops_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueuePair;

  struct Registration {
    uint64_t addr;
    size_t length;
    uint32_t node_id;
  };

  /// Reserves the link for a transfer of len bytes from src to dst at
  /// (virtual) time now; returns the wire completion time.
  /// `now` is the caller's already-taken post timestamp (posts read the
  /// thread-CPU clock exactly once).
  uint64_t ReserveLink(Node* src, Node* dst, size_t len, uint64_t latency_ns,
                       uint64_t now);

  void NotifyCrashListeners(Node* node, bool crashed);

  Env* env_;
  LinkParams params_;
  mutable std::mutex mu_;  // Guards nodes' link state and registrations.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::unordered_map<uint32_t, Registration> registrations_;
  uint32_t next_key_ = 0x1000;
  FaultParams fault_params_;
  std::atomic<bool> faults_enabled_{false};
  /// Admitted send-side posts, counted only while stuck_wr_nth is armed
  /// (the stuck-WR lottery's deterministic draw).
  std::atomic<uint64_t> admitted_posts_{0};
  std::vector<std::pair<uint64_t, std::function<void(Node*, bool)>>>
      crash_listeners_;  // Guarded by mu_; invoked outside it.
  uint64_t next_crash_listener_id_ = 1;
  std::atomic<uint64_t> wire_bytes_{0};
  std::atomic<uint64_t> wire_ops_{0};
};

}  // namespace rdma
}  // namespace dlsm

#endif  // DLSM_RDMA_FABRIC_H_
