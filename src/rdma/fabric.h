// A software RDMA fabric.
//
// This is the stand-in for the ibverbs stack + Mellanox EDR ConnectX-4 NIC
// used by the paper (100 Gb/s InfiniBand, ~1.6 us one-sided latency). It
// implements the verbs surface dLSM's RDMA manager needs:
//
//  * Memory registration with rkeys; remote access is validated against the
//    registered regions (an invalid rkey/range completes with an error, as
//    a real RNIC would).
//  * Queue pairs with FIFO send queues and completion queues. Completions
//    become visible when the polling thread's (virtual) clock passes the
//    modeled completion time.
//  * One-sided READ / WRITE / WRITE_WITH_IMM, two-sided SEND / RECV, and
//    ATOMIC FETCH_ADD / CMP_SWAP.
//  * A link model: each node's NIC has a transmit and a receive channel;
//    a transfer of n payload bytes from A to B occupies both channels for
//    n/bandwidth and completes base_latency later:
//        start      = max(now, A.tx_free, B.rx_free)
//        completion = start + n/bandwidth + latency(op)
//        tx_free = rx_free = start + n/bandwidth
//    Small transfers are therefore latency-bound and large transfers
//    bandwidth-bound, reproducing the ~100x 64 B-vs-1 MB throughput gap the
//    paper cites for the RDMA perf-test suite.
//
// Payload bytes are physically copied between the nodes' DRAM arenas at
// post time; the RDMA contract (do not touch buffers until completion; do
// not read remote data before being told it is there) makes this
// indistinguishable from delayed delivery, and completion timestamps gate
// all signalling paths.

#ifndef DLSM_RDMA_FABRIC_H_
#define DLSM_RDMA_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/env.h"
#include "src/util/status.h"

namespace dlsm {
namespace rdma {

class Fabric;
class QueuePair;

/// Link timing parameters, defaults calibrated to the paper's EDR setup.
struct LinkParams {
  /// Payload bandwidth in gigabits per second.
  double bandwidth_gbps = 100.0;
  /// Per-verb NIC processing occupancy (caps small-message rate at
  /// ~1/overhead ops/s even with deep pipelines, as real RNICs do).
  uint64_t per_op_overhead_ns = 60;
  /// Base latency per verb, nanoseconds.
  uint64_t read_latency_ns = 1600;
  uint64_t write_latency_ns = 1000;
  uint64_t send_latency_ns = 2200;
  uint64_t atomic_latency_ns = 1800;

  double BytesPerNano() const { return bandwidth_gbps / 8.0; }
};

/// A machine in the cluster: a CPU core budget (enforced by SimEnv
/// processor sharing) plus a DRAM arena that memory regions are carved
/// from. The arena is reserved lazily (MAP_NORESERVE) so a "384 GB memory
/// node" does not need physical RAM up front.
class Node {
 public:
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }
  /// The SimEnv node id; threads of this machine are started on it.
  int env_node() const { return env_node_; }
  Env* env() const { return env_; }
  Fabric* fabric() const { return fabric_; }

  /// Bump-allocates n bytes (64-byte aligned) of this node's DRAM.
  /// Returns nullptr when the arena is exhausted.
  char* AllocDram(size_t n);

  char* dram_base() const { return dram_; }
  size_t dram_size() const { return dram_size_; }
  size_t dram_used() const { return dram_used_.load(std::memory_order_relaxed); }

 private:
  friend class Fabric;
  Node(Fabric* fabric, Env* env, std::string name, uint32_t id, int env_node,
       size_t dram_bytes);

  Fabric* fabric_;
  Env* env_;
  std::string name_;
  uint32_t id_;
  int env_node_;
  char* dram_;
  size_t dram_size_;
  std::atomic<size_t> dram_used_;

  // NIC channel occupancy frontiers (virtual ns), guarded by Fabric::mu_.
  uint64_t tx_free_ = 0;
  uint64_t rx_free_ = 0;
};

/// A registered memory region. Remote access requires the matching rkey
/// and must fall inside [addr, addr+length).
struct MemoryRegion {
  uint64_t addr = 0;
  size_t length = 0;
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  uint32_t node_id = 0;
};

/// Verb opcodes.
enum class Opcode : uint8_t {
  kRead,
  kWrite,
  kWriteWithImm,
  kSend,
  kRecv,
  kFetchAdd,
  kCmpSwap,
};

/// A completion queue entry.
struct Completion {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kRead;
  Status status;
  uint32_t byte_len = 0;
  uint32_t imm = 0;
  bool has_imm = false;
  /// Virtual time at which the verb was posted (for wire-latency stats).
  uint64_t post_ns = 0;
  /// Virtual time at which the operation completed on the wire.
  uint64_t completion_ns = 0;
};

/// One endpoint of a connected queue pair. Post* calls are safe from the
/// owning thread; the peer endpoint delivers receive-side completions
/// through an internal lock. By convention (paper Sec. X-B) each thread
/// owns its own QueuePair so completion polling never mixes threads.
class QueuePair {
 public:
  Node* local() const { return local_; }
  Node* peer_node() const;

  /// One-sided read: remote [raddr, raddr+len) -> local dst.
  uint64_t PostRead(void* dst, uint64_t raddr, uint32_t rkey, size_t len,
                    uint64_t wr_id = 0);

  /// One-sided write: local src -> remote [raddr, raddr+len).
  uint64_t PostWrite(const void* src, uint64_t raddr, uint32_t rkey,
                     size_t len, uint64_t wr_id = 0);

  /// One-sided write that also delivers a 4-byte immediate to the peer's
  /// receive completion queue (consuming a posted receive).
  uint64_t PostWriteWithImm(const void* src, uint64_t raddr, uint32_t rkey,
                            size_t len, uint32_t imm, uint64_t wr_id = 0);

  /// One-sided write whose last 8 bytes, at remote raddr+len, are a
  /// nonzero "ready stamp" holding the completion time. Pollers use
  /// ReadReadyStamp() to both detect delivery and preserve virtual-time
  /// causality; this models the RNIC's last-byte-written-last guarantee
  /// that one-sided polling protocols rely on.
  uint64_t PostWriteStamped(const void* src, uint64_t raddr, uint32_t rkey,
                            size_t len, uint64_t wr_id = 0);

  /// Two-sided send to the peer's next posted receive buffer.
  uint64_t PostSend(const void* src, size_t len, uint64_t wr_id = 0);

  /// Posts a receive buffer for incoming SEND (or WRITE_WITH_IMM
  /// notifications, which consume a receive but carry no payload here).
  void PostRecv(void* buf, size_t len, uint64_t wr_id = 0);

  /// 64-bit remote fetch-and-add; the previous value lands in *result.
  uint64_t PostFetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                        uint64_t* result, uint64_t wr_id = 0);

  /// 64-bit remote compare-and-swap; the previous value lands in *result.
  uint64_t PostCmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                       uint64_t desired, uint64_t* result, uint64_t wr_id = 0);

  /// Nonblocking poll of the send/read/write/atomic completion queue.
  /// Returns the number of completions whose time has been reached.
  int PollCq(Completion* out, int max_entries);

  /// Blocking poll: parks the thread (advancing virtual time) until at
  /// least one completion is ready, then returns it.
  Completion WaitCompletion();

  /// Nonblocking poll of the receive completion queue (SEND arrivals and
  /// WRITE_WITH_IMM notifications).
  int PollRecvCq(Completion* out, int max_entries);

  /// Blocking receive-side poll.
  Completion WaitRecvCompletion();

  /// True if any send-side completion is pending (ready or not).
  bool HasPendingSends() const;

  /// Number of send-side completions pending (ready or not); the fabric's
  /// view of this QP's in-flight depth.
  size_t send_cq_depth() const;

  /// Reads a ready stamp written by PostWriteStamped: 0 means not yet
  /// delivered, otherwise the completion time to AdvanceTo().
  static uint64_t ReadReadyStamp(const void* stamp_addr) {
    uint64_t v;
    __atomic_load(reinterpret_cast<const uint64_t*>(stamp_addr), &v,
                  __ATOMIC_ACQUIRE);
    return v;
  }

 private:
  friend class Fabric;
  QueuePair(Fabric* fabric, Node* local) : fabric_(fabric), local_(local) {}

  struct PendingRecv {
    void* buf;
    size_t len;
    uint64_t wr_id;
  };

  void PushSendCompletion(const Completion& c);
  void DeliverToPeer(Opcode op, const void* payload, size_t len, uint32_t imm,
                     bool has_imm, uint64_t completion_ns);

  Fabric* fabric_;
  Node* local_;
  QueuePair* peer_ = nullptr;

  mutable std::mutex mu_;  // Guards the queues; never held across Env calls.
  std::deque<Completion> send_cq_;
  std::deque<Completion> recv_cq_;
  std::deque<PendingRecv> recv_queue_;
  uint64_t last_completion_ns_ = 0;  // Enforces per-QP FIFO completion order.
  uint64_t auto_wr_id_ = 1;
};

/// The fabric: owns nodes, registrations, link timing and QP wiring.
class Fabric {
 public:
  explicit Fabric(Env* env, LinkParams params = LinkParams());
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Env* env() const { return env_; }
  const LinkParams& params() const { return params_; }

  /// Adds a machine with the given core budget and DRAM arena size.
  Node* AddNode(const std::string& name, int cores, size_t dram_bytes);

  Node* node(uint32_t id) const { return nodes_[id].get(); }
  size_t num_nodes() const { return nodes_.size(); }

  /// Registers [addr, addr+len) of node's DRAM for remote access,
  /// modeling ibv_reg_mr. The region must lie inside the node's arena.
  MemoryRegion RegisterMemory(Node* node, void* addr, size_t len);

  /// Creates a connected queue pair between two nodes; returns the two
  /// endpoints. Endpoints are owned by the fabric.
  std::pair<QueuePair*, QueuePair*> CreateQpPair(Node* a, Node* b);

  /// Validates a remote access against the registration table.
  Status CheckRemoteAccess(uint32_t rkey, uint64_t addr, size_t len,
                           uint32_t target_node) const;

  /// Total bytes moved over the wire so far (for data-movement reports).
  uint64_t wire_bytes() const {
    return wire_bytes_.load(std::memory_order_relaxed);
  }
  /// Total verbs executed so far.
  uint64_t wire_ops() const {
    return wire_ops_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueuePair;

  struct Registration {
    uint64_t addr;
    size_t length;
    uint32_t node_id;
  };

  /// Reserves the link for a transfer of len bytes from src to dst at
  /// (virtual) time now; returns the wire completion time.
  /// `now` is the caller's already-taken post timestamp (posts read the
  /// thread-CPU clock exactly once).
  uint64_t ReserveLink(Node* src, Node* dst, size_t len, uint64_t latency_ns,
                       uint64_t now);

  Env* env_;
  LinkParams params_;
  mutable std::mutex mu_;  // Guards nodes' link state and registrations.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::unordered_map<uint32_t, Registration> registrations_;
  uint32_t next_key_ = 0x1000;
  std::atomic<uint64_t> wire_bytes_{0};
  std::atomic<uint64_t> wire_ops_{0};
};

}  // namespace rdma
}  // namespace dlsm

#endif  // DLSM_RDMA_FABRIC_H_
