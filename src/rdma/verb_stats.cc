#include "src/rdma/verb_stats.h"

#include <cstdio>

namespace dlsm {
namespace rdma {

void RdmaVerbStats::MergeFrom(const RdmaVerbStats& o) {
  read.MergeFrom(o.read);
  write.MergeFrom(o.write);
  send.MergeFrom(o.send);
  atomic.MergeFrom(o.atomic);
  posted += o.posted;
  completed += o.completed;
  abandoned += o.abandoned;
  outstanding += o.outstanding;
  if (o.max_outstanding > max_outstanding) {
    max_outstanding = o.max_outstanding;
  }
  reconnects += o.reconnects;
}

std::string RdmaVerbStats::ToString() const {
  std::string out;
  char line[160];
  for (int i = 0; i < kNumVerbClasses; i++) {
    auto c = static_cast<VerbClass>(i);
    const VerbClassStats& s = cls(c);
    if (s.ops == 0) continue;
    snprintf(line, sizeof(line),
             "  %-6s %10llu ops %10.2f MB  wire p50 %7.1f us  p99 %7.1f us\n",
             VerbClassName(c), static_cast<unsigned long long>(s.ops),
             static_cast<double>(s.bytes) / (1024.0 * 1024.0),
             s.latency_us.Percentile(50.0), s.latency_us.Percentile(99.0));
    out += line;
    if (s.errors > 0) {
      snprintf(line, sizeof(line), "  %-6s %10llu errors\n", VerbClassName(c),
               static_cast<unsigned long long>(s.errors));
      out += line;
    }
  }
  snprintf(line, sizeof(line),
           "  posted %llu  completed %llu  abandoned %llu  outstanding %llu "
           "(max %llu)\n",
           static_cast<unsigned long long>(posted),
           static_cast<unsigned long long>(completed),
           static_cast<unsigned long long>(abandoned),
           static_cast<unsigned long long>(outstanding),
           static_cast<unsigned long long>(max_outstanding));
  out += line;
  if (reconnects > 0) {
    snprintf(line, sizeof(line), "  qp reconnects %llu\n",
             static_cast<unsigned long long>(reconnects));
    out += line;
  }
  return out;
}

std::string RdmaVerbStats::ToJson() const {
  std::string out = "{";
  char line[160];
  for (int i = 0; i < kNumVerbClasses; i++) {
    auto c = static_cast<VerbClass>(i);
    const VerbClassStats& s = cls(c);
    snprintf(line, sizeof(line),
             "\"%s\":{\"ops\":%llu,\"bytes\":%llu,\"errors\":%llu,"
             "\"latency_us\":",
             VerbClassName(c), static_cast<unsigned long long>(s.ops),
             static_cast<unsigned long long>(s.bytes),
             static_cast<unsigned long long>(s.errors));
    out += line;
    out += s.latency_us.ToJson();
    out += "},";
  }
  snprintf(line, sizeof(line),
           "\"posted\":%llu,\"completed\":%llu,\"abandoned\":%llu,"
           "\"outstanding\":%llu,\"max_outstanding\":%llu,\"reconnects\":%llu}",
           static_cast<unsigned long long>(posted),
           static_cast<unsigned long long>(completed),
           static_cast<unsigned long long>(abandoned),
           static_cast<unsigned long long>(outstanding),
           static_cast<unsigned long long>(max_outstanding),
           static_cast<unsigned long long>(reconnects));
  out += line;
  return out;
}

}  // namespace rdma
}  // namespace dlsm
