#include "src/rdma/fabric.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"

namespace dlsm {
namespace rdma {


namespace {

/// RAII guard excluding a payload copy from virtual CPU accounting: the
/// RNIC moves these bytes by DMA, so the posting thread must not pay for
/// the host memcpy that physically implements the transfer.
class DmaScope {
 public:
  explicit DmaScope(Env* env) : env_(env), token_(env->UncountedBegin()) {}
  ~DmaScope() { env_->UncountedEnd(token_); }

 private:
  Env* env_;
  uint64_t token_;
};

/// Latency injected for a stuck WR (FaultParams::stuck_wr_nth): far
/// beyond any reachable virtual time, small enough that completion-time
/// arithmetic cannot overflow.
constexpr uint64_t kStuckDelayNs = 1ull << 62;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

Node::Node(Fabric* fabric, Env* env, std::string name, uint32_t id,
           int env_node, size_t dram_bytes)
    : fabric_(fabric),
      env_(env),
      name_(std::move(name)),
      id_(id),
      env_node_(env_node),
      dram_size_(dram_bytes),
      dram_used_(0) {
  // MAP_NORESERVE: physical pages materialize on first touch, so large
  // "memory node" arenas cost only what the workload actually writes.
  void* p = mmap(nullptr, dram_bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  DLSM_CHECK_MSG(p != MAP_FAILED, "node DRAM reservation failed");
  dram_ = static_cast<char*>(p);
}

Node::~Node() { munmap(dram_, dram_size_); }

char* Node::AllocDram(size_t n) {
  // 64-byte aligned bump allocation.
  size_t aligned = (n + 63) & ~static_cast<size_t>(63);
  size_t offset = dram_used_.fetch_add(aligned, std::memory_order_relaxed);
  if (offset + aligned > dram_size_) {
    dram_used_.fetch_sub(aligned, std::memory_order_relaxed);
    return nullptr;
  }
  return dram_ + offset;
}

// ---------------------------------------------------------------------------
// QueuePair
// ---------------------------------------------------------------------------

Node* QueuePair::peer_node() const { return peer_->local_; }

void QueuePair::PushSendCompletion(const Completion& c) {
  std::lock_guard<std::mutex> lock(mu_);
  send_cq_.push_back(c);
  // A crash/SetError from another thread may have raced this post between
  // its admission check and here; an errored QP must never surface an OK
  // completion posted after the transition.
  if (error_.load(std::memory_order_relaxed) && send_cq_.back().status.ok()) {
    send_cq_.back().status = FlushErr();
  }
}

Status QueuePair::ErrorCause() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_cause_;
}

void QueuePair::SetError(const Status& cause) {
  uint64_t now = local_->env()->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (error_.load(std::memory_order_relaxed)) return;
  error_cause_ = cause;
  error_.store(true, std::memory_order_release);
  FlushSendCqLocked(now);
}

void QueuePair::FlushSendCqLocked(uint64_t now) {
  // Entries whose completion time has passed already happened on the wire
  // and keep their outcome; everything still in flight flushes: status
  // rewritten, pollable immediately, deque (= post) order preserved.
  for (Completion& c : send_cq_) {
    if (c.completion_ns <= now) continue;
    if (c.status.ok()) c.status = FlushErr();
    c.completion_ns = now;
  }
  if (last_completion_ns_ > now) last_completion_ns_ = now;
}

Status QueuePair::Reset() {
  if (local_->crashed() || peer_node()->crashed()) {
    return Status::IOError("cannot reset QP: node down");
  }
  std::lock_guard<std::mutex> lock(mu_);
  error_cause_ = Status::OK();
  error_.store(false, std::memory_order_release);
  return Status::OK();
}

double QueuePair::NextUniform() {
  if (!rng_seeded_) {
    rng_ = SplitMix64(fabric_->fault_params().seed ^
                      (0x9e3779b97f4a7c15ULL * (qp_id_ + 1)));
    if (rng_ == 0) rng_ = 1;
    rng_seeded_ = true;
  }
  rng_ ^= rng_ >> 12;
  rng_ ^= rng_ << 25;
  rng_ ^= rng_ >> 27;
  uint64_t v = rng_ * 0x2545F4914F6CDD1DULL;
  return static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
}

bool QueuePair::AdmitPost(Completion* c, uint64_t* extra_latency_ns) {
  if (!error_.load(std::memory_order_acquire)) {
    // A QP whose endpoint is down errors on first use. This covers QPs
    // created after the crash, which CrashNode's sweep never saw.
    Node* peer = peer_node();
    if (local_->crashed() || peer->crashed()) {
      Node* down = local_->crashed() ? local_ : peer;
      SetError(Status::IOError("node crashed: " + down->name()));
    }
  }
  if (error_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    c->status = FlushErr();
    c->completion_ns = std::max(c->post_ns, last_completion_ns_);
    last_completion_ns_ = c->completion_ns;
    return false;
  }
  Fabric* f = fabric_;
  if (f->faults_enabled()) {
    const FaultParams& fp = f->fault_params();
    if (fp.wr_error_rate > 0.0 && NextUniform() < fp.wr_error_rate) {
      c->status = Status::IOError("injected WR error");
      SetError(c->status);
      std::lock_guard<std::mutex> lock(mu_);
      c->completion_ns = std::max(c->post_ns, last_completion_ns_);
      last_completion_ns_ = c->completion_ns;
      return false;
    }
    if (fp.rnr_delay_rate > 0.0 && NextUniform() < fp.rnr_delay_rate) {
      *extra_latency_ns += fp.rnr_delay_ns;
    }
    if (fp.stuck_wr_nth > 0 &&
        f->admitted_posts_.fetch_add(1, std::memory_order_relaxed) + 1 ==
            fp.stuck_wr_nth) {
      // Park the completion unreachably far in the future: the WR never
      // completes, nothing errors, and per-QP FIFO order wedges the queue
      // behind it — the silent stall the watchdog must detect.
      *extra_latency_ns += kStuckDelayNs;
    }
  }
  return true;
}

void QueuePair::DeliverToPeer(Opcode op, const void* payload, size_t len,
                              uint32_t imm, bool has_imm,
                              uint64_t completion_ns) {
  QueuePair* peer = peer_;
  std::lock_guard<std::mutex> lock(peer->mu_);
  Completion c;
  c.opcode = Opcode::kRecv;
  c.byte_len = static_cast<uint32_t>(len);
  c.imm = imm;
  c.has_imm = has_imm;
  c.completion_ns = completion_ns;
  if (op == Opcode::kSend) {
    // Consume the next posted receive; copy the payload into it.
    if (peer->recv_queue_.empty()) {
      // Receiver-not-ready. Real RC QPs would retry then error; we model an
      // infinite SRQ by buffering into an anonymous completion with no
      // buffer, which the RPC layer never triggers (it pre-posts receives).
      c.status = Status::IOError("RNR: no posted receive");
      peer->recv_cq_.push_back(c);
      return;
    }
    PendingRecv r = peer->recv_queue_.front();
    peer->recv_queue_.pop_front();
    if (len > r.len) {
      c.status = Status::IOError("recv buffer too small");
    } else if (payload != nullptr) {
      DmaScope dma(peer->local_->env());
      memcpy(r.buf, payload, len);
    }
    c.wr_id = r.wr_id;
  } else {
    // WRITE_WITH_IMM: consumes a receive for the notification only.
    if (!peer->recv_queue_.empty()) {
      c.wr_id = peer->recv_queue_.front().wr_id;
      peer->recv_queue_.pop_front();
    }
  }
  peer->recv_cq_.push_back(c);
}

uint64_t QueuePair::PostRead(void* dst, uint64_t raddr, uint32_t rkey,
                             size_t len, uint64_t wr_id) {
  Fabric* f = fabric_;
  Completion c;
  c.post_ns = f->env()->NowNanos();
  last_post_ns_ = c.post_ns;
  c.opcode = Opcode::kRead;
  c.byte_len = static_cast<uint32_t>(len);
  c.wr_id = wr_id != 0 ? wr_id : auto_wr_id_++;
  uint64_t fault_ns = 0;
  if (!AdmitPost(&c, &fault_ns)) {
    PushSendCompletion(c);
    return c.wr_id;
  }
  c.status = f->CheckRemoteAccess(rkey, raddr, len, peer_node()->id());
  uint64_t done = f->ReserveLink(peer_node(), local_, len,
                                 f->params().read_latency_ns + fault_ns,
                                 c.post_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = std::max(done, last_completion_ns_);
    last_completion_ns_ = done;
  }
  c.completion_ns = done;
  if (c.status.ok()) {
    peer_node()->RecordRemoteRead(len);
    DmaScope dma(f->env());
    memcpy(dst, reinterpret_cast<const void*>(raddr), len);
  } else {
    SetError(c.status);  // A remote access error puts the RC QP in error.
  }
  PushSendCompletion(c);
  return c.wr_id;
}

uint64_t QueuePair::PostWrite(const void* src, uint64_t raddr, uint32_t rkey,
                              size_t len, uint64_t wr_id) {
  Fabric* f = fabric_;
  Completion c;
  c.post_ns = f->env()->NowNanos();
  last_post_ns_ = c.post_ns;
  c.opcode = Opcode::kWrite;
  c.byte_len = static_cast<uint32_t>(len);
  c.wr_id = wr_id != 0 ? wr_id : auto_wr_id_++;
  uint64_t fault_ns = 0;
  if (!AdmitPost(&c, &fault_ns)) {
    PushSendCompletion(c);
    return c.wr_id;
  }
  c.status = f->CheckRemoteAccess(rkey, raddr, len, peer_node()->id());
  uint64_t done = f->ReserveLink(local_, peer_node(), len,
                                 f->params().write_latency_ns + fault_ns,
                                 c.post_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = std::max(done, last_completion_ns_);
    last_completion_ns_ = done;
  }
  c.completion_ns = done;
  if (c.status.ok()) {
    peer_node()->RecordRemoteWrite(len);
    DmaScope dma(f->env());
    memcpy(reinterpret_cast<void*>(raddr), src, len);
  } else {
    SetError(c.status);
  }
  PushSendCompletion(c);
  return c.wr_id;
}

uint64_t QueuePair::PostWriteWithImm(const void* src, uint64_t raddr,
                                     uint32_t rkey, size_t len, uint32_t imm,
                                     uint64_t wr_id) {
  Fabric* f = fabric_;
  Completion c;
  c.post_ns = f->env()->NowNanos();
  last_post_ns_ = c.post_ns;
  c.opcode = Opcode::kWriteWithImm;
  c.byte_len = static_cast<uint32_t>(len);
  c.wr_id = wr_id != 0 ? wr_id : auto_wr_id_++;
  uint64_t fault_ns = 0;
  if (!AdmitPost(&c, &fault_ns)) {
    PushSendCompletion(c);
    return c.wr_id;
  }
  c.status = len == 0 ? Status::OK()
                      : f->CheckRemoteAccess(rkey, raddr, len,
                                             peer_node()->id());
  uint64_t done = f->ReserveLink(local_, peer_node(), len,
                                 f->params().write_latency_ns + fault_ns,
                                 c.post_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = std::max(done, last_completion_ns_);
    last_completion_ns_ = done;
  }
  c.completion_ns = done;
  if (c.status.ok() && len > 0) {
    DmaScope dma(f->env());
    memcpy(reinterpret_cast<void*>(raddr), src, len);
  }
  if (c.status.ok()) {
    DeliverToPeer(Opcode::kWriteWithImm, nullptr, len, imm, true, done);
  } else {
    SetError(c.status);
  }
  PushSendCompletion(c);
  return c.wr_id;
}

uint64_t QueuePair::PostWriteStamped(const void* src, uint64_t raddr,
                                     uint32_t rkey, size_t len,
                                     uint64_t wr_id) {
  Fabric* f = fabric_;
  Completion c;
  c.post_ns = f->env()->NowNanos();
  last_post_ns_ = c.post_ns;
  c.opcode = Opcode::kWrite;
  c.byte_len = static_cast<uint32_t>(len);
  c.wr_id = wr_id != 0 ? wr_id : auto_wr_id_++;
  uint64_t fault_ns = 0;
  if (!AdmitPost(&c, &fault_ns)) {
    PushSendCompletion(c);
    return c.wr_id;
  }
  c.status =
      f->CheckRemoteAccess(rkey, raddr, len + sizeof(uint64_t),
                           peer_node()->id());
  uint64_t done = f->ReserveLink(local_, peer_node(), len + sizeof(uint64_t),
                                 f->params().write_latency_ns + fault_ns,
                                 c.post_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = std::max(done, last_completion_ns_);
    last_completion_ns_ = done;
  }
  c.completion_ns = done;
  if (c.status.ok()) {
    DmaScope dma(f->env());
    if (len > 0) {
      memcpy(reinterpret_cast<void*>(raddr), src, len);
    }
    // The stamp is released last, as the RNIC writes bytes in order.
    uint64_t stamp = done == 0 ? 1 : done;
    __atomic_store(reinterpret_cast<uint64_t*>(raddr + len), &stamp,
                   __ATOMIC_RELEASE);
  } else {
    SetError(c.status);
  }
  PushSendCompletion(c);
  return c.wr_id;
}

uint64_t QueuePair::PostSend(const void* src, size_t len, uint64_t wr_id) {
  Fabric* f = fabric_;
  Completion c;
  c.post_ns = f->env()->NowNanos();
  last_post_ns_ = c.post_ns;
  c.opcode = Opcode::kSend;
  c.byte_len = static_cast<uint32_t>(len);
  c.wr_id = wr_id != 0 ? wr_id : auto_wr_id_++;
  uint64_t fault_ns = 0;
  if (!AdmitPost(&c, &fault_ns)) {
    PushSendCompletion(c);
    return c.wr_id;
  }
  uint64_t done = f->ReserveLink(local_, peer_node(), len,
                                 f->params().send_latency_ns + fault_ns,
                                 c.post_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = std::max(done, last_completion_ns_);
    last_completion_ns_ = done;
  }
  c.completion_ns = done;
  DeliverToPeer(Opcode::kSend, src, len, 0, false, done);
  PushSendCompletion(c);
  return c.wr_id;
}

void QueuePair::PostRecv(void* buf, size_t len, uint64_t wr_id) {
  std::lock_guard<std::mutex> lock(mu_);
  recv_queue_.push_back(PendingRecv{buf, len, wr_id});
}

uint64_t QueuePair::PostFetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                                 uint64_t* result, uint64_t wr_id) {
  Fabric* f = fabric_;
  Completion c;
  c.post_ns = f->env()->NowNanos();
  last_post_ns_ = c.post_ns;
  c.opcode = Opcode::kFetchAdd;
  c.byte_len = sizeof(uint64_t);
  c.wr_id = wr_id != 0 ? wr_id : auto_wr_id_++;
  uint64_t fault_ns = 0;
  if (!AdmitPost(&c, &fault_ns)) {
    PushSendCompletion(c);
    return c.wr_id;
  }
  c.status = f->CheckRemoteAccess(rkey, raddr, sizeof(uint64_t),
                                  peer_node()->id());
  if (c.status.ok() && (raddr & 7) != 0) {
    c.status = Status::InvalidArgument("atomic target not 8-byte aligned");
  }
  uint64_t done = f->ReserveLink(local_, peer_node(), sizeof(uint64_t),
                                 f->params().atomic_latency_ns + fault_ns,
                                 c.post_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = std::max(done, last_completion_ns_);
    last_completion_ns_ = done;
  }
  c.completion_ns = done;
  if (c.status.ok()) {
    auto* target = reinterpret_cast<std::atomic<uint64_t>*>(raddr);
    *result = target->fetch_add(add, std::memory_order_acq_rel);
  } else {
    SetError(c.status);
  }
  PushSendCompletion(c);
  return c.wr_id;
}

uint64_t QueuePair::PostCmpSwap(uint64_t raddr, uint32_t rkey,
                                uint64_t expected, uint64_t desired,
                                uint64_t* result, uint64_t wr_id) {
  Fabric* f = fabric_;
  Completion c;
  c.post_ns = f->env()->NowNanos();
  last_post_ns_ = c.post_ns;
  c.opcode = Opcode::kCmpSwap;
  c.byte_len = sizeof(uint64_t);
  c.wr_id = wr_id != 0 ? wr_id : auto_wr_id_++;
  uint64_t fault_ns = 0;
  if (!AdmitPost(&c, &fault_ns)) {
    PushSendCompletion(c);
    return c.wr_id;
  }
  c.status = f->CheckRemoteAccess(rkey, raddr, sizeof(uint64_t),
                                  peer_node()->id());
  if (c.status.ok() && (raddr & 7) != 0) {
    c.status = Status::InvalidArgument("atomic target not 8-byte aligned");
  }
  uint64_t done = f->ReserveLink(local_, peer_node(), sizeof(uint64_t),
                                 f->params().atomic_latency_ns + fault_ns,
                                 c.post_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = std::max(done, last_completion_ns_);
    last_completion_ns_ = done;
  }
  c.completion_ns = done;
  if (c.status.ok()) {
    auto* target = reinterpret_cast<std::atomic<uint64_t>*>(raddr);
    uint64_t exp = expected;
    target->compare_exchange_strong(exp, desired, std::memory_order_acq_rel);
    *result = exp;  // Previous value, as ibverbs returns.
  } else {
    SetError(c.status);
  }
  PushSendCompletion(c);
  return c.wr_id;
}

int QueuePair::PollCq(Completion* out, int max_entries) {
  uint64_t now = local_->env()->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  while (n < max_entries && !send_cq_.empty() &&
         send_cq_.front().completion_ns <= now) {
    out[n++] = send_cq_.front();
    send_cq_.pop_front();
  }
  return n;
}

Completion QueuePair::WaitCompletion() {
  Env* env = local_->env();
  for (;;) {
    uint64_t next_ready;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!send_cq_.empty()) {
        next_ready = send_cq_.front().completion_ns;
        if (next_ready <= env->NowNanos()) {
          Completion c = send_cq_.front();
          send_cq_.pop_front();
          return c;
        }
      } else {
        next_ready = 0;
      }
    }
    if (next_ready > 0) {
      env->AdvanceTo(next_ready);
    } else {
      // Nothing posted yet (or a racing poster); let others run.
      env->YieldToOthers();
    }
  }
}

int QueuePair::PollRecvCq(Completion* out, int max_entries) {
  uint64_t now = local_->env()->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  while (n < max_entries && !recv_cq_.empty() &&
         recv_cq_.front().completion_ns <= now) {
    out[n++] = recv_cq_.front();
    recv_cq_.pop_front();
  }
  return n;
}

Completion QueuePair::WaitRecvCompletion() {
  Env* env = local_->env();
  for (;;) {
    uint64_t next_ready;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!recv_cq_.empty()) {
        next_ready = recv_cq_.front().completion_ns;
        if (next_ready <= env->NowNanos()) {
          Completion c = recv_cq_.front();
          recv_cq_.pop_front();
          return c;
        }
      } else {
        next_ready = 0;
      }
    }
    if (next_ready > 0) {
      env->AdvanceTo(next_ready);
    } else {
      env->YieldToOthers();
    }
  }
}

bool QueuePair::HasPendingSends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !send_cq_.empty();
}

size_t QueuePair::send_cq_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return send_cq_.size();
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Fabric::Fabric(Env* env, LinkParams params) : env_(env), params_(params) {}

Fabric::~Fabric() = default;

Node* Fabric::AddNode(const std::string& name, int cores, size_t dram_bytes) {
  int env_node = env_->RegisterNode(name, cores);
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back(
      new Node(this, env_, name, id, env_node, dram_bytes));
  return nodes_.back().get();
}

MemoryRegion Fabric::RegisterMemory(Node* node, void* addr, size_t len) {
  auto a = reinterpret_cast<uint64_t>(addr);
  auto base = reinterpret_cast<uint64_t>(node->dram_base());
  bool in_arena = a >= base && a + len <= base + node->dram_size();
  std::lock_guard<std::mutex> lock(mu_);
  MemoryRegion mr;
  mr.addr = a;
  mr.length = len;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  mr.node_id = node->id();
  if (in_arena) {
    registrations_[mr.rkey] = Registration{a, len, node->id()};
  }
  // A region outside the node's arena gets keys that never enter the
  // registration table: any remote access through them completes with an
  // "unknown rkey" error on the issuing QP — the documented invalid-rkey
  // behavior — rather than aborting the whole process here.
  return mr;
}

std::pair<QueuePair*, QueuePair*> Fabric::CreateQpPair(Node* a, Node* b) {
  std::lock_guard<std::mutex> lock(mu_);
  qps_.emplace_back(new QueuePair(this, a));
  QueuePair* qa = qps_.back().get();
  qa->qp_id_ = static_cast<uint32_t>(qps_.size() - 1);
  qps_.emplace_back(new QueuePair(this, b));
  QueuePair* qb = qps_.back().get();
  qb->qp_id_ = static_cast<uint32_t>(qps_.size() - 1);
  qa->peer_ = qb;
  qb->peer_ = qa;
  return {qa, qb};
}

void Fabric::set_fault_params(const FaultParams& fp) {
  fault_params_ = fp;
  faults_enabled_.store(fp.any(), std::memory_order_relaxed);
}

void Fabric::CrashNode(Node* node) {
  node->crashed_.store(true, std::memory_order_release);
  std::vector<QueuePair*> touched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& qp : qps_) {
      if (qp->local_ == node || qp->peer_node() == node) {
        touched.push_back(qp.get());
      }
    }
  }
  // SetError takes each QP's own lock; doing it outside mu_ keeps the
  // fabric-lock -> qp-lock order one-way.
  Status cause = Status::IOError("node crashed: " + node->name());
  for (QueuePair* qp : touched) qp->SetError(cause);
  NotifyCrashListeners(node, true);
}

void Fabric::RestartNode(Node* node) {
  // QPs stay in the error state until their owners Reset() them — a
  // restarted machine's connections still need to be re-established.
  node->crashed_.store(false, std::memory_order_release);
  NotifyCrashListeners(node, false);
}

uint64_t Fabric::AddCrashListener(std::function<void(Node*, bool)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_crash_listener_id_++;
  crash_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Fabric::RemoveCrashListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = crash_listeners_.begin(); it != crash_listeners_.end();
       ++it) {
    if (it->first == id) {
      crash_listeners_.erase(it);
      return;
    }
  }
}

void Fabric::NotifyCrashListeners(Node* node, bool crashed) {
  // Copy under mu_, invoke outside it: listeners may touch DB state that
  // itself issues fabric calls.
  std::vector<std::function<void(Node*, bool)>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners.reserve(crash_listeners_.size());
    for (const auto& entry : crash_listeners_) listeners.push_back(entry.second);
  }
  for (const auto& listener : listeners) listener(node, crashed);
}

Status Fabric::CheckRemoteAccess(uint32_t rkey, uint64_t addr, size_t len,
                                 uint32_t target_node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = registrations_.find(rkey);
  if (it == registrations_.end()) {
    return Status::InvalidArgument("unknown rkey");
  }
  const Registration& r = it->second;
  if (r.node_id != target_node) {
    return Status::InvalidArgument("rkey belongs to a different node");
  }
  if (addr < r.addr || addr + len > r.addr + r.length) {
    return Status::InvalidArgument("remote access out of registered range");
  }
  return Status::OK();
}

uint64_t Fabric::ReserveLink(Node* src, Node* dst, size_t len,
                             uint64_t latency_ns, uint64_t now) {
  uint64_t occupancy =
      params_.per_op_overhead_ns +
      static_cast<uint64_t>(static_cast<double>(len) / params_.BytesPerNano());
  wire_bytes_.fetch_add(len, std::memory_order_relaxed);
  wire_ops_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t start = std::max({now, src->tx_free_, dst->rx_free_});
  uint64_t wire_done = start + occupancy;
  src->tx_free_ = wire_done;
  dst->rx_free_ = wire_done;
  return wire_done + latency_ns;
}

}  // namespace rdma
}  // namespace dlsm
