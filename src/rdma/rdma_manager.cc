#include "src/rdma/rdma_manager.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "src/util/logging.h"
#include "src/util/trace.h"

namespace dlsm {
namespace rdma {

namespace {
// Thread-local VQ cache keyed by manager instance id (not pointer, to be
// safe against allocator address reuse across manager lifetimes).
thread_local std::unordered_map<uint64_t, VerbQueue*> tls_vqs;
}  // namespace

// ---------------------------------------------------------------------------
// WrHandle
// ---------------------------------------------------------------------------

WrHandle::WrHandle(WrHandle&& o) noexcept
    : vq_(o.vq_),
      wr_id_(o.wr_id_),
      done_(o.done_),
      status_(o.status_),
      completion_ns_(o.completion_ns_) {
  o.vq_ = nullptr;
  o.done_ = false;
}

WrHandle& WrHandle::operator=(WrHandle&& o) noexcept {
  if (this != &o) {
    Cancel();
    vq_ = o.vq_;
    wr_id_ = o.wr_id_;
    done_ = o.done_;
    status_ = o.status_;
    completion_ns_ = o.completion_ns_;
    o.vq_ = nullptr;
    o.done_ = false;
  }
  return *this;
}

Status WrHandle::Wait() {
  if (done_) return status_;
  DLSM_CHECK_MSG(vq_ != nullptr, "Wait on an invalid WrHandle");
  Completion c;
  status_ = vq_->WaitFor(wr_id_, &c);
  completion_ns_ = c.completion_ns;
  done_ = true;
  return status_;
}

bool WrHandle::Ready() {
  if (done_) return true;
  if (vq_ == nullptr) return false;
  Completion c;
  if (!vq_->TryClaim(wr_id_, &c)) return false;
  status_ = c.status;
  completion_ns_ = c.completion_ns;
  done_ = true;
  return true;
}

void WrHandle::Cancel() {
  if (vq_ != nullptr && !done_) {
    vq_->Cancel(wr_id_);
  }
  vq_ = nullptr;
}

// ---------------------------------------------------------------------------
// VerbQueue
// ---------------------------------------------------------------------------

VerbQueue::VerbQueue(QueuePair* qp, RdmaManager* mgr) : qp_(qp), mgr_(mgr) {
  if (mgr_ != nullptr) mgr_->RegisterVq(this);
}

VerbQueue::~VerbQueue() {
  if (mgr_ != nullptr) mgr_->UnregisterVq(this);
}

size_t VerbQueue::FindPending(uint64_t wr_id) const {
  for (size_t i = 0; i < pending_.size(); i++) {
    if (pending_[i].wr_id == wr_id) return i;
  }
  return pending_.size();
}

WrHandle VerbQueue::Track(uint64_t wr_id, VerbClass cls) {
  pending_.push_back(Pending{wr_id, cls, false});
  // The QP stamped the post clock an instant ago; reuse it rather than
  // reading the clock a second time per verb.
  RecordPost(wr_id, cls, qp_->last_post_ns());
  return WrHandle(this, wr_id);
}

void VerbQueue::Admit(const Completion& c) {
  size_t i = FindPending(c.wr_id);
  DLSM_CHECK_MSG(i != pending_.size(),
                 "completion for a wr this queue did not post");
  RecordCompletion(pending_[i].cls, c);
  bool cancelled = pending_[i].cancelled;
  pending_[i] = pending_.back();
  pending_.pop_back();
  if (cancelled) {
    RecordAbandoned();
    return;  // Handle was cancelled; drop the completion.
  }
  stash_.push_back(c);
}

void VerbQueue::Sweep() {
  Completion c;
  while (qp_->PollCq(&c, 1) == 1) {
    Admit(c);
  }
}

Status VerbQueue::WaitFor(uint64_t wr_id, Completion* out) {
  for (size_t i = 0; i < stash_.size(); i++) {
    if (stash_[i].wr_id == wr_id) {
      *out = stash_[i];
      stash_[i] = stash_.back();
      stash_.pop_back();
      return out->status;
    }
  }
  DLSM_CHECK_MSG(FindPending(wr_id) != pending_.size(),
                 "waiting on a wr this queue never posted");
  for (;;) {
    Completion c = qp_->WaitCompletion();
    if (c.wr_id == wr_id) {
      // Fast path: the popped completion is the one being waited on (the
      // common FIFO case) — no stash round trip. The waiter holds this
      // verb's handle, so it cannot be cancelled.
      size_t i = FindPending(wr_id);
      DLSM_CHECK_MSG(i != pending_.size(),
                     "completion for a wr this queue did not post");
      RecordCompletion(pending_[i].cls, c);
      pending_[i] = pending_.back();
      pending_.pop_back();
      *out = c;
      return c.status;
    }
    Admit(c);
  }
}

bool VerbQueue::TryClaim(uint64_t wr_id, Completion* out) {
  Sweep();
  for (size_t i = 0; i < stash_.size(); i++) {
    if (stash_[i].wr_id == wr_id) {
      *out = stash_[i];
      stash_[i] = stash_.back();
      stash_.pop_back();
      return true;
    }
  }
  return false;
}

void VerbQueue::Cancel(uint64_t wr_id) {
  for (size_t i = 0; i < stash_.size(); i++) {
    if (stash_[i].wr_id == wr_id) {
      stash_[i] = stash_.back();
      stash_.pop_back();
      RecordAbandoned();
      return;
    }
  }
  size_t i = FindPending(wr_id);
  if (i != pending_.size()) pending_[i].cancelled = true;
}

Status VerbQueue::DrainAll() {
  Status first;
  while (!pending_.empty()) {
    Completion c = qp_->WaitCompletion();
    if (first.ok() && !c.status.ok()) first = c.status;
    Admit(c);
  }
  return first;
}

Status VerbQueue::Recover() {
  // Everything still in flight on an errored QP is already flushed and
  // pollable, so this drain cannot block on the wire.
  while (!pending_.empty()) {
    Admit(qp_->WaitCompletion());
  }
  if (!qp_->InError()) return Status::OK();
  Status s = qp_->Reset();
  if (s.ok()) RecordReconnect();
  return s;
}

void VerbQueue::RecordPost(uint64_t wr_id, VerbClass cls, uint64_t post_ns) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  posted_++;
  outstanding_++;
  if (outstanding_ > max_outstanding_) max_outstanding_ = outstanding_;
  outstanding_verbs_.push_back(OutstandingVerb{wr_id, cls, post_ns});
}

void VerbQueue::RecordCompletion(VerbClass cls, const Completion& c) {
  uint64_t wire_ns =
      c.completion_ns >= c.post_ns ? c.completion_ns - c.post_ns : 0;
  // Post→completion async span, recorded retroactively at harvest time so
  // the event carries the exact wire interval (both stamps come from the
  // fabric). Covers every verb class on both waiting paths (WaitFor's
  // fast path and Sweep).
  if (trace::Tracer::enabled()) {
    trace::Tracer::EmitComplete(VerbClassName(cls), "verb", c.post_ns,
                                wire_ns, 0, "bytes", c.byte_len, "err",
                                c.status.ok() ? 0 : 1);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  completed_++;
  outstanding_--;
  for (size_t i = 0; i < outstanding_verbs_.size(); i++) {
    if (outstanding_verbs_[i].wr_id == c.wr_id) {
      outstanding_verbs_[i] = outstanding_verbs_.back();
      outstanding_verbs_.pop_back();
      break;
    }
  }
  VerbClassStats& s = cls_stats_[static_cast<int>(cls)];
  s.ops++;
  s.bytes += c.byte_len;
  if (!c.status.ok()) s.errors++;
  s.latency_us.Add(static_cast<double>(wire_ns) / 1000.0);
}

void VerbQueue::RecordAbandoned() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  abandoned_++;
}

void VerbQueue::RecordReconnect() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  reconnects_++;
}

void VerbQueue::ListOutstanding(std::vector<OutstandingVerb>* out) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  out->insert(out->end(), outstanding_verbs_.begin(),
              outstanding_verbs_.end());
}

void VerbQueue::SnapshotInto(RdmaVerbStats* out) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  out->read.MergeFrom(cls_stats_[static_cast<int>(VerbClass::kRead)]);
  out->write.MergeFrom(cls_stats_[static_cast<int>(VerbClass::kWrite)]);
  out->send.MergeFrom(cls_stats_[static_cast<int>(VerbClass::kSend)]);
  out->atomic.MergeFrom(cls_stats_[static_cast<int>(VerbClass::kAtomic)]);
  out->posted += posted_;
  out->completed += completed_;
  out->abandoned += abandoned_;
  out->outstanding += outstanding_;
  if (max_outstanding_ > out->max_outstanding) {
    out->max_outstanding = max_outstanding_;
  }
  out->reconnects += reconnects_;
}

WrHandle VerbQueue::Read(void* dst, uint64_t raddr, uint32_t rkey,
                         size_t len) {
  MaybeSweep();
  return Track(qp_->PostRead(dst, raddr, rkey, len), VerbClass::kRead);
}

WrHandle VerbQueue::Write(const void* src, uint64_t raddr, uint32_t rkey,
                          size_t len) {
  MaybeSweep();
  return Track(qp_->PostWrite(src, raddr, rkey, len), VerbClass::kWrite);
}

WrHandle VerbQueue::WriteStamped(const void* src, uint64_t raddr,
                                 uint32_t rkey, size_t len) {
  MaybeSweep();
  return Track(qp_->PostWriteStamped(src, raddr, rkey, len),
               VerbClass::kWrite);
}

WrHandle VerbQueue::WriteWithImm(const void* src, uint64_t raddr,
                                 uint32_t rkey, size_t len, uint32_t imm) {
  MaybeSweep();
  return Track(qp_->PostWriteWithImm(src, raddr, rkey, len, imm),
               VerbClass::kSend);
}

WrHandle VerbQueue::Send(const void* src, size_t len) {
  MaybeSweep();
  return Track(qp_->PostSend(src, len), VerbClass::kSend);
}

WrHandle VerbQueue::FetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                             uint64_t* prev) {
  MaybeSweep();
  return Track(qp_->PostFetchAdd(raddr, rkey, add, prev), VerbClass::kAtomic);
}

WrHandle VerbQueue::CmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                            uint64_t desired, uint64_t* prev) {
  MaybeSweep();
  return Track(qp_->PostCmpSwap(raddr, rkey, expected, desired, prev),
               VerbClass::kAtomic);
}

// ---------------------------------------------------------------------------
// RdmaManager
// ---------------------------------------------------------------------------

std::atomic<uint64_t> RdmaManager::next_instance_id_{1};

RdmaManager::RdmaManager(Fabric* fabric, Node* local, Node* remote)
    : fabric_(fabric),
      local_(local),
      remote_(remote),
      instance_id_(next_instance_id_.fetch_add(1)) {}

RdmaManager::~RdmaManager() = default;

QueuePair* RdmaManager::CreateQp() {
  auto [local_qp, remote_qp] = fabric_->CreateQpPair(local_, remote_);
  (void)remote_qp;  // The passive side; one-sided verbs need no peer logic.
  return local_qp;
}

VerbQueue* RdmaManager::ThreadVq() {
  auto it = tls_vqs.find(instance_id_);
  if (it != tls_vqs.end()) {
    return it->second;
  }
  auto vq = std::make_unique<VerbQueue>(CreateQp(), this);
  VerbQueue* raw = vq.get();
  tls_vqs[instance_id_] = raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    thread_vqs_.push_back(std::move(vq));
  }
  return raw;
}

std::unique_ptr<VerbQueue> RdmaManager::CreateExclusiveVq() {
  return std::make_unique<VerbQueue>(CreateQp(), this);
}

void RdmaManager::RegisterVq(VerbQueue* vq) {
  std::lock_guard<std::mutex> lock(mu_);
  live_vqs_.push_back(vq);
}

void RdmaManager::UnregisterVq(VerbQueue* vq) {
  std::lock_guard<std::mutex> lock(mu_);
  RdmaVerbStats last;
  vq->SnapshotInto(&last);
  // Verbs still in flight when their queue dies can never be harvested;
  // fold them into the abandoned count instead of pinning the gauge.
  last.abandoned += last.outstanding;
  last.outstanding = 0;
  retired_.MergeFrom(last);
  for (size_t i = 0; i < live_vqs_.size(); i++) {
    if (live_vqs_[i] == vq) {
      live_vqs_[i] = live_vqs_.back();
      live_vqs_.pop_back();
      break;
    }
  }
}

RdmaVerbStats RdmaManager::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RdmaVerbStats out = retired_;
  for (VerbQueue* vq : live_vqs_) {
    vq->SnapshotInto(&out);
  }
  return out;
}

void RdmaManager::ListOutstanding(std::vector<OutstandingVerb>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (VerbQueue* vq : live_vqs_) {
    vq->ListOutstanding(out);
  }
}

std::string RdmaManager::QpStateSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  size_t qi = 0;
  for (VerbQueue* vq : live_vqs_) {
    std::vector<OutstandingVerb> inflight;
    vq->ListOutstanding(&inflight);
    uint64_t last_post = 0;
    for (const OutstandingVerb& v : inflight) {
      if (v.post_ns > last_post) last_post = v.post_ns;
    }
    snprintf(line, sizeof(line),
             "qp[%zu] %s->%s state=%s in_flight=%zu last_post_ns=%llu\n", qi++,
             local_->name().c_str(), remote_->name().c_str(),
             vq->qp()->InError() ? "ERROR" : "RTS", inflight.size(),
             static_cast<unsigned long long>(last_post));
    out += line;
  }
  if (qi == 0) out = "(no live verb queues)\n";
  return out;
}

Status RdmaManager::Read(void* dst, uint64_t raddr, uint32_t rkey,
                         size_t len) {
  return ThreadVq()->Read(dst, raddr, rkey, len).Wait();
}

Status RdmaManager::Write(const void* src, uint64_t raddr, uint32_t rkey,
                          size_t len) {
  return ThreadVq()->Write(src, raddr, rkey, len).Wait();
}

Status RdmaManager::FetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                             uint64_t* prev) {
  return ThreadVq()->FetchAdd(raddr, rkey, add, prev).Wait();
}

Status RdmaManager::CmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                            uint64_t desired, uint64_t* prev) {
  return ThreadVq()->CmpSwap(raddr, rkey, expected, desired, prev).Wait();
}

WrHandle RdmaManager::PostReadAsync(void* dst, uint64_t raddr, uint32_t rkey,
                                    size_t len) {
  return ThreadVq()->Read(dst, raddr, rkey, len);
}

WrHandle RdmaManager::PostWriteAsync(const void* src, uint64_t raddr,
                                     uint32_t rkey, size_t len) {
  return ThreadVq()->Write(src, raddr, rkey, len);
}

// ---------------------------------------------------------------------------
// ReadBatch
// ---------------------------------------------------------------------------

size_t ReadBatch::Add(void* dst, uint64_t raddr, uint32_t rkey, size_t len) {
  VerbQueue* vq = mgr_->ThreadVq();
  if (vq_ == nullptr) {
    vq_ = vq;
  } else {
    // Handles harvest from the posting thread's queue; waiting them from
    // another thread would poll the wrong CQ.
    DLSM_CHECK_MSG(vq_ == vq, "ReadBatch used from a different thread");
  }
  handles_.push_back(vq->Read(dst, raddr, rkey, len));
  return handles_.size() - 1;
}

Status ReadBatch::WaitAll() {
  for (WrHandle& h : handles_) {
    Status s = h.Wait();
    if (first_.ok() && !s.ok()) first_ = s;
  }
  return first_;
}

// ---------------------------------------------------------------------------
// StampFuture
// ---------------------------------------------------------------------------

Status StampFuture::Wait() {
  uint64_t t;
  while ((t = QueuePair::ReadReadyStamp(stamp_)) == 0) {
    // Poll politely: the writer needs this node's poller thread to stand
    // aside, and in virtual time a tight spin would never advance.
    env_->YieldToOthers();
  }
  // The stamp holds the producer's wire completion time; honoring it keeps
  // one-sided delivery causal in virtual time.
  env_->AdvanceTo(t);
  completion_ns_ = t;
  return Status::OK();
}

Status StampFuture::WaitUntil(uint64_t deadline_ns) {
  uint64_t t;
  while ((t = QueuePair::ReadReadyStamp(stamp_)) == 0) {
    uint64_t before = env_->NowNanos();
    if (before >= deadline_ns) {
      return Status::IOError("timed out waiting for ready stamp");
    }
    env_->YieldToOthers();
    if (env_->NowNanos() == before) {
      // No runnable peer moved the clock; a pure yield loop would never
      // reach the deadline in virtual time. Sleep one poll quantum.
      env_->SleepNanos(std::min<uint64_t>(5000, deadline_ns - before));
    }
  }
  env_->AdvanceTo(t);
  completion_ns_ = t;
  return Status::OK();
}

}  // namespace rdma
}  // namespace dlsm
