#include "src/rdma/rdma_manager.h"

#include <unordered_map>

#include "src/util/logging.h"

namespace dlsm {
namespace rdma {

namespace {
// Thread-local QP cache keyed by manager instance id (not pointer, to be
// safe against allocator address reuse across manager lifetimes).
thread_local std::unordered_map<uint64_t, QueuePair*> tls_qps;
}  // namespace

std::atomic<uint64_t> RdmaManager::next_instance_id_{1};

RdmaManager::RdmaManager(Fabric* fabric, Node* local, Node* remote)
    : fabric_(fabric),
      local_(local),
      remote_(remote),
      instance_id_(next_instance_id_.fetch_add(1)) {}

RdmaManager::~RdmaManager() = default;

QueuePair* RdmaManager::ThreadQp() {
  auto it = tls_qps.find(instance_id_);
  if (it != tls_qps.end()) {
    return it->second;
  }
  auto [local_qp, remote_qp] = fabric_->CreateQpPair(local_, remote_);
  (void)remote_qp;  // The passive side; one-sided verbs need no peer logic.
  tls_qps[instance_id_] = local_qp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    owned_qps_.push_back(local_qp);
  }
  return local_qp;
}

QueuePair* RdmaManager::CreateExclusiveQp() {
  auto [local_qp, remote_qp] = fabric_->CreateQpPair(local_, remote_);
  (void)remote_qp;
  return local_qp;
}

Status RdmaManager::WaitForWr(QueuePair* qp, uint64_t wr_id) {
  for (;;) {
    Completion c = qp->WaitCompletion();
    if (c.wr_id == wr_id) {
      return c.status;
    }
    // A completion for an earlier async post on this thread's QP; the
    // synchronous wrappers are only used on QPs without outstanding async
    // work, so this indicates a protocol bug.
    DLSM_CHECK_MSG(false, "unexpected completion while waiting synchronously");
  }
}

Status RdmaManager::Read(void* dst, uint64_t raddr, uint32_t rkey,
                         size_t len) {
  QueuePair* qp = ThreadQp();
  uint64_t wr = qp->PostRead(dst, raddr, rkey, len);
  return WaitForWr(qp, wr);
}

uint64_t RdmaManager::PostReadAsync(void* dst, uint64_t raddr, uint32_t rkey,
                                    size_t len) {
  return ThreadQp()->PostRead(dst, raddr, rkey, len);
}

Status RdmaManager::WaitForAll(size_t n, std::vector<Status>* statuses) {
  QueuePair* qp = ThreadQp();
  Status first;
  for (size_t i = 0; i < n; i++) {
    Completion c = qp->WaitCompletion();
    if (statuses != nullptr) statuses->push_back(c.status);
    if (first.ok() && !c.status.ok()) first = c.status;
  }
  return first;
}

size_t ReadBatch::Add(void* dst, uint64_t raddr, uint32_t rkey, size_t len) {
  QueuePair* qp = mgr_->ThreadQp();
  if (qp_ == nullptr) {
    qp_ = qp;
  } else {
    // A batch belongs to the thread that posted it; draining from another
    // thread's QP would block forever.
    DLSM_CHECK_MSG(qp_ == qp, "ReadBatch used from a different thread");
  }
  DLSM_CHECK_MSG(!drained_, "ReadBatch reused after WaitAll");
  mgr_->PostReadAsync(dst, raddr, rkey, len);
  return posted_++;
}

Status ReadBatch::WaitAll() {
  if (drained_ || posted_ == 0) {
    drained_ = true;
    return Status::OK();
  }
  DLSM_CHECK_MSG(qp_ == mgr_->ThreadQp(),
                 "ReadBatch drained from a different thread");
  drained_ = true;
  return mgr_->WaitForAll(posted_, &statuses_);
}

Status RdmaManager::Write(const void* src, uint64_t raddr, uint32_t rkey,
                          size_t len) {
  QueuePair* qp = ThreadQp();
  uint64_t wr = qp->PostWrite(src, raddr, rkey, len);
  return WaitForWr(qp, wr);
}

Status RdmaManager::FetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                             uint64_t* prev) {
  QueuePair* qp = ThreadQp();
  uint64_t wr = qp->PostFetchAdd(raddr, rkey, add, prev);
  return WaitForWr(qp, wr);
}

Status RdmaManager::CmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                            uint64_t desired, uint64_t* prev) {
  QueuePair* qp = ThreadQp();
  uint64_t wr = qp->PostCmpSwap(raddr, rkey, expected, desired, prev);
  return WaitForWr(qp, wr);
}

}  // namespace rdma
}  // namespace dlsm
