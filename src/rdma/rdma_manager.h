// RdmaManager: the intermediate layer between engine code and the verbs
// fabric (paper Sec. X-B). It owns the connection between one local node
// and one remote node, hands out thread-local queue pairs (so completion
// polling never mixes threads), and provides synchronous one-sided
// wrappers that block in virtual time until the wire completion.

#ifndef DLSM_RDMA_RDMA_MANAGER_H_
#define DLSM_RDMA_RDMA_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/util/status.h"

namespace dlsm {
namespace rdma {

/// Per-(local node, remote node) RDMA connection manager. Thread-safe;
/// each calling thread transparently gets its own queue pair.
class RdmaManager {
 public:
  RdmaManager(Fabric* fabric, Node* local, Node* remote);
  ~RdmaManager();

  RdmaManager(const RdmaManager&) = delete;
  RdmaManager& operator=(const RdmaManager&) = delete;

  Fabric* fabric() const { return fabric_; }
  Node* local() const { return local_; }
  Node* remote() const { return remote_; }
  Env* env() const { return fabric_->env(); }

  /// Returns the calling thread's queue pair to the remote node, creating
  /// it on first use (paper: "every thread creates a thread-local queue
  /// pair ... so threads do not collide when polling completions").
  QueuePair* ThreadQp();

  /// Creates a queue pair for a single owner with outstanding asynchronous
  /// work (e.g. the flush pipeline), so its completions never interleave
  /// with the thread's synchronous verbs on ThreadQp().
  QueuePair* CreateExclusiveQp();

  /// Synchronous one-sided read; blocks until the wire completion.
  Status Read(void* dst, uint64_t raddr, uint32_t rkey, size_t len);

  /// Posts a one-sided READ on the calling thread's queue pair without
  /// waiting for the completion; returns the work-request id. Doorbell
  /// batching: post N READs back-to-back, then drain the CQ once with
  /// WaitForAll. The thread must drain every outstanding post before it
  /// issues any synchronous verb through this manager again.
  uint64_t PostReadAsync(void* dst, uint64_t raddr, uint32_t rkey, size_t len);

  /// Drains exactly n completions from the calling thread's queue pair.
  /// Completions pop in FIFO post order (the fabric guarantees per-QP
  /// ordering). Returns the first failed status; when statuses is
  /// non-null, one entry per completion is appended in post order.
  Status WaitForAll(size_t n, std::vector<Status>* statuses = nullptr);

  /// Synchronous one-sided write; blocks until the wire completion.
  Status Write(const void* src, uint64_t raddr, uint32_t rkey, size_t len);

  /// Synchronous remote fetch-and-add of an 8-byte counter.
  Status FetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                  uint64_t* prev);

  /// Synchronous remote compare-and-swap; *prev receives the old value.
  Status CmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                 uint64_t desired, uint64_t* prev);

 private:
  Status WaitForWr(QueuePair* qp, uint64_t wr_id);

  Fabric* fabric_;
  Node* local_;
  Node* remote_;
  uint64_t instance_id_;
  std::mutex mu_;
  std::vector<QueuePair*> owned_qps_;  // For diagnostics only; fabric owns.

  static std::atomic<uint64_t> next_instance_id_;
};

/// A doorbell batch of one-sided READs on the owning thread's queue pair:
/// Add() posts without waiting; WaitAll() rings once and drains the CQ in
/// a single sweep, so N small reads cost one base latency plus their wire
/// occupancy instead of N round trips. At most one live batch per thread
/// per manager, and the thread must not issue other verbs through the
/// manager between the first Add() and WaitAll().
class ReadBatch {
 public:
  explicit ReadBatch(RdmaManager* mgr) : mgr_(mgr) {}
  ~ReadBatch() { WaitAll(); }  // Posted READs must never be abandoned.

  ReadBatch(const ReadBatch&) = delete;
  ReadBatch& operator=(const ReadBatch&) = delete;

  /// Posts one READ of [raddr, raddr+len) into dst; returns its slot.
  size_t Add(void* dst, uint64_t raddr, uint32_t rkey, size_t len);

  size_t size() const { return posted_; }

  /// Blocks until every posted READ has completed; returns the first
  /// failure. Idempotent; per-slot outcomes via status().
  Status WaitAll();

  /// Completion status of slot i; only valid after WaitAll().
  const Status& status(size_t i) const { return statuses_[i]; }

 private:
  RdmaManager* mgr_;
  QueuePair* qp_ = nullptr;  // Bound to the posting thread's QP on first Add.
  size_t posted_ = 0;
  std::vector<Status> statuses_;
  bool drained_ = false;
};

}  // namespace rdma
}  // namespace dlsm

#endif  // DLSM_RDMA_RDMA_MANAGER_H_
